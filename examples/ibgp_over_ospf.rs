//! The Figure 7(e) scenario as an application: iBGP over OSPF — the
//! cross-PEC dependency case. The externally learned prefixes are carried by
//! an iBGP full mesh between backbone loopbacks, so verifying them requires
//! first verifying the OSPF PECs for those loopbacks; Plankton's
//! dependency-aware scheduler orders (and parallelizes) exactly that.
//!
//! ```text
//! cargo run --release --example ibgp_over_ospf
//! ```

use plankton::config::scenarios::isp_ibgp_over_ospf;
use plankton::net::generators::as_topo::AsTopologySpec;
use plankton::prelude::*;

fn main() {
    let scenario = isp_ibgp_over_ospf(&AsTopologySpec::paper_as(3967));
    println!(
        "{}: {} routers, iBGP mesh of {} backbone routers, {} external prefixes",
        scenario.as_topology.name,
        scenario.network.node_count(),
        scenario.as_topology.backbone.len(),
        scenario.bgp_destinations.len()
    );

    let verifier = Plankton::new(scenario.network.clone());
    let deps = verifier.dependencies();
    println!(
        "{} PECs, {} dependency edges, {} scheduling waves, largest SCC = {}",
        verifier.pecs().len(),
        deps.graph.edge_count(),
        deps.waves().len(),
        deps.largest_component()
    );

    // Packets from the non-border iBGP speakers to the externally learned
    // prefixes are delivered only if the iBGP next hop resolves through the
    // OSPF underlay.
    let sources: Vec<NodeId> = scenario
        .as_topology
        .backbone
        .iter()
        .filter(|n| !scenario.borders.contains(n))
        .take(6)
        .copied()
        .collect();
    let report = verifier.verify(
        &Reachability::new(sources),
        &FailureScenario::no_failures(),
        &PlanktonOptions::with_cores(4).restricted_to(scenario.bgp_destinations.clone()),
    );
    println!("\niBGP-announced prefixes: {}", report.summary());

    // The loopback PECs that the BGP PECs depend on are plain OSPF.
    let report = verifier.verify(
        &Reachability::new(scenario.as_topology.access.clone()),
        &FailureScenario::no_failures(),
        &PlanktonOptions::with_cores(4).restricted_to(scenario.loopback_prefixes.clone()),
    );
    println!(
        "backbone loopbacks (the dependency PECs): {}",
        report.summary()
    );
}
