//! Quickstart: build a small OSPF network by hand, verify reachability and
//! loop freedom, then break it with a bad static route and watch Plankton
//! produce a counterexample trail.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use plankton::config::{DeviceConfig, OspfConfig, StaticRoute};
use plankton::prelude::*;

fn main() {
    // A 4-router diamond: r0 - {r1, r2} - r3, with r3 originating a prefix.
    let mut builder = TopologyBuilder::new();
    let r0 = builder.add_router("r0");
    let r1 = builder.add_router("r1");
    let r2 = builder.add_router("r2");
    let r3 = builder.add_router("r3");
    for (i, &r) in [r0, r1, r2, r3].iter().enumerate() {
        builder.set_loopback(r, Ipv4Addr::new(10, 0, 0, i as u8 + 1));
    }
    builder.add_link(r0, r1);
    builder.add_link(r0, r2);
    builder.add_link(r1, r3);
    builder.add_link(r2, r3);
    let topology = builder.build();

    let destination: Prefix = "203.0.113.0/24".parse().unwrap();
    let mut network = Network::unconfigured(topology);
    for r in [r0, r1, r2] {
        *network.device_mut(r) = DeviceConfig::empty().with_ospf(OspfConfig::enabled());
    }
    *network.device_mut(r3) =
        DeviceConfig::empty().with_ospf(OspfConfig::originating(vec![destination]));

    // Verify: every router reaches the destination, even with one link down.
    let verifier = Plankton::new(network.clone());
    println!(
        "computed {} packet equivalence classes",
        verifier.pecs().len()
    );
    let report = verifier.verify(
        &Reachability::new(vec![r0, r1, r2]),
        &FailureScenario::up_to(1),
        &PlanktonOptions::default().restricted_to(vec![destination]),
    );
    println!("reachability under ≤1 failure: {}", report.summary());
    assert!(report.holds());

    let report = verifier.verify(
        &LoopFreedom::everywhere(),
        &FailureScenario::up_to(1),
        &PlanktonOptions::default(),
    );
    println!("loop freedom under ≤1 failure:  {}", report.summary());
    assert!(report.holds());

    // Now break it: a static route on r0 that sends the destination's
    // traffic to r1, while r1 (after losing its r3 link) routes back through
    // r0 — a forwarding loop that only appears under that failure.
    let mut broken = network.clone();
    broken
        .device_mut(r0)
        .static_routes
        .push(StaticRoute::to_interface(destination, r1));
    let verifier = Plankton::new(broken);
    let report = verifier.verify(
        &LoopFreedom::everywhere(),
        &FailureScenario::up_to(1),
        &PlanktonOptions::default(),
    );
    println!(
        "loop freedom with the bad static route: {}",
        report.summary()
    );
    assert!(!report.holds());
    let violation = report.first_violation().expect("a violation was found");
    println!("counterexample:\n{}", violation.trail);
    println!("failed links: {}", violation.failures);
    println!("reason: {}", violation.reason);
}
