//! The Figure 7(d)/(g) scenario as an application: a RocketFuel-scale ISP
//! topology running OSPF with weighted links, verified for single-link fault
//! tolerance from a multihomed ingress, with an ARC-style graph baseline run
//! on the same question for comparison.
//!
//! ```text
//! cargo run --release --example isp_failures
//! ```

use plankton::baselines::ArcBaseline;
use plankton::config::scenarios::isp_ospf;
use plankton::net::generators::as_topo::AsTopologySpec;
use plankton::prelude::*;
use std::time::Instant;

fn main() {
    let scenario = isp_ospf(&AsTopologySpec::paper_as(3967));
    println!(
        "{}: {} routers, {} links, {} customer prefixes",
        scenario.as_topology.name,
        scenario.network.node_count(),
        scenario.network.topology.link_count(),
        scenario.destinations.len()
    );

    let verifier = Plankton::new(scenario.network.clone());
    println!(
        "{} packet equivalence classes, largest dependency SCC = {}",
        verifier.pecs().len(),
        verifier.dependencies().largest_component()
    );

    // Check a sample of customer prefixes for reachability from the ingress
    // under any single link failure.
    let sample: Vec<Prefix> = scenario.destinations.iter().take(12).copied().collect();
    let start = Instant::now();
    let report = verifier.verify(
        &Reachability::new(vec![scenario.ingress]),
        &FailureScenario::up_to(1),
        &PlanktonOptions::with_cores(4)
            .restricted_to(sample.clone())
            .collect_all_violations(),
    );
    println!(
        "\nPlankton, ≤1 failure, {} prefixes: {} in {:.3}s",
        sample.len(),
        if report.holds() {
            "all reachable"
        } else {
            "violations found"
        },
        start.elapsed().as_secs_f64()
    );
    for violation in report.violations.iter().take(3) {
        println!("  e.g. {violation}");
    }

    // The ARC-style baseline answers the same question with one max-flow per
    // source/destination pair (shortest-path routing only).
    let arc = ArcBaseline::new(&scenario.network);
    let probes: Vec<NodeId> = scenario
        .as_topology
        .access
        .iter()
        .take(12)
        .copied()
        .collect();
    let start = Instant::now();
    let arc_report = arc.all_to_all(&probes, 1);
    println!(
        "ARC-style baseline, same question over {} pairs: {} in {:.3}s",
        arc_report.flow_computations,
        if arc_report.holds() {
            "all reachable"
        } else {
            "vulnerable pairs exist"
        },
        start.elapsed().as_secs_f64()
    );
    for (src, dst) in arc_report.vulnerable_pairs.iter().take(3) {
        println!("  vulnerable pair: {src} -> {dst}");
    }
}
