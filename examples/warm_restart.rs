//! Persist → restart → cached re-verify, end to end.
//!
//! ```text
//! cargo run --release --example warm_restart
//! ```
//!
//! Two `ServiceSession`s play two daemon lifetimes sharing one
//! `--cache-dir`: the first verifies cold and persists its
//! content-addressed result cache; the second — a brand-new session whose
//! only connection to the first is the cache file — warm-starts from it and
//! serves the same verification entirely from cache, byte-identically. CI
//! runs this as part of the warm-restart smoke test (it exits non-zero if
//! the restarted session re-runs any task).

use plankton::config::scenarios::{fat_tree_ospf, CoreStaticRoutes};
use plankton::service::{PolicySpec, Request, Response, ServiceSession, VerifyOptions};

fn roundtrip(session: &ServiceSession, request: &Request) -> Response {
    let line = request.to_line();
    println!("→ {line}");
    let (response_line, _) = plankton::service::handle_line(session, &line);
    println!("← {response_line}");
    serde_json::from_str(&response_line).expect("response parses")
}

fn main() {
    let cache_dir = std::env::temp_dir().join(format!("plankton-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let s = fat_tree_ospf(4, CoreStaticRoutes::MatchingOspf);
    let verify = Request::Verify {
        policy: PolicySpec::LoopFreedom,
        options: Some(VerifyOptions {
            max_failures: 1,
            ..Default::default()
        }),
    };

    println!("# daemon lifetime 1: cold verify, then persist the cache");
    let cold_report;
    {
        let session = ServiceSession::new().with_cache_dir(&cache_dir);
        roundtrip(
            &session,
            &Request::Load {
                network: s.network.clone(),
            },
        );
        let Response::Report(report) = roundtrip(&session, &verify) else {
            panic!("verify failed");
        };
        assert!(report.holds);
        assert!(report.run.tasks_rerun > 0, "cold run does fresh work");
        cold_report = report;
        let Response::Persisted { entries, path } = roundtrip(&session, &Request::Persist) else {
            panic!("persist failed");
        };
        println!("# persisted {entries} entries to {path}");
        // The session going out of scope is the daemon dying. (planktond
        // also persists automatically on shutdown.)
    }

    println!("\n# daemon lifetime 2: a new session warm-starts from the cache dir");
    let session = ServiceSession::new().with_cache_dir(&cache_dir);
    let Response::Loaded {
        cache_warm_entries, ..
    } = roundtrip(
        &session,
        &Request::Load {
            network: s.network.clone(),
        },
    )
    else {
        panic!("load failed");
    };
    assert!(
        cache_warm_entries > 0,
        "cache file must warm the new session"
    );

    println!("\n# the delta-free re-verify is served entirely from the warm cache");
    let Response::Report(warm) = roundtrip(&session, &verify) else {
        panic!("warm verify failed");
    };
    assert!(warm.holds);
    assert_eq!(
        warm.run.tasks_rerun, 0,
        "no task may re-run: {:?}",
        warm.run
    );
    assert_eq!(warm.run.tasks_cached, warm.run.tasks_total);
    assert_eq!(warm.states_explored, cold_report.states_explored);
    assert_eq!(warm.data_planes_checked, cold_report.data_planes_checked);

    println!(
        "\nsummary: cold run re-ran {} tasks; after the restart {} of {} tasks \
         came from the persisted cache ({} RPVP steps served without re-exploration)",
        cold_report.run.tasks_rerun,
        warm.run.tasks_cached,
        warm.run.tasks_total,
        warm.run.steps_cached,
    );
    let _ = std::fs::remove_dir_all(&cache_dir);
    println!("warm-restart smoke test passed");
}
