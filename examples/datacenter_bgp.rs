//! The Figure 7(c) scenario as an application: an RFC 7938 BGP data center
//! (every switch its own AS, eBGP on every link) where the operator intends
//! all inter-pod traffic to cross a set of monitoring waypoints on the
//! aggregation layer — but nothing in the configuration steers routes that
//! way, so whether the policy holds depends on non-deterministic protocol
//! convergence (age-based tie breaking). Plankton explores the convergence
//! non-determinism and finds the violating event sequence.
//!
//! ```text
//! cargo run --release --example datacenter_bgp
//! ```

use plankton::config::scenarios::fat_tree_bgp_rfc7938;
use plankton::prelude::*;

fn main() {
    let scenario = fat_tree_bgp_rfc7938(4, 7);
    let (src, dst) = scenario.monitored_edges;
    let dst_prefix = scenario
        .fat_tree
        .prefix_of_edge(dst)
        .expect("destination edge originates a prefix");

    println!(
        "BGP data center: {} switches, {} waypoints on the aggregation layer",
        scenario.network.node_count(),
        scenario.waypoints.len()
    );
    println!(
        "checking: traffic from {} to {} ({dst_prefix}) must cross a waypoint",
        scenario.network.topology.node(src).name,
        scenario.network.topology.node(dst).name,
    );

    let verifier = Plankton::new(scenario.network.clone());
    let policy = Waypoint::new(vec![src], scenario.waypoints.clone());
    let report = verifier.verify(
        &policy,
        &FailureScenario::no_failures(),
        &PlanktonOptions::default().restricted_to(vec![dst_prefix]),
    );

    println!("{}", report.summary());
    match report.first_violation() {
        Some(violation) => {
            println!("\nA convergence that bypasses every waypoint exists.");
            println!("Non-deterministic choices on the violating execution:");
            for event in violation.trail.events.iter().filter(|e| !e.deterministic) {
                println!(
                    "  {} adopted the advertisement from {:?}",
                    event.node, event.from_peer
                );
            }
            println!("\nreason: {}", violation.reason);
        }
        None => {
            println!("every possible convergence happens to cross a waypoint");
        }
    }

    // Reachability, by contrast, holds in every converged state.
    let report = verifier.verify(
        &Reachability::new(vec![src]),
        &FailureScenario::no_failures(),
        &PlanktonOptions::default().restricted_to(vec![dst_prefix]),
    );
    println!("\nreachability of the same prefix: {}", report.summary());
}
