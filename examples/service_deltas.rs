//! Drive the incremental verification daemon in-process: load a fat tree,
//! verify, apply config deltas, re-verify — and watch the result cache keep
//! the re-verifications cheap.
//!
//! ```text
//! cargo run --release --example service_deltas
//! ```
//!
//! The example speaks the exact NDJSON wire protocol `planktond` serves, so
//! the printed session doubles as protocol documentation (it is the
//! recorded session embedded in the README). It exits non-zero if the
//! cached-PEC skip count after a delta is not positive — CI runs it as the
//! service smoke test.

use plankton::config::scenarios::{fat_tree_ospf, CoreStaticRoutes};
use plankton::service::{PolicySpec, Request, Response, ServiceSession, VerifyOptions};

fn roundtrip(session: &ServiceSession, request: &Request) -> Response {
    let line = request.to_line();
    println!("→ {line}");
    let (response_line, _) = plankton::service::handle_line(session, &line);
    println!("← {response_line}");
    serde_json::from_str(&response_line).expect("response parses")
}

fn main() {
    let s = fat_tree_ospf(4, CoreStaticRoutes::MatchingOspf);
    let session = ServiceSession::new();

    let verify = Request::Verify {
        policy: PolicySpec::LoopFreedom,
        options: Some(VerifyOptions {
            max_failures: 1,
            ..Default::default()
        }),
    };

    println!("# 1. load the K=4 OSPF fat tree");
    roundtrip(
        &session,
        &Request::Load {
            network: s.network.clone(),
        },
    );

    println!("\n# 2. first verification (cold cache): loop freedom, ≤1 failure");
    let Response::Report(cold) = roundtrip(&session, &verify) else {
        panic!("verify failed");
    };
    assert!(cold.holds);

    println!("\n# 3. a link fails");
    let link = s.network.topology.links()[0].id;
    roundtrip(
        &session,
        &Request::ApplyDelta {
            delta: plankton::config::ConfigDelta::LinkDown { link },
        },
    );

    println!("\n# 4. re-verify: the fault-tolerance run pre-paid for this delta");
    let Response::Report(warm) = roundtrip(&session, &verify) else {
        panic!("re-verify failed");
    };
    assert!(warm.holds);

    println!("\n# 5. an operator edit: pin a static route on an aggregation switch");
    roundtrip(
        &session,
        &Request::ApplyDelta {
            delta: plankton::config::ConfigDelta::StaticRouteAdd {
                device: s.fat_tree.aggregation[0][0],
                route: plankton::config::StaticRoute::to_interface(
                    s.destinations[0],
                    s.fat_tree.edge[0][0],
                ),
            },
        },
    );

    println!("\n# 6. re-verify: only the touched PEC's tasks re-run — and the");
    println!("#    edit turns out to loop under a failure combination");
    let Response::Report(after_edit) = roundtrip(&session, &verify) else {
        panic!("re-verify failed");
    };
    assert!(
        !after_edit.holds,
        "the pinned route loops under failures; the service must catch it"
    );

    println!("\n# 7. service statistics");
    roundtrip(&session, &Request::Stats);

    println!(
        "\nsummary: cold run re-explored {} PECs; after the link delta {} were \
         served from cache; after the static-route edit {} of {} PECs were cached",
        cold.run.pecs_reexplored,
        warm.run.pecs_cached,
        after_edit.run.pecs_cached,
        after_edit.run.pecs_checked,
    );
    // CI smoke assertion: incremental re-verification must actually skip
    // cached PECs after a delta.
    assert!(
        warm.run.tasks_cached > 0 && after_edit.run.pecs_cached > 0,
        "cached-PEC skip count must be positive after a delta"
    );
    assert!(
        after_edit.run.pecs_reexplored < after_edit.run.pecs_checked,
        "a small delta must re-explore strictly fewer PECs"
    );
    println!("service smoke test passed");
}
