//! Flight-recorder semantics under contention: many writer threads racing
//! into a small ring must leave exactly the last `capacity` events, in
//! sequence order, with no torn or duplicated records — and repeated dumps
//! of quiescent data must be identical (the determinism `Dump` relies on).

use std::sync::Arc;
use std::thread;

use plankton_telemetry::recorder::FlightRecorder;
use plankton_telemetry::trace::{Event, Field, Level};

#[test]
fn concurrent_writers_wrap_to_exactly_the_last_capacity_events() {
    const WRITERS: u64 = 8;
    const PER_WRITER: u64 = 400;
    const CAPACITY: usize = 64;

    let recorder = Arc::new(FlightRecorder::with_capacity(CAPACITY));
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let recorder = recorder.clone();
            thread::spawn(move || {
                for i in 0..PER_WRITER {
                    recorder.record(&Event {
                        level: Level::Info,
                        name: "tick",
                        trace_id: w + 1,
                        fields: &[Field::u64("writer", w), Field::u64("i", i)],
                    });
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    let total = WRITERS * PER_WRITER;
    assert_eq!(recorder.total_recorded(), total);
    assert_eq!(recorder.dropped(), total - CAPACITY as u64);

    let events = recorder.dump(None, None);
    assert_eq!(events.len(), CAPACITY, "ring must be exactly full");
    // Exactly the last CAPACITY sequence numbers, ascending, no gaps.
    let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    let expected: Vec<u64> = (total - CAPACITY as u64..total).collect();
    assert_eq!(seqs, expected);
    // No torn records: every retained event is internally consistent — its
    // trace id matches the writer field baked into its JSON rendering.
    for event in &events {
        assert_eq!(event.name, "tick");
        let writer_field = format!("\"writer\":{}", event.trace_id - 1);
        assert!(
            event.json.contains(&writer_field),
            "torn record: trace {} vs json {}",
            event.trace_id,
            event.json
        );
        assert!(event.json.contains("\"event\":\"tick\""), "{}", event.json);
    }

    // Quiescent determinism: identical repeated dumps, with and without a
    // trace filter; `last` keeps the tail.
    let again = recorder.dump(None, None);
    assert_eq!(
        events.iter().map(|e| e.seq).collect::<Vec<_>>(),
        again.iter().map(|e| e.seq).collect::<Vec<_>>()
    );
    for w in 0..WRITERS {
        let filtered = recorder.dump(Some(w + 1), None);
        let refiltered = recorder.dump(Some(w + 1), None);
        assert!(filtered.iter().all(|e| e.trace_id == w + 1));
        assert_eq!(
            filtered.iter().map(|e| e.seq).collect::<Vec<_>>(),
            refiltered.iter().map(|e| e.seq).collect::<Vec<_>>()
        );
        let last2 = recorder.dump(Some(w + 1), Some(2));
        let tail: Vec<u64> = filtered.iter().rev().take(2).rev().map(|e| e.seq).collect();
        assert_eq!(last2.iter().map(|e| e.seq).collect::<Vec<_>>(), tail);
    }
    // Every retained event belongs to some writer's filtered view.
    let filtered_total: usize = (0..WRITERS)
        .map(|w| recorder.dump(Some(w + 1), None).len())
        .sum();
    assert_eq!(filtered_total, CAPACITY);
}
