//! JSONL sink behaviour end-to-end: lines land in the writer, carry the
//! thread's trace id, respect per-sink level filters, and spans record
//! elapsed time. Own binary: the sink registry is process-global.

use std::io;
use std::sync::{Arc, Mutex};

use plankton_telemetry::trace::{self, Field, JsonLinesSink, Level};

#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[test]
fn json_lines_sink_records_trace_ids_levels_and_spans() {
    let buf = SharedBuf::default();
    trace::add_sink(
        Level::Info,
        Arc::new(JsonLinesSink::writer(Box::new(buf.clone()))),
    );

    let request_trace = trace::next_trace_id();
    {
        let _guard = trace::scope(request_trace);
        trace::event(
            Level::Info,
            "request",
            &[Field::str("kind", "verify"), Field::u64("tasks", 3)],
        );
        trace::event(Level::Debug, "too_quiet", &[]);
        let span = trace::span(Level::Info, "exploration");
        span.close_with(&[Field::u64("tasks_rerun", 2)]);
    }
    trace::event(Level::Warn, "parse_error", &[Field::u64("byte_len", 17)]);
    trace::clear_sinks();

    let bytes = buf.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "expected 3 lines, got: {text}");

    assert!(lines[0].contains("\"event\":\"request\""), "{}", lines[0]);
    assert!(lines[0].contains("\"kind\":\"verify\""), "{}", lines[0]);
    assert!(
        lines[0].contains(&format!("\"trace\":{request_trace}")),
        "{}",
        lines[0]
    );

    assert!(
        lines[1].contains("\"event\":\"exploration\""),
        "{}",
        lines[1]
    );
    assert!(lines[1].contains("\"elapsed_us\":"), "{}", lines[1]);
    assert!(lines[1].contains("\"tasks_rerun\":2"), "{}", lines[1]);
    assert!(
        lines[1].contains(&format!("\"trace\":{request_trace}")),
        "span must inherit the scope's trace id: {}",
        lines[1]
    );

    // Outside the scope the trace id falls back to 0.
    assert!(
        lines[2].contains("\"event\":\"parse_error\""),
        "{}",
        lines[2]
    );
    assert!(lines[2].contains("\"trace\":0"), "{}", lines[2]);
    assert!(lines[2].contains("\"byte_len\":17"), "{}", lines[2]);

    // Every line is an object with a timestamp.
    for line in &lines {
        assert!(line.starts_with("{\"ts_us\":"), "{line}");
        assert!(line.ends_with('}'), "{line}");
    }
}
