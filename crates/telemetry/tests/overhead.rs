//! The zero-cost-when-disabled guarantee, asserted with a counting global
//! allocator: with no sink installed, the event path must not allocate at
//! all. This lives in its own integration-test binary because the global
//! allocator and the global sink registry are process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use plankton_telemetry::taskstats::TaskCosts;
use plankton_telemetry::trace::{self, Event, Field, Level, Sink};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

struct CountingSink {
    seen: AtomicU64,
}

impl Sink for CountingSink {
    fn emit(&self, _event: &Event<'_>) {
        self.seen.fetch_add(1, Ordering::Relaxed);
    }
}

/// One test fn so the disabled-path assertion cannot race a test that
/// installs a sink: integration tests in one binary run in parallel threads
/// but share the global sink registry.
#[test]
fn disabled_event_path_does_not_allocate_and_sinks_see_events_once_installed() {
    // Phase 1: no sink installed. The full event path — enabled() gate,
    // field-slice literal, span create/drop — must be allocation-free.
    assert!(!trace::enabled(Level::Error));
    let fields = [
        Field::u64("tasks", 12),
        Field::str("kind", "verify"),
        Field::bool("cached", false),
    ];
    // Warm up any lazy thread-local init outside the measured window.
    trace::event(Level::Info, "warmup", &fields);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..1000 {
        trace::event(Level::Info, "request", &fields);
        trace::event(Level::Error, "boom", &[]);
        let span = trace::span(Level::Debug, "phase");
        drop(span);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled event path allocated {} times",
        after - before
    );

    // Phase 2: install a counting sink at Info; Info and above arrive,
    // Debug is filtered by the sink's level, and spans emit on drop.
    let sink = Arc::new(CountingSink {
        seen: AtomicU64::new(0),
    });
    trace::add_sink(Level::Info, sink.clone());
    assert!(trace::enabled(Level::Info));
    assert!(!trace::enabled(Level::Debug));

    trace::event(Level::Info, "request", &fields);
    trace::event(Level::Warn, "parse_error", &[Field::u64("byte_len", 9)]);
    trace::event(Level::Debug, "filtered", &[]);
    let span = trace::span(Level::Info, "phase");
    drop(span);
    assert_eq!(sink.seen.load(Ordering::Relaxed), 3);

    // Phase 3: clearing sinks restores the free path. With no recorder
    // installed (this binary never calls recorder::install_global), the
    // flight-recorder feature costs nothing here: the disabled event path is
    // byte-for-byte the same gate as before.
    trace::clear_sinks();
    assert!(plankton_telemetry::recorder::global().is_none());
    assert!(!trace::enabled(Level::Error));
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    trace::event(Level::Error, "gone", &fields);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0);
    assert_eq!(sink.seen.load(Ordering::Relaxed), 3);

    // Phase 4: task-cost attribution steady state. The first record of a key
    // allocates (entry + label); every later record of the same key is a
    // shard read-lock plus relaxed atomic adds — zero allocations.
    let costs = TaskCosts::new();
    costs.record_run(7, 42, 100, 10, || "f{3}".to_string());
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..1000 {
        costs.record_run(7, 42, i, 1, || unreachable!("label rebuilt"));
        costs.record_cache_hit(7, 42, || unreachable!("label rebuilt"));
    }
    let (runs, total, _max) = costs.totals(7, 42);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state attribution allocated {} times",
        after - before
    );
    assert_eq!(runs, 1001);
    assert_eq!(total, 100 + (0..1000).sum::<u64>());
}
