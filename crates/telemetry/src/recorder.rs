//! The flight recorder: a fixed-capacity in-memory ring that retains the
//! last N structured events even when no JSONL sink is configured.
//!
//! Logs answer "what happened" only if someone turned them on *before* the
//! interesting request; the recorder answers it after the fact. It installs
//! as an ordinary [`Sink`](crate::trace::Sink), so every event a request
//! emits — including the causal chain behind an `Error` reply — is held in
//! bounded memory and retrievable by trace id via the service's `Dump`
//! request.
//!
//! Concurrency model: a single atomic sequence counter assigns each event a
//! global slot; slots are striped across `SHARDS` independently locked rings,
//! so concurrent connection and worker threads contend on a mutex only
//! 1/`SHARDS` of the time, and each shard critical section is a single
//! `Vec` store. Memory is bounded at `capacity` owned events; event `seq`
//! minus capacity events have been overwritten (reported as `dropped`).
//! When the recorder is not installed, the tracing fast path is untouched:
//! the disabled [`trace::event`](crate::trace::event) call remains one
//! relaxed atomic load with zero allocations (see `tests/overhead.rs`).

use crate::trace::{render_json_line, Event, Level, Sink};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Stripe count. Power of two so the slot→shard mapping is a mask.
const SHARDS: usize = 8;

/// Default ring capacity installed by `planktond` (events, not bytes).
pub const DEFAULT_CAPACITY: usize = 2048;

/// One retained event, owned by the ring.
#[derive(Clone, Debug)]
pub struct RecordedEvent {
    /// Global sequence number (0-based, monotonically increasing).
    pub seq: u64,
    /// Monotonic timestamp: microseconds since the recorder was created.
    pub mono_us: u64,
    /// Severity.
    pub level: Level,
    /// Trace id current on the emitting thread (0 = none).
    pub trace_id: u64,
    /// Event name (`request`, `slow_task`, ...).
    pub name: String,
    /// The full JSONL rendering (wall-clock `ts_us`, level, trace, fields).
    pub json: String,
}

struct Shard {
    ring: Vec<Option<RecordedEvent>>,
}

/// A fixed-capacity, lock-striped ring of recorded events.
pub struct FlightRecorder {
    shards: Vec<Mutex<Shard>>,
    /// Next sequence number to assign; also the total recorded count.
    seq: AtomicU64,
    /// Total slots across all shards.
    capacity: usize,
    /// Per-shard slot count (`capacity / SHARDS`).
    per_shard: usize,
    epoch: Instant,
}

impl FlightRecorder {
    /// A recorder retaining (at least) the last `capacity` events. The
    /// capacity is rounded up to a multiple of the stripe count, minimum one
    /// slot per stripe.
    pub fn with_capacity(capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(SHARDS).max(1);
        let shards = (0..SHARDS)
            .map(|_| {
                Mutex::new(Shard {
                    ring: vec![None; per_shard],
                })
            })
            .collect();
        FlightRecorder {
            shards,
            seq: AtomicU64::new(0),
            capacity: per_shard * SHARDS,
            per_shard,
            epoch: Instant::now(),
        }
    }

    /// Total slots in the ring.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Events lost to overwriting so far.
    pub fn dropped(&self) -> u64 {
        self.total_recorded().saturating_sub(self.capacity as u64)
    }

    /// Record one event. The sequence slot is claimed with a single
    /// `fetch_add`; only the owning stripe is locked, and only to move the
    /// already-built record into its slot.
    pub fn record(&self, event: &Event<'_>) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let record = RecordedEvent {
            seq,
            mono_us: self.epoch.elapsed().as_micros() as u64,
            level: event.level,
            trace_id: event.trace_id,
            name: event.name.to_string(),
            json: render_json_line(event),
        };
        let shard = (seq as usize) % SHARDS;
        let slot = (seq as usize / SHARDS) % self.per_shard;
        let mut guard = self.shards[shard].lock().expect("recorder shard poisoned");
        // A slower writer that claimed an older seq for this slot may arrive
        // after us; never let it overwrite a newer record.
        match &guard.ring[slot] {
            Some(existing) if existing.seq > seq => {}
            _ => guard.ring[slot] = Some(record),
        }
    }

    /// Snapshot the retained events in sequence order, optionally filtered to
    /// one trace id, optionally truncated to the last `last` events (applied
    /// after filtering). Repeated calls over quiescent data are
    /// deterministic: same events, same order.
    pub fn dump(&self, trace_id: Option<u64>, last: Option<usize>) -> Vec<RecordedEvent> {
        let mut events: Vec<RecordedEvent> = Vec::with_capacity(self.capacity.min(1024));
        for shard in &self.shards {
            let guard = shard.lock().expect("recorder shard poisoned");
            events.extend(guard.ring.iter().flatten().cloned());
        }
        events.sort_by_key(|e| e.seq);
        if let Some(trace_id) = trace_id {
            events.retain(|e| e.trace_id == trace_id);
        }
        if let Some(last) = last {
            let drop = events.len().saturating_sub(last);
            events.drain(..drop);
        }
        events
    }
}

impl Sink for FlightRecorder {
    fn emit(&self, event: &Event<'_>) {
        self.record(event);
    }
}

static GLOBAL: OnceLock<Arc<FlightRecorder>> = OnceLock::new();

/// Create the process-global recorder and install it as a trace sink at
/// `Level::Trace`. Idempotent: the first call wins and later calls are
/// no-ops (returning the already-installed recorder). A `capacity` of zero
/// installs nothing and leaves tracing untouched.
pub fn install_global(capacity: usize) -> Option<&'static Arc<FlightRecorder>> {
    if capacity == 0 {
        return global();
    }
    let mut installed = false;
    let recorder = GLOBAL.get_or_init(|| {
        installed = true;
        Arc::new(FlightRecorder::with_capacity(capacity))
    });
    if installed {
        crate::trace::add_sink(Level::Trace, recorder.clone());
    }
    Some(recorder)
}

/// The process-global recorder, if [`install_global`] has run.
pub fn global() -> Option<&'static Arc<FlightRecorder>> {
    GLOBAL.get()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Field;

    fn emit(rec: &FlightRecorder, trace_id: u64, name: &str, n: u64) {
        rec.record(&Event {
            level: Level::Info,
            name,
            trace_id,
            fields: &[Field::u64("n", n)],
        });
    }

    #[test]
    fn retains_last_capacity_events_in_order() {
        let rec = FlightRecorder::with_capacity(16);
        assert_eq!(rec.capacity(), 16);
        for i in 0..40u64 {
            emit(&rec, 1, "e", i);
        }
        let events = rec.dump(None, None);
        assert_eq!(events.len(), 16);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (24..40).collect::<Vec<u64>>());
        assert_eq!(rec.total_recorded(), 40);
        assert_eq!(rec.dropped(), 24);
        assert!(events.windows(2).all(|w| w[0].mono_us <= w[1].mono_us));
    }

    #[test]
    fn last_n_truncation_applies_after_trace_filter() {
        let rec = FlightRecorder::with_capacity(64);
        for i in 0..20u64 {
            emit(&rec, i % 2, "e", i);
        }
        let all_odd = rec.dump(Some(1), None);
        assert_eq!(all_odd.len(), 10);
        let last3 = rec.dump(Some(1), Some(3));
        assert_eq!(last3.len(), 3);
        assert_eq!(
            last3.iter().map(|e| e.seq).collect::<Vec<_>>(),
            all_odd[7..].iter().map(|e| e.seq).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_capacity_rounds_up_to_stripes() {
        let rec = FlightRecorder::with_capacity(1);
        assert_eq!(rec.capacity(), SHARDS);
        emit(&rec, 0, "e", 0);
        assert_eq!(rec.dump(None, None).len(), 1);
    }
}
