//! # plankton-telemetry
//!
//! The measurement substrate of the verifier: a process-global **metrics
//! registry** (counters, gauges, fixed-log-bucket histograms, rendered as
//! Prometheus-style text exposition) and lightweight **structured tracing**
//! (levelled events and spans tagged with a per-request trace id, written as
//! JSON lines to a pluggable sink).
//!
//! Like the other `crates/shims`-era infrastructure, this crate is built for
//! an offline environment: it depends on `std` only — no registry crates, no
//! macros-by-proc-macro, no global ceremony beyond two `OnceLock`s.
//!
//! Two properties the rest of the workspace relies on:
//!
//! * **Zero cost when disabled.** With no trace sink installed,
//!   [`trace::event`] is a single relaxed atomic load and an early return —
//!   no allocation, no formatting, no lock. Callers that need to format a
//!   field value first must guard with [`trace::enabled`]. Metrics are
//!   always on, but every instrument is a plain atomic the hot paths update
//!   at task/run granularity, never per model-checking step.
//! * **Deterministic exposition.** [`metrics::Registry::render`] orders
//!   families and series lexicographically, so equal registry contents
//!   render byte-identically — tests and scrapers can diff outputs.
//!
//! On top of those sit two post-hoc introspection surfaces (PR 8):
//!
//! * [`recorder`] — a fixed-capacity, lock-striped **flight recorder** ring
//!   that retains the last N events in memory even with no JSONL sink
//!   configured, dumpable by trace id after a failure already happened.
//! * [`taskstats`] — always-on **per-task cost attribution** keyed by an
//!   opaque (group × sub) identity (the verifier uses PEC × failure-set),
//!   accumulating runs / total / max duration / states / cache hits /
//!   panics in relaxed atomics, queryable as a top-K hottest-tasks table.

pub mod metrics;
pub mod recorder;
pub mod taskstats;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, Registry, Unit};
pub use recorder::{FlightRecorder, RecordedEvent};
pub use taskstats::{TaskCostRow, TaskCosts};
pub use trace::{Field, Level, Span};
