//! Per-task cost attribution: which (PEC × failure-set) tasks eat the time?
//!
//! A registry keyed by task identity — an opaque `(group, sub)` pair (the
//! verifier uses PEC id × a fingerprint of the failure set) — accumulating
//! run count, total and max duration, explored states, cache hits, and
//! panics. It is always on, like the metrics registry: the engine's task
//! path records once per *task* (not per model-checking step), and the
//! steady-state cost of a record is a sharded read-lock plus a handful of
//! relaxed atomic adds — no allocation, no write lock, nothing new on the
//! engine's per-step hot loop. The human-readable label (the failure-set
//! rendering) is built lazily, only the first time a key is seen.
//!
//! Queried as a top-K hottest-tasks table (`Top {k}` / `planktonctl top`).
//! Ordering is deterministic: total duration descending, then group
//! ascending, then label ascending — ties cannot reshuffle between polls.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Stripe count for the key → entry map.
const SHARDS: usize = 16;

/// Accumulated costs of one task identity. All counters are relaxed atomics;
/// writers never take a write lock once the entry exists.
#[derive(Debug, Default)]
pub struct TaskCost {
    runs: AtomicU64,
    total_micros: AtomicU64,
    max_micros: AtomicU64,
    states: AtomicU64,
    cache_hits: AtomicU64,
    panics: AtomicU64,
}

/// A point-in-time copy of one entry, labeled with its identity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskCostRow {
    /// The coarse identity component (PEC id for the verifier).
    pub group: u64,
    /// Human-readable sub-identity (the failure-set rendering).
    pub label: String,
    /// Completed executions.
    pub runs: u64,
    /// Total execution time, microseconds.
    pub total_micros: u64,
    /// Longest single execution, microseconds.
    pub max_micros: u64,
    /// Total states explored across executions.
    pub states: u64,
    /// Executions avoided entirely by the result cache.
    pub cache_hits: u64,
    /// Executions that panicked.
    pub panics: u64,
}

struct Shard {
    entries: HashMap<(u64, u64), Arc<Entry>>,
}

struct Entry {
    group: u64,
    label: String,
    cost: TaskCost,
}

/// The attribution registry: a lock-striped map of task identities to
/// atomic accumulators.
pub struct TaskCosts {
    shards: Vec<RwLock<Shard>>,
}

impl TaskCosts {
    /// An empty registry.
    pub fn new() -> Self {
        TaskCosts {
            shards: (0..SHARDS)
                .map(|_| {
                    RwLock::new(Shard {
                        entries: HashMap::new(),
                    })
                })
                .collect(),
        }
    }

    fn entry(&self, group: u64, sub: u64, label: impl FnOnce() -> String) -> Arc<Entry> {
        let shard = &self.shards[(group as usize ^ (sub as usize).rotate_left(7)) % SHARDS];
        {
            let guard = shard.read().expect("taskstats shard poisoned");
            if let Some(entry) = guard.entries.get(&(group, sub)) {
                return entry.clone();
            }
        }
        let mut guard = shard.write().expect("taskstats shard poisoned");
        guard
            .entries
            .entry((group, sub))
            .or_insert_with(|| {
                Arc::new(Entry {
                    group,
                    label: label(),
                    cost: TaskCost::default(),
                })
            })
            .clone()
    }

    /// Record one completed execution of the task `(group, sub)`.
    pub fn record_run(
        &self,
        group: u64,
        sub: u64,
        elapsed_micros: u64,
        states: u64,
        label: impl FnOnce() -> String,
    ) {
        let entry = self.entry(group, sub, label);
        entry.cost.runs.fetch_add(1, Ordering::Relaxed);
        entry
            .cost
            .total_micros
            .fetch_add(elapsed_micros, Ordering::Relaxed);
        entry
            .cost
            .max_micros
            .fetch_max(elapsed_micros, Ordering::Relaxed);
        entry.cost.states.fetch_add(states, Ordering::Relaxed);
    }

    /// Record one execution of `(group, sub)` avoided by the result cache.
    pub fn record_cache_hit(&self, group: u64, sub: u64, label: impl FnOnce() -> String) {
        let entry = self.entry(group, sub, label);
        entry.cost.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one panicked execution of `(group, sub)`.
    pub fn record_panic(&self, group: u64, sub: u64, label: impl FnOnce() -> String) {
        let entry = self.entry(group, sub, label);
        entry.cost.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// `(runs, total_micros, max_micros)` accumulated so far for one task,
    /// zeroes if never seen. Used to enrich `slow_task` warn events.
    pub fn totals(&self, group: u64, sub: u64) -> (u64, u64, u64) {
        let shard = &self.shards[(group as usize ^ (sub as usize).rotate_left(7)) % SHARDS];
        let guard = shard.read().expect("taskstats shard poisoned");
        match guard.entries.get(&(group, sub)) {
            Some(entry) => (
                entry.cost.runs.load(Ordering::Relaxed),
                entry.cost.total_micros.load(Ordering::Relaxed),
                entry.cost.max_micros.load(Ordering::Relaxed),
            ),
            None => (0, 0, 0),
        }
    }

    /// The `k` hottest tasks by total duration. Deterministic order:
    /// `total_micros` descending, then `group` ascending, then `label`
    /// ascending — equal durations always render in the same order.
    pub fn top(&self, k: usize) -> Vec<TaskCostRow> {
        let mut rows = self.snapshot();
        rows.sort_by(|a, b| {
            b.total_micros
                .cmp(&a.total_micros)
                .then(a.group.cmp(&b.group))
                .then(a.label.cmp(&b.label))
        });
        rows.truncate(k);
        rows
    }

    /// Every entry, unsorted.
    pub fn snapshot(&self) -> Vec<TaskCostRow> {
        let mut rows = Vec::new();
        for shard in &self.shards {
            let guard = shard.read().expect("taskstats shard poisoned");
            for entry in guard.entries.values() {
                rows.push(TaskCostRow {
                    group: entry.group,
                    label: entry.label.clone(),
                    runs: entry.cost.runs.load(Ordering::Relaxed),
                    total_micros: entry.cost.total_micros.load(Ordering::Relaxed),
                    max_micros: entry.cost.max_micros.load(Ordering::Relaxed),
                    states: entry.cost.states.load(Ordering::Relaxed),
                    cache_hits: entry.cost.cache_hits.load(Ordering::Relaxed),
                    panics: entry.cost.panics.load(Ordering::Relaxed),
                });
            }
        }
        rows
    }

    /// Sum of `total_micros` over every entry.
    pub fn total_micros(&self) -> u64 {
        self.snapshot().iter().map(|r| r.total_micros).sum()
    }
}

impl Default for TaskCosts {
    fn default() -> Self {
        TaskCosts::new()
    }
}

/// The process-global registry the verifier feeds.
pub fn global() -> &'static TaskCosts {
    static GLOBAL: OnceLock<TaskCosts> = OnceLock::new();
    GLOBAL.get_or_init(TaskCosts::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_runs_hits_and_panics() {
        let costs = TaskCosts::new();
        costs.record_run(3, 10, 100, 50, || "f{1}".to_string());
        costs.record_run(3, 10, 300, 70, || unreachable!("label built twice"));
        costs.record_cache_hit(3, 10, || unreachable!());
        costs.record_panic(3, 10, || unreachable!());
        let rows = costs.top(10);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!((row.group, row.label.as_str()), (3, "f{1}"));
        assert_eq!(row.runs, 2);
        assert_eq!(row.total_micros, 400);
        assert_eq!(row.max_micros, 300);
        assert_eq!(row.states, 120);
        assert_eq!(row.cache_hits, 1);
        assert_eq!(row.panics, 1);
        assert_eq!(costs.totals(3, 10), (2, 400, 300));
        assert_eq!(costs.totals(9, 9), (0, 0, 0));
    }

    #[test]
    fn top_k_orders_ties_deterministically() {
        let costs = TaskCosts::new();
        // Three tasks with identical totals, one colder task.
        costs.record_run(5, 1, 200, 0, || "f{}".to_string());
        costs.record_run(2, 7, 200, 0, || "f{b}".to_string());
        costs.record_run(2, 3, 200, 0, || "f{a}".to_string());
        costs.record_run(1, 1, 50, 0, || "f{}".to_string());
        let order: Vec<(u64, String)> = costs
            .top(10)
            .into_iter()
            .map(|r| (r.group, r.label))
            .collect();
        assert_eq!(
            order,
            vec![
                (2, "f{a}".to_string()),
                (2, "f{b}".to_string()),
                (5, "f{}".to_string()),
                (1, "f{}".to_string()),
            ]
        );
        // Stability: repeated queries agree, and truncation keeps the prefix.
        let again: Vec<(u64, String)> = costs
            .top(10)
            .into_iter()
            .map(|r| (r.group, r.label))
            .collect();
        assert_eq!(order, again);
        let top2: Vec<(u64, String)> = costs
            .top(2)
            .into_iter()
            .map(|r| (r.group, r.label))
            .collect();
        assert_eq!(&order[..2], &top2[..]);
    }
}
