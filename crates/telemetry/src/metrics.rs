//! The metrics registry: named counter/gauge/histogram families with
//! optional labels, rendered as Prometheus-style text exposition.
//!
//! Instruments are handed out as `Arc`s; call sites on hot paths cache the
//! handle in a `OnceLock` so steady-state updates are single atomic
//! operations with no registry lock. Histograms use one fixed log-scale
//! bucket ladder ([`BUCKET_BOUNDS`], powers of four) — latency metrics
//! observe **microseconds** and declare [`Unit::Micros`] so the exposition
//! renders bucket bounds and sums in seconds, per Prometheus convention.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (or track a high-water mark).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrement by `n` (saturating at zero).
    pub fn sub(&self, n: u64) {
        let mut current = self.value.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(n);
            match self.value.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Raise the value to at least `v` (high-water mark).
    pub fn record_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Histogram bucket upper bounds: powers of four, 1 through 4^13
/// (for [`Unit::Micros`] observations that is 1 µs up to ~67 s, which
/// brackets everything from one cache peek to a cold AS-scale verify).
/// A final implicit `+Inf` bucket catches the rest.
pub const BUCKET_BOUNDS: [u64; 14] = [
    1, 4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304, 16_777_216,
    67_108_864,
];

/// What a histogram's raw `u64` observations mean, for exposition rendering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Unit {
    /// Observations are microseconds; render bounds and sums as seconds.
    Micros,
    /// Observations are plain numbers; render them as-is.
    None,
}

/// A fixed-bucket histogram (non-cumulative buckets internally; the
/// exposition renders the Prometheus cumulative form).
#[derive(Debug)]
pub struct Histogram {
    /// One slot per bound plus the +Inf overflow slot.
    buckets: [AtomicU64; BUCKET_BOUNDS.len() + 1],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one observation. A value exactly on a bucket bound counts into
    /// that bound's bucket (`le` is inclusive).
    pub fn observe(&self, value: u64) {
        let idx = BUCKET_BOUNDS.partition_point(|&bound| bound < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values (in the histogram's raw unit).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Cumulative count of observations `<=` each bound, then the total
    /// (the `+Inf` entry) — the shape the exposition renders.
    pub fn cumulative(&self) -> [u64; BUCKET_BOUNDS.len() + 1] {
        let mut out = [0u64; BUCKET_BOUNDS.len() + 1];
        let mut running = 0;
        for (slot, bucket) in out.iter_mut().zip(self.buckets.iter()) {
            running += bucket.load(Ordering::Relaxed);
            *slot = running;
        }
        out
    }
}

/// One registered instrument.
#[derive(Clone, Debug)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn type_name(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

/// A metric family: one name/help/type, any number of labelled series.
#[derive(Debug)]
struct Family {
    help: &'static str,
    unit: Unit,
    /// Rendered label set (e.g. `kind="verify"`) → instrument. The empty
    /// string is the unlabelled series.
    series: BTreeMap<String, Instrument>,
}

/// A registry of metric families. One process-global instance serves the
/// whole verifier ([`global`]); tests build private ones.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

/// The process-global registry every subsystem registers into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

/// Render a label set deterministically: keys in the order given (callers
/// use a fixed order per metric; series of one family should agree).
fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// An unlabelled counter (registered on first use).
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// A labelled counter series.
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        match self.instrument(name, help, Unit::None, labels, || {
            Instrument::Counter(Arc::new(Counter::default()))
        }) {
            Instrument::Counter(c) => c,
            other => panic!("metric {name} is a {}, not a counter", other.type_name()),
        }
    }

    /// An unlabelled gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// A labelled gauge series.
    pub fn gauge_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Gauge> {
        match self.instrument(name, help, Unit::None, labels, || {
            Instrument::Gauge(Arc::new(Gauge::default()))
        }) {
            Instrument::Gauge(g) => g,
            other => panic!("metric {name} is a {}, not a gauge", other.type_name()),
        }
    }

    /// An unlabelled histogram observing values in `unit`.
    pub fn histogram(&self, name: &'static str, help: &'static str, unit: Unit) -> Arc<Histogram> {
        self.histogram_with(name, help, unit, &[])
    }

    /// A labelled histogram series.
    pub fn histogram_with(
        &self,
        name: &'static str,
        help: &'static str,
        unit: Unit,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.instrument(name, help, unit, labels, || {
            Instrument::Histogram(Arc::new(Histogram::default()))
        }) {
            Instrument::Histogram(h) => h,
            other => panic!("metric {name} is a {}, not a histogram", other.type_name()),
        }
    }

    fn instrument(
        &self,
        name: &'static str,
        help: &'static str,
        unit: Unit,
        labels: &[(&str, &str)],
        create: impl FnOnce() -> Instrument,
    ) -> Instrument {
        let mut families = self.families.lock().expect("metrics registry poisoned");
        let family = families.entry(name).or_insert_with(|| Family {
            help,
            unit,
            series: BTreeMap::new(),
        });
        family
            .series
            .entry(render_labels(labels))
            .or_insert_with(create)
            .clone()
    }

    /// Render the whole registry as Prometheus text exposition. Families and
    /// series are ordered lexicographically, so equal contents render
    /// byte-identically regardless of registration order.
    pub fn render(&self) -> String {
        let families = self.families.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for (name, family) in families.iter() {
            let type_name = family
                .series
                .values()
                .next()
                .map(Instrument::type_name)
                .unwrap_or("untyped");
            let _ = writeln!(out, "# HELP {name} {}", family.help);
            let _ = writeln!(out, "# TYPE {name} {type_name}");
            for (labels, instrument) in family.series.iter() {
                match instrument {
                    Instrument::Counter(c) => render_scalar(&mut out, name, labels, c.get()),
                    Instrument::Gauge(g) => render_scalar(&mut out, name, labels, g.get()),
                    Instrument::Histogram(h) => {
                        render_histogram(&mut out, name, labels, h, family.unit)
                    }
                }
            }
        }
        out
    }
}

fn render_scalar(out: &mut String, name: &str, labels: &str, value: u64) {
    if labels.is_empty() {
        let _ = writeln!(out, "{name} {value}");
    } else {
        let _ = writeln!(out, "{name}{{{labels}}} {value}");
    }
}

/// Render one bound in the family's unit: seconds (`0.000256`) for
/// [`Unit::Micros`], the raw integer otherwise.
fn render_bound(unit: Unit, bound: u64) -> String {
    match unit {
        Unit::Micros => format!("{}", bound as f64 / 1e6),
        Unit::None => format!("{bound}"),
    }
}

fn render_histogram(out: &mut String, name: &str, labels: &str, h: &Histogram, unit: Unit) {
    let sep = if labels.is_empty() { "" } else { "," };
    let cumulative = h.cumulative();
    for (i, &bound) in BUCKET_BOUNDS.iter().enumerate() {
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}{sep}le=\"{}\"}} {}",
            render_bound(unit, bound),
            cumulative[i]
        );
    }
    let _ = writeln!(
        out,
        "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}",
        cumulative[BUCKET_BOUNDS.len()]
    );
    let sum = match unit {
        Unit::Micros => format!("{:.6}", h.sum() as f64 / 1e6),
        Unit::None => format!("{}", h.sum()),
    };
    if labels.is_empty() {
        let _ = writeln!(out, "{name}_sum {sum}");
        let _ = writeln!(out, "{name}_count {}", h.count());
    } else {
        let _ = writeln!(out, "{name}_sum{{{labels}}} {sum}");
        let _ = writeln!(out, "{name}_count{{{labels}}} {}", h.count());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once_and_accumulate() {
        let registry = Registry::new();
        let a = registry.counter("plankton_test_total", "help");
        let b = registry.counter("plankton_test_total", "help");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4, "both handles alias one instrument");
        let g = registry.gauge("plankton_test_gauge", "help");
        g.set(10);
        g.sub(3);
        g.add(1);
        assert_eq!(g.get(), 8);
        g.sub(100);
        assert_eq!(g.get(), 0, "gauges saturate at zero");
        g.record_max(5);
        g.record_max(2);
        assert_eq!(g.get(), 5, "record_max keeps the high-water mark");
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive() {
        let h = Histogram::default();
        // A value exactly on a bound lands in that bound's bucket: after
        // observing 16, the cumulative count at le=16 includes it, and the
        // cumulative count at le=4 does not.
        h.observe(16);
        let cumulative = h.cumulative();
        let le4 = BUCKET_BOUNDS.iter().position(|&b| b == 4).unwrap();
        let le16 = BUCKET_BOUNDS.iter().position(|&b| b == 16).unwrap();
        assert_eq!(cumulative[le4], 0);
        assert_eq!(cumulative[le16], 1);
        // One past the bound spills into the next bucket.
        h.observe(17);
        let cumulative = h.cumulative();
        assert_eq!(cumulative[le16], 1);
        assert_eq!(cumulative[le16 + 1], 2);
        // Zero lands in the very first bucket; a huge value in +Inf only.
        h.observe(0);
        h.observe(u64::MAX);
        let cumulative = h.cumulative();
        assert_eq!(cumulative[0], 1);
        assert_eq!(cumulative[BUCKET_BOUNDS.len() - 1], 3);
        assert_eq!(cumulative[BUCKET_BOUNDS.len()], 4);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn exposition_is_deterministic_across_registration_order() {
        let render = |reversed: bool| {
            let registry = Registry::new();
            let names: &[(&str, &str)] = &[("kind", "verify"), ("kind", "apply_delta")];
            let order: Vec<_> = if reversed {
                names.iter().rev().collect()
            } else {
                names.iter().collect()
            };
            for (k, v) in order {
                registry
                    .counter_with("plankton_b_total", "b", &[(k, v)])
                    .inc();
            }
            registry.counter("plankton_a_total", "a").add(2);
            registry.render()
        };
        let forward = render(false);
        let backward = render(true);
        assert_eq!(forward, backward, "series order must not leak into output");
        // Families sorted by name, series by label value.
        let a_pos = forward.find("plankton_a_total 2").unwrap();
        let b_delta = forward
            .find("plankton_b_total{kind=\"apply_delta\"} 1")
            .unwrap();
        let b_verify = forward.find("plankton_b_total{kind=\"verify\"} 1").unwrap();
        assert!(a_pos < b_delta && b_delta < b_verify, "{forward}");
        assert!(forward.contains("# TYPE plankton_b_total counter"));
    }

    #[test]
    fn histogram_exposition_renders_micros_as_seconds() {
        let registry = Registry::new();
        let h = registry.histogram_with(
            "plankton_request_seconds",
            "latency",
            Unit::Micros,
            &[("kind", "verify")],
        );
        h.observe(256); // 256 µs, exactly on a bound
        h.observe(1_500_000); // 1.5 s
        let text = registry.render();
        assert!(
            text.contains("plankton_request_seconds_bucket{kind=\"verify\",le=\"0.000256\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("plankton_request_seconds_bucket{kind=\"verify\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("plankton_request_seconds_sum{kind=\"verify\"} 1.500256"),
            "{text}"
        );
        assert!(
            text.contains("plankton_request_seconds_count{kind=\"verify\"} 2"),
            "{text}"
        );
    }

    #[test]
    fn plain_unit_histogram_renders_integer_bounds() {
        let registry = Registry::new();
        let h = registry.histogram("plankton_depth", "depth", Unit::None);
        h.observe(5);
        let text = registry.render();
        assert!(
            text.contains("plankton_depth_bucket{le=\"16\"} 1"),
            "{text}"
        );
        assert!(text.contains("plankton_depth_sum 5"), "{text}");
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("plankton_mismatch", "help");
        registry.gauge("plankton_mismatch", "help");
    }
}
