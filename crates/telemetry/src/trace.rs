//! Structured tracing: levelled events and spans, tagged with a per-request
//! trace id, dispatched to pluggable sinks.
//!
//! The design center is the *disabled* case: with no sink installed,
//! [`event`] is one relaxed atomic load and a return. Nothing is allocated,
//! formatted, or locked — verified by the counting-allocator test in
//! `tests/overhead.rs`. Call sites that must format a field value (e.g. a
//! failure-set rendering) guard the formatting with [`enabled`].
//!
//! The trace id is carried in a thread local ([`scope`] installs one for the
//! duration of a request), so every event a request's handler emits — delta
//! application, key invalidation, task re-runs, report merge — shares the
//! request's id and the causal chain is reconstructable from the log with a
//! single `jq 'select(.trace == N)'`.

use std::cell::Cell;
use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Event severity. Ordered: `Trace < Debug < Info < Warn < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Finest-grained diagnostics.
    Trace = 0,
    /// Developer diagnostics.
    Debug = 1,
    /// Normal operational events.
    Info = 2,
    /// Something surprising but survivable.
    Warn = 3,
    /// Something went wrong.
    Error = 4,
}

impl Level {
    /// Lower-case name, as rendered into log lines.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parse a level name (`trace|debug|info|warn|error`).
    pub fn parse(s: &str) -> Option<Level> {
        Some(match s {
            "trace" => Level::Trace,
            "debug" => Level::Debug,
            "info" => Level::Info,
            "warn" => Level::Warn,
            "error" => Level::Error,
            _ => return None,
        })
    }
}

/// One key/value pair of an event. Values borrow — building a `&[Field]`
/// slice literal never allocates.
#[derive(Clone, Copy, Debug)]
pub struct Field<'a> {
    /// The field name.
    pub key: &'a str,
    /// The field value.
    pub value: FieldValue<'a>,
}

/// A borrowed field value.
#[derive(Clone, Copy, Debug)]
pub enum FieldValue<'a> {
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A borrowed string.
    Str(&'a str),
}

impl<'a> Field<'a> {
    /// An unsigned-integer field.
    pub fn u64(key: &'a str, value: u64) -> Self {
        Field {
            key,
            value: FieldValue::U64(value),
        }
    }

    /// A float field.
    pub fn f64(key: &'a str, value: f64) -> Self {
        Field {
            key,
            value: FieldValue::F64(value),
        }
    }

    /// A boolean field.
    pub fn bool(key: &'a str, value: bool) -> Self {
        Field {
            key,
            value: FieldValue::Bool(value),
        }
    }

    /// A string field.
    pub fn str(key: &'a str, value: &'a str) -> Self {
        Field {
            key,
            value: FieldValue::Str(value),
        }
    }
}

/// One structured event, borrowed for the duration of the dispatch.
#[derive(Debug)]
pub struct Event<'a> {
    /// Severity.
    pub level: Level,
    /// The event name (`request`, `delta_applied`, `keys_invalidated`, ...).
    pub name: &'a str,
    /// The trace id current on the emitting thread (0 = none).
    pub trace_id: u64,
    /// The event's fields.
    pub fields: &'a [Field<'a>],
}

/// Where events go. Implementations render the borrowed [`Event`] themselves
/// (JSON lines, pretty stderr, a counter in tests).
pub trait Sink: Send + Sync {
    /// Handle one event.
    fn emit(&self, event: &Event<'_>);

    /// Flush buffered events all the way to stable storage (fsync for file
    /// sinks). Called on graceful shutdown and on `Persist`; the default is a
    /// no-op for sinks with nothing durable behind them.
    fn sync(&self) {}
}

/// `5` is past `Level::Error`, so nothing is enabled.
const DISABLED: u8 = 5;

/// The cheapest possible gate: the minimum level any installed sink wants.
static MIN_LEVEL: AtomicU8 = AtomicU8::new(DISABLED);

static SINKS: RwLock<Vec<(Level, Arc<dyn Sink>)>> = RwLock::new(Vec::new());

/// Is any installed sink interested in `level`? Call sites that must
/// allocate to *build* an event (formatting a value into a `String`) should
/// check this first; plain `&[Field]` literals are free and need no guard.
#[inline]
pub fn enabled(level: Level) -> bool {
    level as u8 >= MIN_LEVEL.load(Ordering::Relaxed)
}

/// Install a sink receiving every event at `min_level` or above. Sinks
/// accumulate; [`clear_sinks`] removes them all.
pub fn add_sink(min_level: Level, sink: Arc<dyn Sink>) {
    let mut sinks = SINKS.write().expect("trace sink registry poisoned");
    sinks.push((min_level, sink));
    MIN_LEVEL.fetch_min(min_level as u8, Ordering::Relaxed);
}

/// Remove every sink and disable tracing (tests; a daemon installs sinks
/// once at startup and never removes them).
pub fn clear_sinks() {
    let mut sinks = SINKS.write().expect("trace sink registry poisoned");
    sinks.clear();
    MIN_LEVEL.store(DISABLED, Ordering::Relaxed);
}

/// Ask every installed sink to flush to stable storage (see [`Sink::sync`]).
/// The daemon calls this on graceful shutdown and on `Persist` so the tail of
/// a `--log-json` file survives even an immediate power cut.
pub fn sync_sinks() {
    let sinks = SINKS.read().expect("trace sink registry poisoned");
    for (_, sink) in sinks.iter() {
        sink.sync();
    }
}

/// Emit one event to every interested sink. With no sink installed this is
/// an atomic load and a return.
pub fn event(level: Level, name: &str, fields: &[Field<'_>]) {
    if !enabled(level) {
        return;
    }
    let event = Event {
        level,
        name,
        trace_id: current(),
        fields,
    };
    let sinks = SINKS.read().expect("trace sink registry poisoned");
    for (min_level, sink) in sinks.iter() {
        if level >= *min_level {
            sink.emit(&event);
        }
    }
}

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
}

/// Allocate a fresh process-unique trace id.
pub fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// The trace id current on this thread (0 = none).
pub fn current() -> u64 {
    CURRENT_TRACE.with(|c| c.get())
}

/// Install `trace_id` as this thread's current id for the guard's lifetime;
/// the previous id is restored on drop (scopes nest).
pub fn scope(trace_id: u64) -> ScopeGuard {
    let previous = CURRENT_TRACE.with(|c| c.replace(trace_id));
    ScopeGuard { previous }
}

/// Restores the previous trace id on drop. See [`scope`].
#[must_use = "dropping the guard immediately ends the trace scope"]
pub struct ScopeGuard {
    previous: u64,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let previous = self.previous;
        CURRENT_TRACE.with(|c| c.set(previous));
    }
}

/// A timed phase: emits one event named `name` with an `elapsed_us` field
/// when dropped (or closed). Free when tracing is disabled at creation.
pub struct Span {
    name: &'static str,
    level: Level,
    start: Option<Instant>,
}

/// Start a span. The event is emitted on drop, carrying the elapsed time.
pub fn span(level: Level, name: &'static str) -> Span {
    Span {
        name,
        level,
        start: enabled(level).then(Instant::now),
    }
}

impl Span {
    /// End the span now, attaching `extra` fields to the emitted event.
    pub fn close_with(mut self, extra: &[Field<'_>]) {
        if let Some(start) = self.start.take() {
            let mut fields = Vec::with_capacity(extra.len() + 1);
            fields.push(Field::u64("elapsed_us", start.elapsed().as_micros() as u64));
            fields.extend_from_slice(extra);
            event(self.level, self.name, &fields);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            event(
                self.level,
                self.name,
                &[Field::u64("elapsed_us", start.elapsed().as_micros() as u64)],
            );
        }
    }
}

/// Append a JSON string literal (with escaping) to `out`.
pub(crate) fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render one event as a JSONL line (no trailing newline):
/// `{"ts_us":...,"level":"info","trace":3,"event":"request","kind":"verify"}`.
pub fn render_json_line(event: &Event<'_>) -> String {
    let ts_us = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    let mut line = String::with_capacity(96);
    let _ = write!(
        line,
        "{{\"ts_us\":{ts_us},\"level\":\"{}\",\"trace\":{},\"event\":",
        event.level.as_str(),
        event.trace_id
    );
    write_json_string(&mut line, event.name);
    for field in event.fields {
        line.push(',');
        write_json_string(&mut line, field.key);
        line.push(':');
        match field.value {
            FieldValue::U64(v) => {
                let _ = write!(line, "{v}");
            }
            FieldValue::F64(v) => {
                let _ = write!(line, "{v}");
            }
            FieldValue::Bool(v) => {
                let _ = write!(line, "{v}");
            }
            FieldValue::Str(v) => write_json_string(&mut line, v),
        }
    }
    line.push('}');
    line
}

/// A sink writing one JSON line per event to any writer (a log file for
/// `planktond --log-json`, an in-memory buffer in tests). Lines are written
/// with a single `write_all` under a mutex and flushed immediately, so
/// concurrent connection threads never interleave and `tail -f` works.
pub struct JsonLinesSink {
    out: Mutex<JsonOut>,
}

/// The writer behind a [`JsonLinesSink`]. Files are kept as `File` (not
/// erased behind `dyn Write`) so [`Sink::sync`] can reach `sync_all`.
enum JsonOut {
    File(std::fs::File),
    Writer(Box<dyn io::Write + Send>),
}

impl JsonOut {
    fn as_write(&mut self) -> &mut dyn io::Write {
        match self {
            JsonOut::File(f) => f,
            JsonOut::Writer(w) => w.as_mut(),
        }
    }
}

impl JsonLinesSink {
    /// A sink appending to the file at `path` (created if absent).
    pub fn file(path: &Path) -> io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(JsonLinesSink {
            out: Mutex::new(JsonOut::File(file)),
        })
    }

    /// A sink over any writer.
    pub fn writer(out: Box<dyn io::Write + Send>) -> Self {
        JsonLinesSink {
            out: Mutex::new(JsonOut::Writer(out)),
        }
    }
}

impl Sink for JsonLinesSink {
    fn emit(&self, event: &Event<'_>) {
        let mut line = render_json_line(event);
        line.push('\n');
        let mut out = self.out.lock().expect("json sink poisoned");
        let out = out.as_write();
        let _ = out.write_all(line.as_bytes());
        let _ = out.flush();
    }

    fn sync(&self) {
        let mut out = self.out.lock().expect("json sink poisoned");
        let _ = out.as_write().flush();
        if let JsonOut::File(file) = &*out {
            let _ = file.sync_all();
        }
    }
}

/// A sink pretty-printing to stderr: `[warn] parse_error trace=7 byte_len=12`.
pub struct StderrSink;

impl Sink for StderrSink {
    fn emit(&self, event: &Event<'_>) {
        let mut line = String::with_capacity(64);
        let _ = write!(line, "[{}] {}", event.level.as_str(), event.name);
        if event.trace_id != 0 {
            let _ = write!(line, " trace={}", event.trace_id);
        }
        for field in event.fields {
            match field.value {
                FieldValue::U64(v) => {
                    let _ = write!(line, " {}={v}", field.key);
                }
                FieldValue::F64(v) => {
                    let _ = write!(line, " {}={v}", field.key);
                }
                FieldValue::Bool(v) => {
                    let _ = write!(line, " {}={v}", field.key);
                }
                FieldValue::Str(v) => {
                    let _ = write!(line, " {}={v:?}", field.key);
                }
            }
        }
        eprintln!("{line}");
    }
}

/// Install a JSONL file sink at `path` receiving everything (`Level::Trace`).
pub fn init_json_file(path: &Path) -> io::Result<()> {
    add_sink(Level::Trace, Arc::new(JsonLinesSink::file(path)?));
    Ok(())
}

/// Install a pretty stderr sink at `level`.
pub fn init_stderr(level: Level) {
    add_sink(level, Arc::new(StderrSink));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Trace < Level::Debug);
        assert!(Level::Warn < Level::Error);
        assert_eq!(Level::parse("warn"), Some(Level::Warn));
        assert_eq!(Level::parse("loud"), None);
        assert_eq!(Level::Info.as_str(), "info");
    }

    #[test]
    fn trace_scopes_nest_and_restore() {
        assert_eq!(current(), 0);
        let outer = next_trace_id();
        let inner = next_trace_id();
        assert_ne!(outer, inner);
        {
            let _outer_guard = scope(outer);
            assert_eq!(current(), outer);
            {
                let _inner_guard = scope(inner);
                assert_eq!(current(), inner);
            }
            assert_eq!(current(), outer);
        }
        assert_eq!(current(), 0);
    }

    #[test]
    fn json_line_rendering_escapes_and_types() {
        let fields = [
            Field::u64("n", 7),
            Field::str("quote", "a\"b\\c\nd"),
            Field::bool("ok", true),
            Field::f64("rate", 0.5),
        ];
        let event = Event {
            level: Level::Warn,
            name: "parse_error",
            trace_id: 42,
            fields: &fields,
        };
        let line = render_json_line(&event);
        assert!(line.contains("\"level\":\"warn\""), "{line}");
        assert!(line.contains("\"trace\":42"), "{line}");
        assert!(line.contains("\"event\":\"parse_error\""), "{line}");
        assert!(line.contains("\"n\":7"), "{line}");
        assert!(line.contains("\"quote\":\"a\\\"b\\\\c\\nd\""), "{line}");
        assert!(line.contains("\"ok\":true"), "{line}");
        assert!(line.contains("\"rate\":0.5"), "{line}");
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    }
}
