//! Generic weighted-graph algorithms over a [`Topology`].
//!
//! These are used throughout Plankton: the OSPF deterministic-node heuristic
//! runs a network-wide shortest-path computation (§4.1.2 of the paper), the
//! ARC baseline needs shortest-path DAGs and max-flow, and Bonsai-style
//! compression needs connectivity queries.

use crate::failure::FailureSet;
use crate::topology::{LinkId, NodeId, Topology};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Cost of an unreachable node in shortest-path results.
pub const INFINITY: u64 = u64::MAX;

/// Result of a single-source shortest-path computation.
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    /// The source of the computation.
    pub source: NodeId,
    /// dist[n] = cost of the best path from `source` to `n` (`INFINITY` if
    /// unreachable).
    pub dist: Vec<u64>,
    /// For every node, the set of predecessor nodes on *some* shortest path
    /// (supports equal-cost multipath).
    pub predecessors: Vec<Vec<NodeId>>,
}

impl ShortestPaths {
    /// Is `n` reachable from the source?
    pub fn reachable(&self, n: NodeId) -> bool {
        self.dist[n.index()] != INFINITY
    }

    /// Cost of the best path to `n`, or `None` if unreachable.
    pub fn cost(&self, n: NodeId) -> Option<u64> {
        let d = self.dist[n.index()];
        (d != INFINITY).then_some(d)
    }

    /// One shortest path from the source to `n` (source first), if reachable.
    pub fn path_to(&self, n: NodeId) -> Option<Vec<NodeId>> {
        if !self.reachable(n) {
            return None;
        }
        let mut path = vec![n];
        let mut cur = n;
        while cur != self.source {
            let pred = *self.predecessors[cur.index()].first()?;
            path.push(pred);
            cur = pred;
        }
        path.reverse();
        Some(path)
    }

    /// Nodes ordered by increasing distance from the source (unreachable
    /// nodes excluded). This is the execution order used by the OSPF
    /// deterministic-node heuristic.
    pub fn nodes_by_distance(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = (0..self.dist.len() as u32)
            .map(NodeId)
            .filter(|n| self.reachable(*n))
            .collect();
        nodes.sort_by_key(|n| (self.dist[n.index()], n.0));
        nodes
    }
}

/// Dijkstra single-source shortest paths over the topology, with a
/// per-(node, link) cost function and a set of failed links to skip.
///
/// `cost(from, link)` returns the cost of leaving `from` over `link`, or
/// `None` if the link may not be used in that direction (e.g. the protocol
/// is not enabled on it).
pub fn dijkstra<F>(
    topo: &Topology,
    source: NodeId,
    failures: &FailureSet,
    mut cost: F,
) -> ShortestPaths
where
    F: FnMut(NodeId, LinkId) -> Option<u64>,
{
    let n = topo.node_count();
    let mut dist = vec![INFINITY; n];
    let mut predecessors = vec![Vec::new(); n];
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    dist[source.index()] = 0;
    heap.push(Reverse((0, source.0)));

    while let Some(Reverse((d, u))) = heap.pop() {
        let u = NodeId(u);
        if d > dist[u.index()] {
            continue;
        }
        for &(v, link) in topo.neighbors(u) {
            if failures.contains(link) {
                continue;
            }
            let Some(w) = cost(u, link) else { continue };
            let nd = d.saturating_add(w);
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                predecessors[v.index()] = vec![u];
                heap.push(Reverse((nd, v.0)));
            } else if nd == dist[v.index()]
                && nd != INFINITY
                && !predecessors[v.index()].contains(&u)
            {
                predecessors[v.index()].push(u);
            }
        }
    }

    ShortestPaths {
        source,
        dist,
        predecessors,
    }
}

/// Breadth-first search reachability from `source`, skipping failed links.
pub fn reachable_from(topo: &Topology, source: NodeId, failures: &FailureSet) -> Vec<bool> {
    let mut seen = vec![false; topo.node_count()];
    let mut queue = std::collections::VecDeque::new();
    seen[source.index()] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &(v, link) in topo.neighbors(u) {
            if failures.contains(link) || seen[v.index()] {
                continue;
            }
            seen[v.index()] = true;
            queue.push_back(v);
        }
    }
    seen
}

/// Maximum number of edge-disjoint paths (unit-capacity max-flow) between
/// `source` and `sink`, skipping failed links.
///
/// The ARC baseline uses this to answer "is `sink` reachable from `source`
/// under any combination of at most `k` link failures": the answer is yes
/// iff the number of edge-disjoint paths exceeds `k` (Menger's theorem).
pub fn edge_disjoint_paths(
    topo: &Topology,
    source: NodeId,
    sink: NodeId,
    failures: &FailureSet,
) -> usize {
    if source == sink {
        return usize::MAX;
    }
    // Residual capacities per link per direction: cap[link][dir] with dir 0 =
    // a->b, 1 = b->a. Unit capacities on every live link.
    let m = topo.link_count();
    let mut cap = vec![[0u8; 2]; m];
    for l in topo.link_ids() {
        if !failures.contains(l) {
            cap[l.index()] = [1, 1];
        }
    }
    let mut flow = 0usize;
    loop {
        // BFS for an augmenting path.
        let mut parent: Vec<Option<(NodeId, LinkId, usize)>> = vec![None; topo.node_count()];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(source);
        let mut found = false;
        'bfs: while let Some(u) = queue.pop_front() {
            for &(v, link) in topo.neighbors(u) {
                if parent[v.index()].is_some() || v == source {
                    continue;
                }
                let link_ref = topo.link(link);
                let dir = if link_ref.a.node == u { 0 } else { 1 };
                if cap[link.index()][dir] == 0 {
                    continue;
                }
                parent[v.index()] = Some((u, link, dir));
                if v == sink {
                    found = true;
                    break 'bfs;
                }
                queue.push_back(v);
            }
        }
        if !found {
            break;
        }
        // Augment along the path.
        let mut cur = sink;
        while cur != source {
            let (prev, link, dir) = parent[cur.index()].expect("path must be complete");
            cap[link.index()][dir] -= 1;
            cap[link.index()][1 - dir] += 1;
            cur = prev;
        }
        flow += 1;
    }
    flow
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;

    fn diamond() -> (Topology, [NodeId; 4]) {
        // 0 - 1
        // |   |
        // 2 - 3    plus a direct 0-3 link
        let mut b = TopologyBuilder::new();
        let n0 = b.add_router("n0");
        let n1 = b.add_router("n1");
        let n2 = b.add_router("n2");
        let n3 = b.add_router("n3");
        b.add_link(n0, n1);
        b.add_link(n0, n2);
        b.add_link(n1, n3);
        b.add_link(n2, n3);
        b.add_link(n0, n3);
        (b.build(), [n0, n1, n2, n3])
    }

    #[test]
    fn dijkstra_unit_costs() {
        let (t, [n0, n1, n2, n3]) = diamond();
        let sp = dijkstra(&t, n0, &FailureSet::none(), |_, _| Some(1));
        assert_eq!(sp.cost(n0), Some(0));
        assert_eq!(sp.cost(n1), Some(1));
        assert_eq!(sp.cost(n2), Some(1));
        assert_eq!(sp.cost(n3), Some(1));
        let order = sp.nodes_by_distance();
        assert_eq!(order[0], n0);
    }

    #[test]
    fn dijkstra_weighted_prefers_cheap_path() {
        let (t, [n0, _n1, _n2, n3]) = diamond();
        // Make the direct 0-3 link expensive.
        let direct = t.link_between(n0, n3).unwrap();
        let sp = dijkstra(&t, n0, &FailureSet::none(), |_, l| {
            Some(if l == direct { 100 } else { 1 })
        });
        assert_eq!(sp.cost(n3), Some(2));
        let path = sp.path_to(n3).unwrap();
        assert_eq!(path.len(), 3);
        assert_eq!(path[0], n0);
        assert_eq!(path[2], n3);
    }

    #[test]
    fn dijkstra_ecmp_records_multiple_predecessors() {
        let (t, [n0, _n1, _n2, n3]) = diamond();
        let direct = t.link_between(n0, n3).unwrap();
        let sp = dijkstra(&t, n0, &FailureSet::none(), |_, l| {
            Some(if l == direct { 100 } else { 1 })
        });
        // Two equal-cost 2-hop paths to n3 (via n1 and via n2).
        assert_eq!(sp.predecessors[n3.index()].len(), 2);
    }

    #[test]
    fn dijkstra_respects_failures() {
        let (t, [n0, n1, n2, n3]) = diamond();
        let l01 = t.link_between(n0, n1).unwrap();
        let l03 = t.link_between(n0, n3).unwrap();
        let failures = FailureSet::from_links(vec![l01, l03]);
        let sp = dijkstra(&t, n0, &failures, |_, _| Some(1));
        assert_eq!(sp.cost(n1), Some(3)); // n0-n2-n3-n1
        assert_eq!(sp.cost(n2), Some(1));
    }

    #[test]
    fn dijkstra_unreachable_when_disconnected() {
        let mut b = TopologyBuilder::new();
        let a = b.add_router("a");
        let c = b.add_router("c");
        let t = b.build();
        let sp = dijkstra(&t, a, &FailureSet::none(), |_, _| Some(1));
        assert!(!sp.reachable(c));
        assert_eq!(sp.path_to(c), None);
    }

    #[test]
    fn dijkstra_cost_filter_excludes_links() {
        let (t, [n0, n1, _, _]) = diamond();
        // Disallow every link: only the source is reachable.
        let sp = dijkstra(&t, n0, &FailureSet::none(), |_, _| None);
        assert!(sp.reachable(n0));
        assert!(!sp.reachable(n1));
    }

    #[test]
    fn bfs_reachability() {
        let (t, [n0, _, _, n3]) = diamond();
        let seen = reachable_from(&t, n0, &FailureSet::none());
        assert!(seen.iter().all(|&s| s));
        let all_links: Vec<_> = t.neighbors(n3).iter().map(|&(_, l)| l).collect();
        let seen = reachable_from(&t, n0, &FailureSet::from_links(all_links));
        assert!(!seen[n3.index()]);
    }

    #[test]
    fn edge_disjoint_paths_diamond() {
        let (t, [n0, _, _, n3]) = diamond();
        // Three edge-disjoint paths from n0 to n3: via n1, via n2, direct.
        assert_eq!(edge_disjoint_paths(&t, n0, n3, &FailureSet::none()), 3);
        let direct = t.link_between(n0, n3).unwrap();
        assert_eq!(
            edge_disjoint_paths(&t, n0, n3, &FailureSet::from_links(vec![direct])),
            2
        );
    }

    #[test]
    fn edge_disjoint_paths_line() {
        let mut b = TopologyBuilder::new();
        let a = b.add_router("a");
        let m = b.add_router("m");
        let z = b.add_router("z");
        b.add_link(a, m);
        b.add_link(m, z);
        let t = b.build();
        assert_eq!(edge_disjoint_paths(&t, a, z, &FailureSet::none()), 1);
        assert_eq!(
            edge_disjoint_paths(&t, a, a, &FailureSet::none()),
            usize::MAX
        );
    }
}
