//! The device/link topology model.
//!
//! A [`Topology`] is an undirected multigraph of routers (and hosts) joined
//! by point-to-point links. Each endpoint of a link is an *interface* which
//! may carry an IPv4 address; routers additionally have a loopback address
//! used for iBGP peering and recursive routing.

use crate::ip::{Ipv4Addr, Prefix};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a device (router or host) in a [`Topology`].
///
/// Node ids are dense indices assigned in insertion order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index of this node, for indexing per-node vectors.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an undirected link in a [`Topology`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The index of this link, for indexing per-link vectors.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// The role of a device. Only routers participate in routing protocols;
/// hosts are traffic sources/sinks used by policies.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum NodeKind {
    /// A router running one or more routing protocols.
    Router,
    /// An end host (never forwards transit traffic).
    Host,
}

/// A device in the topology.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Node {
    /// Dense identifier.
    pub id: NodeId,
    /// Human-readable name (unique within a topology).
    pub name: String,
    /// Router or host.
    pub kind: NodeKind,
    /// Loopback address, if assigned. iBGP sessions peer between loopbacks
    /// and recursive static routes may point at them.
    pub loopback: Option<Ipv4Addr>,
}

/// A numbered interface address: a host IP together with the subnet length
/// of the link it sits on (e.g. `192.168.1.1/30`). Unlike [`Prefix`], the
/// host bits are preserved.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InterfaceAddr {
    /// The host address assigned to the interface.
    pub ip: Ipv4Addr,
    /// Subnet length of the connected link.
    pub prefix_len: u8,
}

impl InterfaceAddr {
    /// Construct an interface address.
    pub fn new(ip: Ipv4Addr, prefix_len: u8) -> Self {
        assert!(prefix_len <= 32);
        InterfaceAddr { ip, prefix_len }
    }

    /// The subnet this interface sits on (host bits masked away).
    pub fn subnet(&self) -> Prefix {
        Prefix::new(self.ip, self.prefix_len)
    }
}

/// One endpoint of a link.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Interface {
    /// The node owning this interface.
    pub node: NodeId,
    /// Interface address, if numbered.
    pub addr: Option<InterfaceAddr>,
}

/// An undirected point-to-point link between two interfaces.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Link {
    /// Dense identifier.
    pub id: LinkId,
    /// Endpoint A.
    pub a: Interface,
    /// Endpoint B.
    pub b: Interface,
}

impl Link {
    /// The node at the other end of the link from `n`.
    ///
    /// # Panics
    /// Panics if `n` is not an endpoint of this link.
    pub fn other(&self, n: NodeId) -> NodeId {
        if self.a.node == n {
            self.b.node
        } else if self.b.node == n {
            self.a.node
        } else {
            panic!("{n:?} is not an endpoint of {:?}", self.id)
        }
    }

    /// Does the link connect `n`?
    pub fn touches(&self, n: NodeId) -> bool {
        self.a.node == n || self.b.node == n
    }

    /// The interface of the link belonging to `n`, if any.
    pub fn interface_of(&self, n: NodeId) -> Option<&Interface> {
        if self.a.node == n {
            Some(&self.a)
        } else if self.b.node == n {
            Some(&self.b)
        } else {
            None
        }
    }

    /// The two endpoints as an ordered pair (lower node id first).
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        if self.a.node <= self.b.node {
            (self.a.node, self.b.node)
        } else {
            (self.b.node, self.a.node)
        }
    }
}

/// An immutable network topology.
///
/// Built with [`TopologyBuilder`]; once built, node and link ids are stable
/// dense indices which the rest of Plankton uses to index per-node state
/// vectors.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// adjacency[n] = list of (neighbor, link) pairs.
    adjacency: Vec<Vec<(NodeId, LinkId)>>,
    name_index: HashMap<String, NodeId>,
}

impl Topology {
    /// Number of devices.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// All devices, in id order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All links, in id order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterator over all link ids.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len() as u32).map(LinkId)
    }

    /// The device with id `n`.
    pub fn node(&self, n: NodeId) -> &Node {
        &self.nodes[n.index()]
    }

    /// The link with id `l`.
    pub fn link(&self, l: LinkId) -> &Link {
        &self.links[l.index()]
    }

    /// Look a device up by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.name_index.get(name).copied()
    }

    /// Neighbors of `n` as (neighbor, link) pairs (parallel links appear
    /// once per link).
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, LinkId)] {
        &self.adjacency[n.index()]
    }

    /// Degree of `n` (number of incident links).
    pub fn degree(&self, n: NodeId) -> usize {
        self.adjacency[n.index()].len()
    }

    /// The first link between `a` and `b`, if the nodes are adjacent.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.adjacency[a.index()]
            .iter()
            .find(|(nbr, _)| *nbr == b)
            .map(|(_, l)| *l)
    }

    /// All links between `a` and `b` (there may be parallel links).
    pub fn links_between(&self, a: NodeId, b: NodeId) -> Vec<LinkId> {
        self.adjacency[a.index()]
            .iter()
            .filter(|(nbr, _)| *nbr == b)
            .map(|(_, l)| *l)
            .collect()
    }

    /// The node whose loopback or interface address owns `addr`, if any.
    /// Loopbacks and interface host addresses are matched exactly; if no
    /// exact match exists, the first interface whose subnet contains `addr`
    /// is returned (used to resolve "next hop somewhere on this LAN").
    pub fn owner_of_address(&self, addr: Ipv4Addr) -> Option<NodeId> {
        for node in &self.nodes {
            if node.loopback == Some(addr) {
                return Some(node.id);
            }
        }
        for link in &self.links {
            for ifc in [&link.a, &link.b] {
                if let Some(a) = ifc.addr {
                    if a.ip == addr {
                        return Some(ifc.node);
                    }
                }
            }
        }
        // Fall back to subnet containment.
        for link in &self.links {
            for ifc in [&link.a, &link.b] {
                if let Some(a) = ifc.addr {
                    if a.subnet().contains(addr) {
                        return Some(ifc.node);
                    }
                }
            }
        }
        None
    }

    /// Is the (undirected) topology connected, ignoring the links in
    /// `failed`? Hosts are included.
    pub fn is_connected_without(&self, failed: &[LinkId]) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(n) = stack.pop() {
            for &(nbr, l) in self.neighbors(n) {
                if failed.contains(&l) || seen[nbr.index()] {
                    continue;
                }
                seen[nbr.index()] = true;
                count += 1;
                stack.push(nbr);
            }
        }
        count == self.nodes.len()
    }

    /// Is the topology connected?
    pub fn is_connected(&self) -> bool {
        self.is_connected_without(&[])
    }

    // -----------------------------------------------------------------
    // Growth — used by the incremental verification service's node/link
    // deltas. Existing node and link ids are never renumbered: additions
    // append, so per-node/per-link state vectors held elsewhere stay
    // index-compatible after extension.
    // -----------------------------------------------------------------

    /// Append a device of the given kind. Names must be unique.
    ///
    /// # Panics
    /// Panics if the name is already used.
    pub fn grow_node(&mut self, name: &str, kind: NodeKind) -> NodeId {
        assert!(
            !self.name_index.contains_key(name),
            "duplicate node name {name:?}"
        );
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            name: name.to_string(),
            kind,
            loopback: None,
        });
        self.adjacency.push(Vec::new());
        self.name_index.insert(name.to_string(), id);
        id
    }

    /// Append an unnumbered link between two existing nodes.
    ///
    /// # Panics
    /// Panics on unknown endpoints or self-loops.
    pub fn grow_link(&mut self, a: NodeId, b: NodeId) -> LinkId {
        assert!(a.index() < self.nodes.len(), "unknown node {a:?}");
        assert!(b.index() < self.nodes.len(), "unknown node {b:?}");
        assert_ne!(a, b, "self-loop links are not allowed");
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            id,
            a: Interface {
                node: a,
                addr: None,
            },
            b: Interface {
                node: b,
                addr: None,
            },
        });
        self.adjacency[a.index()].push((b, id));
        self.adjacency[b.index()].push((a, id));
        id
    }

    /// Assign (or replace) a node's loopback address.
    pub fn assign_loopback(&mut self, n: NodeId, addr: Ipv4Addr) {
        self.nodes[n.index()].loopback = Some(addr);
    }

    /// Connected components of the subgraph induced by the nodes satisfying
    /// `node_in` and the links satisfying `link_in` (a link is kept only when
    /// both its endpoints are in). Used by the scoped-invalidation layer to
    /// slice a protocol's speaker graph into independently-fingerprintable
    /// regions.
    pub fn subgraph_components(
        &self,
        node_in: impl Fn(NodeId) -> bool,
        link_in: impl Fn(&Link) -> bool,
    ) -> SubgraphComponents {
        let n = self.nodes.len();
        let mut comp = vec![u32::MAX; n];
        let mut keep_link = vec![false; self.links.len()];
        for link in &self.links {
            keep_link[link.id.index()] =
                node_in(link.a.node) && node_in(link.b.node) && link_in(link);
        }
        let mut members: Vec<Vec<NodeId>> = Vec::new();
        for start in 0..n {
            let node = NodeId(start as u32);
            if comp[start] != u32::MAX || !node_in(node) {
                continue;
            }
            let label = members.len() as u32;
            let mut found = vec![node];
            comp[start] = label;
            let mut stack = vec![node];
            while let Some(u) = stack.pop() {
                for &(nbr, l) in self.neighbors(u) {
                    if keep_link[l.index()] && comp[nbr.index()] == u32::MAX {
                        comp[nbr.index()] = label;
                        found.push(nbr);
                        stack.push(nbr);
                    }
                }
            }
            found.sort();
            members.push(found);
        }
        let mut link_comp = vec![u32::MAX; self.links.len()];
        let mut links: Vec<Vec<LinkId>> = vec![Vec::new(); members.len()];
        for link in &self.links {
            if keep_link[link.id.index()] {
                let c = comp[link.a.node.index()];
                link_comp[link.id.index()] = c;
                links[c as usize].push(link.id);
            }
        }
        SubgraphComponents {
            comp,
            link_comp,
            members,
            links,
        }
    }
}

/// The connected components of a filtered subgraph of a [`Topology`],
/// computed by [`Topology::subgraph_components`].
///
/// This is the reachability substrate of scoped invalidation: the region a
/// verification task can read under a *failure budget* is the union of its
/// seed nodes' components in the **un-failed** subgraph — exploring failures
/// only removes links, so the reachable set under any concrete failure
/// choice is contained in (and the union over every choice equals) the
/// seeds' full components. The budget therefore never has to be enumerated
/// here; per-failure-set refinement happens in the cost layer on top.
#[derive(Clone, Debug)]
pub struct SubgraphComponents {
    /// `comp[n]` = component label of node `n`, `u32::MAX` outside.
    comp: Vec<u32>,
    /// `link_comp[l]` = component label of kept link `l`, `u32::MAX` for
    /// dropped links.
    link_comp: Vec<u32>,
    /// Per component, its member nodes in ascending id order.
    members: Vec<Vec<NodeId>>,
    /// Per component, its kept links in ascending id order.
    links: Vec<Vec<LinkId>>,
}

impl SubgraphComponents {
    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.members.len()
    }

    /// The component of `n`, or `None` when `n` is outside the subgraph.
    pub fn component_of(&self, n: NodeId) -> Option<usize> {
        match self.comp.get(n.index()) {
            Some(&c) if c != u32::MAX => Some(c as usize),
            _ => None,
        }
    }

    /// The component of link `l`, or `None` when the link was filtered out.
    pub fn component_of_link(&self, l: LinkId) -> Option<usize> {
        match self.link_comp.get(l.index()) {
            Some(&c) if c != u32::MAX => Some(c as usize),
            _ => None,
        }
    }

    /// Member nodes of component `c`, ascending.
    pub fn members(&self, c: usize) -> &[NodeId] {
        &self.members[c]
    }

    /// Kept links of component `c`, ascending.
    pub fn links(&self, c: usize) -> &[LinkId] {
        &self.links[c]
    }

    /// The components reachable from `seeds` under *any* failure budget
    /// (sorted, deduplicated), or `None` when some seed lies outside the
    /// subgraph — the caller cannot scope soundly and must fall back to a
    /// global view. Failures only remove links, so the seeds' components in
    /// the un-failed subgraph bound everything any failure choice can reach.
    pub fn reachable_components(&self, seeds: &[NodeId]) -> Option<Vec<usize>> {
        let mut out = Vec::with_capacity(seeds.len());
        for &s in seeds {
            out.push(self.component_of(s)?);
        }
        out.sort_unstable();
        out.dedup();
        Some(out)
    }
}

/// Incremental builder for [`Topology`].
///
/// ```
/// use plankton_net::topology::{TopologyBuilder, NodeKind};
/// let mut b = TopologyBuilder::new();
/// let r0 = b.add_router("r0");
/// let r1 = b.add_router("r1");
/// b.add_link(r0, r1);
/// let topo = b.build();
/// assert_eq!(topo.node_count(), 2);
/// assert!(topo.link_between(r0, r1).is_some());
/// assert_eq!(topo.node(r0).kind, NodeKind::Router);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TopologyBuilder {
    nodes: Vec<Node>,
    links: Vec<Link>,
    name_index: HashMap<String, NodeId>,
}

impl TopologyBuilder {
    /// A new, empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a device of the given kind. Names must be unique.
    ///
    /// # Panics
    /// Panics if the name is already used.
    pub fn add_node(&mut self, name: &str, kind: NodeKind) -> NodeId {
        assert!(
            !self.name_index.contains_key(name),
            "duplicate node name {name:?}"
        );
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            name: name.to_string(),
            kind,
            loopback: None,
        });
        self.name_index.insert(name.to_string(), id);
        id
    }

    /// Add a router.
    pub fn add_router(&mut self, name: &str) -> NodeId {
        self.add_node(name, NodeKind::Router)
    }

    /// Add a host.
    pub fn add_host(&mut self, name: &str) -> NodeId {
        self.add_node(name, NodeKind::Host)
    }

    /// Assign a loopback address to a node.
    pub fn set_loopback(&mut self, n: NodeId, addr: Ipv4Addr) -> &mut Self {
        self.nodes[n.index()].loopback = Some(addr);
        self
    }

    /// Add an unnumbered link between two nodes.
    pub fn add_link(&mut self, a: NodeId, b: NodeId) -> LinkId {
        self.add_link_addressed(a, None, b, None)
    }

    /// Add a link with optional interface addresses on each end.
    pub fn add_link_addressed(
        &mut self,
        a: NodeId,
        a_addr: Option<InterfaceAddr>,
        b: NodeId,
        b_addr: Option<InterfaceAddr>,
    ) -> LinkId {
        assert!(a.index() < self.nodes.len(), "unknown node {a:?}");
        assert!(b.index() < self.nodes.len(), "unknown node {b:?}");
        assert_ne!(a, b, "self-loop links are not allowed");
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            id,
            a: Interface {
                node: a,
                addr: a_addr,
            },
            b: Interface {
                node: b,
                addr: b_addr,
            },
        });
        id
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Finalize into an immutable [`Topology`].
    pub fn build(self) -> Topology {
        let mut adjacency = vec![Vec::new(); self.nodes.len()];
        for link in &self.links {
            adjacency[link.a.node.index()].push((link.b.node, link.id));
            adjacency[link.b.node.index()].push((link.a.node, link.id));
        }
        Topology {
            nodes: self.nodes,
            links: self.links,
            adjacency,
            name_index: self.name_index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Topology, NodeId, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router("r0");
        let r1 = b.add_router("r1");
        let r2 = b.add_router("r2");
        b.add_link(r0, r1);
        b.add_link(r1, r2);
        b.add_link(r2, r0);
        (b.build(), r0, r1, r2)
    }

    #[test]
    fn build_triangle() {
        let (t, r0, r1, r2) = triangle();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.link_count(), 3);
        assert_eq!(t.degree(r0), 2);
        assert!(t.link_between(r0, r1).is_some());
        assert!(t.link_between(r1, r0).is_some());
        assert_eq!(t.node_by_name("r2"), Some(r2));
        assert_eq!(t.node_by_name("nope"), None);
        assert!(t.is_connected());
    }

    #[test]
    fn link_other_and_touches() {
        let (t, r0, r1, r2) = triangle();
        let l = t.link_between(r0, r1).unwrap();
        let link = t.link(l);
        assert_eq!(link.other(r0), r1);
        assert_eq!(link.other(r1), r0);
        assert!(link.touches(r0));
        assert!(!link.touches(r2));
        assert!(link.interface_of(r2).is_none());
    }

    #[test]
    #[should_panic]
    fn link_other_panics_for_non_endpoint() {
        let (t, r0, r1, r2) = triangle();
        let l = t.link_between(r0, r1).unwrap();
        t.link(l).other(r2);
    }

    #[test]
    #[should_panic]
    fn duplicate_names_rejected() {
        let mut b = TopologyBuilder::new();
        b.add_router("r0");
        b.add_router("r0");
    }

    #[test]
    #[should_panic]
    fn self_loops_rejected() {
        let mut b = TopologyBuilder::new();
        let r0 = b.add_router("r0");
        b.add_link(r0, r0);
    }

    #[test]
    fn connectivity_under_failures() {
        let (t, r0, r1, r2) = triangle();
        let l01 = t.link_between(r0, r1).unwrap();
        let l12 = t.link_between(r1, r2).unwrap();
        assert!(t.is_connected_without(&[l01]));
        assert!(!t.is_connected_without(&[l01, l12]));
    }

    #[test]
    fn parallel_links() {
        let mut b = TopologyBuilder::new();
        let a = b.add_router("a");
        let c = b.add_router("c");
        b.add_link(a, c);
        b.add_link(a, c);
        let t = b.build();
        assert_eq!(t.links_between(a, c).len(), 2);
        assert_eq!(t.degree(a), 2);
    }

    #[test]
    fn loopback_and_address_ownership() {
        let mut b = TopologyBuilder::new();
        let a = b.add_router("a");
        let c = b.add_router("c");
        b.set_loopback(a, Ipv4Addr::new(10, 0, 0, 1));
        b.add_link_addressed(
            a,
            Some(InterfaceAddr::new(Ipv4Addr::new(192, 168, 1, 1), 30)),
            c,
            Some(InterfaceAddr::new(Ipv4Addr::new(192, 168, 1, 2), 30)),
        );
        let t = b.build();
        assert_eq!(t.owner_of_address(Ipv4Addr::new(10, 0, 0, 1)), Some(a));
        assert_eq!(t.owner_of_address(Ipv4Addr::new(192, 168, 1, 2)), Some(c));
        assert_eq!(t.owner_of_address(Ipv4Addr::new(8, 8, 8, 8)), None);
    }

    #[test]
    fn subgraph_components_split_and_filter() {
        // Two triangles joined by a bridge link; hosts excluded.
        let mut b = TopologyBuilder::new();
        let r: Vec<NodeId> = (0..6).map(|i| b.add_router(&format!("r{i}"))).collect();
        let h = b.add_host("h");
        for (x, y) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.add_link(r[x], r[y]);
        }
        let bridge = b.add_link(r[2], r[3]);
        b.add_link(r[0], h);
        let t = b.build();

        // Without the bridge, routers form two components; the host is out.
        let sc = t.subgraph_components(|n| t.node(n).kind == NodeKind::Router, |l| l.id != bridge);
        assert_eq!(sc.component_count(), 2);
        assert_eq!(sc.members(0), &r[0..3]);
        assert_eq!(sc.members(1), &r[3..6]);
        assert_eq!(sc.component_of(h), None);
        assert_eq!(sc.component_of_link(bridge), None);
        assert_eq!(sc.links(0).len(), 3);
        assert_eq!(sc.reachable_components(&[r[0], r[1]]), Some(vec![0]));
        assert_eq!(sc.reachable_components(&[r[0], r[5]]), Some(vec![0, 1]));
        assert_eq!(sc.reachable_components(&[r[0], h]), None);

        // With the bridge, one component holding all seven router links.
        let sc = t.subgraph_components(|n| t.node(n).kind == NodeKind::Router, |_| true);
        assert_eq!(sc.component_count(), 1);
        assert_eq!(sc.members(0).len(), 6);
        assert_eq!(sc.links(0).len(), 7);
        assert_eq!(sc.component_of_link(bridge), Some(0));
    }

    #[test]
    fn hosts_vs_routers() {
        let mut b = TopologyBuilder::new();
        let r = b.add_router("r");
        let h = b.add_host("h");
        b.add_link(r, h);
        let t = b.build();
        assert_eq!(t.node(r).kind, NodeKind::Router);
        assert_eq!(t.node(h).kind, NodeKind::Host);
    }
}
