//! Synthetic ISP (AS) topology generator.
//!
//! The paper evaluates on six RocketFuel-measured AS topologies (AS 1221,
//! 1239, 1755, 3257, 3967, 6461) with their inferred OSPF link weights. The
//! measured topologies are not redistributable, so this module generates
//! *synthetic* ISP topologies with the same router counts and a similar
//! two-tier structure: a densely connected backbone plus access routers
//! multihomed to the backbone, with heterogeneous link weights. This
//! preserves what the experiments exercise — many destination prefixes, many
//! alternative weighted paths, and meaningful single-link failures — without
//! the original data.

use crate::ip::{Ipv4Addr, Prefix};
use crate::topology::{NodeId, Topology, TopologyBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for the synthetic AS generator.
#[derive(Clone, Debug)]
pub struct AsTopologySpec {
    /// A label for reporting (e.g. "AS1221").
    pub name: String,
    /// Total number of routers.
    pub routers: usize,
    /// Fraction of routers that form the backbone (clamped to at least 3).
    pub backbone_fraction: f64,
    /// Average number of backbone attachments per access router.
    pub access_multihoming: usize,
    /// RNG seed so experiments are reproducible.
    pub seed: u64,
}

impl AsTopologySpec {
    /// A spec named after one of the paper's RocketFuel ASes, at the same
    /// router count used in Figure 7(g) where reported (AS 1221 = 108
    /// routers, AS 1755 = 87) and at RocketFuel's published reduced sizes
    /// for the others.
    pub fn paper_as(asn: u32) -> AsTopologySpec {
        let (routers, seed) = match asn {
            1221 => (108, 1221),
            1239 => (315, 1239),
            1755 => (87, 1755),
            3257 => (161, 3257),
            3967 => (79, 3967),
            6461 => (141, 6461),
            other => (100 + (other % 100) as usize, other as u64),
        };
        AsTopologySpec {
            name: format!("AS{asn}"),
            routers,
            backbone_fraction: 0.25,
            access_multihoming: 2,
            seed,
        }
    }

    /// The six ASes used in the paper's Figures 7(d), 7(e) and 7(g).
    pub fn paper_set() -> Vec<AsTopologySpec> {
        [1221u32, 1239, 1755, 3257, 3967, 6461]
            .iter()
            .map(|&a| AsTopologySpec::paper_as(a))
            .collect()
    }

    /// A scale spec past the paper's largest measured AS (315 routers):
    /// `routers` routers with the same two-tier backbone/access structure,
    /// for the AS-scale benchmark tier. Deterministic per router count.
    pub fn scale(routers: usize) -> AsTopologySpec {
        AsTopologySpec {
            name: format!("ISP-{routers}"),
            routers,
            backbone_fraction: 0.25,
            access_multihoming: 2,
            seed: 0x5CA1E | routers as u64,
        }
    }
}

/// A generated ISP topology.
#[derive(Clone, Debug)]
pub struct AsTopology {
    /// Label from the spec.
    pub name: String,
    /// The router-level topology.
    pub topology: Topology,
    /// Backbone routers.
    pub backbone: Vec<NodeId>,
    /// Access (edge) routers.
    pub access: Vec<NodeId>,
    /// OSPF link weights, indexed by link id.
    pub link_weights: Vec<u32>,
    /// The customer prefix originated by each access router (parallel to
    /// `access`).
    pub access_prefixes: Vec<Prefix>,
}

impl AsTopology {
    /// The OSPF weight of a link.
    pub fn weight(&self, link: crate::topology::LinkId) -> u32 {
        self.link_weights[link.index()]
    }

    /// All destination prefixes originated in this AS.
    pub fn all_prefixes(&self) -> Vec<Prefix> {
        self.access_prefixes.clone()
    }

    /// An ingress router with more than one incident link (as the paper's
    /// Figure 7(d) experiment requires). Deterministic for a given topology.
    pub fn multi_homed_ingress(&self) -> NodeId {
        self.access
            .iter()
            .chain(self.backbone.iter())
            .copied()
            .find(|&n| self.topology.degree(n) > 1)
            .expect("every generated AS has a multi-homed router")
    }
}

/// Generate a synthetic ISP topology from a spec.
pub fn as_topology(spec: &AsTopologySpec) -> AsTopology {
    assert!(spec.routers >= 5, "AS topologies need at least 5 routers");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut b = TopologyBuilder::new();

    let backbone_count = ((spec.routers as f64 * spec.backbone_fraction) as usize).max(3);
    let access_count = spec.routers - backbone_count;

    let backbone: Vec<NodeId> = (0..backbone_count)
        .map(|i| b.add_router(&format!("{}-bb{i}", spec.name)))
        .collect();
    let access: Vec<NodeId> = (0..access_count)
        .map(|i| b.add_router(&format!("{}-ar{i}", spec.name)))
        .collect();
    for (i, &n) in backbone.iter().chain(access.iter()).enumerate() {
        b.set_loopback(
            n,
            Ipv4Addr::new(172, 30, (i / 250) as u8, (i % 250 + 1) as u8),
        );
    }

    let mut link_weights = Vec::new();

    // Backbone: a ring for 2-connectivity plus random chords (~degree 4).
    for i in 0..backbone_count {
        b.add_link(backbone[i], backbone[(i + 1) % backbone_count]);
        link_weights.push(rng.gen_range(1..=10));
    }
    let chords = backbone_count; // roughly one extra chord per backbone router
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < chords && attempts < chords * 20 {
        attempts += 1;
        let i = rng.gen_range(0..backbone_count);
        let j = rng.gen_range(0..backbone_count);
        if i == j {
            continue;
        }
        // Avoid duplicating ring edges; parallel chords are fine to skip too.
        let (lo, hi) = (i.min(j), i.max(j));
        if hi - lo == 1 || (lo == 0 && hi == backbone_count - 1) {
            continue;
        }
        b.add_link(backbone[i], backbone[j]);
        link_weights.push(rng.gen_range(1..=10));
        added += 1;
    }

    // Access routers: multihomed to `access_multihoming` distinct backbone
    // routers (at least one).
    let mut access_prefixes = Vec::with_capacity(access_count);
    for (idx, &ar) in access.iter().enumerate() {
        let homes = spec.access_multihoming.max(1).min(backbone_count);
        let mut chosen = Vec::new();
        while chosen.len() < homes {
            let bb = backbone[rng.gen_range(0..backbone_count)];
            if !chosen.contains(&bb) {
                chosen.push(bb);
            }
        }
        for bb in chosen {
            b.add_link(ar, bb);
            link_weights.push(rng.gen_range(1..=20));
        }
        let hi = (idx / 250) as u8;
        let lo = (idx % 250) as u8;
        access_prefixes.push(Prefix::new(Ipv4Addr::new(20, hi, lo, 0), 24));
    }

    let topology = b.build();
    debug_assert_eq!(link_weights.len(), topology.link_count());

    AsTopology {
        name: spec.name.clone(),
        topology,
        backbone,
        access,
        link_weights,
        access_prefixes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn paper_as_sizes() {
        let t = as_topology(&AsTopologySpec::paper_as(1221));
        assert_eq!(t.topology.node_count(), 108);
        let t = as_topology(&AsTopologySpec::paper_as(1755));
        assert_eq!(t.topology.node_count(), 87);
    }

    #[test]
    fn generated_as_is_connected() {
        for spec in AsTopologySpec::paper_set() {
            let t = as_topology(&spec);
            assert!(t.topology.is_connected(), "{} disconnected", t.name);
            assert_eq!(t.link_weights.len(), t.topology.link_count());
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = as_topology(&AsTopologySpec::paper_as(3967));
        let b = as_topology(&AsTopologySpec::paper_as(3967));
        assert_eq!(a.topology.node_count(), b.topology.node_count());
        assert_eq!(a.topology.link_count(), b.topology.link_count());
        assert_eq!(a.link_weights, b.link_weights);
    }

    #[test]
    fn access_prefixes_unique_and_weighted() {
        let t = as_topology(&AsTopologySpec::paper_as(6461));
        let set: HashSet<_> = t.access_prefixes.iter().collect();
        assert_eq!(set.len(), t.access_prefixes.len());
        assert!(t.link_weights.iter().all(|&w| w >= 1));
    }

    #[test]
    fn multi_homed_ingress_has_degree_over_one() {
        let t = as_topology(&AsTopologySpec::paper_as(1221));
        assert!(t.topology.degree(t.multi_homed_ingress()) > 1);
    }

    #[test]
    fn access_routers_are_multihomed() {
        let t = as_topology(&AsTopologySpec::paper_as(1221));
        for &ar in &t.access {
            assert!(t.topology.degree(ar) >= 2, "access router not multihomed");
        }
    }

    #[test]
    fn scale_spec_generates_connected_thousand_router_as() {
        let t = as_topology(&AsTopologySpec::scale(1000));
        assert_eq!(t.topology.node_count(), 1000);
        assert!(t.topology.is_connected(), "scale AS disconnected");
        assert_eq!(t.link_weights.len(), t.topology.link_count());
    }
}
