//! Synthetic enterprise/campus network generator.
//!
//! Figures 7(h) and 7(i) of the paper verify ten real-world configurations
//! from three organizations (plus the Stanford backbone dataset). Those
//! configurations are not publicly redistributable, so this generator
//! produces campus-style networks at the same device counts: a small core,
//! a distribution tier, and access routers, with one or more exit routers.
//! The higher-level scenario builders then layer the features the paper
//! highlights (recursive static routes, iBGP over OSPF) on top of these
//! topologies.

use crate::ip::{Ipv4Addr, Prefix};
use crate::topology::{NodeId, Topology, TopologyBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for the enterprise generator.
#[derive(Clone, Debug)]
pub struct EnterpriseSpec {
    /// A label for reporting ("I", "II", ..., "Stanford").
    pub name: String,
    /// Total number of routers (≥ 2).
    pub routers: usize,
    /// RNG seed.
    pub seed: u64,
}

impl EnterpriseSpec {
    /// The ten networks of Figure 7(h), with the device counts from the
    /// paper: I(52), II(63), III(71), IV(63), V(36), VI(2), VII(30),
    /// VIII(30), IX(3) and a Stanford-backbone-sized network (16 routers).
    pub fn paper_set() -> Vec<EnterpriseSpec> {
        let sizes: [(&str, usize); 10] = [
            ("I", 52),
            ("II", 63),
            ("III", 71),
            ("IV", 63),
            ("V", 36),
            ("VI", 2),
            ("VII", 30),
            ("VIII", 30),
            ("IX", 3),
            ("Stanford", 16),
        ];
        sizes
            .iter()
            .enumerate()
            .map(|(i, (name, n))| EnterpriseSpec {
                name: name.to_string(),
                routers: *n,
                seed: 7000 + i as u64,
            })
            .collect()
    }
}

/// A generated enterprise network.
#[derive(Clone, Debug)]
pub struct EnterpriseNetwork {
    /// Label from the spec.
    pub name: String,
    /// Router-level topology.
    pub topology: Topology,
    /// Core routers (2 for networks with ≥ 6 routers, otherwise 1).
    pub core: Vec<NodeId>,
    /// Distribution routers.
    pub distribution: Vec<NodeId>,
    /// Access routers.
    pub access: Vec<NodeId>,
    /// OSPF link weights, indexed by link id.
    pub link_weights: Vec<u32>,
    /// Subnet prefix originated by each access router (parallel to `access`).
    pub access_prefixes: Vec<Prefix>,
    /// The exit/border routers (subset of `core`) that default routes and
    /// iBGP sessions hang off.
    pub exits: Vec<NodeId>,
}

/// Generate an enterprise network from a spec.
pub fn enterprise_network(spec: &EnterpriseSpec) -> EnterpriseNetwork {
    assert!(
        spec.routers >= 2,
        "enterprise networks need at least 2 routers"
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut b = TopologyBuilder::new();
    let mut link_weights: Vec<u32> = Vec::new();

    let n = spec.routers;
    // Tiny networks (the paper has 2- and 3-router ones) are just a chain.
    if n <= 4 {
        let routers: Vec<NodeId> = (0..n)
            .map(|i| b.add_router(&format!("{}-r{i}", spec.name)))
            .collect();
        for (i, &r) in routers.iter().enumerate() {
            b.set_loopback(r, Ipv4Addr::new(172, 31, 0, (i + 1) as u8));
        }
        for w in routers.windows(2) {
            b.add_link(w[0], w[1]);
            link_weights.push(1);
        }
        let access_prefixes: Vec<Prefix> = routers
            .iter()
            .enumerate()
            .map(|(i, _)| Prefix::new(Ipv4Addr::new(10, 200, i as u8, 0), 24))
            .collect();
        let topology = b.build();
        return EnterpriseNetwork {
            name: spec.name.clone(),
            core: vec![routers[0]],
            exits: vec![routers[0]],
            distribution: Vec::new(),
            access: routers.clone(),
            access_prefixes,
            link_weights,
            topology,
        };
    }

    let core_count = 2usize;
    let dist_count = ((n - core_count) / 4).max(1);
    let access_count = n - core_count - dist_count;

    let core: Vec<NodeId> = (0..core_count)
        .map(|i| b.add_router(&format!("{}-core{i}", spec.name)))
        .collect();
    let distribution: Vec<NodeId> = (0..dist_count)
        .map(|i| b.add_router(&format!("{}-dist{i}", spec.name)))
        .collect();
    let access: Vec<NodeId> = (0..access_count)
        .map(|i| b.add_router(&format!("{}-acc{i}", spec.name)))
        .collect();
    for (i, &r) in core
        .iter()
        .chain(distribution.iter())
        .chain(access.iter())
        .enumerate()
    {
        b.set_loopback(
            r,
            Ipv4Addr::new(172, 31, (i / 250) as u8, (i % 250 + 1) as u8),
        );
    }

    // Core pair interconnect.
    b.add_link(core[0], core[1]);
    link_weights.push(1);

    // Every distribution router dual-homed to both cores.
    for &d in &distribution {
        for &c in &core {
            b.add_link(d, c);
            link_weights.push(rng.gen_range(1..=5));
        }
    }

    // Access routers attach to one or two distribution routers.
    let mut access_prefixes = Vec::with_capacity(access_count);
    for (idx, &a) in access.iter().enumerate() {
        let primary = distribution[idx % dist_count];
        b.add_link(a, primary);
        link_weights.push(rng.gen_range(1..=10));
        if rng.gen_bool(0.5) && dist_count > 1 {
            let secondary = distribution[(idx + 1) % dist_count];
            b.add_link(a, secondary);
            link_weights.push(rng.gen_range(1..=10));
        }
        access_prefixes.push(Prefix::new(
            Ipv4Addr::new(10, 200, (idx % 250) as u8, 0),
            24,
        ));
    }

    let topology = b.build();
    debug_assert_eq!(link_weights.len(), topology.link_count());

    EnterpriseNetwork {
        name: spec.name.clone(),
        exits: core.clone(),
        core,
        distribution,
        access,
        link_weights,
        access_prefixes,
        topology,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_set_sizes() {
        let specs = EnterpriseSpec::paper_set();
        assert_eq!(specs.len(), 10);
        for spec in &specs {
            let net = enterprise_network(spec);
            assert_eq!(net.topology.node_count(), spec.routers, "{}", spec.name);
            assert!(net.topology.is_connected(), "{} disconnected", spec.name);
            assert_eq!(net.link_weights.len(), net.topology.link_count());
        }
    }

    #[test]
    fn tiny_networks_are_chains() {
        let net = enterprise_network(&EnterpriseSpec {
            name: "VI".into(),
            routers: 2,
            seed: 1,
        });
        assert_eq!(net.topology.node_count(), 2);
        assert_eq!(net.topology.link_count(), 1);
        assert_eq!(net.access.len(), 2);
    }

    #[test]
    fn tiers_partition_the_routers() {
        let net = enterprise_network(&EnterpriseSpec {
            name: "II".into(),
            routers: 63,
            seed: 2,
        });
        assert_eq!(
            net.core.len() + net.distribution.len() + net.access.len(),
            63
        );
        assert_eq!(net.access_prefixes.len(), net.access.len());
        assert!(!net.exits.is_empty());
    }

    #[test]
    fn deterministic_for_seed() {
        let spec = EnterpriseSpec {
            name: "X".into(),
            routers: 40,
            seed: 99,
        };
        let a = enterprise_network(&spec);
        let b = enterprise_network(&spec);
        assert_eq!(a.topology.link_count(), b.topology.link_count());
        assert_eq!(a.link_weights, b.link_weights);
    }
}
