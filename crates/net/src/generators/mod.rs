//! Topology generators for the evaluation workloads.
//!
//! The paper's evaluation (§5) uses four families of networks:
//!
//! * **fat trees** (synthetic data centers) for the OSPF loop / reachability
//!   and BGP waypoint experiments — [`fat_tree`];
//! * **rings** for the optimization micro-benchmarks (Figure 8) — [`ring`];
//! * **RocketFuel AS topologies** for the failure-tolerance and
//!   iBGP-over-OSPF experiments — the original measured topologies are not
//!   redistributable, so [`as_topo`] generates synthetic ISP topologies at
//!   the same scale (backbone + access tiers, weighted links);
//! * **real-world enterprise configurations** (Figures 7(h), 7(i)) — also
//!   unavailable, substituted by [`enterprise`]'s campus-style networks.
//!
//! Generators return a [`Topology`](crate::topology::Topology) together with
//! structural metadata (which nodes are core/aggregation/edge, etc.) that the
//! configuration builders in higher crates use to assign protocols and
//! addresses.

pub mod as_topo;
pub mod enterprise;
pub mod fat_tree;
pub mod ring;

pub use as_topo::{as_topology, AsTopology, AsTopologySpec};
pub use enterprise::{enterprise_network, EnterpriseNetwork, EnterpriseSpec};
pub use fat_tree::{fat_tree, FatTree};
pub use ring::{ring, RingNetwork};
