//! Ring topology generator, used by the optimization micro-benchmarks
//! (Figure 8: "Ring, OSPF, 4/8/16 nodes, 1 failure").

use crate::ip::{Ipv4Addr, Prefix};
use crate::topology::{LinkId, NodeId, Topology, TopologyBuilder};

/// A generated ring: `n` routers connected in a cycle.
#[derive(Clone, Debug)]
pub struct RingNetwork {
    /// The topology.
    pub topology: Topology,
    /// The routers in ring order.
    pub routers: Vec<NodeId>,
    /// The ring links: `links[i]` joins `routers[i]` and `routers[(i+1) % n]`.
    pub links: Vec<LinkId>,
    /// The prefix originated by router 0 (the destination checked in the
    /// Figure 8 experiments).
    pub destination_prefix: Prefix,
}

/// Generate a ring of `n >= 3` routers. Router 0 originates `10.99.0.0/24`.
pub fn ring(n: usize) -> RingNetwork {
    assert!(n >= 3, "a ring needs at least 3 routers, got {n}");
    let mut b = TopologyBuilder::new();
    let routers: Vec<NodeId> = (0..n).map(|i| b.add_router(&format!("r{i}"))).collect();
    for (i, &r) in routers.iter().enumerate() {
        b.set_loopback(
            r,
            Ipv4Addr::new(172, 20, (i / 250) as u8, (i % 250 + 1) as u8),
        );
    }
    let mut links = Vec::with_capacity(n);
    for i in 0..n {
        links.push(b.add_link(routers[i], routers[(i + 1) % n]));
    }
    RingNetwork {
        topology: b.build(),
        routers,
        links,
        destination_prefix: Prefix::new(Ipv4Addr::new(10, 99, 0, 0), 24),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_structure() {
        let r = ring(8);
        assert_eq!(r.topology.node_count(), 8);
        assert_eq!(r.topology.link_count(), 8);
        for &n in &r.routers {
            assert_eq!(r.topology.degree(n), 2);
        }
        assert!(r.topology.is_connected());
    }

    #[test]
    fn ring_survives_one_failure() {
        let r = ring(4);
        assert!(r.topology.is_connected_without(&[r.links[0]]));
        assert!(!r.topology.is_connected_without(&[r.links[0], r.links[2]]));
    }

    #[test]
    fn smallest_ring() {
        let r = ring(3);
        assert_eq!(r.topology.link_count(), 3);
    }

    #[test]
    #[should_panic]
    fn too_small_rejected() {
        ring(2);
    }
}
