//! k-ary fat-tree generator.
//!
//! A k-ary fat tree (Al-Fares et al.) has `k` pods, each with `k/2` edge and
//! `k/2` aggregation switches, plus `(k/2)^2` core switches — `5k^2/4`
//! switches in total. The paper's fat-tree sizes map to `k` as follows:
//! N=20 → k=4, N=45 → k=6, N=80 → k=8, N=125 → k=10, N=180 → k=12,
//! N=245 → k=14, N=320 → k=16, N=500 → k=20, N=720 → k=24, N=980 → k=28,
//! N=1280 → k=32, N=1620 → k=36, N=2205 → k=42.

use crate::ip::{Ipv4Addr, Prefix};
use crate::topology::{NodeId, Topology, TopologyBuilder};

/// A generated fat tree: the topology plus the role of every switch.
#[derive(Clone, Debug)]
pub struct FatTree {
    /// The switch-level topology.
    pub topology: Topology,
    /// Fat-tree arity (`k`). Must be even.
    pub k: usize,
    /// Core switches, `(k/2)^2` of them.
    pub core: Vec<NodeId>,
    /// Aggregation switches grouped by pod: `aggregation[pod][i]`.
    pub aggregation: Vec<Vec<NodeId>>,
    /// Edge switches grouped by pod: `edge[pod][i]`.
    pub edge: Vec<Vec<NodeId>>,
    /// The prefix originated by each edge switch (rack prefix), indexed in
    /// the same order as [`FatTree::edges_flat`].
    pub edge_prefixes: Vec<Prefix>,
}

impl FatTree {
    /// Total number of switches (`5k^2/4`).
    pub fn switch_count(&self) -> usize {
        self.topology.node_count()
    }

    /// All aggregation switches in a flat list (pod order).
    pub fn aggregations_flat(&self) -> Vec<NodeId> {
        self.aggregation.iter().flatten().copied().collect()
    }

    /// All edge switches in a flat list (pod order).
    pub fn edges_flat(&self) -> Vec<NodeId> {
        self.edge.iter().flatten().copied().collect()
    }

    /// The rack prefix originated by edge switch `e`, if `e` is an edge switch.
    pub fn prefix_of_edge(&self, e: NodeId) -> Option<Prefix> {
        self.edges_flat()
            .iter()
            .position(|&x| x == e)
            .map(|i| self.edge_prefixes[i])
    }

    /// The pod number of a switch, or `None` for core switches.
    pub fn pod_of(&self, n: NodeId) -> Option<usize> {
        for (pod, (aggs, edges)) in self.aggregation.iter().zip(self.edge.iter()).enumerate() {
            if aggs.contains(&n) || edges.contains(&n) {
                return Some(pod);
            }
        }
        None
    }

    /// The number of switches a fat tree of arity `k` has.
    pub fn size_for_k(k: usize) -> usize {
        5 * k * k / 4
    }

    /// The smallest even `k` whose fat tree has at least `n` switches.
    pub fn k_for_size(n: usize) -> usize {
        let mut k = 2;
        while Self::size_for_k(k) < n {
            k += 2;
        }
        k
    }
}

/// Generate a k-ary fat tree. `k` must be even and at least 2.
///
/// Edge switch `e` (the i-th edge switch overall) originates the rack prefix
/// `10.p.e.0/24` where `p` is its pod; every switch also gets a loopback
/// `172.16.x.y/32` style address so that iBGP / recursive-routing scenarios
/// can be layered on top.
pub fn fat_tree(k: usize) -> FatTree {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat tree arity must be even and >= 2, got {k}"
    );
    let half = k / 2;
    let mut b = TopologyBuilder::new();

    // Core switches.
    let mut core = Vec::with_capacity(half * half);
    for i in 0..half * half {
        let id = b.add_router(&format!("core{i}"));
        b.set_loopback(
            id,
            Ipv4Addr::new(172, 16, (i / 250) as u8, (i % 250 + 1) as u8),
        );
        core.push(id);
    }
    // Per-pod aggregation and edge switches.
    let mut aggregation = Vec::with_capacity(k);
    let mut edge = Vec::with_capacity(k);
    let mut edge_prefixes = Vec::new();
    for pod in 0..k {
        let mut aggs = Vec::with_capacity(half);
        let mut edges = Vec::with_capacity(half);
        for i in 0..half {
            let id = b.add_router(&format!("agg{pod}_{i}"));
            b.set_loopback(id, Ipv4Addr::new(172, 17, pod as u8, (i + 1) as u8));
            aggs.push(id);
        }
        for i in 0..half {
            let id = b.add_router(&format!("edge{pod}_{i}"));
            b.set_loopback(id, Ipv4Addr::new(172, 18, pod as u8, (i + 1) as u8));
            edges.push(id);
            edge_prefixes.push(Prefix::new(
                Ipv4Addr::new(10, (pod % 250) as u8, (i % 250) as u8, 0),
                24,
            ));
        }
        // Edge <-> aggregation full bipartite within the pod.
        for &e in &edges {
            for &a in &aggs {
                b.add_link(e, a);
            }
        }
        aggregation.push(aggs);
        edge.push(edges);
    }
    // Aggregation <-> core: aggregation switch i of each pod connects to core
    // switches [i*half, (i+1)*half).
    for aggs in &aggregation {
        for (i, &agg) in aggs.iter().enumerate() {
            for j in 0..half {
                let c = core[i * half + j];
                b.add_link(agg, c);
            }
        }
    }

    // Disambiguate prefixes: with many pods the modular arithmetic above can
    // collide; re-assign sequentially to guarantee uniqueness.
    for (idx, p) in edge_prefixes.iter_mut().enumerate() {
        let hi = (idx / 250) as u8;
        let lo = (idx % 250) as u8;
        *p = Prefix::new(Ipv4Addr::new(10, hi, lo, 0), 24);
    }

    FatTree {
        topology: b.build(),
        k,
        core,
        aggregation,
        edge,
        edge_prefixes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn k4_sizes() {
        let ft = fat_tree(4);
        assert_eq!(ft.switch_count(), 20);
        assert_eq!(ft.core.len(), 4);
        assert_eq!(ft.aggregation.len(), 4);
        assert_eq!(ft.edge.len(), 4);
        assert_eq!(ft.edges_flat().len(), 8);
        // Each edge switch: k/2 uplinks. Each agg: k/2 down + k/2 up.
        for &e in &ft.edges_flat() {
            assert_eq!(ft.topology.degree(e), 2);
        }
        for &a in &ft.aggregations_flat() {
            assert_eq!(ft.topology.degree(a), 4);
        }
        // Core: one link per pod.
        for &c in &ft.core {
            assert_eq!(ft.topology.degree(c), 4);
        }
        assert!(ft.topology.is_connected());
    }

    #[test]
    fn paper_size_mapping() {
        assert_eq!(FatTree::size_for_k(4), 20);
        assert_eq!(FatTree::size_for_k(6), 45);
        assert_eq!(FatTree::size_for_k(8), 80);
        assert_eq!(FatTree::size_for_k(10), 125);
        assert_eq!(FatTree::size_for_k(12), 180);
        assert_eq!(FatTree::size_for_k(14), 245);
        assert_eq!(FatTree::size_for_k(16), 320);
        assert_eq!(FatTree::k_for_size(245), 14);
        assert_eq!(FatTree::k_for_size(20), 4);
    }

    #[test]
    fn k6_link_count() {
        let ft = fat_tree(6);
        assert_eq!(ft.switch_count(), 45);
        // Links: k pods * (k/2 edge * k/2 agg) + k pods * (k/2 agg * k/2 core links)
        // = k^3/4 + k^3/4 = k^3/2 = 108
        assert_eq!(ft.topology.link_count(), 108);
        assert!(ft.topology.is_connected());
    }

    #[test]
    fn edge_prefixes_unique() {
        let ft = fat_tree(8);
        let set: HashSet<_> = ft.edge_prefixes.iter().collect();
        assert_eq!(set.len(), ft.edge_prefixes.len());
        assert_eq!(ft.edge_prefixes.len(), ft.edges_flat().len());
    }

    #[test]
    fn prefix_of_edge_lookup() {
        let ft = fat_tree(4);
        let e0 = ft.edge[0][0];
        assert_eq!(ft.prefix_of_edge(e0), Some(ft.edge_prefixes[0]));
        assert_eq!(ft.prefix_of_edge(ft.core[0]), None);
    }

    #[test]
    fn pod_membership() {
        let ft = fat_tree(4);
        assert_eq!(ft.pod_of(ft.edge[2][1]), Some(2));
        assert_eq!(ft.pod_of(ft.aggregation[3][0]), Some(3));
        assert_eq!(ft.pod_of(ft.core[0]), None);
    }

    #[test]
    #[should_panic]
    fn odd_k_rejected() {
        fat_tree(5);
    }

    #[test]
    fn loopbacks_assigned() {
        let ft = fat_tree(4);
        for n in ft.topology.nodes() {
            assert!(n.loopback.is_some(), "{} has no loopback", n.name);
        }
    }
}
