//! IPv4 addresses, prefixes and contiguous header ranges.
//!
//! Plankton partitions the destination-address header space into Packet
//! Equivalence Classes (PECs). The partition is computed over *prefixes*
//! collected from the configuration and is represented as disjoint
//! [`IpRange`]s. This module provides the small amount of address arithmetic
//! that the trie-based PEC computation needs.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An IPv4 address stored as a host-order `u32`.
///
/// A thin wrapper (rather than `std::net::Ipv4Addr`) so that the ordered
/// integer arithmetic used by the PEC trie is explicit and cheap.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Ipv4Addr(pub u32);

impl Ipv4Addr {
    /// The all-zeros address `0.0.0.0`.
    pub const ZERO: Ipv4Addr = Ipv4Addr(0);
    /// The all-ones address `255.255.255.255`.
    pub const MAX: Ipv4Addr = Ipv4Addr(u32::MAX);

    /// Build an address from its four dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | (d as u32))
    }

    /// The raw host-order integer value.
    pub const fn value(self) -> u32 {
        self.0
    }

    /// The four dotted-quad octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// Bit `i` of the address counting from the most significant bit
    /// (`i = 0` is the top bit). Used by the PEC trie descent.
    pub const fn bit(self, i: u8) -> bool {
        debug_assert!(i < 32);
        (self.0 >> (31 - i)) & 1 == 1
    }

    /// Saturating successor, used when walking adjacent ranges.
    pub const fn saturating_next(self) -> Ipv4Addr {
        Ipv4Addr(self.0.saturating_add(1))
    }
}

impl fmt::Debug for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl From<u32> for Ipv4Addr {
    fn from(v: u32) -> Self {
        Ipv4Addr(v)
    }
}

impl FromStr for Ipv4Addr {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split('.');
        let mut octets = [0u8; 4];
        for o in octets.iter_mut() {
            let p = parts.next().ok_or(AddrParseError::TooFewOctets)?;
            *o = p.parse().map_err(|_| AddrParseError::BadOctet)?;
        }
        if parts.next().is_some() {
            return Err(AddrParseError::TooManyOctets);
        }
        Ok(Ipv4Addr::new(octets[0], octets[1], octets[2], octets[3]))
    }
}

/// Error parsing an address or prefix from text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddrParseError {
    /// Fewer than four dotted-quad octets.
    TooFewOctets,
    /// More than four dotted-quad octets.
    TooManyOctets,
    /// An octet was not a number in `0..=255`.
    BadOctet,
    /// Prefix length missing or malformed (`a.b.c.d/len`).
    BadPrefixLength,
}

impl fmt::Display for AddrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddrParseError::TooFewOctets => write!(f, "too few octets"),
            AddrParseError::TooManyOctets => write!(f, "too many octets"),
            AddrParseError::BadOctet => write!(f, "octet out of range"),
            AddrParseError::BadPrefixLength => write!(f, "bad prefix length"),
        }
    }
}

impl std::error::Error for AddrParseError {}

/// An IPv4 destination prefix `addr/len`.
///
/// The address is always stored in canonical (masked) form: bits below the
/// prefix length are zero.
///
/// Serializes as `{addr, len}`; deserializes from that form *or* from the
/// `"a.b.c.d/len"` string form, so wire protocols (the verification
/// service) and hand-written configs can use the human notation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct Prefix {
    addr: Ipv4Addr,
    len: u8,
}

impl serde::Deserialize for Prefix {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        if let serde::Value::Str(s) = v {
            return s
                .parse()
                .map_err(|e| serde::Error::msg(format!("bad prefix {s:?}: {e}")));
        }
        let addr: Ipv4Addr = serde::__get_field(v, "addr")?;
        let len: u8 = serde::__get_field(v, "len")?;
        if len > 32 {
            return Err(serde::Error::msg(format!("prefix length {len} > 32")));
        }
        Ok(Prefix::new(addr, len))
    }
}

impl Prefix {
    /// The default route `0.0.0.0/0`.
    pub const DEFAULT: Prefix = Prefix {
        addr: Ipv4Addr(0),
        len: 0,
    };

    /// Construct a prefix, masking the address down to `len` bits.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} > 32");
        Prefix {
            addr: Ipv4Addr(addr.0 & Self::mask(len)),
            len,
        }
    }

    /// A host route (`/32`) for a single address.
    pub fn host(addr: Ipv4Addr) -> Self {
        Prefix::new(addr, 32)
    }

    /// Network mask for a prefix length.
    pub const fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The canonical (masked) network address.
    pub const fn addr(&self) -> Ipv4Addr {
        self.addr
    }

    /// The prefix length in bits. (No `is_empty` counterpart: a zero-length
    /// prefix is the default route, which covers everything — see
    /// [`Prefix::is_default`].)
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(&self) -> u8 {
        self.len
    }

    /// `true` only for the default route.
    pub const fn is_default(&self) -> bool {
        self.len == 0
    }

    /// First address covered by the prefix.
    pub const fn first(&self) -> Ipv4Addr {
        self.addr
    }

    /// Last address covered by the prefix.
    pub const fn last(&self) -> Ipv4Addr {
        Ipv4Addr(self.addr.0 | !Self::mask(self.len))
    }

    /// The contiguous address range covered by the prefix.
    pub const fn range(&self) -> IpRange {
        IpRange {
            lo: self.first(),
            hi: self.last(),
        }
    }

    /// Does the prefix cover `addr`?
    pub const fn contains(&self, addr: Ipv4Addr) -> bool {
        (addr.0 & Self::mask(self.len)) == self.addr.0
    }

    /// Does `self` cover every address of `other`? (I.e. `self` is equal or
    /// less specific and on the same branch of the trie.)
    pub fn covers(&self, other: &Prefix) -> bool {
        self.len <= other.len && self.contains(other.addr)
    }

    /// Do the two prefixes share any address?
    pub fn overlaps(&self, other: &Prefix) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// Bit `i` of the prefix (only meaningful for `i < len`).
    pub const fn bit(&self, i: u8) -> bool {
        self.addr.bit(i)
    }

    /// The two halves of this prefix (one bit longer). `None` for a `/32`.
    pub fn children(&self) -> Option<(Prefix, Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let left = Prefix {
            addr: self.addr,
            len: self.len + 1,
        };
        let right = Prefix {
            addr: Ipv4Addr(self.addr.0 | (1 << (31 - self.len))),
            len: self.len + 1,
        };
        Some((left, right))
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl FromStr for Prefix {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once('/') {
            Some((a, l)) => {
                let addr: Ipv4Addr = a.parse()?;
                let len: u8 = l.parse().map_err(|_| AddrParseError::BadPrefixLength)?;
                if len > 32 {
                    return Err(AddrParseError::BadPrefixLength);
                }
                Ok(Prefix::new(addr, len))
            }
            None => {
                let addr: Ipv4Addr = s.parse()?;
                Ok(Prefix::host(addr))
            }
        }
    }
}

/// A closed, contiguous range of IPv4 addresses `[lo, hi]`.
///
/// Packet Equivalence Classes are represented as ranges because the prefix
/// boundaries collected in the trie slice the 32-bit space into contiguous
/// pieces that are not necessarily aligned prefixes themselves
/// (see Figure 4 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IpRange {
    /// Lowest address in the range (inclusive).
    pub lo: Ipv4Addr,
    /// Highest address in the range (inclusive).
    pub hi: Ipv4Addr,
}

impl IpRange {
    /// The full 32-bit address space.
    pub const FULL: IpRange = IpRange {
        lo: Ipv4Addr::ZERO,
        hi: Ipv4Addr::MAX,
    };

    /// Construct a range; `lo` must not exceed `hi`.
    pub fn new(lo: Ipv4Addr, hi: Ipv4Addr) -> Self {
        assert!(lo <= hi, "empty IpRange {lo}..{hi}");
        IpRange { lo, hi }
    }

    /// Number of addresses in the range (as `u64`, since the full space does
    /// not fit a `u32`).
    pub fn size(&self) -> u64 {
        (self.hi.0 as u64) - (self.lo.0 as u64) + 1
    }

    /// Does the range contain `addr`?
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        self.lo <= addr && addr <= self.hi
    }

    /// Does the range contain the entire `prefix`?
    pub fn contains_prefix(&self, prefix: &Prefix) -> bool {
        self.lo <= prefix.first() && prefix.last() <= self.hi
    }

    /// Do the two ranges share any address?
    pub fn overlaps(&self, other: &IpRange) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Intersection of two ranges, if non-empty.
    pub fn intersect(&self, other: &IpRange) -> Option<IpRange> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(IpRange { lo, hi })
        } else {
            None
        }
    }

    /// A representative address from the range (its lowest address).
    pub fn representative(&self) -> Ipv4Addr {
        self.lo
    }
}

impl fmt::Debug for IpRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} - {}]", self.lo, self.hi)
    }
}

impl fmt::Display for IpRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} - {}]", self.lo, self.hi)
    }
}

impl From<Prefix> for IpRange {
    fn from(p: Prefix) -> Self {
        p.range()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_roundtrip() {
        let a = Ipv4Addr::new(10, 1, 2, 3);
        assert_eq!(a.octets(), [10, 1, 2, 3]);
        assert_eq!(a.to_string(), "10.1.2.3");
        assert_eq!("10.1.2.3".parse::<Ipv4Addr>().unwrap(), a);
    }

    #[test]
    fn addr_parse_errors() {
        assert_eq!(
            "10.1.2".parse::<Ipv4Addr>(),
            Err(AddrParseError::TooFewOctets)
        );
        assert_eq!(
            "10.1.2.3.4".parse::<Ipv4Addr>(),
            Err(AddrParseError::TooManyOctets)
        );
        assert_eq!(
            "10.1.2.256".parse::<Ipv4Addr>(),
            Err(AddrParseError::BadOctet)
        );
    }

    #[test]
    fn addr_bits() {
        let a = Ipv4Addr::new(128, 0, 0, 1);
        assert!(a.bit(0));
        assert!(!a.bit(1));
        assert!(a.bit(31));
    }

    #[test]
    fn prefix_masking_is_canonical() {
        let p = Prefix::new(Ipv4Addr::new(10, 1, 2, 3), 16);
        assert_eq!(p.addr(), Ipv4Addr::new(10, 1, 0, 0));
        assert_eq!(p.to_string(), "10.1.0.0/16");
    }

    #[test]
    fn prefix_parse() {
        let p: Prefix = "192.0.0.0/2".parse().unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.first(), Ipv4Addr::new(192, 0, 0, 0));
        assert_eq!(p.last(), Ipv4Addr::new(255, 255, 255, 255));
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        // Bare address parses as a host route.
        let h: Prefix = "10.0.0.1".parse().unwrap();
        assert_eq!(h.len(), 32);
    }

    #[test]
    fn prefix_deserializes_from_struct_and_string_forms() {
        use serde::{Deserialize, Serialize, Value};
        let p: Prefix = "10.1.0.0/16".parse().unwrap();
        // Canonical struct form roundtrips.
        assert_eq!(Prefix::from_value(&p.to_value()).unwrap(), p);
        // Human string form parses too (wire-protocol convenience).
        assert_eq!(
            Prefix::from_value(&Value::Str("10.1.0.0/16".into())).unwrap(),
            p
        );
        assert!(Prefix::from_value(&Value::Str("10.1.0.0/40".into())).is_err());
    }

    #[test]
    fn prefix_contains_and_covers() {
        let p: Prefix = "128.0.0.0/1".parse().unwrap();
        let q: Prefix = "192.0.0.0/2".parse().unwrap();
        assert!(p.covers(&q));
        assert!(!q.covers(&p));
        assert!(p.overlaps(&q));
        assert!(p.contains(Ipv4Addr::new(200, 0, 0, 1)));
        assert!(!p.contains(Ipv4Addr::new(100, 0, 0, 1)));
    }

    #[test]
    fn prefix_children_split_the_range() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        let (l, r) = p.children().unwrap();
        assert_eq!(l.first(), p.first());
        assert_eq!(r.last(), p.last());
        assert_eq!(l.last().saturating_next(), r.first());
        assert!(Prefix::host(Ipv4Addr::MAX).children().is_none());
    }

    #[test]
    fn default_prefix_covers_everything() {
        assert!(Prefix::DEFAULT.contains(Ipv4Addr::ZERO));
        assert!(Prefix::DEFAULT.contains(Ipv4Addr::MAX));
        assert_eq!(Prefix::DEFAULT.range(), IpRange::FULL);
    }

    #[test]
    fn range_intersection() {
        let a = IpRange::new(Ipv4Addr(0), Ipv4Addr(100));
        let b = IpRange::new(Ipv4Addr(50), Ipv4Addr(200));
        assert_eq!(
            a.intersect(&b),
            Some(IpRange::new(Ipv4Addr(50), Ipv4Addr(100)))
        );
        let c = IpRange::new(Ipv4Addr(150), Ipv4Addr(200));
        assert_eq!(a.intersect(&c), None);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn range_size_handles_full_space() {
        assert_eq!(IpRange::FULL.size(), 1u64 << 32);
        assert_eq!(IpRange::new(Ipv4Addr(5), Ipv4Addr(5)).size(), 1);
    }

    #[test]
    fn range_contains_prefix() {
        let r = IpRange::new(
            Ipv4Addr::new(128, 0, 0, 0),
            Ipv4Addr::new(191, 255, 255, 255),
        );
        assert!(r.contains_prefix(&"128.0.0.0/2".parse().unwrap()));
        assert!(!r.contains_prefix(&"128.0.0.0/1".parse().unwrap()));
    }

    #[test]
    fn paper_figure4_ranges() {
        // The example in Figure 4: prefixes 128.0.0.0/1 and 192.0.0.0/2
        // split the space into three PEC ranges.
        let p1: Prefix = "128.0.0.0/1".parse().unwrap();
        let p2: Prefix = "192.0.0.0/2".parse().unwrap();
        assert_eq!(
            p1.range(),
            IpRange::new(Ipv4Addr::new(128, 0, 0, 0), Ipv4Addr::MAX)
        );
        assert_eq!(
            p2.range(),
            IpRange::new(Ipv4Addr::new(192, 0, 0, 0), Ipv4Addr::MAX)
        );
        assert!(p1.covers(&p2));
    }
}
