//! Link-failure environments.
//!
//! A configuration verifier checks correctness over *all* data planes the
//! configuration can produce, including those caused by link failures up to a
//! bound supplied in the environment specification. Plankton applies all
//! topology changes before protocol execution starts (§3.4.2) and explores
//! failure choices in a canonical order (§4.1.4), so a failure scenario is
//! simply a set of failed links chosen before the model-checking run.

use crate::topology::{LinkId, Topology};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of failed links, kept sorted and deduplicated so that equal sets
/// compare equal and hash identically (needed for visited-state hashing and
/// for matching topology changes across dependent PECs).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct FailureSet {
    links: Vec<LinkId>,
}

impl FailureSet {
    /// The empty failure set (no failures).
    pub fn none() -> Self {
        FailureSet { links: Vec::new() }
    }

    /// Build a failure set from an arbitrary list of links.
    pub fn from_links(mut links: Vec<LinkId>) -> Self {
        links.sort();
        links.dedup();
        FailureSet { links }
    }

    /// A failure set with a single failed link.
    pub fn single(link: LinkId) -> Self {
        FailureSet { links: vec![link] }
    }

    /// Number of failed links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Is `link` failed?
    pub fn contains(&self, link: LinkId) -> bool {
        self.links.binary_search(&link).is_ok()
    }

    /// The failed links in canonical (ascending) order.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// A new set with `link` additionally failed.
    pub fn with(&self, link: LinkId) -> Self {
        let mut links = self.links.clone();
        match links.binary_search(&link) {
            Ok(_) => {}
            Err(pos) => links.insert(pos, link),
        }
        FailureSet { links }
    }

    /// Union of two failure sets.
    pub fn union(&self, other: &FailureSet) -> Self {
        let mut links = self.links.clone();
        links.extend_from_slice(&other.links);
        FailureSet::from_links(links)
    }
}

impl fmt::Debug for FailureSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FailureSet{:?}", self.links)
    }
}

impl fmt::Display for FailureSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.links.is_empty() {
            write!(f, "(no failures)")
        } else {
            let names: Vec<String> = self.links.iter().map(|l| l.to_string()).collect();
            write!(f, "{{{}}}", names.join(", "))
        }
    }
}

impl FromIterator<LinkId> for FailureSet {
    fn from_iter<I: IntoIterator<Item = LinkId>>(iter: I) -> Self {
        FailureSet::from_links(iter.into_iter().collect())
    }
}

/// The failure environment to verify under: "at most `max_failures` links
/// may fail, chosen from `candidates`" (all links if `candidates` is `None`).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FailureScenario {
    /// Maximum number of simultaneous link failures.
    pub max_failures: usize,
    /// Restrict the candidate failed links (e.g. only core links). `None`
    /// means every link is a candidate.
    pub candidates: Option<Vec<LinkId>>,
}

impl FailureScenario {
    /// No failures at all: verify only the failure-free convergence.
    pub fn no_failures() -> Self {
        FailureScenario {
            max_failures: 0,
            candidates: None,
        }
    }

    /// Up to `k` arbitrary link failures.
    pub fn up_to(k: usize) -> Self {
        FailureScenario {
            max_failures: k,
            candidates: None,
        }
    }

    /// Up to `k` failures restricted to `links`.
    pub fn up_to_among(k: usize, links: Vec<LinkId>) -> Self {
        FailureScenario {
            max_failures: k,
            candidates: Some(links),
        }
    }

    /// The candidate links for this scenario within `topo`, in canonical order.
    pub fn candidate_links(&self, topo: &Topology) -> Vec<LinkId> {
        match &self.candidates {
            Some(ls) => {
                let mut ls = ls.clone();
                ls.sort();
                ls.dedup();
                ls
            }
            None => topo.link_ids().collect(),
        }
    }

    /// Enumerate every failure set with at most `max_failures` links drawn
    /// from the candidates, in canonical order (empty set first, then by
    /// size, then lexicographically). This is the *unpruned* enumeration;
    /// `plankton-core` layers link-equivalence-class pruning on top (§4.3).
    pub fn enumerate_failure_sets(&self, topo: &Topology) -> Vec<FailureSet> {
        let candidates = self.candidate_links(topo);
        let mut out = Vec::new();
        let mut current = Vec::new();
        // Failure ordering (§4.1.4): combinations are generated with strictly
        // increasing link ids, so each set is explored exactly once.
        fn rec(
            candidates: &[LinkId],
            start: usize,
            remaining: usize,
            current: &mut Vec<LinkId>,
            out: &mut Vec<FailureSet>,
        ) {
            out.push(FailureSet::from_links(current.clone()));
            if remaining == 0 {
                return;
            }
            for i in start..candidates.len() {
                current.push(candidates[i]);
                rec(candidates, i + 1, remaining - 1, current, out);
                current.pop();
            }
        }
        rec(&candidates, 0, self.max_failures, &mut current, &mut out);
        // `rec` pushes the empty prefix of every branch; dedup while keeping
        // canonical order.
        out.sort_by(|a, b| (a.len(), a.links()).cmp(&(b.len(), b.links())));
        out.dedup();
        out
    }

    /// Number of failure sets the unpruned enumeration would produce.
    pub fn failure_set_count(&self, topo: &Topology) -> u64 {
        let n = self.candidate_links(topo).len() as u64;
        let mut total = 0u64;
        let mut choose = 1u64; // C(n, 0)
        for k in 0..=self.max_failures as u64 {
            total += choose;
            choose = choose.saturating_mul(n.saturating_sub(k)) / (k + 1);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;

    fn square() -> Topology {
        let mut b = TopologyBuilder::new();
        let n: Vec<_> = (0..4).map(|i| b.add_router(&format!("r{i}"))).collect();
        b.add_link(n[0], n[1]);
        b.add_link(n[1], n[2]);
        b.add_link(n[2], n[3]);
        b.add_link(n[3], n[0]);
        b.build()
    }

    #[test]
    fn failure_set_canonical_form() {
        let a = FailureSet::from_links(vec![LinkId(3), LinkId(1), LinkId(3)]);
        let b = FailureSet::from_links(vec![LinkId(1), LinkId(3)]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert!(a.contains(LinkId(1)));
        assert!(!a.contains(LinkId(2)));
    }

    #[test]
    fn failure_set_with_and_union() {
        let a = FailureSet::single(LinkId(2));
        let b = a.with(LinkId(0)).with(LinkId(2));
        assert_eq!(b.links(), &[LinkId(0), LinkId(2)]);
        let c = b.union(&FailureSet::single(LinkId(5)));
        assert_eq!(c.links(), &[LinkId(0), LinkId(2), LinkId(5)]);
    }

    #[test]
    fn enumerate_zero_failures() {
        let t = square();
        let sets = FailureScenario::no_failures().enumerate_failure_sets(&t);
        assert_eq!(sets, vec![FailureSet::none()]);
    }

    #[test]
    fn enumerate_single_failures() {
        let t = square();
        let sets = FailureScenario::up_to(1).enumerate_failure_sets(&t);
        // empty set + one per link
        assert_eq!(sets.len(), 1 + t.link_count());
        assert_eq!(sets[0], FailureSet::none());
        assert!(sets[1..].iter().all(|s| s.len() == 1));
    }

    #[test]
    fn enumerate_double_failures_counts() {
        let t = square();
        let scenario = FailureScenario::up_to(2);
        let sets = scenario.enumerate_failure_sets(&t);
        // C(4,0) + C(4,1) + C(4,2) = 1 + 4 + 6 = 11
        assert_eq!(sets.len(), 11);
        assert_eq!(scenario.failure_set_count(&t), 11);
        // Canonical order: sizes are non-decreasing.
        let sizes: Vec<_> = sets.iter().map(|s| s.len()).collect();
        let mut sorted = sizes.clone();
        sorted.sort();
        assert_eq!(sizes, sorted);
    }

    #[test]
    fn enumerate_restricted_candidates() {
        let t = square();
        let scenario = FailureScenario::up_to_among(1, vec![LinkId(0), LinkId(2)]);
        let sets = scenario.enumerate_failure_sets(&t);
        assert_eq!(sets.len(), 3);
        assert!(sets
            .iter()
            .all(|s| s.links().iter().all(|l| *l == LinkId(0) || *l == LinkId(2))));
    }

    #[test]
    fn from_iterator() {
        let s: FailureSet = vec![LinkId(2), LinkId(0)].into_iter().collect();
        assert_eq!(s.links(), &[LinkId(0), LinkId(2)]);
        assert_eq!(format!("{s}"), "{l0, l2}");
        assert_eq!(format!("{}", FailureSet::none()), "(no failures)");
    }
}
