//! # plankton-net
//!
//! Network substrate for the Plankton configuration verifier: IPv4 addressing,
//! prefixes and header ranges, the device/link topology model, link-failure
//! environments, and the topology generators used by the paper's evaluation
//! (fat trees, rings, RocketFuel-scale AS topologies and synthetic
//! "real-world" enterprise networks).
//!
//! Everything in this crate is purely structural: it knows nothing about
//! routing protocols or policies. Higher layers (`plankton-config`,
//! `plankton-protocols`, `plankton-core`) attach configuration and behaviour
//! to the identifiers defined here.

pub mod failure;
pub mod generators;
pub mod graph;
pub mod ip;
pub mod topology;

pub use failure::{FailureScenario, FailureSet};
pub use ip::{IpRange, Ipv4Addr, Prefix};
pub use topology::{InterfaceAddr, LinkId, NodeId, Topology, TopologyBuilder};
