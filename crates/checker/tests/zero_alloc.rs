//! Allocation regression test for the handle-native inner loop.
//!
//! The point of interning routes at generation time is that the DFS's
//! *steady-state step path* — adopting an already-interned route handle,
//! recording the bitstate visited fingerprint, reverting the step, and
//! restoring displaced enabled-set cache entries — touches no allocator at
//! all: steps move a single `u64`, undo records are `Copy`, fingerprints
//! hash precomputed content hashes, and cache restores `mem::replace`
//! already-allocated entries. A counting global allocator pins that down so
//! a future change cannot quietly reintroduce per-step allocation.
//!
//! The enabled-set *refresh* is deliberately outside the measured windows:
//! recomputing a node's pending update constructs candidate `Route` values
//! (path vectors and all) before interning them — that construction is the
//! irreducible cost of evaluating the protocol's advertise function, not
//! step overhead, and it is bounded by the stepped node's neighborhood.
//! This lives in its own integration-test binary because the global
//! allocator is process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use plankton_checker::VisitedSet;
use plankton_config::scenarios::ring_ospf;
use plankton_net::failure::FailureSet;
use plankton_net::topology::NodeId;
use plankton_protocols::ospf::OspfModel;
use plankton_protocols::rpvp::{EnabledChoice, IncrementalEnabled, Rpvp};
use plankton_protocols::{ProtocolModel, RouteHandle, RouteInterner};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The first enabled choice's `(node, adoption handle)`, copied out so the
/// borrow of the cache ends before the state is mutated. `NONE` requests an
/// invalid-path clear.
fn first_choice(inc: &IncrementalEnabled) -> Option<(NodeId, RouteHandle)> {
    inc.view().first().map(|c| {
        let adopt = c
            .best_updates
            .first()
            .map(|&(_, h)| h)
            .unwrap_or(RouteHandle::NONE);
        (c.node, adopt)
    })
}

#[test]
fn steady_state_step_path_does_not_allocate() {
    let s = ring_ospf(4);
    let model = OspfModel::new(
        &s.network,
        s.destination,
        vec![s.origin],
        &FailureSet::none(),
    );
    let rpvp = Rpvp::new(&model);
    let mut interner = RouteInterner::new();
    let initial = rpvp.initial_state(&mut interner);
    let eligible: Vec<bool> = (0..model.node_count())
        .map(|i| !rpvp.is_origin(NodeId(i as u32)))
        .collect();
    let mut inc = IncrementalEnabled::new(model.reverse_peers(), eligible);
    let mut state = initial.clone();
    inc.rebuild(&rpvp, &state, &mut interner);

    let mut displaced: Vec<(NodeId, Option<EnabledChoice>)> = Vec::with_capacity(64);
    let mut visited = VisitedSet::bitstate(1 << 16);

    // Warm-up pass: drive one full execution to convergence so every route
    // the walk will ever adopt is interned and every buffer is sized.
    while let Some((node, adopt)) = first_choice(&inc) {
        rpvp.step_adopting(&mut state, &interner, node, adopt);
        displaced.clear();
        inc.refresh_after_step(&rpvp, &state, &mut interner, node, &mut displaced);
    }
    visited.insert(&state.best, &interner);
    let interned_after_warmup = interner.len();

    // Measured pass: replay the same execution from the initial state,
    // counting allocations only across the step-path operations. Each
    // iteration steps, reverts (exercising the displaced-entry restore),
    // and redoes the step so the walk makes progress.
    state.best.copy_from_slice(&initial.best);
    inc.rebuild(&rpvp, &state, &mut interner);
    let mut measured = 0usize;
    let mut steps = 0usize;
    while let Some((node, adopt)) = first_choice(&inc) {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        let prev_best = rpvp.step_adopting(&mut state, &interner, node, adopt);
        measured += ALLOCATIONS.load(Ordering::Relaxed) - before;

        displaced.clear();
        inc.refresh_after_step(&rpvp, &state, &mut interner, node, &mut displaced);

        // Undo: restore the handle and the displaced cache entries, then
        // verify the enabled view is iterable without touching the heap.
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        rpvp.undo_step(&mut state, node, prev_best);
        for (n, entry) in displaced.drain(..).rev() {
            inc.set_entry(n, entry);
        }
        let live = inc.view().iter().count();
        assert!(live > 0, "pre-step enabled set cannot be empty here");
        measured += ALLOCATIONS.load(Ordering::Relaxed) - before;

        // Redo and record the visited fingerprint (bitstate: fixed memory).
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        rpvp.step_adopting(&mut state, &interner, node, adopt);
        measured += ALLOCATIONS.load(Ordering::Relaxed) - before;
        displaced.clear();
        inc.refresh_after_step(&rpvp, &state, &mut interner, node, &mut displaced);
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        visited.insert(&state.best, &interner);
        measured += ALLOCATIONS.load(Ordering::Relaxed) - before;
        steps += 1;
    }
    assert!(steps > 0, "the walk must take steps");
    assert_eq!(
        interner.len(),
        interned_after_warmup,
        "the replay must re-intern nothing"
    );
    assert_eq!(
        measured, 0,
        "steady-state step path allocated {measured} times over {steps} steps"
    );
}
