//! The apply/undo stack behind the incremental explorer.
//!
//! The pre-change DFS cloned the whole `RpvpState` (plus the `decided`
//! vector) at every branch alternative. The incremental explorer instead
//! applies each step in place and records just enough to revert it: the
//! node's previous best-route handle, its previous `decided` bit, and
//! whichever enabled-set cache entries the step displaced. With the state
//! handle-native, a frame is four words and `Copy` — pushing one is a
//! store, not a route move. Undoing a step replays that record; unwinding a
//! DFS frame pops records down to a watermark.
//!
//! The stack is two flat vectors (fixed-size frames plus a shared
//! variable-length spill for displaced enabled entries), so a worker reuses
//! its allocations across every run via
//! [`SearchScratch`](crate::SearchScratch).

use plankton_net::topology::NodeId;
use plankton_protocols::rpvp::EnabledChoice;
use plankton_protocols::RouteHandle;

/// Everything needed to revert one applied RPVP step.
#[derive(Clone, Copy, Debug)]
pub(crate) struct UndoFrame {
    /// The node that stepped.
    pub node: NodeId,
    /// The handle of its best route before the step.
    pub prev_best: RouteHandle,
    /// Its `decided` bit before the step.
    pub prev_decided: bool,
    /// Watermark into the displaced-enabled-entries spill: entries above it
    /// belong to this frame.
    pub enabled_mark: usize,
}

/// A reusable stack of [`UndoFrame`]s plus the displaced enabled-set
/// entries of every live frame.
#[derive(Default)]
pub struct UndoStack {
    frames: Vec<UndoFrame>,
    pub(crate) enabled_prev: Vec<(NodeId, Option<EnabledChoice>)>,
}

impl UndoStack {
    /// An empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current number of live frames (a watermark for
    /// [`UndoStack::pop_frame`]-driven unwinding).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Watermark into the displaced-enabled-entries spill, taken just
    /// before a step's enabled-set refresh.
    pub(crate) fn enabled_mark(&self) -> usize {
        self.enabled_prev.len()
    }

    pub(crate) fn push_frame(&mut self, frame: UndoFrame) {
        self.frames.push(frame);
    }

    pub(crate) fn pop_frame(&mut self) -> UndoFrame {
        self.frames.pop().expect("undo stack underflow")
    }

    /// Reset to empty, keeping both allocations for the next run.
    pub fn clear(&mut self) {
        self.frames.clear();
        self.enabled_prev.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_and_marks_are_lifo() {
        let mut s = UndoStack::new();
        assert_eq!(s.depth(), 0);
        assert_eq!(s.enabled_mark(), 0);
        s.enabled_prev.push((NodeId(7), None));
        s.push_frame(UndoFrame {
            node: NodeId(1),
            prev_best: RouteHandle::NONE,
            prev_decided: false,
            enabled_mark: 0,
        });
        assert_eq!(s.depth(), 1);
        assert_eq!(s.enabled_mark(), 1);
        let f = s.pop_frame();
        assert_eq!(f.node, NodeId(1));
        s.clear();
        assert_eq!(s.depth(), 0);
        assert_eq!(s.enabled_mark(), 0);
    }
}
