//! Route interning: the paper's state-hashing optimization (§4.4).
//!
//! A network state is one routing entry per device; most entries repeat
//! across the millions of states the checker visits. Each distinct
//! [`Route`] is therefore stored exactly once in a table and states hold
//! compact handles, which makes copying states cheap and visited-state
//! comparison a vector-of-integers comparison.

use plankton_protocols::Route;
use std::collections::HashMap;

/// Handle of an interned route. `NONE` represents `⊥` (no route).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RouteHandle(pub u64);

impl RouteHandle {
    /// The handle for "no route" (`⊥`).
    pub const NONE: RouteHandle = RouteHandle(0);

    /// Is this the `⊥` handle?
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// The interning table.
#[derive(Default)]
pub struct RouteInterner {
    by_route: HashMap<Route, RouteHandle>,
    by_handle: Vec<Route>,
}

impl RouteInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a route, returning its (stable) handle.
    pub fn intern(&mut self, route: &Route) -> RouteHandle {
        if let Some(&h) = self.by_route.get(route) {
            return h;
        }
        let handle = RouteHandle(self.by_handle.len() as u64 + 1);
        self.by_handle.push(route.clone());
        self.by_route.insert(route.clone(), handle);
        handle
    }

    /// Intern an optional route (`None` maps to [`RouteHandle::NONE`]).
    pub fn intern_opt(&mut self, route: Option<&Route>) -> RouteHandle {
        match route {
            Some(r) => self.intern(r),
            None => RouteHandle::NONE,
        }
    }

    /// Resolve a handle back to its route (`None` for the `⊥` handle).
    pub fn resolve(&self, handle: RouteHandle) -> Option<&Route> {
        if handle.is_none() {
            None
        } else {
            self.by_handle.get(handle.0 as usize - 1)
        }
    }

    /// Compress a full state (one optional route per node) into handles.
    pub fn compress_state(&mut self, best: &[Option<Route>]) -> Vec<RouteHandle> {
        best.iter().map(|r| self.intern_opt(r.as_ref())).collect()
    }

    /// Number of distinct routes interned.
    pub fn len(&self) -> usize {
        self.by_handle.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.by_handle.is_empty()
    }

    /// Approximate memory used by the distinct route entries, in bytes
    /// (used by the memory statistics the benchmarks report).
    pub fn approx_bytes(&self) -> usize {
        self.by_handle
            .iter()
            .map(|r| {
                std::mem::size_of::<Route>()
                    + r.path.len() * std::mem::size_of::<u32>()
                    + r.attrs.as_path.len() * 4
                    + r.attrs.communities.len() * 4
            })
            .sum::<usize>()
            * 2 // the route is stored in both the map key and the table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plankton_net::ip::Prefix;
    use plankton_net::topology::NodeId;

    fn route(hops: &[u32]) -> Route {
        let mut r = Route::originated(Prefix::DEFAULT);
        for &h in hops.iter().rev() {
            r = r.extended_through(NodeId(h));
        }
        r
    }

    #[test]
    fn interning_is_idempotent() {
        let mut i = RouteInterner::new();
        let r1 = route(&[1, 2, 3]);
        let h1 = i.intern(&r1);
        let h2 = i.intern(&r1);
        assert_eq!(h1, h2);
        assert_eq!(i.len(), 1);
        assert_eq!(i.resolve(h1), Some(&r1));
    }

    #[test]
    fn distinct_routes_get_distinct_handles() {
        let mut i = RouteInterner::new();
        let h1 = i.intern(&route(&[1]));
        let h2 = i.intern(&route(&[2]));
        assert_ne!(h1, h2);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn none_handle_is_reserved() {
        let mut i = RouteInterner::new();
        assert_eq!(i.intern_opt(None), RouteHandle::NONE);
        assert!(RouteHandle::NONE.is_none());
        assert_eq!(i.resolve(RouteHandle::NONE), None);
        let h = i.intern_opt(Some(&route(&[5])));
        assert!(!h.is_none());
    }

    #[test]
    fn compress_state_roundtrips() {
        let mut i = RouteInterner::new();
        let state = vec![Some(route(&[1])), None, Some(route(&[1, 2]))];
        let compressed = i.compress_state(&state);
        assert_eq!(compressed.len(), 3);
        assert_eq!(i.resolve(compressed[0]), state[0].as_ref());
        assert_eq!(i.resolve(compressed[1]), None);
        assert_eq!(i.resolve(compressed[2]), state[2].as_ref());
        // Same state compresses to the same handles without growing the table.
        let before = i.len();
        let again = i.compress_state(&state);
        assert_eq!(again, compressed);
        assert_eq!(i.len(), before);
    }

    #[test]
    fn memory_estimate_is_nonzero() {
        let mut i = RouteInterner::new();
        assert!(i.is_empty());
        i.intern(&route(&[1, 2, 3, 4]));
        assert!(i.approx_bytes() > 0);
    }
}
