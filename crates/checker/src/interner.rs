//! Route interning (§4.4) — re-exported from `plankton-protocols`.
//!
//! The interner used to live here, with the checker lazily compressing
//! `Route`-owning states into handles at visited-check time. It now sits
//! *below* the RPVP layer (`plankton_protocols::interner`) so routes are
//! interned the moment the enabled-set computation derives them and the
//! whole search pipeline — states, enabled choices, undo records, visited
//! sets — is handle-native. This module remains as a re-export so existing
//! `plankton_checker::interner::...` paths keep working.

pub use plankton_protocols::interner::{RouteHandle, RouteInterner};
