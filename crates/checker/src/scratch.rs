//! Reusable per-worker search state.
//!
//! Every [`ModelChecker`](crate::ModelChecker) run needs a visited-state set;
//! allocating a fresh one per run is wasted work when a verification engine
//! executes thousands of runs per worker. A [`SearchScratch`] keeps the
//! visited set of the previous run and hands it back — cleared, but with its
//! hash table or Bloom bit array still allocated — to the next run on the
//! same worker.
//!
//! The visited set must *never* be shared across concurrent runs or carried
//! over without clearing: states are vectors of run-local route handles, so
//! stale entries from another run could alias fresh states and unsoundly
//! suppress exploration. The scratch API enforces the clear on every reuse.

use crate::options::SearchOptions;
use crate::undo::UndoStack;
use crate::visited::VisitedSet;

/// Reusable allocations for one worker's sequence of model-checking runs.
#[derive(Default)]
pub struct SearchScratch {
    visited: Option<VisitedSet>,
    /// The incremental explorer's apply/undo stack from the previous run
    /// (frame and displaced-enabled-entry buffers), handed back cleared.
    undo: Option<UndoStack>,
    /// Runs that reused a previous allocation (for engine statistics).
    reuses: u64,
}

impl SearchScratch {
    /// An empty scratch: the first run allocates fresh state.
    pub fn new() -> Self {
        Self::default()
    }

    /// A visited set matching `options`: the stored one (cleared) when its
    /// variant matches, otherwise a newly allocated one.
    pub fn take_visited(&mut self, options: &SearchOptions) -> VisitedSet {
        let stored = self.visited.take();
        match (options.bitstate_bits, stored) {
            (None, Some(mut v @ VisitedSet::Exact(_))) => {
                v.clear();
                self.reuses += 1;
                v
            }
            (Some(bits), Some(mut v))
                if v.bitstate_bits() == Some(crate::visited::BloomFilter::rounded_bits(bits)) =>
            {
                v.clear();
                self.reuses += 1;
                v
            }
            (None, _) => VisitedSet::exact(),
            (Some(bits), _) => VisitedSet::bitstate(bits),
        }
    }

    /// Store a run's visited set for reuse by the next run.
    pub fn put_visited(&mut self, visited: VisitedSet) {
        self.visited = Some(visited);
    }

    /// The stored undo stack (cleared), or a fresh one. Unlike the visited
    /// set there is no variant to match: the stack is always reusable.
    pub fn take_undo(&mut self) -> UndoStack {
        match self.undo.take() {
            Some(mut undo) => {
                undo.clear();
                undo
            }
            None => UndoStack::new(),
        }
    }

    /// Store a run's undo stack for reuse by the next run.
    pub fn put_undo(&mut self, undo: UndoStack) {
        self.undo = Some(undo);
    }

    /// How many runs reused a previous allocation.
    pub fn reuse_count(&self) -> u64 {
        self.reuses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::RouteHandle;

    #[test]
    fn exact_set_is_reused_and_cleared() {
        let mut scratch = SearchScratch::new();
        let options = SearchOptions::all_optimizations();
        let mut v = scratch.take_visited(&options);
        assert!(v.insert(&[RouteHandle(1), RouteHandle(2)]));
        scratch.put_visited(v);

        let v2 = scratch.take_visited(&options);
        assert!(v2.is_empty(), "reused set must be cleared");
        assert_eq!(scratch.reuse_count(), 1);
    }

    #[test]
    fn undo_stack_round_trips() {
        let mut scratch = SearchScratch::new();
        let undo = scratch.take_undo();
        assert_eq!(undo.depth(), 0);
        scratch.put_undo(undo);
        let undo = scratch.take_undo();
        assert_eq!(undo.depth(), 0, "reused stack must come back cleared");
    }

    #[test]
    fn variant_mismatch_allocates_fresh() {
        let mut scratch = SearchScratch::new();
        let exact = SearchOptions::all_optimizations();
        let bitstate = SearchOptions::all_optimizations().with_bitstate(1 << 14);

        let v = scratch.take_visited(&exact);
        scratch.put_visited(v);
        let v = scratch.take_visited(&bitstate);
        assert!(v.bitstate_bits().is_some());
        scratch.put_visited(v);
        let v = scratch.take_visited(&bitstate);
        assert_eq!(v.bitstate_bits(), Some(1 << 14));
        assert_eq!(scratch.reuse_count(), 1);
    }
}
