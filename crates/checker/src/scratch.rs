//! Reusable per-worker search state.
//!
//! Every [`ModelChecker`](crate::ModelChecker) run needs a visited-state
//! set, an undo stack, a route interner and branch-snapshot buffers;
//! allocating them fresh per run is wasted work when a verification engine
//! executes thousands of runs per worker. A [`SearchScratch`] keeps the
//! previous run's allocations and hands them back — cleared, but with hash
//! tables, bit arrays and vectors still allocated — to the next run on the
//! same worker, bundled as [`ScratchParts`].
//!
//! The parts must *never* be shared across concurrent runs or carried over
//! without clearing: visited states are vectors of route handles, so stale
//! entries from another run could alias fresh states and unsoundly suppress
//! exploration. The scratch API enforces the clear on every reuse.
//!
//! The interner is the exception: its handles are content-addressed and stay
//! valid across runs, so reuse keeps the table *warm* — a worker verifying
//! hundreds of failure scenarios interns each distinct route once instead of
//! once per run. [`RouteInterner::begin_run`] opens a per-run accounting
//! epoch so the reported statistics stay identical to a cold interner's.

use crate::options::SearchOptions;
use crate::undo::UndoStack;
use crate::visited::VisitedSet;
use plankton_protocols::rpvp::EnabledChoice;
use plankton_protocols::RouteInterner;

/// A pool of enabled-set snapshot buffers for branch points. The DFS pops a
/// buffer per live `BranchAll` frame and pushes it back when the frame
/// exits, so sibling branch points at the same depth reuse one allocation
/// instead of `to_vec()`-ing the enabled set every time.
#[derive(Default)]
pub struct SnapshotPool {
    bufs: Vec<Vec<EnabledChoice>>,
}

impl SnapshotPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a cleared buffer (allocates only when the pool is dry, i.e. at
    /// a new maximum branch-nesting depth).
    pub fn pop(&mut self) -> Vec<EnabledChoice> {
        let mut buf = self.bufs.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Return a buffer to the pool.
    pub fn push(&mut self, buf: Vec<EnabledChoice>) {
        self.bufs.push(buf);
    }
}

/// The bundle of reusable allocations one [`ModelChecker`](crate::ModelChecker)
/// run draws from and hands back.
pub struct ScratchParts {
    /// The visited-state set.
    pub visited: VisitedSet,
    /// The apply/undo stack (frame and displaced-enabled-entry buffers).
    pub undo: UndoStack,
    /// The route interner. Kept warm between runs (handles are
    /// content-addressed); per-run stats restart via `begin_run`.
    pub interner: RouteInterner,
    /// Branch-point snapshot buffers.
    pub snapshots: SnapshotPool,
}

impl ScratchParts {
    /// Freshly allocated parts matching `options` (exact or bitstate
    /// visited set).
    pub fn fresh(options: &SearchOptions) -> Self {
        let visited = match options.bitstate_bits {
            Some(bits) => VisitedSet::bitstate(bits),
            None => VisitedSet::exact(),
        };
        ScratchParts {
            visited,
            undo: UndoStack::new(),
            interner: RouteInterner::new(),
            snapshots: SnapshotPool::new(),
        }
    }

    /// Reset every part for a new run, keeping allocations — and keeping
    /// the interner's route table warm (only its per-run stats restart).
    pub fn clear(&mut self) {
        self.visited.clear();
        self.undo.clear();
        self.interner.begin_run();
    }
}

/// Reusable allocations for one worker's sequence of model-checking runs.
#[derive(Default)]
pub struct SearchScratch {
    visited: Option<VisitedSet>,
    /// The incremental explorer's apply/undo stack from the previous run
    /// (frame and displaced-enabled-entry buffers), handed back cleared.
    undo: Option<UndoStack>,
    interner: Option<RouteInterner>,
    snapshots: Option<SnapshotPool>,
    /// Runs that reused a previous allocation (for engine statistics).
    reuses: u64,
}

impl SearchScratch {
    /// An empty scratch: the first run allocates fresh state.
    pub fn new() -> Self {
        Self::default()
    }

    /// The full scratch bundle for a run under `options`: stored parts
    /// (cleared) where reusable, freshly allocated ones otherwise.
    pub fn take_parts(&mut self, options: &SearchOptions) -> ScratchParts {
        ScratchParts {
            visited: self.take_visited(options),
            undo: self.take_undo(),
            interner: match self.interner.take() {
                Some(mut i) => {
                    i.begin_run();
                    i
                }
                None => RouteInterner::new(),
            },
            snapshots: self.snapshots.take().unwrap_or_default(),
        }
    }

    /// Store a run's scratch bundle for reuse by the next run.
    pub fn put_parts(&mut self, parts: ScratchParts) {
        self.visited = Some(parts.visited);
        self.undo = Some(parts.undo);
        self.interner = Some(parts.interner);
        self.snapshots = Some(parts.snapshots);
    }

    /// A visited set matching `options`: the stored one (cleared) when its
    /// variant matches, otherwise a newly allocated one.
    pub fn take_visited(&mut self, options: &SearchOptions) -> VisitedSet {
        let stored = self.visited.take();
        match (options.bitstate_bits, stored) {
            (None, Some(mut v @ VisitedSet::Exact(_))) => {
                v.clear();
                self.reuses += 1;
                v
            }
            (Some(bits), Some(mut v))
                if v.bitstate_bits() == Some(crate::visited::BloomFilter::rounded_bits(bits)) =>
            {
                v.clear();
                self.reuses += 1;
                v
            }
            (None, _) => VisitedSet::exact(),
            (Some(bits), _) => VisitedSet::bitstate(bits),
        }
    }

    /// Store a run's visited set for reuse by the next run.
    pub fn put_visited(&mut self, visited: VisitedSet) {
        self.visited = Some(visited);
    }

    /// The stored undo stack (cleared), or a fresh one. Unlike the visited
    /// set there is no variant to match: the stack is always reusable.
    pub fn take_undo(&mut self) -> UndoStack {
        match self.undo.take() {
            Some(mut undo) => {
                undo.clear();
                undo
            }
            None => UndoStack::new(),
        }
    }

    /// Store a run's undo stack for reuse by the next run.
    pub fn put_undo(&mut self, undo: UndoStack) {
        self.undo = Some(undo);
    }

    /// How many runs reused a previous allocation.
    pub fn reuse_count(&self) -> u64 {
        self.reuses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::RouteHandle;

    #[test]
    fn exact_set_is_reused_and_cleared() {
        let mut scratch = SearchScratch::new();
        let options = SearchOptions::all_optimizations();
        let int = RouteInterner::new();
        let mut v = scratch.take_visited(&options);
        assert!(v.insert(&[RouteHandle(1), RouteHandle(2)], &int));
        scratch.put_visited(v);

        let v2 = scratch.take_visited(&options);
        assert!(v2.is_empty(), "reused set must be cleared");
        assert_eq!(scratch.reuse_count(), 1);
    }

    #[test]
    fn undo_stack_round_trips() {
        let mut scratch = SearchScratch::new();
        let undo = scratch.take_undo();
        assert_eq!(undo.depth(), 0);
        scratch.put_undo(undo);
        let undo = scratch.take_undo();
        assert_eq!(undo.depth(), 0, "reused stack must come back cleared");
    }

    #[test]
    fn variant_mismatch_allocates_fresh() {
        let mut scratch = SearchScratch::new();
        let exact = SearchOptions::all_optimizations();
        let bitstate = SearchOptions::all_optimizations().with_bitstate(1 << 14);

        let v = scratch.take_visited(&exact);
        scratch.put_visited(v);
        let v = scratch.take_visited(&bitstate);
        assert!(v.bitstate_bits().is_some());
        scratch.put_visited(v);
        let v = scratch.take_visited(&bitstate);
        assert_eq!(v.bitstate_bits(), Some(1 << 14));
        assert_eq!(scratch.reuse_count(), 1);
    }

    #[test]
    fn parts_round_trip_cleared_with_warm_interner() {
        let mut scratch = SearchScratch::new();
        let options = SearchOptions::all_optimizations();
        let mut parts = scratch.take_parts(&options);
        let route = plankton_protocols::Route::originated(plankton_net::ip::Prefix::DEFAULT);
        let h = parts.interner.intern(&route);
        assert!(parts.visited.insert(&[h], &parts.interner));
        scratch.put_parts(parts);
        let mut parts = scratch.take_parts(&options);
        assert!(parts.visited.is_empty(), "visited must come back cleared");
        assert_eq!(parts.undo.depth(), 0);
        // The interner stays warm: the route is still in the table, with the
        // same handle, but the new run's stats start from zero.
        assert_eq!(parts.interner.len(), 1);
        assert_eq!(parts.interner.run_interned(), 0);
        assert_eq!(parts.interner.intern(&route), h, "handles stay stable");
        assert_eq!(parts.interner.run_interned(), 1);
    }
}
