//! Search statistics reported by the model checker, used by the evaluation
//! harness for the state-space-reduction and memory numbers of Figures 8
//! and 9.

use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Counters describing one model-checking run (or, summed, a whole
/// verification).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// RPVP steps applied (transitions explored).
    pub steps: u64,
    /// States at which the search branched non-deterministically.
    pub branch_points: u64,
    /// Total branches explored from those points.
    pub branches: u64,
    /// Executions abandoned by consistent-execution pruning.
    pub pruned_inconsistent: u64,
    /// Executions cut short by policy-based pruning (all sources decided).
    pub pruned_by_policy: u64,
    /// Branches skipped because the state had already been visited.
    pub pruned_visited: u64,
    /// Converged states emitted to the policy callback.
    pub converged_states: u64,
    /// Steps taken through the deterministic-node fast path.
    pub deterministic_steps: u64,
    /// Nodes whose enabled status was recomputed by the delta-maintained
    /// enabled set (the pre-change explorer recomputed every node at every
    /// step, so `steps × node_count` is the figure this improves on).
    #[serde(default)]
    pub enabled_recomputed_nodes: u64,
    /// Deepest apply/undo stack reached by the in-place DFS (the number of
    /// live step records replacing what used to be full state clones).
    #[serde(default)]
    pub undo_depth_max: u64,
    /// Maximum DFS depth reached.
    pub max_depth: u64,
    /// Distinct routes interned (state-hashing table size).
    pub interned_routes: u64,
    /// Distinct states recorded in the visited set.
    pub visited_states: u64,
    /// Approximate memory of interner + visited set, in bytes.
    pub approx_memory_bytes: u64,
    /// Whether the search hit its step limit before finishing.
    pub truncated: bool,
}

impl SearchStats {
    /// Total states touched (steps + the initial state).
    pub fn states_explored(&self) -> u64 {
        self.steps + 1
    }

    /// Approximate memory in mebibytes, for reporting.
    pub fn approx_memory_mib(&self) -> f64 {
        self.approx_memory_bytes as f64 / (1024.0 * 1024.0)
    }

    /// The stats with the incremental-explorer observability counters
    /// zeroed. The reference (pre-change) explorer has no delta maintenance
    /// or undo stack, so differential tests compare through this view.
    pub fn without_incremental_counters(mut self) -> Self {
        self.enabled_recomputed_nodes = 0;
        self.undo_depth_max = 0;
        self
    }
}

impl AddAssign for SearchStats {
    fn add_assign(&mut self, rhs: SearchStats) {
        self.steps += rhs.steps;
        self.branch_points += rhs.branch_points;
        self.branches += rhs.branches;
        self.pruned_inconsistent += rhs.pruned_inconsistent;
        self.pruned_by_policy += rhs.pruned_by_policy;
        self.pruned_visited += rhs.pruned_visited;
        self.converged_states += rhs.converged_states;
        self.deterministic_steps += rhs.deterministic_steps;
        self.enabled_recomputed_nodes += rhs.enabled_recomputed_nodes;
        self.undo_depth_max = self.undo_depth_max.max(rhs.undo_depth_max);
        self.max_depth = self.max_depth.max(rhs.max_depth);
        self.interned_routes += rhs.interned_routes;
        self.visited_states += rhs.visited_states;
        self.approx_memory_bytes += rhs.approx_memory_bytes;
        self.truncated |= rhs.truncated;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation() {
        let mut a = SearchStats {
            steps: 10,
            max_depth: 5,
            converged_states: 1,
            ..Default::default()
        };
        let b = SearchStats {
            steps: 7,
            max_depth: 9,
            converged_states: 2,
            truncated: true,
            ..Default::default()
        };
        a += b;
        assert_eq!(a.steps, 17);
        assert_eq!(a.max_depth, 9);
        assert_eq!(a.converged_states, 3);
        assert!(a.truncated);
        assert_eq!(a.states_explored(), 18);
    }

    #[test]
    fn memory_reporting() {
        let s = SearchStats {
            approx_memory_bytes: 3 * 1024 * 1024,
            ..Default::default()
        };
        assert!((s.approx_memory_mib() - 3.0).abs() < 1e-9);
    }
}
