//! Visited-state tracking: exact storage of interned states, or SPIN-style
//! bitstate hashing through a Bloom filter (§5, Figure 9 of the paper).

use crate::interner::{RouteHandle, RouteInterner};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

/// A Bloom filter over state fingerprints. Bitstate hashing trades a small
/// probability of false positives (states wrongly considered visited, i.e.
/// reduced coverage) for a large reduction in memory — the paper reports
/// coverage above 99.9% in its experiments.
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: Vec<u64>,
    mask: u64,
    hashes: u32,
    inserted: usize,
}

impl BloomFilter {
    /// The actual bit-array size allocated for a requested size: rounded up
    /// to a power of two, with a 1024-bit floor. Shared with
    /// [`SearchScratch`](crate::SearchScratch) so its reuse check can never
    /// drift from the allocation policy.
    pub fn rounded_bits(bits: usize) -> usize {
        bits.next_power_of_two().max(1024)
    }

    /// A filter with at least `bits` bits (see [`BloomFilter::rounded_bits`]).
    pub fn with_bits(bits: usize) -> Self {
        let bits = Self::rounded_bits(bits);
        BloomFilter {
            bits: vec![0; bits / 64],
            mask: bits as u64 - 1,
            hashes: 3,
            inserted: 0,
        }
    }

    /// The probe bases for double hashing (Kirsch–Mitzenmacher): one SipHash
    /// run yields `h1`, the second hash is derived from its upper bits and
    /// forced odd so every stride is a unit modulo the power-of-two bit
    /// count. Probe `i` lands at `h1 + i·h2` — no per-call allocation, no
    /// extra hasher runs.
    #[inline]
    fn probe(fingerprint: u64) -> (u64, u64) {
        let mut h = DefaultHasher::new();
        fingerprint.hash(&mut h);
        let h1 = h.finish();
        let h2 = (h1 >> 32) | 1;
        (h1, h2)
    }

    fn positions(&self, fingerprint: u64) -> impl Iterator<Item = u64> + '_ {
        let (h1, h2) = Self::probe(fingerprint);
        (0..self.hashes as u64).map(move |i| h1.wrapping_add(i.wrapping_mul(h2)) & self.mask)
    }

    /// Insert a fingerprint; returns `true` if it was (probably) new.
    pub fn insert(&mut self, fingerprint: u64) -> bool {
        let (h1, h2) = Self::probe(fingerprint);
        let mut new = false;
        for i in 0..self.hashes as u64 {
            let pos = h1.wrapping_add(i.wrapping_mul(h2)) & self.mask;
            let (word, bit) = ((pos / 64) as usize, pos % 64);
            if self.bits[word] & (1 << bit) == 0 {
                new = true;
                self.bits[word] |= 1 << bit;
            }
        }
        if new {
            self.inserted += 1;
        }
        new
    }

    /// Reset the filter to empty, keeping the allocated bit array. Free when
    /// nothing was ever inserted (the bits are already zero).
    pub fn clear(&mut self) {
        if self.inserted == 0 {
            return;
        }
        self.bits.fill(0);
        self.inserted = 0;
    }

    /// Has the fingerprint (probably) been inserted?
    pub fn contains(&self, fingerprint: u64) -> bool {
        self.positions(fingerprint)
            .all(|pos| self.bits[(pos / 64) as usize] & (1 << (pos % 64)) != 0)
    }

    /// Number of fingerprints that were new when inserted.
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// Memory used by the bit array, in bytes.
    pub fn bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

/// The visited-state set used by the explorer.
pub enum VisitedSet {
    /// Store every visited state exactly (as its vector of interned route
    /// handles). No false positives.
    Exact(HashSet<Vec<RouteHandle>>),
    /// Bitstate hashing: store only Bloom-filter bits of the state
    /// fingerprint.
    Bitstate(BloomFilter),
}

impl VisitedSet {
    /// An exact visited set.
    pub fn exact() -> Self {
        VisitedSet::Exact(HashSet::new())
    }

    /// A bitstate (Bloom filter) visited set with the given number of bits.
    pub fn bitstate(bits: usize) -> Self {
        VisitedSet::Bitstate(BloomFilter::with_bits(bits))
    }

    /// The bitstate fingerprint hashes the *content-hash sequence* of the
    /// state, not the handles: handle numbering depends on first-occurrence
    /// order, which differs between explorers that evaluate nodes in
    /// different orders, while content hashes are numbering-independent —
    /// so both explorers make identical pruning decisions.
    fn fingerprint(state: &[RouteHandle], interner: &RouteInterner) -> u64 {
        let mut h = DefaultHasher::new();
        state.len().hash(&mut h);
        for &handle in state {
            interner.content_hash(handle).hash(&mut h);
        }
        h.finish()
    }

    /// Reset to empty while keeping the underlying allocations (the hash
    /// set's table or the Bloom filter's bit array), so a worker can reuse
    /// one visited set across many verification runs without reallocating.
    pub fn clear(&mut self) {
        match self {
            VisitedSet::Exact(set) => set.clear(),
            VisitedSet::Bitstate(bloom) => bloom.clear(),
        }
    }

    /// The number of Bloom-filter bits, if this is a bitstate set.
    pub fn bitstate_bits(&self) -> Option<usize> {
        match self {
            VisitedSet::Exact(_) => None,
            VisitedSet::Bitstate(bloom) => Some(bloom.bytes() * 8),
        }
    }

    /// Record a state. Returns `true` if the state had not been seen before
    /// (definitely for [`VisitedSet::Exact`], probabilistically for
    /// [`VisitedSet::Bitstate`]). The interner is only consulted for
    /// bitstate fingerprints (content hashes); exact storage compares the
    /// handles directly.
    pub fn insert(&mut self, state: &[RouteHandle], interner: &RouteInterner) -> bool {
        match self {
            VisitedSet::Exact(set) => {
                if set.contains(state) {
                    false
                } else {
                    set.insert(state.to_vec())
                }
            }
            VisitedSet::Bitstate(bloom) => bloom.insert(Self::fingerprint(state, interner)),
        }
    }

    /// Number of distinct states recorded.
    pub fn len(&self) -> usize {
        match self {
            VisitedSet::Exact(set) => set.len(),
            VisitedSet::Bitstate(bloom) => bloom.inserted(),
        }
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate memory footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        match self {
            VisitedSet::Exact(set) => set
                .iter()
                .map(|v| v.len() * std::mem::size_of::<RouteHandle>() + 48)
                .sum(),
            VisitedSet::Bitstate(bloom) => bloom.bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(vals: &[u64]) -> Vec<RouteHandle> {
        vals.iter().map(|&v| RouteHandle(v)).collect()
    }

    // An empty interner: `content_hash` falls back to the handle value, so
    // arbitrary handles still fingerprint consistently in these tests.
    fn interner() -> RouteInterner {
        RouteInterner::new()
    }

    #[test]
    fn exact_set_detects_duplicates() {
        let i = interner();
        let mut v = VisitedSet::exact();
        assert!(v.insert(&state(&[1, 2, 3]), &i));
        assert!(!v.insert(&state(&[1, 2, 3]), &i));
        assert!(v.insert(&state(&[1, 2, 4]), &i));
        assert_eq!(v.len(), 2);
        assert!(v.approx_bytes() > 0);
    }

    #[test]
    fn bitstate_detects_duplicates() {
        let i = interner();
        let mut v = VisitedSet::bitstate(1 << 16);
        assert!(v.insert(&state(&[1, 2, 3]), &i));
        assert!(!v.insert(&state(&[1, 2, 3]), &i));
        assert!(v.insert(&state(&[9, 9, 9]), &i));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn bitstate_uses_fixed_memory() {
        let int = interner();
        let mut v = VisitedSet::bitstate(1 << 16);
        let before = v.approx_bytes();
        for i in 0..1000u64 {
            v.insert(&state(&[i, i + 1, i + 2]), &int);
        }
        assert_eq!(v.approx_bytes(), before);
        // Exact storage grows with the number of states.
        let mut e = VisitedSet::exact();
        for i in 0..1000u64 {
            e.insert(&state(&[i, i + 1, i + 2]), &int);
        }
        assert!(e.approx_bytes() > v.approx_bytes() / 4);
    }

    #[test]
    fn bloom_contains_after_insert() {
        let mut b = BloomFilter::with_bits(1 << 14);
        assert!(!b.contains(42));
        b.insert(42);
        assert!(b.contains(42));
        assert_eq!(b.inserted(), 1);
    }

    #[test]
    fn double_hashing_probes_three_distinct_positions() {
        let b = BloomFilter::with_bits(1 << 14);
        for fp in 0..1000u64 {
            let positions: Vec<u64> = b.positions(fp).collect();
            assert_eq!(positions.len(), 3);
            // The stride is odd, so probes are pairwise distinct modulo the
            // power-of-two bit count.
            assert_ne!(positions[0], positions[1]);
            assert_ne!(positions[1], positions[2]);
            assert_ne!(positions[0], positions[2]);
            assert!(positions.iter().all(|&p| p < (1 << 14)));
        }
    }

    #[test]
    fn bloom_false_positive_rate_is_low_when_sized_generously() {
        let mut b = BloomFilter::with_bits(1 << 18);
        for i in 0..1000u64 {
            b.insert(i);
        }
        let false_positives = (10_000..20_000u64).filter(|&i| b.contains(i)).count();
        assert!(false_positives < 50, "false positives: {false_positives}");
    }
}
