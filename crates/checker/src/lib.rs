//! # plankton-checker
//!
//! The explicit-state model checker that plays SPIN's role in the paper
//! (§3.3, §4): a depth-first search over the non-deterministic executions of
//! RPVP, emitting every converged state it finds to a caller-supplied
//! callback, with the paper's full optimization suite:
//!
//! * **consistent-execution pruning** (§4.1.1) — abandon any execution in
//!   which a node would have to change an already-selected best path;
//! * **deterministic-node partial order reduction** (§4.1.2) — when an
//!   enabled node's pending update provably equals its converged selection,
//!   process it without branching over the other enabled nodes;
//! * **decision independence** (§4.1.3) — when every pending update comes
//!   from peers that have already made their final decision, the execution
//!   order is irrelevant and a single arbitrary order is explored;
//! * **policy-based pruning** (§4.2) — finish an execution as soon as every
//!   policy source node has decided, and never execute nodes that cannot
//!   influence a source;
//! * **state hashing** (§4.4) — routes are interned once and states are
//!   vectors of 64-bit handles; visited-state detection works on those
//!   handles, optionally through a Bloom filter (SPIN's bitstate hashing,
//!   Figure 9).
//!
//! The search itself is **incremental**: delta-maintained enabled sets (only
//! the stepped node's reverse-peer neighborhood is recomputed per step) and
//! an apply/undo DFS (no state clones at branch points) — see [`explorer`].
//! States are handle-native end to end: routes are interned at generation
//! time in the protocol layer, so visited checks compare handle vectors
//! directly and steps move a single `u64`. The pre-incremental search is
//! preserved as [`reference::ReferenceChecker`] and differentially tested
//! against the incremental one.

pub mod explorer;
pub mod interner;
pub mod options;
pub mod por;
pub mod reference;
pub mod scratch;
pub mod stats;
pub mod trail;
pub mod undo;
pub mod visited;

pub use explorer::{ModelChecker, Verdict};
pub use interner::{RouteHandle, RouteInterner};
pub use options::SearchOptions;
pub use por::{BgpPor, DiScratch, NoPor, OspfPor, PorDecision, PorHeuristic};
pub use reference::ReferenceChecker;
pub use scratch::{ScratchParts, SearchScratch, SnapshotPool};
pub use stats::SearchStats;
pub use trail::{Trail, TrailEvent};
pub use undo::UndoStack;
pub use visited::VisitedSet;
