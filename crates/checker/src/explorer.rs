//! The depth-first explorer: Plankton's replacement for SPIN.
//!
//! One [`ModelChecker`] run explores every RPVP execution of one protocol
//! instance (one PEC × one prefix × one failure scenario) and hands every
//! converged state it finds — together with the execution trail that produced
//! it — to a caller-supplied callback. The callback decides whether to keep
//! searching (look for more converged states / more violations) or stop.

use crate::interner::RouteInterner;
use crate::options::SearchOptions;
use crate::por::{decision_independent, PorDecision, PorHeuristic};
use crate::stats::SearchStats;
use crate::trail::Trail;
use crate::visited::VisitedSet;
use plankton_net::failure::FailureSet;
use plankton_net::topology::NodeId;
use plankton_protocols::rpvp::{ConvergedState, EnabledChoice, Rpvp, RpvpState};
use plankton_protocols::ProtocolModel;

/// What the policy callback wants the explorer to do after seeing a
/// converged state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Keep exploring for further converged states.
    Continue,
    /// Stop the search (e.g. a violation was found and one counterexample is
    /// enough).
    Stop,
}

/// The explicit-state model checker for one protocol instance.
pub struct ModelChecker<'m> {
    rpvp: Rpvp<'m>,
    por: Box<dyn PorHeuristic + 'm>,
    options: SearchOptions,
    interner: RouteInterner,
    visited: VisitedSet,
    stats: SearchStats,
    trail: Trail,
    /// Influence pruning: nodes allowed to execute (None = everyone).
    allowed: Option<Vec<bool>>,
    sources: Option<Vec<NodeId>>,
    stop: bool,
}

impl<'m> ModelChecker<'m> {
    /// Build a checker for `model` under `failures` (already applied when the
    /// model was constructed; recorded here only for the trail).
    pub fn new(
        model: &'m dyn ProtocolModel,
        por: Box<dyn PorHeuristic + 'm>,
        options: SearchOptions,
        failures: FailureSet,
    ) -> Self {
        let visited = match options.bitstate_bits {
            Some(bits) => VisitedSet::bitstate(bits),
            None => VisitedSet::exact(),
        };
        Self::new_with_visited(model, por, options, failures, visited)
    }

    /// Like [`ModelChecker::new`], but uses `visited` (cleared first)
    /// instead of allocating a fresh visited set — the zero-allocation path
    /// for [`SearchScratch`](crate::SearchScratch) reuse.
    pub fn new_with_visited(
        model: &'m dyn ProtocolModel,
        por: Box<dyn PorHeuristic + 'm>,
        options: SearchOptions,
        failures: FailureSet,
        mut visited: VisitedSet,
    ) -> Self {
        visited.clear();
        let sources = options.source_nodes.clone();
        let allowed = if options.influence_pruning {
            sources.as_ref().map(|s| influence_set(model, s))
        } else {
            None
        };
        ModelChecker {
            rpvp: Rpvp::new(model),
            por,
            options,
            interner: RouteInterner::new(),
            visited,
            stats: SearchStats::default(),
            trail: Trail::new(failures),
            allowed,
            sources,
            stop: false,
        }
    }

    /// Run the exhaustive search, invoking `callback` on every converged
    /// state. Returns the search statistics.
    pub fn run<F>(self, callback: &mut F) -> SearchStats
    where
        F: FnMut(&ConvergedState, &Trail) -> Verdict,
    {
        self.run_returning(callback).0
    }

    /// Like [`ModelChecker::run`], but also hands back the visited set so the
    /// caller can return it to a [`SearchScratch`](crate::SearchScratch) for
    /// the next run.
    pub fn run_returning<F>(mut self, callback: &mut F) -> (SearchStats, VisitedSet)
    where
        F: FnMut(&ConvergedState, &Trail) -> Verdict,
    {
        let mut state = self.rpvp.initial_state();
        let mut decided = vec![false; self.rpvp.model().node_count()];
        for &o in self.rpvp.model().origins() {
            decided[o.index()] = true;
        }
        self.dfs(&mut state, &mut decided, 0, callback);
        self.stats.interned_routes = self.interner.len() as u64;
        self.stats.visited_states = self.visited.len() as u64;
        self.stats.approx_memory_bytes =
            (self.interner.approx_bytes() + self.visited.approx_bytes()) as u64;
        (self.stats, self.visited)
    }

    /// The enabled set, restricted to nodes allowed by influence pruning.
    fn enabled(&self, state: &RpvpState) -> Vec<EnabledChoice> {
        let all = self.rpvp.enabled(state);
        match &self.allowed {
            None => all,
            Some(allowed) => all
                .into_iter()
                .filter(|c| allowed[c.node.index()])
                .collect(),
        }
    }

    fn all_sources_decided(&self, state: &RpvpState) -> bool {
        match &self.sources {
            None => false,
            Some(sources) => {
                !sources.is_empty()
                    && sources
                        .iter()
                        .all(|s| state.best(*s).is_some() || self.rpvp.is_origin(*s))
            }
        }
    }

    fn emit<F>(&mut self, state: &RpvpState, callback: &mut F)
    where
        F: FnMut(&ConvergedState, &Trail) -> Verdict,
    {
        self.stats.converged_states += 1;
        let converged = ConvergedState {
            best: state.best.clone(),
        };
        if callback(&converged, &self.trail) == Verdict::Stop {
            self.stop = true;
        }
        if let Some(max) = self.options.max_converged_states {
            if self.stats.converged_states >= max as u64 {
                self.stop = true;
            }
        }
    }

    fn apply(
        &mut self,
        state: &mut RpvpState,
        decided: &mut [bool],
        node: NodeId,
        peer: Option<NodeId>,
        deterministic: bool,
    ) {
        self.rpvp.step(state, node, peer);
        if peer.is_some() {
            decided[node.index()] = true;
        }
        self.trail.push(node, peer, deterministic);
        self.stats.steps += 1;
        if deterministic {
            self.stats.deterministic_steps += 1;
        }
    }

    fn dfs<F>(&mut self, state: &mut RpvpState, decided: &mut [bool], depth: u64, callback: &mut F)
    where
        F: FnMut(&ConvergedState, &Trail) -> Verdict,
    {
        let mut depth = depth;
        loop {
            if self.stop {
                return;
            }
            if self.stats.steps >= self.options.max_steps {
                self.stats.truncated = true;
                self.stop = true;
                return;
            }
            self.stats.max_depth = self.stats.max_depth.max(depth);

            let enabled = self.enabled(state);

            // Consistent-execution pruning (§4.1.1): a node that has already
            // selected a path but is enabled again would have to change it —
            // evidence that this execution is not consistent with any
            // converged state, so abandon it.
            if self.options.consistent_executions {
                let inconsistent = enabled
                    .iter()
                    .any(|c| c.invalid || state.best(c.node).is_some());
                if inconsistent {
                    self.stats.pruned_inconsistent += 1;
                    return;
                }
            }

            // Policy-based pruning (§4.2): once every source node has made
            // its decision the rest of the execution cannot change the
            // policy's verdict.
            if self.options.policy_pruning && self.all_sources_decided(state) {
                self.stats.pruned_by_policy += 1;
                self.emit(state, callback);
                return;
            }

            if enabled.is_empty() {
                self.emit(state, callback);
                return;
            }

            // Partial order reduction.
            let decision = if self.options.decision_independence {
                decision_independent(self.rpvp.model(), &enabled, decided)
            } else {
                None
            }
            .unwrap_or_else(|| {
                if self.options.deterministic_nodes {
                    self.por.pick(state, &enabled, decided)
                } else {
                    PorDecision::BranchAll
                }
            });

            match decision {
                PorDecision::Deterministic { choice, update } => {
                    let c = &enabled[choice];
                    let node = c.node;
                    let peer = c.best_updates.get(update).map(|(p, _)| *p);
                    self.apply(state, decided, node, peer, true);
                    depth += 1;
                    continue;
                }
                PorDecision::BranchUpdates { choice } => {
                    let c = enabled[choice].clone();
                    self.branch(state, decided, depth, callback, &[c], false);
                    return;
                }
                PorDecision::BranchAll => {
                    self.branch(state, decided, depth, callback, &enabled, true);
                    return;
                }
            }
        }
    }

    /// Branch over the given enabled choices: for each choice, one branch per
    /// best update (plus a clear-only branch for invalid paths when
    /// `include_clears` and the node has no usable update).
    fn branch<F>(
        &mut self,
        state: &RpvpState,
        decided: &[bool],
        depth: u64,
        callback: &mut F,
        choices: &[EnabledChoice],
        include_clears: bool,
    ) where
        F: FnMut(&ConvergedState, &Trail) -> Verdict,
    {
        self.stats.branch_points += 1;
        for choice in choices {
            let mut alternatives: Vec<Option<NodeId>> =
                choice.best_updates.iter().map(|(p, _)| Some(*p)).collect();
            if alternatives.is_empty() && include_clears && choice.invalid {
                alternatives.push(None);
            }
            for peer in alternatives {
                if self.stop {
                    return;
                }
                self.stats.branches += 1;
                let mut child = state.clone();
                let mut child_decided = decided.to_vec();
                self.apply(&mut child, &mut child_decided, choice.node, peer, false);
                // Visited-state detection at branch points only.
                let compressed = self.interner.compress_state(&child.best);
                if !self.visited.insert(&compressed) {
                    self.stats.pruned_visited += 1;
                    self.trail.pop();
                    continue;
                }
                self.dfs(&mut child, &mut child_decided, depth + 1, callback);
                self.trail.pop();
            }
        }
    }
}

/// The set of nodes that can influence any of the `sources` through chains of
/// advertisements (§4.2): reverse reachability over the peer graph. Nodes
/// outside this set are not allowed to execute.
fn influence_set(model: &dyn ProtocolModel, sources: &[NodeId]) -> Vec<bool> {
    let n = model.node_count();
    let mut allowed = vec![false; n];
    let mut queue: std::collections::VecDeque<NodeId> = std::collections::VecDeque::new();
    for &s in sources {
        if s.index() < n && !allowed[s.index()] {
            allowed[s.index()] = true;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &p in model.peers(u) {
            if !allowed[p.index()] {
                allowed[p.index()] = true;
                queue.push_back(p);
            }
        }
    }
    allowed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::por::{BgpPor, NoPor, OspfPor};
    use plankton_config::scenarios::{disagree_gadget, ring_ospf};
    use plankton_protocols::bgp::{BgpModel, UniformUnderlay};
    use plankton_protocols::ospf::OspfModel;
    use std::collections::HashSet;
    use std::sync::Arc;

    fn collect_converged(
        model: &dyn ProtocolModel,
        por: Box<dyn PorHeuristic + '_>,
        options: SearchOptions,
    ) -> (Vec<ConvergedState>, SearchStats) {
        let checker = ModelChecker::new(model, por, options, FailureSet::none());
        let mut states = Vec::new();
        let stats = checker.run(&mut |s, _| {
            states.push(s.clone());
            Verdict::Continue
        });
        (states, stats)
    }

    #[test]
    fn ospf_ring_has_single_converged_state() {
        let s = ring_ospf(6);
        let model = OspfModel::new(
            &s.network,
            s.destination,
            vec![s.origin],
            &FailureSet::none(),
        );
        let (states, stats) = collect_converged(
            &model,
            Box::new(OspfPor),
            SearchOptions::all_optimizations(),
        );
        assert_eq!(states.len(), 1);
        assert!(stats.deterministic_steps > 0);
        assert_eq!(stats.branch_points, 0);
        // Every node reaches the origin.
        for n in s.network.topology.node_ids() {
            if n != s.origin {
                assert!(states[0].best(n).is_some());
            }
        }
    }

    #[test]
    fn unoptimized_search_finds_the_same_ospf_state() {
        let s = ring_ospf(4);
        let model = OspfModel::new(
            &s.network,
            s.destination,
            vec![s.origin],
            &FailureSet::none(),
        );
        let (optimized, _) = collect_converged(
            &model,
            Box::new(OspfPor),
            SearchOptions::all_optimizations(),
        );
        let (naive, naive_stats) =
            collect_converged(&model, Box::new(NoPor), SearchOptions::no_optimizations());
        // The naive search revisits the converged state through many
        // executions; the set of distinct converged forwarding states must
        // still be exactly the optimized one.
        let canon =
            |s: &ConvergedState| (0..4u32).map(|n| s.next_hop(NodeId(n))).collect::<Vec<_>>();
        let naive_set: HashSet<_> = naive.iter().map(canon).collect();
        let opt_set: HashSet<_> = optimized.iter().map(canon).collect();
        assert_eq!(naive_set, opt_set);
        assert!(naive_stats.steps > 0);
    }

    #[test]
    fn disagree_gadget_yields_both_converged_states() {
        let g = disagree_gadget();
        let model = BgpModel::new(
            &g.network,
            g.destination,
            vec![g.origin],
            &FailureSet::none(),
            Arc::new(UniformUnderlay),
        );
        let por = BgpPor::from_model(&model);
        let (states, stats) =
            collect_converged(&model, Box::new(por), SearchOptions::all_optimizations());
        let a = g.actors[0];
        let b = g.actors[1];
        let outcomes: HashSet<(Option<NodeId>, Option<NodeId>)> = states
            .iter()
            .map(|s| (s.next_hop(a), s.next_hop(b)))
            .collect();
        assert!(
            outcomes.contains(&(Some(b), Some(g.origin))),
            "{outcomes:?}"
        );
        assert!(
            outcomes.contains(&(Some(g.origin), Some(a))),
            "{outcomes:?}"
        );
        assert!(stats.branch_points > 0, "the gadget requires branching");
    }

    #[test]
    fn consistent_execution_pruning_reduces_search() {
        // A 6-router OSPF ring explored with *no* partial order reduction:
        // some execution orders make a far-side router adopt the long way
        // round before the short route exists, which consistent-execution
        // pruning then abandons.
        let s = ring_ospf(6);
        let model = OspfModel::new(
            &s.network,
            s.destination,
            vec![s.origin],
            &FailureSet::none(),
        );
        let (with, with_stats) = collect_converged(
            &model,
            Box::new(NoPor),
            SearchOptions {
                consistent_executions: true,
                deterministic_nodes: false,
                decision_independence: false,
                policy_pruning: false,
                influence_pruning: false,
                ..SearchOptions::all_optimizations()
            },
        );
        let (without, without_stats) =
            collect_converged(&model, Box::new(NoPor), SearchOptions::no_optimizations());
        // Same distinct converged forwarding states, fewer or equal steps.
        let canon =
            |s: &ConvergedState| (0..6u32).map(|n| s.next_hop(NodeId(n))).collect::<Vec<_>>();
        let a: HashSet<_> = with.iter().map(canon).collect();
        let b: HashSet<_> = without.iter().map(canon).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 1, "OSPF has a single converged forwarding state");
        assert!(with_stats.steps <= without_stats.steps);
        assert!(with_stats.pruned_inconsistent > 0);
    }

    #[test]
    fn stop_verdict_halts_the_search() {
        let g = disagree_gadget();
        let model = BgpModel::new(
            &g.network,
            g.destination,
            vec![g.origin],
            &FailureSet::none(),
            Arc::new(UniformUnderlay),
        );
        let por = BgpPor::from_model(&model);
        let checker = ModelChecker::new(
            &model,
            Box::new(por),
            SearchOptions::all_optimizations(),
            FailureSet::none(),
        );
        let mut seen = 0;
        let stats = checker.run(&mut |_, _| {
            seen += 1;
            Verdict::Stop
        });
        assert_eq!(seen, 1);
        assert_eq!(stats.converged_states, 1);
    }

    #[test]
    fn policy_pruning_finishes_early_with_sources() {
        let s = ring_ospf(8);
        let model = OspfModel::new(
            &s.network,
            s.destination,
            vec![s.origin],
            &FailureSet::none(),
        );
        // Source = the origin's immediate neighbor: its decision comes after
        // a single step, so the pruned run is much shorter.
        let source = s.ring.routers[1];
        let (states, stats) = collect_converged(
            &model,
            Box::new(OspfPor),
            SearchOptions::all_optimizations().with_sources(vec![source]),
        );
        assert_eq!(states.len(), 1);
        assert!(stats.pruned_by_policy > 0);
        assert!(
            stats.steps < 7,
            "policy pruning should finish after the source decides (took {} steps)",
            stats.steps
        );
        assert!(states[0].best(source).is_some());
    }

    #[test]
    fn trail_records_nondeterministic_choices() {
        let g = disagree_gadget();
        let model = BgpModel::new(
            &g.network,
            g.destination,
            vec![g.origin],
            &FailureSet::none(),
            Arc::new(UniformUnderlay),
        );
        let por = BgpPor::from_model(&model);
        let checker = ModelChecker::new(
            &model,
            Box::new(por),
            SearchOptions::all_optimizations(),
            FailureSet::none(),
        );
        let mut trails = Vec::new();
        checker.run(&mut |_, trail| {
            trails.push(trail.clone());
            Verdict::Continue
        });
        assert!(!trails.is_empty());
        // Each trail replays to its converged state's length.
        for t in &trails {
            assert!(!t.is_empty());
            assert!(t.nondeterministic_steps() > 0);
        }
    }

    #[test]
    fn influence_set_limits_execution() {
        let s = ring_ospf(6);
        let model = OspfModel::new(
            &s.network,
            s.destination,
            vec![s.origin],
            &FailureSet::none(),
        );
        let allowed = influence_set(&model, &[s.ring.routers[2]]);
        // The ring is connected, so everything can influence the source.
        assert!(allowed.iter().all(|&a| a));
    }
}
