//! The depth-first explorer: Plankton's replacement for SPIN.
//!
//! One [`ModelChecker`] run explores every RPVP execution of one protocol
//! instance (one PEC × one prefix × one failure scenario) and hands every
//! converged state it finds — together with the execution trail that produced
//! it — to a caller-supplied callback. The callback decides whether to keep
//! searching (look for more converged states / more violations) or stop.
//!
//! The inner loop is **incremental**: it explores the exact same tree, in
//! the exact same order, as the clone-based reference search
//! ([`ReferenceChecker`](crate::ReferenceChecker)), but pays per *step*
//! instead of per *state*:
//!
//! * **Delta-maintained enabled sets** — a step at node `n` can only change
//!   the enabled status of `n` and its reverse peers, so only that dirty
//!   neighborhood is recomputed
//!   ([`IncrementalEnabled`](plankton_protocols::IncrementalEnabled))
//!   instead of calling `Rpvp::enabled()` from scratch every iteration.
//! * **Apply/undo DFS** — steps are applied in place and reverted from a
//!   compact undo stack ([`UndoStack`](crate::UndoStack)), eliminating the
//!   full `RpvpState` clone plus `decided.to_vec()` per branch alternative.
//! * **Handle-native states** — routes are interned by the enabled-set
//!   computation itself
//!   ([`RouteInterner`](plankton_protocols::RouteInterner) threaded below
//!   the RPVP layer), so the state is a flat vector of handles: a step is
//!   an integer swap (no route clone, no lazily-synced handle mirror), an
//!   undo frame is `Copy`, and a visited-set check is a direct handle
//!   comparison with no re-interning pass.
//!
//! All per-run scratch — visited set, undo stack, interner, branch-snapshot
//! buffers — lives in a [`ScratchParts`](crate::scratch::ScratchParts)
//! bundle that a worker threads from run to run via
//! [`SearchScratch`](crate::SearchScratch), so steady-state runs allocate
//! nothing on the step path.

use crate::options::SearchOptions;
use crate::por::{decision_independent, DiScratch, PorDecision, PorHeuristic};
use crate::scratch::{ScratchParts, SnapshotPool};
use crate::stats::SearchStats;
use crate::trail::Trail;
use crate::undo::{UndoFrame, UndoStack};
use crate::visited::VisitedSet;
use plankton_net::failure::FailureSet;
use plankton_net::topology::NodeId;
use plankton_protocols::rpvp::{
    ConvergedState, EnabledChoice, IncrementalEnabled, Rpvp, RpvpState,
};
use plankton_protocols::{ProtocolModel, RouteHandle, RouteInterner};

/// Fold one finished search into the process-global metrics. Handles are
/// resolved once and cached: this runs once per (PEC-component × failure
/// scenario) task, and must stay off the per-step path entirely.
fn record_run_metrics(stats: &SearchStats) {
    use std::sync::OnceLock;
    static STEPS: OnceLock<std::sync::Arc<plankton_telemetry::Counter>> = OnceLock::new();
    static UNDO_DEPTH: OnceLock<std::sync::Arc<plankton_telemetry::Gauge>> = OnceLock::new();
    let registry = plankton_telemetry::metrics::global();
    STEPS
        .get_or_init(|| {
            registry.counter(
                "plankton_rpvp_steps_total",
                "RPVP transitions applied by the model checker.",
            )
        })
        .add(stats.steps);
    UNDO_DEPTH
        .get_or_init(|| {
            registry.gauge(
                "plankton_undo_depth_max",
                "Deepest apply/undo stack observed across all searches.",
            )
        })
        .record_max(stats.undo_depth_max);
}

/// What the policy callback wants the explorer to do after seeing a
/// converged state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Keep exploring for further converged states.
    Continue,
    /// Stop the search (e.g. a violation was found and one counterexample is
    /// enough).
    Stop,
}

/// The explicit-state model checker for one protocol instance.
pub struct ModelChecker<'m> {
    rpvp: Rpvp<'m>,
    por: Box<dyn PorHeuristic + 'm>,
    options: SearchOptions,
    interner: RouteInterner,
    visited: VisitedSet,
    stats: SearchStats,
    trail: Trail,
    sources: Option<Vec<NodeId>>,
    stop: bool,
    /// Delta-maintained enabled set (already restricted to allowed
    /// non-origin nodes, iterated in node-id order).
    enabled: IncrementalEnabled,
    /// The apply/undo stack (reusable across runs via
    /// [`SearchScratch`](crate::SearchScratch)).
    undo: UndoStack,
    /// Pooled buffers for branch-point enabled-set snapshots.
    snapshots: SnapshotPool,
    /// Reusable buffers for the decision-independence component labelling.
    di_scratch: DiScratch,
}

impl<'m> ModelChecker<'m> {
    /// Build a checker for `model` under `failures` (already applied when the
    /// model was constructed; recorded here only for the trail).
    pub fn new(
        model: &'m dyn ProtocolModel,
        por: Box<dyn PorHeuristic + 'm>,
        options: SearchOptions,
        failures: FailureSet,
    ) -> Self {
        let parts = ScratchParts::fresh(&options);
        Self::new_with_scratch(model, por, options, failures, parts)
    }

    /// Like [`ModelChecker::new`], but draws every reusable allocation —
    /// visited set, undo stack, interner, snapshot buffers — from `parts`
    /// (each cleared first): the zero-allocation path for
    /// [`SearchScratch`](crate::SearchScratch) reuse.
    pub fn new_with_scratch(
        model: &'m dyn ProtocolModel,
        por: Box<dyn PorHeuristic + 'm>,
        mut options: SearchOptions,
        failures: FailureSet,
        mut parts: ScratchParts,
    ) -> Self {
        parts.clear();
        // Hoist the source list out of the per-run options (the old code
        // cloned it on every run): the checker owns its options, so the
        // list is moved, not copied.
        let sources = options.source_nodes.take();
        // Influence pruning (§4.2) folds into the enabled set's eligibility
        // mask: disallowed nodes are never recomputed, never enabled.
        let allowed = if options.influence_pruning {
            sources.as_ref().map(|s| influence_set(model, s))
        } else {
            None
        };
        let rpvp = Rpvp::new(model);
        let n = model.node_count();
        let mut eligible: Vec<bool> = (0..n).map(|i| !rpvp.is_origin(NodeId(i as u32))).collect();
        if let Some(allowed) = &allowed {
            for (e, &a) in eligible.iter_mut().zip(allowed) {
                *e &= a;
            }
        }
        let enabled = IncrementalEnabled::new(model.reverse_peers(), eligible);
        ModelChecker {
            rpvp,
            por,
            options,
            interner: parts.interner,
            visited: parts.visited,
            stats: SearchStats::default(),
            trail: Trail::new(failures),
            sources,
            stop: false,
            enabled,
            undo: parts.undo,
            snapshots: parts.snapshots,
            di_scratch: DiScratch::new(),
        }
    }

    /// Run the exhaustive search, invoking `callback` on every converged
    /// state. Returns the search statistics.
    pub fn run<F>(self, callback: &mut F) -> SearchStats
    where
        F: FnMut(&ConvergedState, &Trail) -> Verdict,
    {
        self.run_returning(callback).0
    }

    /// Like [`ModelChecker::run`], but also hands back the scratch bundle so
    /// the caller can return it to a
    /// [`SearchScratch`](crate::SearchScratch) for the next run.
    pub fn run_returning<F>(mut self, callback: &mut F) -> (SearchStats, ScratchParts)
    where
        F: FnMut(&ConvergedState, &Trail) -> Verdict,
    {
        let mut state = self.rpvp.initial_state(&mut self.interner);
        let mut decided = vec![false; self.rpvp.model().node_count()];
        for &o in self.rpvp.model().origins() {
            decided[o.index()] = true;
        }
        {
            // Disjoint-field reborrow: `enabled` is rebuilt from `rpvp`.
            let (enabled, rpvp, interner) = (&mut self.enabled, &self.rpvp, &mut self.interner);
            enabled.rebuild(rpvp, &state, interner);
        }
        self.dfs(&mut state, &mut decided, 0, callback);
        self.stats.enabled_recomputed_nodes = self.enabled.recompute_count();
        // Run-scoped interner stats: the table may be warm from a previous
        // run on this worker, so report what a fresh interner would hold.
        self.stats.interned_routes = self.interner.run_interned();
        self.stats.visited_states = self.visited.len() as u64;
        self.stats.approx_memory_bytes =
            (self.interner.run_approx_bytes() + self.visited.approx_bytes()) as u64;
        record_run_metrics(&self.stats);
        (
            self.stats,
            ScratchParts {
                visited: self.visited,
                undo: self.undo,
                interner: self.interner,
                snapshots: self.snapshots,
            },
        )
    }

    fn all_sources_decided(&self, state: &RpvpState) -> bool {
        match &self.sources {
            None => false,
            Some(sources) => {
                !sources.is_empty()
                    && sources
                        .iter()
                        .all(|s| state.has_route(*s) || self.rpvp.is_origin(*s))
            }
        }
    }

    fn emit<F>(&mut self, state: &RpvpState, callback: &mut F)
    where
        F: FnMut(&ConvergedState, &Trail) -> Verdict,
    {
        self.stats.converged_states += 1;
        let converged = ConvergedState::from_handles(&state.best, &self.interner);
        if callback(&converged, &self.trail) == Verdict::Stop {
            self.stop = true;
        }
        if let Some(max) = self.options.max_converged_states {
            if self.stats.converged_states >= max as u64 {
                self.stop = true;
            }
        }
    }

    /// Apply one step in place, recording an undo frame: swap in the
    /// already-interned advertisement the enabled-set computation derived,
    /// and refresh the enabled set's dirty neighborhood.
    fn apply(
        &mut self,
        state: &mut RpvpState,
        decided: &mut [bool],
        node: NodeId,
        peer: Option<NodeId>,
        adopt: RouteHandle,
        deterministic: bool,
    ) {
        let idx = node.index();
        let prev_best = self.rpvp.step_adopting(state, &self.interner, node, adopt);
        let prev_decided = decided[idx];
        if peer.is_some() {
            decided[idx] = true;
        }
        let enabled_mark = self.undo.enabled_mark();
        self.enabled.refresh_after_step(
            &self.rpvp,
            state,
            &mut self.interner,
            node,
            &mut self.undo.enabled_prev,
        );
        self.undo.push_frame(UndoFrame {
            node,
            prev_best,
            prev_decided,
            enabled_mark,
        });
        self.stats.undo_depth_max = self.stats.undo_depth_max.max(self.undo.depth() as u64);
        self.trail.push(node, peer, deterministic);
        self.stats.steps += 1;
        if deterministic {
            self.stats.deterministic_steps += 1;
        }
    }

    /// Revert the most recent applied step: state, `decided`, displaced
    /// enabled-set entries — and the step's trail event. Every `apply`
    /// pushes exactly one trail event and exactly one undo frame, so
    /// popping them together keeps the trail equal to the live DFS path at
    /// all times (the seed shipped with a bug here: deterministic steps of
    /// abandoned sibling branches leaked into emitted trails because frames
    /// never popped them on exit).
    fn undo_one(&mut self, state: &mut RpvpState, decided: &mut [bool]) {
        self.trail.pop();
        let frame = self.undo.pop_frame();
        while self.undo.enabled_prev.len() > frame.enabled_mark {
            let (m, prev) = self.undo.enabled_prev.pop().expect("mark within stack");
            self.enabled.set_entry(m, prev);
        }
        decided[frame.node.index()] = frame.prev_decided;
        self.rpvp.undo_step(state, frame.node, frame.prev_best);
    }

    fn unwind_to(&mut self, mark: usize, state: &mut RpvpState, decided: &mut [bool]) {
        while self.undo.depth() > mark {
            self.undo_one(state, decided);
        }
    }

    /// Record the state in the visited set. The state is already
    /// handle-native, so this is a direct lookup — no re-interning pass.
    fn insert_visited(&mut self, state: &RpvpState) -> bool {
        self.visited.insert(&state.best, &self.interner)
    }

    fn dfs<F>(&mut self, state: &mut RpvpState, decided: &mut [bool], depth: u64, callback: &mut F)
    where
        F: FnMut(&ConvergedState, &Trail) -> Verdict,
    {
        let undo_mark = self.undo.depth();
        let mut depth = depth;
        loop {
            if self.stop {
                break;
            }
            if self.stats.steps >= self.options.max_steps {
                self.stats.truncated = true;
                self.stop = true;
                break;
            }
            self.stats.max_depth = self.stats.max_depth.max(depth);

            // Consistent-execution pruning (§4.1.1): a node that has already
            // selected a path but is enabled again would have to change it —
            // evidence that this execution is not consistent with any
            // converged state, so abandon it.
            if self.options.consistent_executions {
                let inconsistent = self
                    .enabled
                    .view()
                    .iter()
                    .any(|c| c.invalid || state.has_route(c.node));
                if inconsistent {
                    self.stats.pruned_inconsistent += 1;
                    break;
                }
            }

            // Policy-based pruning (§4.2): once every source node has made
            // its decision the rest of the execution cannot change the
            // policy's verdict.
            if self.options.policy_pruning && self.all_sources_decided(state) {
                self.stats.pruned_by_policy += 1;
                self.emit(state, callback);
                break;
            }

            if self.enabled.is_empty() {
                self.emit(state, callback);
                break;
            }

            // Partial order reduction.
            let decision = if self.options.decision_independence {
                let view = self.enabled.view();
                decision_independent(self.rpvp.model(), &view, decided, &mut self.di_scratch)
            } else {
                None
            }
            .unwrap_or_else(|| {
                if self.options.deterministic_nodes {
                    self.por
                        .pick(state, &self.enabled.view(), decided, &self.interner)
                } else {
                    PorDecision::BranchAll
                }
            });

            match decision {
                PorDecision::Deterministic { node, update } => {
                    // Copy the (peer, handle) pair out before applying: both
                    // are `Copy`, so the enabled-set borrow ends here.
                    let (peer, adopt) = {
                        let c = self
                            .enabled
                            .view()
                            .get_node(node)
                            .expect("deterministic node is enabled");
                        match c.best_updates.get(update) {
                            Some(&(p, h)) => (Some(p), h),
                            None => (None, RouteHandle::NONE),
                        }
                    };
                    self.apply(state, decided, node, peer, adopt, true);
                    depth += 1;
                    continue;
                }
                PorDecision::BranchUpdates { node } => {
                    // The enabled set mutates during recursion, so branching
                    // snapshots the choices it iterates (branch points only —
                    // the deterministic fast path stays allocation-free).
                    let snapshot = [self
                        .enabled
                        .view()
                        .get_node(node)
                        .expect("branch node is enabled")
                        .clone()];
                    self.branch(state, decided, depth, callback, &snapshot, false);
                    break;
                }
                PorDecision::BranchAll => {
                    let mut snapshot = self.snapshots.pop();
                    snapshot.extend(self.enabled.view().iter().cloned());
                    self.branch(state, decided, depth, callback, &snapshot, true);
                    self.snapshots.push(snapshot);
                    break;
                }
            }
        }
        // Revert every deterministic step this frame applied.
        self.unwind_to(undo_mark, state, decided);
    }

    /// Branch over the given enabled choices: for each choice, one branch per
    /// best update (plus a clear-only branch for invalid paths when
    /// `include_clears` and the node has no usable update). Each alternative
    /// is applied in place, explored, and undone.
    fn branch<F>(
        &mut self,
        state: &mut RpvpState,
        decided: &mut [bool],
        depth: u64,
        callback: &mut F,
        choices: &[EnabledChoice],
        include_clears: bool,
    ) where
        F: FnMut(&ConvergedState, &Trail) -> Verdict,
    {
        self.stats.branch_points += 1;
        for choice in choices {
            let clear_only = choice.best_updates.is_empty() && include_clears && choice.invalid;
            let alternatives = if clear_only {
                1
            } else {
                choice.best_updates.len()
            };
            for alt in 0..alternatives {
                if self.stop {
                    return;
                }
                self.stats.branches += 1;
                let (peer, adopt) = if clear_only {
                    (None, RouteHandle::NONE)
                } else {
                    let (p, h) = choice.best_updates[alt];
                    (Some(p), h)
                };
                self.apply(state, decided, choice.node, peer, adopt, false);
                // Visited-state detection at branch points only.
                if !self.insert_visited(state) {
                    self.stats.pruned_visited += 1;
                    self.undo_one(state, decided);
                    continue;
                }
                self.dfs(state, decided, depth + 1, callback);
                self.undo_one(state, decided);
            }
        }
    }
}

/// The set of nodes that can influence any of the `sources` through chains of
/// advertisements (§4.2): reverse reachability over the peer graph. Nodes
/// outside this set are not allowed to execute.
pub(crate) fn influence_set(model: &dyn ProtocolModel, sources: &[NodeId]) -> Vec<bool> {
    let n = model.node_count();
    let mut allowed = vec![false; n];
    let mut queue: std::collections::VecDeque<NodeId> = std::collections::VecDeque::new();
    for &s in sources {
        if s.index() < n && !allowed[s.index()] {
            allowed[s.index()] = true;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &p in model.peers(u) {
            if !allowed[p.index()] {
                allowed[p.index()] = true;
                queue.push_back(p);
            }
        }
    }
    allowed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::por::{BgpPor, NoPor, OspfPor};
    use plankton_config::scenarios::{disagree_gadget, ring_ospf};
    use plankton_protocols::bgp::{BgpModel, UniformUnderlay};
    use plankton_protocols::ospf::OspfModel;
    use std::collections::HashSet;
    use std::sync::Arc;

    fn collect_converged(
        model: &dyn ProtocolModel,
        por: Box<dyn PorHeuristic + '_>,
        options: SearchOptions,
    ) -> (Vec<ConvergedState>, SearchStats) {
        let checker = ModelChecker::new(model, por, options, FailureSet::none());
        let mut states = Vec::new();
        let stats = checker.run(&mut |s, _| {
            states.push(s.clone());
            Verdict::Continue
        });
        (states, stats)
    }

    #[test]
    fn ospf_ring_has_single_converged_state() {
        let s = ring_ospf(6);
        let model = OspfModel::new(
            &s.network,
            s.destination,
            vec![s.origin],
            &FailureSet::none(),
        );
        let (states, stats) = collect_converged(
            &model,
            Box::new(OspfPor),
            SearchOptions::all_optimizations(),
        );
        assert_eq!(states.len(), 1);
        assert!(stats.deterministic_steps > 0);
        assert_eq!(stats.branch_points, 0);
        // The delta maintenance recomputes far fewer nodes than a full
        // per-step recomputation would (steps × non-origin nodes).
        assert!(stats.enabled_recomputed_nodes > 0);
        assert!(stats.enabled_recomputed_nodes <= stats.steps.max(1) * 5 + 5);
        // Every node reaches the origin.
        for n in s.network.topology.node_ids() {
            if n != s.origin {
                assert!(states[0].best(n).is_some());
            }
        }
    }

    #[test]
    fn unoptimized_search_finds_the_same_ospf_state() {
        let s = ring_ospf(4);
        let model = OspfModel::new(
            &s.network,
            s.destination,
            vec![s.origin],
            &FailureSet::none(),
        );
        let (optimized, _) = collect_converged(
            &model,
            Box::new(OspfPor),
            SearchOptions::all_optimizations(),
        );
        let (naive, naive_stats) =
            collect_converged(&model, Box::new(NoPor), SearchOptions::no_optimizations());
        // The naive search revisits the converged state through many
        // executions; the set of distinct converged forwarding states must
        // still be exactly the optimized one.
        let canon =
            |s: &ConvergedState| (0..4u32).map(|n| s.next_hop(NodeId(n))).collect::<Vec<_>>();
        let naive_set: HashSet<_> = naive.iter().map(canon).collect();
        let opt_set: HashSet<_> = optimized.iter().map(canon).collect();
        assert_eq!(naive_set, opt_set);
        assert!(naive_stats.steps > 0);
        assert!(naive_stats.undo_depth_max > 0);
    }

    #[test]
    fn disagree_gadget_yields_both_converged_states() {
        let g = disagree_gadget();
        let model = BgpModel::new(
            &g.network,
            g.destination,
            vec![g.origin],
            &FailureSet::none(),
            Arc::new(UniformUnderlay),
        );
        let por = BgpPor::from_model(&model);
        let (states, stats) =
            collect_converged(&model, Box::new(por), SearchOptions::all_optimizations());
        let a = g.actors[0];
        let b = g.actors[1];
        let outcomes: HashSet<(Option<NodeId>, Option<NodeId>)> = states
            .iter()
            .map(|s| (s.next_hop(a), s.next_hop(b)))
            .collect();
        assert!(
            outcomes.contains(&(Some(b), Some(g.origin))),
            "{outcomes:?}"
        );
        assert!(
            outcomes.contains(&(Some(g.origin), Some(a))),
            "{outcomes:?}"
        );
        assert!(stats.branch_points > 0, "the gadget requires branching");
    }

    #[test]
    fn consistent_execution_pruning_reduces_search() {
        // A 6-router OSPF ring explored with *no* partial order reduction:
        // some execution orders make a far-side router adopt the long way
        // round before the short route exists, which consistent-execution
        // pruning then abandons.
        let s = ring_ospf(6);
        let model = OspfModel::new(
            &s.network,
            s.destination,
            vec![s.origin],
            &FailureSet::none(),
        );
        let (with, with_stats) = collect_converged(
            &model,
            Box::new(NoPor),
            SearchOptions {
                consistent_executions: true,
                deterministic_nodes: false,
                decision_independence: false,
                policy_pruning: false,
                influence_pruning: false,
                ..SearchOptions::all_optimizations()
            },
        );
        let (without, without_stats) =
            collect_converged(&model, Box::new(NoPor), SearchOptions::no_optimizations());
        // Same distinct converged forwarding states, fewer or equal steps.
        let canon =
            |s: &ConvergedState| (0..6u32).map(|n| s.next_hop(NodeId(n))).collect::<Vec<_>>();
        let a: HashSet<_> = with.iter().map(canon).collect();
        let b: HashSet<_> = without.iter().map(canon).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 1, "OSPF has a single converged forwarding state");
        assert!(with_stats.steps <= without_stats.steps);
        assert!(with_stats.pruned_inconsistent > 0);
    }

    #[test]
    fn stop_verdict_halts_the_search() {
        let g = disagree_gadget();
        let model = BgpModel::new(
            &g.network,
            g.destination,
            vec![g.origin],
            &FailureSet::none(),
            Arc::new(UniformUnderlay),
        );
        let por = BgpPor::from_model(&model);
        let checker = ModelChecker::new(
            &model,
            Box::new(por),
            SearchOptions::all_optimizations(),
            FailureSet::none(),
        );
        let mut seen = 0;
        let stats = checker.run(&mut |_, _| {
            seen += 1;
            Verdict::Stop
        });
        assert_eq!(seen, 1);
        assert_eq!(stats.converged_states, 1);
    }

    #[test]
    fn policy_pruning_finishes_early_with_sources() {
        let s = ring_ospf(8);
        let model = OspfModel::new(
            &s.network,
            s.destination,
            vec![s.origin],
            &FailureSet::none(),
        );
        // Source = the origin's immediate neighbor: its decision comes after
        // a single step, so the pruned run is much shorter.
        let source = s.ring.routers[1];
        let (states, stats) = collect_converged(
            &model,
            Box::new(OspfPor),
            SearchOptions::all_optimizations().with_sources(vec![source]),
        );
        assert_eq!(states.len(), 1);
        assert!(stats.pruned_by_policy > 0);
        assert!(
            stats.steps < 7,
            "policy pruning should finish after the source decides (took {} steps)",
            stats.steps
        );
        assert!(states[0].best(source).is_some());
    }

    #[test]
    fn trail_records_nondeterministic_choices() {
        let g = disagree_gadget();
        let model = BgpModel::new(
            &g.network,
            g.destination,
            vec![g.origin],
            &FailureSet::none(),
            Arc::new(UniformUnderlay),
        );
        let por = BgpPor::from_model(&model);
        let checker = ModelChecker::new(
            &model,
            Box::new(por),
            SearchOptions::all_optimizations(),
            FailureSet::none(),
        );
        let mut trails = Vec::new();
        checker.run(&mut |_, trail| {
            trails.push(trail.clone());
            Verdict::Continue
        });
        assert!(!trails.is_empty());
        // Each trail replays to its converged state's length.
        for t in &trails {
            assert!(!t.is_empty());
            assert!(t.nondeterministic_steps() > 0);
        }
    }

    #[test]
    fn influence_set_limits_execution() {
        let s = ring_ospf(6);
        let model = OspfModel::new(
            &s.network,
            s.destination,
            vec![s.origin],
            &FailureSet::none(),
        );
        let allowed = influence_set(&model, &[s.ring.routers[2]]);
        // The ring is connected, so everything can influence the source.
        assert!(allowed.iter().all(|&a| a));
    }
}
