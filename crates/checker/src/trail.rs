//! Violating-event-sequence trails.
//!
//! When a policy callback reports a violation, Plankton writes out the
//! execution path that produced the offending converged state — the analogue
//! of SPIN's `.trail` file. A trail lists the failure scenario applied before
//! protocol execution and every RPVP step taken.

use plankton_net::failure::FailureSet;
use plankton_net::topology::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One RPVP step in a trail.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrailEvent {
    /// The node that executed.
    pub node: NodeId,
    /// The peer whose advertisement it adopted (`None` when the step only
    /// cleared an invalid path).
    pub from_peer: Option<NodeId>,
    /// Whether the step was forced by the deterministic-node heuristic
    /// (no branching) or was a genuine non-deterministic choice.
    pub deterministic: bool,
}

/// A complete execution trail leading to a converged state.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trail {
    /// The links failed before the protocol started executing (§4.1.4:
    /// failures are applied up front, in a fixed order).
    pub failures: FailureSet,
    /// The RPVP steps, in execution order.
    pub events: Vec<TrailEvent>,
}

impl Trail {
    /// An empty trail under a failure scenario.
    pub fn new(failures: FailureSet) -> Self {
        Trail {
            failures,
            events: Vec::new(),
        }
    }

    /// Record one step.
    pub fn push(&mut self, node: NodeId, from_peer: Option<NodeId>, deterministic: bool) {
        self.events.push(TrailEvent {
            node,
            from_peer,
            deterministic,
        });
    }

    /// Remove the most recent step (used when the DFS backtracks).
    pub fn pop(&mut self) {
        self.events.pop();
    }

    /// Drop every step after the first `len` (used when the DFS abandons a
    /// frame and must discard that frame's deterministic steps).
    pub fn truncate(&mut self, len: usize) {
        self.events.truncate(len);
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the trail empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The number of steps that were genuine non-deterministic choices.
    pub fn nondeterministic_steps(&self) -> usize {
        self.events.iter().filter(|e| !e.deterministic).count()
    }

    /// Serialize the trail to JSON (the on-disk trail-file format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("Trail is always serializable")
    }

    /// Parse a trail from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

impl fmt::Display for Trail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "failures: {}", self.failures)?;
        for (i, e) in self.events.iter().enumerate() {
            match e.from_peer {
                Some(p) => writeln!(
                    f,
                    "{:4}. {} adopts advertisement from {}{}",
                    i + 1,
                    e.node,
                    p,
                    if e.deterministic {
                        ""
                    } else {
                        "  (non-deterministic choice)"
                    }
                )?,
                None => writeln!(f, "{:4}. {} clears its invalid path", i + 1, e.node)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plankton_net::topology::LinkId;

    #[test]
    fn push_pop_and_counts() {
        let mut t = Trail::new(FailureSet::single(LinkId(3)));
        assert!(t.is_empty());
        t.push(NodeId(1), Some(NodeId(0)), true);
        t.push(NodeId(2), Some(NodeId(1)), false);
        t.push(NodeId(3), None, true);
        assert_eq!(t.len(), 3);
        assert_eq!(t.nondeterministic_steps(), 1);
        t.pop();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn json_roundtrip() {
        let mut t = Trail::new(FailureSet::none());
        t.push(NodeId(5), Some(NodeId(4)), false);
        let json = t.to_json();
        let back = Trail::from_json(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn display_is_readable() {
        let mut t = Trail::new(FailureSet::single(LinkId(0)));
        t.push(NodeId(1), Some(NodeId(0)), true);
        t.push(NodeId(2), None, true);
        let text = t.to_string();
        assert!(text.contains("adopts advertisement"));
        assert!(text.contains("clears its invalid path"));
        assert!(text.contains("l0"));
    }
}
