//! Search options: the optimization toggles the paper evaluates in Figure 8
//! and Figure 9.

use plankton_net::topology::NodeId;

/// Options controlling one model-checking run (one PEC × one prefix × one
/// failure scenario).
#[derive(Clone, Debug)]
pub struct SearchOptions {
    /// §4.1.1 — explore only executions consistent with some converged state
    /// (abandon an execution as soon as a node would change a selected path).
    pub consistent_executions: bool,
    /// §4.1.2 — when a deterministic node can be identified, process it
    /// without branching over the other enabled nodes.
    pub deterministic_nodes: bool,
    /// §4.1.3 — when every pending update comes from already-decided peers,
    /// pick a single arbitrary execution order.
    pub decision_independence: bool,
    /// §4.2 — stop an execution once every policy source node has decided.
    pub policy_pruning: bool,
    /// §4.2 — additionally restrict execution to nodes that can influence a
    /// source node (only sound for single-prefix PECs with no dependents).
    pub influence_pruning: bool,
    /// The policy's source nodes, if it declared any (`None` = all nodes are
    /// potential sources, disabling policy-based pruning for this run).
    pub source_nodes: Option<Vec<NodeId>>,
    /// §4.4 / Figure 9 — use bitstate hashing (a Bloom filter with this many
    /// bits) instead of exact visited-state storage.
    pub bitstate_bits: Option<usize>,
    /// Stop after this many converged states have been emitted (`None` = no
    /// limit). The verifier sets this to 1 when it only needs to know whether
    /// any converged state exists.
    pub max_converged_states: Option<usize>,
    /// Abort the search after this many RPVP steps (safety net against state
    /// explosion when optimizations are disabled, as in Figure 8's "None"
    /// rows).
    pub max_steps: u64,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            consistent_executions: true,
            deterministic_nodes: true,
            decision_independence: true,
            policy_pruning: true,
            influence_pruning: true,
            source_nodes: None,
            bitstate_bits: None,
            max_converged_states: None,
            max_steps: 200_000_000,
        }
    }
}

impl SearchOptions {
    /// All optimizations enabled (the default configuration).
    pub fn all_optimizations() -> Self {
        Self::default()
    }

    /// Every optimization disabled: the naive model checking of Figure 8's
    /// "None" rows.
    pub fn no_optimizations() -> Self {
        SearchOptions {
            consistent_executions: false,
            deterministic_nodes: false,
            decision_independence: false,
            policy_pruning: false,
            influence_pruning: false,
            source_nodes: None,
            bitstate_bits: None,
            max_converged_states: None,
            max_steps: 200_000_000,
        }
    }

    /// Set the policy source nodes, builder-style.
    pub fn with_sources(mut self, sources: Vec<NodeId>) -> Self {
        self.source_nodes = Some(sources);
        self
    }

    /// Disable the deterministic-node heuristic, builder-style (Figure 8's
    /// "All but deterministic node opt" rows).
    pub fn without_deterministic_nodes(mut self) -> Self {
        self.deterministic_nodes = false;
        self
    }

    /// Disable policy-based pruning, builder-style.
    pub fn without_policy_pruning(mut self) -> Self {
        self.policy_pruning = false;
        self.influence_pruning = false;
        self
    }

    /// Enable bitstate hashing with the given number of bits, builder-style.
    pub fn with_bitstate(mut self, bits: usize) -> Self {
        self.bitstate_bits = Some(bits);
        self
    }

    /// Stop after the first converged state (used when the caller only needs
    /// existence, e.g. simulation-style checks).
    pub fn first_converged_only(mut self) -> Self {
        self.max_converged_states = Some(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_everything() {
        let o = SearchOptions::default();
        assert!(o.consistent_executions);
        assert!(o.deterministic_nodes);
        assert!(o.decision_independence);
        assert!(o.policy_pruning);
        assert!(o.influence_pruning);
        assert!(o.bitstate_bits.is_none());
    }

    #[test]
    fn no_optimizations_disables_everything() {
        let o = SearchOptions::no_optimizations();
        assert!(!o.consistent_executions);
        assert!(!o.deterministic_nodes);
        assert!(!o.decision_independence);
        assert!(!o.policy_pruning);
        assert!(!o.influence_pruning);
    }

    #[test]
    fn builders_compose() {
        let o = SearchOptions::all_optimizations()
            .with_sources(vec![NodeId(1), NodeId(2)])
            .without_deterministic_nodes()
            .with_bitstate(1 << 20)
            .first_converged_only();
        assert_eq!(o.source_nodes.as_ref().unwrap().len(), 2);
        assert!(!o.deterministic_nodes);
        assert_eq!(o.bitstate_bits, Some(1 << 20));
        assert_eq!(o.max_converged_states, Some(1));
        let p = SearchOptions::all_optimizations().without_policy_pruning();
        assert!(!p.policy_pruning);
        assert!(!p.influence_pruning);
    }
}
