//! The pre-incremental explorer, kept for differential testing.
//!
//! [`ReferenceChecker`] is the clone-based depth-first search the checker
//! shipped with before the incremental rewrite: it recomputes the full
//! enabled set from scratch at every step and clones the whole `RpvpState`
//! (and the `decided` vector) at every branch alternative. It is
//! deliberately **not** optimized — its only job is to define the behavior
//! the incremental [`ModelChecker`](crate::ModelChecker) must reproduce
//! exactly: identical converged states, identical trails, and identical
//! [`SearchStats`] (modulo the incremental-only observability counters,
//! which stay 0 here; see [`SearchStats::without_incremental_counters`]).
//!
//! Both explorers now share the handle-native RPVP layer (routes interned
//! at generation time). So that `interned_routes` and `approx_memory_bytes`
//! stay byte-identical between them, the reference restricts the enabled
//! computation to the *same eligible nodes* the incremental explorer
//! maintains (non-origins allowed by influence pruning) **before** deriving
//! candidate routes — a post-filter would intern advertisements for
//! disallowed nodes that the incremental explorer never evaluates.
//!
//! One deliberate deviation from the seed: the seed leaked deterministic
//! trail events of abandoned sibling branches into emitted trails (frames
//! never popped them on exit). Both explorers now discard a frame's
//! deterministic events when the frame exits, so trails are exactly the
//! live DFS path — the fix is applied to both in lockstep, keeping the
//! differential tests byte-identical.

use crate::explorer::{influence_set, Verdict};
use crate::interner::RouteInterner;
use crate::options::SearchOptions;
use crate::por::{decision_independent, DiScratch, PorDecision, PorHeuristic};
use crate::stats::SearchStats;
use crate::trail::Trail;
use crate::visited::VisitedSet;
use plankton_net::failure::FailureSet;
use plankton_net::topology::NodeId;
use plankton_protocols::rpvp::{ConvergedState, EnabledChoice, EnabledView, Rpvp, RpvpState};
use plankton_protocols::ProtocolModel;

/// The pre-change explicit-state model checker (see module docs).
pub struct ReferenceChecker<'m> {
    rpvp: Rpvp<'m>,
    por: Box<dyn PorHeuristic + 'm>,
    options: SearchOptions,
    interner: RouteInterner,
    visited: VisitedSet,
    stats: SearchStats,
    trail: Trail,
    /// Nodes the search may evaluate: non-origins allowed by influence
    /// pruning — the same mask as the incremental explorer's eligibility.
    eligible: Vec<bool>,
    sources: Option<Vec<NodeId>>,
    stop: bool,
    di_scratch: DiScratch,
}

impl<'m> ReferenceChecker<'m> {
    /// Build a reference checker for `model` under `failures`.
    pub fn new(
        model: &'m dyn ProtocolModel,
        por: Box<dyn PorHeuristic + 'm>,
        mut options: SearchOptions,
        failures: FailureSet,
    ) -> Self {
        let visited = match options.bitstate_bits {
            Some(bits) => VisitedSet::bitstate(bits),
            None => VisitedSet::exact(),
        };
        // Moved out of the run path, mirroring the incremental explorer.
        let sources = options.source_nodes.take();
        let allowed = if options.influence_pruning {
            sources.as_ref().map(|s| influence_set(model, s))
        } else {
            None
        };
        let rpvp = Rpvp::new(model);
        let n = model.node_count();
        let mut eligible: Vec<bool> = (0..n).map(|i| !rpvp.is_origin(NodeId(i as u32))).collect();
        if let Some(allowed) = &allowed {
            for (e, &a) in eligible.iter_mut().zip(allowed) {
                *e &= a;
            }
        }
        ReferenceChecker {
            rpvp,
            por,
            options,
            interner: RouteInterner::new(),
            visited,
            stats: SearchStats::default(),
            trail: Trail::new(failures),
            eligible,
            sources,
            stop: false,
            di_scratch: DiScratch::new(),
        }
    }

    /// Run the exhaustive search, invoking `callback` on every converged
    /// state. Returns the search statistics.
    pub fn run<F>(mut self, callback: &mut F) -> SearchStats
    where
        F: FnMut(&ConvergedState, &Trail) -> Verdict,
    {
        let mut state = self.rpvp.initial_state(&mut self.interner);
        let mut decided = vec![false; self.rpvp.model().node_count()];
        for &o in self.rpvp.model().origins() {
            decided[o.index()] = true;
        }
        self.dfs(&mut state, &mut decided, 0, callback);
        self.stats.interned_routes = self.interner.len() as u64;
        self.stats.visited_states = self.visited.len() as u64;
        self.stats.approx_memory_bytes =
            (self.interner.approx_bytes() + self.visited.approx_bytes()) as u64;
        self.stats
    }

    /// The full enabled set, recomputed from scratch (the reference's
    /// defining inefficiency), restricted to the eligible nodes.
    fn enabled(&mut self, state: &RpvpState) -> Vec<EnabledChoice> {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        for i in 0..self.eligible.len() {
            if !self.eligible[i] {
                continue;
            }
            if let Some(choice) =
                self.rpvp
                    .enabled_at_with(state, &mut self.interner, NodeId(i as u32), &mut scratch)
            {
                out.push(choice);
            }
        }
        out
    }

    fn all_sources_decided(&self, state: &RpvpState) -> bool {
        match &self.sources {
            None => false,
            Some(sources) => {
                !sources.is_empty()
                    && sources
                        .iter()
                        .all(|s| state.has_route(*s) || self.rpvp.is_origin(*s))
            }
        }
    }

    fn emit<F>(&mut self, state: &RpvpState, callback: &mut F)
    where
        F: FnMut(&ConvergedState, &Trail) -> Verdict,
    {
        self.stats.converged_states += 1;
        let converged = ConvergedState::from_handles(&state.best, &self.interner);
        if callback(&converged, &self.trail) == Verdict::Stop {
            self.stop = true;
        }
        if let Some(max) = self.options.max_converged_states {
            if self.stats.converged_states >= max as u64 {
                self.stop = true;
            }
        }
    }

    fn apply(
        &mut self,
        state: &mut RpvpState,
        decided: &mut [bool],
        node: NodeId,
        peer: Option<NodeId>,
        deterministic: bool,
    ) {
        self.rpvp.step(state, &mut self.interner, node, peer);
        if peer.is_some() {
            decided[node.index()] = true;
        }
        self.trail.push(node, peer, deterministic);
        self.stats.steps += 1;
        if deterministic {
            self.stats.deterministic_steps += 1;
        }
    }

    fn dfs<F>(&mut self, state: &mut RpvpState, decided: &mut [bool], depth: u64, callback: &mut F)
    where
        F: FnMut(&ConvergedState, &Trail) -> Verdict,
    {
        // Deterministic steps applied inside this frame push trail events
        // that belong to the frame; discard them when the frame exits so
        // abandoned sibling branches never leak events into later trails
        // (the fix mirrors the incremental explorer popping the trail in
        // `undo_one`).
        let trail_mark = self.trail.len();
        let mut depth = depth;
        loop {
            if self.stop {
                break;
            }
            if self.stats.steps >= self.options.max_steps {
                self.stats.truncated = true;
                self.stop = true;
                break;
            }
            self.stats.max_depth = self.stats.max_depth.max(depth);

            let enabled = self.enabled(state);

            if self.options.consistent_executions {
                let inconsistent = enabled
                    .iter()
                    .any(|c| c.invalid || state.has_route(c.node));
                if inconsistent {
                    self.stats.pruned_inconsistent += 1;
                    break;
                }
            }

            if self.options.policy_pruning && self.all_sources_decided(state) {
                self.stats.pruned_by_policy += 1;
                self.emit(state, callback);
                break;
            }

            if enabled.is_empty() {
                self.emit(state, callback);
                break;
            }

            let view = EnabledView::Slice(&enabled);
            let decision = if self.options.decision_independence {
                decision_independent(self.rpvp.model(), &view, decided, &mut self.di_scratch)
            } else {
                None
            }
            .unwrap_or_else(|| {
                if self.options.deterministic_nodes {
                    self.por.pick(state, &view, decided, &self.interner)
                } else {
                    PorDecision::BranchAll
                }
            });

            match decision {
                PorDecision::Deterministic { node, update } => {
                    let c = view.get_node(node).expect("deterministic node is enabled");
                    let peer = c.best_updates.get(update).map(|&(p, _)| p);
                    self.apply(state, decided, node, peer, true);
                    depth += 1;
                    continue;
                }
                PorDecision::BranchUpdates { node } => {
                    let c = view
                        .get_node(node)
                        .expect("branch node is enabled")
                        .clone();
                    self.branch(state, decided, depth, callback, &[c], false);
                    break;
                }
                PorDecision::BranchAll => {
                    self.branch(state, decided, depth, callback, &enabled, true);
                    break;
                }
            }
        }
        self.trail.truncate(trail_mark);
    }

    fn branch<F>(
        &mut self,
        state: &RpvpState,
        decided: &[bool],
        depth: u64,
        callback: &mut F,
        choices: &[EnabledChoice],
        include_clears: bool,
    ) where
        F: FnMut(&ConvergedState, &Trail) -> Verdict,
    {
        self.stats.branch_points += 1;
        for choice in choices {
            let mut alternatives: Vec<Option<NodeId>> =
                choice.best_updates.iter().map(|&(p, _)| Some(p)).collect();
            if alternatives.is_empty() && include_clears && choice.invalid {
                alternatives.push(None);
            }
            for peer in alternatives {
                if self.stop {
                    return;
                }
                self.stats.branches += 1;
                let mut child = state.clone();
                let mut child_decided = decided.to_vec();
                self.apply(&mut child, &mut child_decided, choice.node, peer, false);
                // The state is already handle-native — no re-interning pass.
                if !self.visited.insert(&child.best, &self.interner) {
                    self.stats.pruned_visited += 1;
                    self.trail.pop();
                    continue;
                }
                self.dfs(&mut child, &mut child_decided, depth + 1, callback);
                self.trail.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::por::OspfPor;
    use plankton_config::scenarios::ring_ospf;
    use plankton_protocols::ospf::OspfModel;

    #[test]
    fn reference_checker_finds_the_ring_converged_state() {
        let s = ring_ospf(6);
        let model = OspfModel::new(
            &s.network,
            s.destination,
            vec![s.origin],
            &FailureSet::none(),
        );
        let checker = ReferenceChecker::new(
            &model,
            Box::new(OspfPor),
            SearchOptions::all_optimizations(),
            FailureSet::none(),
        );
        let mut states = Vec::new();
        let stats = checker.run(&mut |c, _| {
            states.push(c.clone());
            Verdict::Continue
        });
        assert_eq!(states.len(), 1);
        assert!(stats.deterministic_steps > 0);
        assert_eq!(stats.enabled_recomputed_nodes, 0, "reference has no deltas");
        assert_eq!(stats.undo_depth_max, 0, "reference has no undo stack");
    }
}
