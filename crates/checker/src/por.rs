//! Partial order reduction heuristics (§4.1 of the paper).
//!
//! At every step the explorer asks a [`PorHeuristic`] what to do with the
//! enabled set:
//!
//! * [`PorDecision::Deterministic`] — one enabled node's pending update is
//!   provably its converged selection (Theorem 2 makes processing it without
//!   branching safe);
//! * [`PorDecision::BranchUpdates`] — one node's pending updates cannot be
//!   beaten by anything that could arrive later, but they tie among
//!   themselves: branch only over that node's updates;
//! * [`PorDecision::BranchAll`] — no reduction applies: branch over every
//!   enabled node and every one of its best updates.
//!
//! Decisions are keyed by *node id* (not positional index): the incremental
//! explorer's enabled set lives in per-node slots behind an
//! [`EnabledView`], where positions are not stable across mutations but
//! node lookups are O(1).
//!
//! [`OspfPor`] implements the paper's OSPF heuristic (process nodes in
//! shortest-path order — realized here as "the enabled node with the globally
//! cheapest pending update", which is the same Dijkstra greedy argument
//! without needing a separate cached computation). [`BgpPor`] implements the
//! conservative BGP decision-process walk. [`NoPor`] disables the
//! optimization (Figure 8's ablations).

use plankton_net::topology::NodeId;
use plankton_protocols::bgp::BgpModel;
use plankton_protocols::rpvp::{EnabledView, RpvpState};
use plankton_protocols::{ProtocolModel, Route, RouteInterner, SessionType};

/// What the explorer should do at the current state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PorDecision {
    /// Process `enabled-choice-of(node).best_updates[update]` without
    /// branching. An `update` index at or past the node's `best_updates`
    /// length denotes the clear-an-invalid-path step.
    Deterministic {
        /// The enabled node to step.
        node: NodeId,
        /// Index into that node's `best_updates`.
        update: usize,
    },
    /// Branch only over `node`'s best updates.
    BranchUpdates {
        /// The enabled node to branch over.
        node: NodeId,
    },
    /// Branch over every enabled node and all of its updates.
    BranchAll,
}

/// A partial-order-reduction heuristic.
pub trait PorHeuristic: Sync {
    /// Decide how to treat the enabled set of `state`. `decided[n]` is true
    /// when node `n` has already made its (final, under consistent-execution
    /// pruning) best-path selection in the current execution. Routes inside
    /// the enabled choices are interned; resolve them through `interner`.
    fn pick(
        &self,
        state: &RpvpState,
        enabled: &EnabledView<'_>,
        decided: &[bool],
        interner: &RouteInterner,
    ) -> PorDecision;
}

/// No reduction: always branch over everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoPor;

impl PorHeuristic for NoPor {
    fn pick(
        &self,
        _state: &RpvpState,
        _enabled: &EnabledView<'_>,
        _decided: &[bool],
        _interner: &RouteInterner,
    ) -> PorDecision {
        PorDecision::BranchAll
    }
}

/// The OSPF heuristic: shortest-path protocols admit a Dijkstra argument —
/// among all pending updates, the one with the globally minimal cost can
/// never be displaced by a later advertisement (link costs are
/// non-negative), so its node is deterministic.
#[derive(Clone, Copy, Debug, Default)]
pub struct OspfPor;

impl PorHeuristic for OspfPor {
    fn pick(
        &self,
        _state: &RpvpState,
        enabled: &EnabledView<'_>,
        _decided: &[bool],
        interner: &RouteInterner,
    ) -> PorDecision {
        let mut best: Option<(NodeId, usize, u64)> = None;
        for choice in enabled.iter() {
            for (ui, &(_, handle)) in choice.best_updates.iter().enumerate() {
                let cost = interner
                    .resolve(handle)
                    .map(|r| r.igp_cost)
                    .unwrap_or(u64::MAX);
                if best.map(|(_, _, c)| cost < c).unwrap_or(true) {
                    best = Some((choice.node, ui, cost));
                }
            }
        }
        match best {
            Some((node, update, _)) => PorDecision::Deterministic { node, update },
            // Only invalid-path clears are pending: processing any of them is
            // order-independent (`update: 0` past an empty best_updates list
            // denotes the clear step).
            None => match enabled.first() {
                Some(c) => PorDecision::Deterministic {
                    node: c.node,
                    update: 0,
                },
                None => PorDecision::BranchAll,
            },
        }
    }
}

/// How a pending update compares against everything that could still arrive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Dominance {
    /// Strictly preferred over every present and possible future alternative.
    StrictWinner,
    /// At least as preferred as every alternative, but some may tie.
    TiedWinner,
    /// Could be beaten by a future advertisement.
    Unknown,
}

/// The conservative BGP deterministic-node detector (§4.1.2).
pub struct BgpPor {
    /// The highest LOCAL_PREF any import policy could assign.
    max_local_pref: u32,
    /// Per node, the minimum AS-path length any route for this prefix could
    /// ever have when held by that node.
    min_as_dist: Vec<u32>,
    /// Per node, its BGP peers with (is_ebgp, igp_cost, can_threaten) — the
    /// fixed parts of the optimistic bound for updates from that peer.
    /// `can_threaten` is false for iBGP peers that can never produce an
    /// advertisement (no eBGP sessions, not an origin): split horizon stops
    /// them from re-advertising iBGP-learned routes.
    peer_bounds: Vec<Vec<(NodeId, bool, u64, bool)>>,
}

impl BgpPor {
    /// Precompute the bounds for a BGP model instance.
    pub fn from_model(model: &BgpModel) -> Self {
        let max_local_pref = model.max_import_local_pref_global();
        let min_as_dist = model.min_as_path_distances();
        let mut peer_bounds = Vec::with_capacity(model.node_count());
        for i in 0..model.node_count() {
            let n = NodeId(i as u32);
            let bounds = model
                .peers(n)
                .iter()
                .map(|&p| {
                    let is_ebgp = matches!(
                        model.session_kind(n, p),
                        Some(plankton_config::bgp::BgpSessionKind::Ebgp)
                    );
                    let can_threaten =
                        is_ebgp || model.origins().contains(&p) || model.has_ebgp_session(p);
                    (p, is_ebgp, model.underlay_cost(n, p), can_threaten)
                })
                .collect();
            peer_bounds.push(bounds);
        }
        BgpPor {
            max_local_pref,
            min_as_dist,
            peer_bounds,
        }
    }

    /// BGP decision-process comparison on (local_pref, as_path_len,
    /// is_ebgp, igp_cost) tuples. Returns `Greater` when `a` is preferred.
    fn compare(a: (u32, u32, bool, u64), b: (u32, u32, bool, u64)) -> std::cmp::Ordering {
        a.0.cmp(&b.0) // higher local pref preferred
            .then_with(|| b.1.cmp(&a.1)) // shorter AS path preferred
            .then_with(|| a.2.cmp(&b.2)) // eBGP preferred over iBGP
            .then_with(|| b.3.cmp(&a.3)) // lower IGP cost preferred
    }

    fn route_key(route: &Route) -> (u32, u32, bool, u64) {
        (
            route.attrs.local_pref,
            route.attrs.as_path_len() as u32,
            route.learned_via == SessionType::Ebgp,
            route.igp_cost,
        )
    }

    /// How does the pending update `update` at `node` fare against the best
    /// alternative any other peer could still provide?
    fn dominance(
        &self,
        state: &RpvpState,
        interner: &RouteInterner,
        decided: &[bool],
        node: NodeId,
        from_peer: NodeId,
        update: &Route,
    ) -> Dominance {
        let update_key = Self::route_key(update);
        let mut result = Dominance::StrictWinner;
        for &(peer, is_ebgp, igp, can_threaten) in &self.peer_bounds[node.index()] {
            if peer == from_peer {
                continue;
            }
            if !can_threaten && !decided[peer.index()] {
                // An iBGP-only, non-originating peer can never advertise.
                continue;
            }
            // The most preferred route this peer could ever hand us. Peers
            // that have already decided can only offer what their selected
            // path exports; we bound that by its current key (attribute
            // rewrites on export/import are already reflected in what the
            // enabled-set computation saw, so the coarse bound here is the
            // peer's own selection "one eBGP hop closer").
            let alternative = if decided[peer.index()] {
                match state.best(peer, interner) {
                    None => continue, // a decided peer with no route is no threat
                    Some(peer_best) => (
                        self.max_local_pref_for(is_ebgp, peer_best),
                        peer_best.attrs.as_path_len() as u32 + if is_ebgp { 1 } else { 0 },
                        is_ebgp,
                        igp,
                    ),
                }
            } else {
                (
                    self.max_local_pref,
                    self.min_as_dist
                        .get(peer.index())
                        .copied()
                        .unwrap_or(u32::MAX)
                        .saturating_add(if is_ebgp { 1 } else { 0 }),
                    is_ebgp,
                    igp,
                )
            };
            match Self::compare(update_key, alternative) {
                std::cmp::Ordering::Greater => {}
                std::cmp::Ordering::Equal => {
                    if result == Dominance::StrictWinner {
                        result = Dominance::TiedWinner;
                    }
                }
                std::cmp::Ordering::Less => return Dominance::Unknown,
            }
        }
        result
    }

    fn max_local_pref_for(&self, is_ebgp: bool, peer_best: &Route) -> u32 {
        if is_ebgp {
            // Import policy may raise it up to the network-wide maximum.
            self.max_local_pref
        } else {
            // iBGP carries the peer's local pref unchanged (import maps could
            // still raise it; stay conservative).
            self.max_local_pref.max(peer_best.attrs.local_pref)
        }
    }
}

impl PorHeuristic for BgpPor {
    fn pick(
        &self,
        state: &RpvpState,
        enabled: &EnabledView<'_>,
        decided: &[bool],
        interner: &RouteInterner,
    ) -> PorDecision {
        // First pass, streamed per update: a node with a single pending
        // update that strictly dominates everything else is deterministic.
        // An `Unknown` verdict short-circuits the node's remaining updates
        // (it can neither be a strict singleton nor all-known).
        let mut tied_candidate: Option<(NodeId, usize)> = None;
        for choice in enabled.iter() {
            if choice.best_updates.is_empty() {
                continue;
            }
            let mut first = Dominance::Unknown;
            let mut all_known = true;
            for (ui, &(peer, handle)) in choice.best_updates.iter().enumerate() {
                let Some(route) = interner.resolve(handle) else {
                    all_known = false;
                    break;
                };
                let d = self.dominance(state, interner, decided, choice.node, peer, route);
                if ui == 0 {
                    first = d;
                }
                if d == Dominance::Unknown {
                    all_known = false;
                    break;
                }
            }
            if choice.best_updates.len() == 1 && first == Dominance::StrictWinner {
                return PorDecision::Deterministic {
                    node: choice.node,
                    update: 0,
                };
            }
            if tied_candidate.is_none() && all_known {
                tied_candidate = Some((choice.node, choice.best_updates.len()));
            }
        }
        // Second pass: a node whose (possibly multiple) pending updates
        // cannot be beaten, only tied — branch over exactly those updates.
        if let Some((node, updates)) = tied_candidate {
            if updates == 1 {
                // A single unbeatable-but-tieable update: the tie partner may
                // arrive later; branching over just this node is the paper's
                // behavior (the alternative converged state, if any, is still
                // reachable through the later node's own choice point).
                return PorDecision::Deterministic { node, update: 0 };
            }
            return PorDecision::BranchUpdates { node };
        }
        PorDecision::BranchAll
    }
}

/// Reusable buffers for [`decision_independent`], so the per-step fast path
/// performs no heap allocation once warmed up.
#[derive(Default)]
pub struct DiScratch {
    /// Component label per node (`usize::MAX` = unlabelled / decided).
    component: Vec<usize>,
    /// DFS stack for the component labelling.
    stack: Vec<NodeId>,
    /// Component labels already claimed by an enabled node (tiny: one entry
    /// per enabled node, scanned linearly).
    seen: Vec<usize>,
}

impl DiScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Decision independence (§4.1.3), applied generically before the
/// protocol-specific heuristic.
///
/// The execution order between the enabled nodes is irrelevant when (a) every
/// pending update comes from a peer that has already made its final decision,
/// and (b) no advertisement can flow between any two enabled nodes without
/// passing through an already-decided node (checked as: the enabled nodes lie
/// in pairwise-distinct connected components of the peer graph restricted to
/// undecided nodes). When both hold, a single arbitrary order is explored.
pub fn decision_independent(
    model: &dyn ProtocolModel,
    enabled: &EnabledView<'_>,
    decided: &[bool],
    scratch: &mut DiScratch,
) -> Option<PorDecision> {
    let first = enabled.first()?;
    let all_from_decided = enabled.iter().all(|choice| {
        choice
            .best_updates
            .iter()
            .all(|(peer, _)| decided[peer.index()])
    });
    if !all_from_decided {
        return None;
    }
    if enabled.len() > 1 {
        // Component labelling of the undecided subgraph.
        let n = model.node_count();
        scratch.component.clear();
        scratch.component.resize(n, usize::MAX);
        scratch.stack.clear();
        let component = &mut scratch.component;
        let stack = &mut scratch.stack;
        let mut next = 0usize;
        for start in 0..n {
            if decided[start] || component[start] != usize::MAX {
                continue;
            }
            let label = next;
            next += 1;
            stack.push(NodeId(start as u32));
            component[start] = label;
            while let Some(u) = stack.pop() {
                for &p in model.peers(u) {
                    if !decided[p.index()] && component[p.index()] == usize::MAX {
                        component[p.index()] = label;
                        stack.push(p);
                    }
                }
            }
        }
        scratch.seen.clear();
        for choice in enabled.iter() {
            let label = component[choice.node.index()];
            if scratch.seen.contains(&label) {
                // Two enabled nodes can still influence each other through
                // undecided nodes: independence does not apply.
                return None;
            }
            scratch.seen.push(label);
        }
    }
    // Order does not matter; still branch over a node's tied updates.
    if first.best_updates.len() > 1 {
        Some(PorDecision::BranchUpdates { node: first.node })
    } else {
        Some(PorDecision::Deterministic {
            node: first.node,
            update: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plankton_config::scenarios::{disagree_gadget, fat_tree_bgp_rfc7938, ring_ospf};
    use plankton_net::failure::FailureSet;
    use plankton_protocols::bgp::UniformUnderlay;
    use plankton_protocols::ospf::OspfModel;
    use plankton_protocols::rpvp::Rpvp;
    use std::sync::Arc;

    #[test]
    fn ospf_por_picks_cheapest_pending_update() {
        let s = ring_ospf(6);
        let model = OspfModel::new(
            &s.network,
            s.destination,
            vec![s.origin],
            &FailureSet::none(),
        );
        let rpvp = Rpvp::new(&model);
        let mut interner = RouteInterner::new();
        let state = rpvp.initial_state(&mut interner);
        let enabled = rpvp.enabled(&state, &mut interner);
        // Both neighbors of the origin are enabled with cost-1 updates; the
        // heuristic must pick one deterministically.
        assert_eq!(enabled.len(), 2);
        let decided = vec![false; 6];
        let view = EnabledView::Slice(&enabled);
        match OspfPor.pick(&state, &view, &decided, &interner) {
            PorDecision::Deterministic { node, update } => {
                let choice = view.get_node(node).expect("picked node is enabled");
                let (_, handle) = choice.best_updates[update];
                assert_eq!(interner.resolve(handle).unwrap().igp_cost, 1);
            }
            other => panic!("expected deterministic pick, got {other:?}"),
        }
    }

    #[test]
    fn no_por_always_branches() {
        let s = ring_ospf(4);
        let model = OspfModel::new(
            &s.network,
            s.destination,
            vec![s.origin],
            &FailureSet::none(),
        );
        let rpvp = Rpvp::new(&model);
        let mut interner = RouteInterner::new();
        let state = rpvp.initial_state(&mut interner);
        let enabled = rpvp.enabled(&state, &mut interner);
        assert_eq!(
            NoPor.pick(&state, &EnabledView::Slice(&enabled), &[false; 4], &interner),
            PorDecision::BranchAll
        );
    }

    #[test]
    fn bgp_por_detects_deterministic_first_hop() {
        // In the RFC 7938 fat tree, an edge switch adjacent to the origin
        // receives a 1-AS-hop route which nothing can beat (all local prefs
        // are default): it must be detected as deterministic.
        let s = fat_tree_bgp_rfc7938(4, 3);
        let origin = s.fat_tree.edge[0][0];
        let prefix = s.fat_tree.prefix_of_edge(origin).unwrap();
        let model = plankton_protocols::bgp::BgpModel::new(
            &s.network,
            prefix,
            vec![origin],
            &FailureSet::none(),
            Arc::new(UniformUnderlay),
        );
        let por = BgpPor::from_model(&model);
        let rpvp = Rpvp::new(&model);
        let mut interner = RouteInterner::new();
        let state = rpvp.initial_state(&mut interner);
        let enabled = rpvp.enabled(&state, &mut interner);
        assert!(!enabled.is_empty());
        let mut decided = vec![false; model.node_count()];
        decided[origin.index()] = true;
        match por.pick(&state, &EnabledView::Slice(&enabled), &decided, &interner) {
            PorDecision::Deterministic { node, .. } => {
                // The picked node is one of the origin's pod aggregation
                // switches (1 AS hop from the origin).
                assert!(s.fat_tree.aggregation[0].contains(&node));
            }
            other => panic!("expected deterministic pick, got {other:?}"),
        }
    }

    #[test]
    fn bgp_por_leaves_genuine_ties_to_branching() {
        // In the DISAGREE gadget both actors prefer each other's route
        // (local pref 200) over the direct one, and the maximum import local
        // pref in the network is 200, so the direct cost-1 routes are not
        // clear winners: the heuristic must not declare the initial updates
        // deterministic.
        let g = disagree_gadget();
        let model = plankton_protocols::bgp::BgpModel::new(
            &g.network,
            g.destination,
            vec![g.origin],
            &FailureSet::none(),
            Arc::new(UniformUnderlay),
        );
        let por = BgpPor::from_model(&model);
        let rpvp = Rpvp::new(&model);
        let mut interner = RouteInterner::new();
        let state = rpvp.initial_state(&mut interner);
        let enabled = rpvp.enabled(&state, &mut interner);
        let mut decided = vec![false; model.node_count()];
        decided[g.origin.index()] = true;
        let decision = por.pick(&state, &EnabledView::Slice(&enabled), &decided, &interner);
        assert_eq!(decision, PorDecision::BranchAll);
    }

    #[test]
    fn decision_independence_requires_separated_components() {
        let s = ring_ospf(4);
        let model = OspfModel::new(
            &s.network,
            s.destination,
            vec![s.origin],
            &FailureSet::none(),
        );
        let rpvp = Rpvp::new(&model);
        let mut interner = RouteInterner::new();
        let state = rpvp.initial_state(&mut interner);
        let enabled = rpvp.enabled(&state, &mut interner);
        let view = EnabledView::Slice(&enabled);
        let mut decided = vec![false; 4];
        let mut scratch = DiScratch::new();
        // Pending updates come from the (undecided) origin: no independence.
        assert!(decision_independent(&model, &view, &decided, &mut scratch).is_none());
        decided[s.origin.index()] = true;
        // Updates now come from a decided node, but the two enabled neighbors
        // of the origin can still reach each other through the undecided far
        // side of the ring, so independence still must not apply.
        assert!(decision_independent(&model, &view, &decided, &mut scratch).is_none());
        // Once the far-side routers are decided too, the enabled nodes are
        // isolated from each other and the order genuinely cannot matter.
        decided[s.ring.routers[2].index()] = true;
        assert!(decision_independent(&model, &view, &decided, &mut scratch).is_some());
    }
}
