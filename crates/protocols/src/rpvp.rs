//! The Reduced Path Vector Protocol (RPVP, §3.4.2, Algorithm 1).
//!
//! RPVP replaces SPVP's message passing with a shared-memory model: the
//! network state is just `best-path(n)` for every node. At each step the set
//! of *enabled* nodes is computed (nodes whose best path is invalid, or for
//! which some peer could advertise something strictly better); one enabled
//! node and one of its best-update peers are chosen non-deterministically and
//! the node adopts that advertisement. When no node is enabled the state is
//! converged. Theorem 1 of the paper shows that the converged states
//! reachable this way are exactly the converged states of extended SPVP, so
//! model checking RPVP is sound and complete for converged-state policies.

use crate::model::{Preference, ProtocolModel};
use crate::route::Route;
use plankton_net::topology::NodeId;
use serde::{Deserialize, Serialize};

/// The RPVP network state: the best route of every node (`None` is the
/// paper's `⊥`).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RpvpState {
    /// `best[n]` = the best route currently selected by node `n`.
    pub best: Vec<Option<Route>>,
}

impl RpvpState {
    /// The initial state for a protocol model: origins hold `ε`, everyone
    /// else holds `⊥`.
    pub fn initial(model: &dyn ProtocolModel) -> Self {
        let mut best = vec![None; model.node_count()];
        for &o in model.origins() {
            best[o.index()] = Some(model.origin_route(o));
        }
        RpvpState { best }
    }

    /// The best route of node `n`.
    pub fn best(&self, n: NodeId) -> Option<&Route> {
        self.best[n.index()].as_ref()
    }

    /// Nodes that currently hold some route.
    pub fn nodes_with_routes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.best
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_some())
            .map(|(i, _)| NodeId(i as u32))
    }
}

/// One entry of the enabled set: a node that must still act, why it is
/// enabled, and the peers whose advertisements are maximal for it (the
/// paper's set `U`; more than one peer means a non-deterministic choice).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EnabledChoice {
    /// The enabled node.
    pub node: NodeId,
    /// Is the node's current best path invalid (its next hop no longer
    /// carries the matching path)?
    pub invalid: bool,
    /// The peers producing the highest-ranked usable advertisements, together
    /// with those advertisements. Empty iff the node is enabled only because
    /// its path is invalid.
    pub best_updates: Vec<(NodeId, Route)>,
}

/// A converged RPVP state together with the protocol that produced it.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvergedState {
    /// The best route of every node in the converged state.
    pub best: Vec<Option<Route>>,
}

impl ConvergedState {
    /// The best route of node `n`.
    pub fn best(&self, n: NodeId) -> Option<&Route> {
        self.best[n.index()].as_ref()
    }

    /// The forwarding next hop of node `n`, if it has a route and is not the
    /// origin itself.
    pub fn next_hop(&self, n: NodeId) -> Option<NodeId> {
        self.best(n).and_then(|r| r.next_hop())
    }

    /// Follow next hops from `start` until an origin, a node without a
    /// route, or a repeated node is reached. Returns the nodes visited in
    /// order (including `start`). Repeats are detected with a visited bitvec
    /// sized to the network, so the walk is O(path) rather than O(path²).
    pub fn walk_from(&self, start: NodeId) -> Vec<NodeId> {
        let mut visited = vec![false; self.best.len()];
        visited[start.index()] = true;
        let mut seen = vec![start];
        let mut cur = start;
        loop {
            match self.next_hop(cur) {
                Some(next) => {
                    seen.push(next);
                    if visited[next.index()] {
                        return seen;
                    }
                    visited[next.index()] = true;
                    cur = next;
                }
                None => return seen,
            }
        }
    }

    /// Nodes holding a route in this converged state.
    pub fn routed_nodes(&self) -> Vec<NodeId> {
        self.best
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_some())
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }
}

/// The RPVP step machinery over a protocol model.
pub struct Rpvp<'m> {
    model: &'m dyn ProtocolModel,
    /// `origin_mask[n]` ⟺ `n ∈ origins()`, so the per-node-per-step origin
    /// check is a bit test instead of a linear scan of the origin list.
    origin_mask: Vec<bool>,
}

impl<'m> Rpvp<'m> {
    /// Wrap a protocol model.
    pub fn new(model: &'m dyn ProtocolModel) -> Self {
        let mut origin_mask = vec![false; model.node_count()];
        for &o in model.origins() {
            origin_mask[o.index()] = true;
        }
        Rpvp { model, origin_mask }
    }

    /// The underlying protocol model.
    pub fn model(&self) -> &dyn ProtocolModel {
        self.model
    }

    /// The initial state.
    pub fn initial_state(&self) -> RpvpState {
        RpvpState::initial(self.model)
    }

    /// Is node `n` an origin?
    pub fn is_origin(&self, n: NodeId) -> bool {
        self.origin_mask.get(n.index()).copied().unwrap_or(false)
    }

    /// The advertisement `from` would currently offer `to`
    /// (`import_{to,from}(export_{from,to}(best(from)))`), if any.
    pub fn advertisement(&self, state: &RpvpState, from: NodeId, to: NodeId) -> Option<Route> {
        let best_from = state.best(from)?;
        self.model.advertise(from, to, best_from)
    }

    /// Is `n`'s current best path invalid: its next hop's best path is not
    /// the continuation of `n`'s path (`best-path(best-path(n).head) ≠
    /// best-path(n).rest`)?
    pub fn invalid(&self, state: &RpvpState, n: NodeId) -> bool {
        let Some(route) = state.best(n) else {
            return false;
        };
        let Some(head) = route.next_hop() else {
            // The origin's own route never becomes invalid.
            return false;
        };
        match state.best(head) {
            None => true,
            Some(head_route) => head_route.path != route.rest(),
        }
    }

    /// Can `peer` produce an advertisement that `n` strictly prefers over its
    /// current best route? Returns that advertisement if so.
    pub fn update_from(&self, state: &RpvpState, n: NodeId, peer: NodeId) -> Option<Route> {
        let adv = self.advertisement(state, peer, n)?;
        match state.best(n) {
            None => Some(adv),
            Some(current) => {
                if self.model.prefer(n, &adv, current) == Preference::Better {
                    Some(adv)
                } else {
                    None
                }
            }
        }
    }

    /// The enabled set of a state (the paper's `E`, line 5 of Algorithm 1),
    /// with each node's best-update peers (`U`, line 13) precomputed.
    /// Origins are never enabled.
    pub fn enabled(&self, state: &RpvpState) -> Vec<EnabledChoice> {
        let mut out = Vec::new();
        for i in 0..self.model.node_count() {
            let n = NodeId(i as u32);
            if self.is_origin(n) {
                continue;
            }
            if let Some(choice) = self.enabled_at(state, n) {
                out.push(choice);
            }
        }
        out
    }

    /// The enabled-choice entry for a single node, if it is enabled.
    pub fn enabled_at(&self, state: &RpvpState, n: NodeId) -> Option<EnabledChoice> {
        if self.is_origin(n) {
            return None;
        }
        let invalid = self.invalid(state, n);
        let mut updates: Vec<(NodeId, Route)> = Vec::new();
        for &peer in self.model.peers(n) {
            if let Some(adv) = self.update_from(state, n, peer) {
                updates.push((peer, adv));
            }
        }
        if updates.is_empty() && !invalid {
            return None;
        }
        // Keep only the maximal advertisements (the paper's
        // `best({n' | can-update(n')})`).
        let routes: Vec<Route> = updates.iter().map(|(_, r)| r.clone()).collect();
        let best = self.model.best_indices(n, &routes);
        let best_updates = best.into_iter().map(|i| updates[i].clone()).collect();
        Some(EnabledChoice {
            node: n,
            invalid,
            best_updates,
        })
    }

    /// Perform one RPVP step: node `n` (which must be enabled) clears an
    /// invalid path and, if `from` is given, adopts that peer's
    /// advertisement. `from` must be one of the node's best-update peers.
    pub fn step(&self, state: &mut RpvpState, n: NodeId, from: Option<NodeId>) {
        let adv = from.map(|peer| {
            self.advertisement(state, peer, n)
                .expect("step() called with a peer that offers no advertisement")
        });
        self.step_adopting(state, n, adv);
    }

    /// Perform one RPVP step in place, adopting an already-computed
    /// advertisement instead of recomputing it, and return the node's
    /// previous best route as an undo record for [`Rpvp::undo_step`].
    ///
    /// This is the incremental explorer's apply primitive: the enabled-set
    /// computation already produced the exact route the node adopts
    /// ([`EnabledChoice::best_updates`]), so re-deriving it through
    /// `advertisement()` at step time is wasted work. `adopt == None` is the
    /// clear-an-invalid-path step.
    pub fn step_adopting(
        &self,
        state: &mut RpvpState,
        n: NodeId,
        adopt: Option<Route>,
    ) -> Option<Route> {
        match adopt {
            // Clearing an invalid path before adopting is subsumed by the
            // adoption itself; a single swap preserves `step()` semantics.
            Some(route) => state.best[n.index()].replace(route),
            None => {
                if self.invalid(state, n) {
                    state.best[n.index()].take()
                } else {
                    // A clear-only step on a valid path is a no-op (the
                    // explorer never issues one); keep undo exact anyway.
                    state.best[n.index()].clone()
                }
            }
        }
    }

    /// Revert a step applied by [`Rpvp::step_adopting`], restoring the
    /// node's previous best route.
    pub fn undo_step(&self, state: &mut RpvpState, n: NodeId, prev_best: Option<Route>) {
        state.best[n.index()] = prev_best;
    }

    /// Is the state converged (no node enabled)?
    pub fn converged(&self, state: &RpvpState) -> bool {
        (0..self.model.node_count() as u32)
            .map(NodeId)
            .all(|n| self.enabled_at(state, n).is_none())
    }

    /// Snapshot a converged state.
    pub fn converged_state(&self, state: &RpvpState) -> ConvergedState {
        debug_assert!(self.converged(state), "state is not converged");
        ConvergedState {
            best: state.best.clone(),
        }
    }
}

/// A delta-maintained RPVP enabled set.
///
/// The paper's Algorithm 1 recomputes the enabled set `E` from scratch at
/// every step — O(nodes × peers) of route derivations per transition. But a
/// step at node `n` only changes `best(n)`, and a node `m`'s enabled status
/// depends solely on `best(m)` and `best(p)` for `p ∈ peers(m)`: the only
/// nodes whose status can change are `n` itself and the reverse peers of `n`
/// ([`ProtocolModel::reverse_peers`]). This structure caches one
/// [`EnabledChoice`] per enabled node, sorted by node id (the same iteration
/// order as [`Rpvp::enabled`]), and recomputes only that dirty neighborhood
/// after each step. Displaced entries are handed back to the caller so an
/// apply/undo search can restore them exactly when it backtracks.
pub struct IncrementalEnabled {
    /// Currently enabled nodes' choices, sorted by node id.
    list: Vec<EnabledChoice>,
    /// `rev_peers[n]` = nodes that consider advertisements from `n`.
    rev_peers: Vec<Vec<NodeId>>,
    /// Nodes that may ever be enabled (non-origins, and allowed by any
    /// influence pruning the search applies). Ineligible nodes are skipped
    /// entirely, never recomputed.
    eligible: Vec<bool>,
    /// Total `enabled_at` recomputations performed (observability: the
    /// pre-change explorer recomputed every node at every step).
    recomputed: u64,
}

impl IncrementalEnabled {
    /// An enabled set over the given reverse-peer index and eligibility mask.
    /// Call [`IncrementalEnabled::rebuild`] before use.
    pub fn new(rev_peers: Vec<Vec<NodeId>>, eligible: Vec<bool>) -> Self {
        IncrementalEnabled {
            list: Vec::new(),
            rev_peers,
            eligible,
            recomputed: 0,
        }
    }

    /// Recompute the whole enabled set from scratch (initialization).
    pub fn rebuild(&mut self, rpvp: &Rpvp, state: &RpvpState) {
        self.list.clear();
        for i in 0..self.eligible.len() {
            if !self.eligible[i] {
                continue;
            }
            self.recomputed += 1;
            if let Some(choice) = rpvp.enabled_at(state, NodeId(i as u32)) {
                self.list.push(choice);
            }
        }
    }

    /// The enabled choices, in node-id order — exactly the (eligible subset
    /// of the) list [`Rpvp::enabled`] would return for the current state.
    pub fn list(&self) -> &[EnabledChoice] {
        &self.list
    }

    /// Number of `enabled_at` recomputations performed so far.
    pub fn recompute_count(&self) -> u64 {
        self.recomputed
    }

    fn position(&self, node: NodeId) -> Result<usize, usize> {
        self.list.binary_search_by_key(&node.0, |c| c.node.0)
    }

    /// Install `entry` as node `node`'s cache slot (None = not enabled) and
    /// return the displaced previous slot. Used both for delta maintenance
    /// and for restoring displaced entries on undo.
    pub fn set_entry(
        &mut self,
        node: NodeId,
        entry: Option<EnabledChoice>,
    ) -> Option<EnabledChoice> {
        match (self.position(node), entry) {
            (Ok(i), Some(e)) => Some(std::mem::replace(&mut self.list[i], e)),
            (Ok(i), None) => Some(self.list.remove(i)),
            (Err(i), Some(e)) => {
                self.list.insert(i, e);
                None
            }
            (Err(_), None) => None,
        }
    }

    /// Recompute the dirty neighborhood of `node` after its best route
    /// changed: `node` itself plus its reverse peers. Every displaced cache
    /// slot is pushed onto `displaced` (in recompute order) so the caller
    /// can undo the step by replaying them in reverse through
    /// [`IncrementalEnabled::set_entry`].
    pub fn refresh_after_step(
        &mut self,
        rpvp: &Rpvp,
        state: &RpvpState,
        node: NodeId,
        displaced: &mut Vec<(NodeId, Option<EnabledChoice>)>,
    ) {
        self.refresh_node(rpvp, state, node, displaced);
        for k in 0..self.rev_peers[node.index()].len() {
            let m = self.rev_peers[node.index()][k];
            if m != node {
                self.refresh_node(rpvp, state, m, displaced);
            }
        }
    }

    fn refresh_node(
        &mut self,
        rpvp: &Rpvp,
        state: &RpvpState,
        m: NodeId,
        displaced: &mut Vec<(NodeId, Option<EnabledChoice>)>,
    ) {
        if !self.eligible[m.index()] {
            return;
        }
        self.recomputed += 1;
        let entry = rpvp.enabled_at(state, m);
        let had_new = entry.is_some();
        let prev = self.set_entry(m, entry);
        // (None → None) transitions need no undo record.
        if had_new || prev.is_some() {
            displaced.push((m, prev));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Preference;
    use plankton_net::ip::Prefix;

    /// A 4-node line 0-1-2-3 where node 0 originates; ranking prefers fewer
    /// hops, ties broken deterministically by lower next-hop id (total
    /// order), so RPVP has a single converged state.
    struct Line4;

    impl ProtocolModel for Line4 {
        fn node_count(&self) -> usize {
            4
        }
        fn origins(&self) -> &[NodeId] {
            const O: [NodeId; 1] = [NodeId(0)];
            &O
        }
        fn peers(&self, n: NodeId) -> &[NodeId] {
            const P0: [NodeId; 1] = [NodeId(1)];
            const P1: [NodeId; 2] = [NodeId(0), NodeId(2)];
            const P2: [NodeId; 2] = [NodeId(1), NodeId(3)];
            const P3: [NodeId; 1] = [NodeId(2)];
            match n.0 {
                0 => &P0,
                1 => &P1,
                2 => &P2,
                _ => &P3,
            }
        }
        fn advertise(&self, from: NodeId, to: NodeId, r: &Route) -> Option<Route> {
            if r.traverses(to) {
                return None;
            }
            Some(r.extended_through(from))
        }
        fn origin_route(&self, _o: NodeId) -> Route {
            Route::originated(Prefix::DEFAULT)
        }
        fn prefer(&self, _n: NodeId, a: &Route, b: &Route) -> Preference {
            match a
                .hop_count()
                .cmp(&b.hop_count())
                .then_with(|| a.next_hop().map(|x| x.0).cmp(&b.next_hop().map(|x| x.0)))
            {
                std::cmp::Ordering::Less => Preference::Better,
                std::cmp::Ordering::Greater => Preference::Worse,
                std::cmp::Ordering::Equal => Preference::Tied,
            }
        }
        fn name(&self) -> &'static str {
            "line4"
        }
    }

    #[test]
    fn initial_state_has_origin_epsilon() {
        let m = Line4;
        let rpvp = Rpvp::new(&m);
        let s = rpvp.initial_state();
        assert!(s.best(NodeId(0)).unwrap().is_origin());
        assert!(s.best(NodeId(1)).is_none());
        assert_eq!(s.nodes_with_routes().count(), 1);
    }

    #[test]
    fn enabled_set_grows_as_routes_propagate() {
        let m = Line4;
        let rpvp = Rpvp::new(&m);
        let mut s = rpvp.initial_state();
        // Initially only node 1 (adjacent to the origin) is enabled.
        let enabled = rpvp.enabled(&s);
        assert_eq!(enabled.len(), 1);
        assert_eq!(enabled[0].node, NodeId(1));
        assert!(!enabled[0].invalid);
        assert_eq!(enabled[0].best_updates.len(), 1);
        // After node 1 acts, node 2 becomes enabled.
        rpvp.step(&mut s, NodeId(1), Some(NodeId(0)));
        let enabled = rpvp.enabled(&s);
        assert_eq!(enabled.len(), 1);
        assert_eq!(enabled[0].node, NodeId(2));
    }

    #[test]
    fn full_execution_converges_to_shortest_paths() {
        let m = Line4;
        let rpvp = Rpvp::new(&m);
        let mut s = rpvp.initial_state();
        let mut steps = 0;
        while let Some(choice) = rpvp.enabled(&s).into_iter().next() {
            let peer = choice.best_updates.first().map(|(p, _)| *p);
            rpvp.step(&mut s, choice.node, peer);
            steps += 1;
            assert!(steps <= 10, "execution did not converge");
        }
        assert!(rpvp.converged(&s));
        let c = rpvp.converged_state(&s);
        assert_eq!(c.next_hop(NodeId(1)), Some(NodeId(0)));
        assert_eq!(c.next_hop(NodeId(2)), Some(NodeId(1)));
        assert_eq!(c.next_hop(NodeId(3)), Some(NodeId(2)));
        assert_eq!(
            c.walk_from(NodeId(3)),
            vec![NodeId(3), NodeId(2), NodeId(1), NodeId(0)]
        );
        assert_eq!(c.routed_nodes().len(), 4);
    }

    #[test]
    fn invalid_detection_when_upstream_withdraws() {
        let m = Line4;
        let rpvp = Rpvp::new(&m);
        let mut s = rpvp.initial_state();
        rpvp.step(&mut s, NodeId(1), Some(NodeId(0)));
        rpvp.step(&mut s, NodeId(2), Some(NodeId(1)));
        // Manually clear node 1's path: node 2's path is now invalid.
        s.best[1] = None;
        assert!(rpvp.invalid(&s, NodeId(2)));
        assert!(!rpvp.invalid(&s, NodeId(3)));
        let choice = rpvp.enabled_at(&s, NodeId(2)).unwrap();
        assert!(choice.invalid);
        // Stepping with no peer clears the invalid path.
        rpvp.step(&mut s, NodeId(2), None);
        assert!(s.best(NodeId(2)).is_none());
    }

    #[test]
    fn origins_are_never_enabled() {
        let m = Line4;
        let rpvp = Rpvp::new(&m);
        let s = rpvp.initial_state();
        assert!(rpvp.enabled_at(&s, NodeId(0)).is_none());
        assert!(rpvp.is_origin(NodeId(0)));
        assert!(!rpvp.is_origin(NodeId(1)));
    }

    #[test]
    fn converged_detection() {
        let m = Line4;
        let rpvp = Rpvp::new(&m);
        let s = rpvp.initial_state();
        assert!(!rpvp.converged(&s));
    }

    #[test]
    fn step_adopting_round_trips_through_undo() {
        let m = Line4;
        let rpvp = Rpvp::new(&m);
        let mut s = rpvp.initial_state();
        let before = s.clone();
        let choice = rpvp.enabled(&s).remove(0);
        let (peer, route) = choice.best_updates[0].clone();
        // Adoption matches the peer-recomputing step()...
        let prev = rpvp.step_adopting(&mut s, choice.node, Some(route));
        let mut via_step = before.clone();
        rpvp.step(&mut via_step, choice.node, Some(peer));
        assert_eq!(s, via_step);
        // ...and undo restores the exact prior state.
        rpvp.undo_step(&mut s, choice.node, prev);
        assert_eq!(s, before);
    }

    #[test]
    fn clear_step_round_trips_through_undo() {
        let m = Line4;
        let rpvp = Rpvp::new(&m);
        let mut s = rpvp.initial_state();
        rpvp.step(&mut s, NodeId(1), Some(NodeId(0)));
        rpvp.step(&mut s, NodeId(2), Some(NodeId(1)));
        s.best[1] = None; // node 2's path is now invalid
        let before = s.clone();
        let prev = rpvp.step_adopting(&mut s, NodeId(2), None);
        assert!(s.best(NodeId(2)).is_none());
        assert!(prev.is_some());
        rpvp.undo_step(&mut s, NodeId(2), prev);
        assert_eq!(s, before);
    }

    fn eligible_for(m: &dyn ProtocolModel) -> Vec<bool> {
        let rpvp = Rpvp::new(m);
        (0..m.node_count())
            .map(|i| !rpvp.is_origin(NodeId(i as u32)))
            .collect()
    }

    #[test]
    fn incremental_enabled_tracks_full_recompute() {
        let m = Line4;
        let rpvp = Rpvp::new(&m);
        let mut s = rpvp.initial_state();
        let mut inc = IncrementalEnabled::new(m.reverse_peers(), eligible_for(&m));
        inc.rebuild(&rpvp, &s);
        let mut displaced = Vec::new();
        let mut steps = 0;
        while let Some(choice) = inc.list().first().cloned() {
            let adopt = choice.best_updates.first().map(|(_, r)| r.clone());
            rpvp.step_adopting(&mut s, choice.node, adopt);
            inc.refresh_after_step(&rpvp, &s, choice.node, &mut displaced);
            assert_eq!(inc.list(), rpvp.enabled(&s).as_slice());
            steps += 1;
            assert!(steps <= 10, "execution did not converge");
        }
        assert!(rpvp.converged(&s));
        assert!(inc.recompute_count() > 0);
    }

    #[test]
    fn incremental_enabled_undo_restores_displaced_entries() {
        let m = Line4;
        let rpvp = Rpvp::new(&m);
        let mut s = rpvp.initial_state();
        let mut inc = IncrementalEnabled::new(m.reverse_peers(), eligible_for(&m));
        inc.rebuild(&rpvp, &s);
        let before = inc.list().to_vec();
        let choice = inc.list()[0].clone();
        let adopt = choice.best_updates.first().map(|(_, r)| r.clone());
        let prev_best = rpvp.step_adopting(&mut s, choice.node, adopt);
        let mut displaced = Vec::new();
        inc.refresh_after_step(&rpvp, &s, choice.node, &mut displaced);
        assert_ne!(inc.list(), before.as_slice());
        // Undo: revert the state, then replay displaced entries in reverse.
        rpvp.undo_step(&mut s, choice.node, prev_best);
        for (node, entry) in displaced.into_iter().rev() {
            inc.set_entry(node, entry);
        }
        assert_eq!(inc.list(), before.as_slice());
        assert_eq!(inc.list(), rpvp.enabled(&s).as_slice());
    }
}
