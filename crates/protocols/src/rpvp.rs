//! The Reduced Path Vector Protocol (RPVP, §3.4.2, Algorithm 1).
//!
//! RPVP replaces SPVP's message passing with a shared-memory model: the
//! network state is just `best-path(n)` for every node. At each step the set
//! of *enabled* nodes is computed (nodes whose best path is invalid, or for
//! which some peer could advertise something strictly better); one enabled
//! node and one of its best-update peers are chosen non-deterministically and
//! the node adopts that advertisement. When no node is enabled the state is
//! converged. Theorem 1 of the paper shows that the converged states
//! reachable this way are exactly the converged states of extended SPVP, so
//! model checking RPVP is sound and complete for converged-state policies.
//!
//! The layer is **handle-native**: routes are interned the moment the
//! enabled-set computation derives them
//! ([`RouteInterner`](crate::interner::RouteInterner) threaded through every
//! method), so [`RpvpState`] is a flat vector of
//! [`RouteHandle`](crate::interner::RouteHandle)s, a step is an integer
//! swap, an undo record is a single `Copy` handle, and visited-state checks
//! upstream are direct handle compares with no re-interning pass.

use crate::interner::{RouteHandle, RouteInterner};
use crate::model::{Preference, ProtocolModel};
use crate::route::Route;
use plankton_net::topology::NodeId;
use serde::{Deserialize, Serialize};

/// The RPVP network state: the best route of every node, as interned
/// handles (`RouteHandle::NONE` is the paper's `⊥`).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RpvpState {
    /// `best[n]` = the handle of the best route currently selected by node
    /// `n` (interned in the run's [`RouteInterner`]).
    pub best: Vec<RouteHandle>,
}

impl RpvpState {
    /// The initial state for a protocol model: origins hold `ε`, everyone
    /// else holds `⊥`.
    pub fn initial(model: &dyn ProtocolModel, interner: &mut RouteInterner) -> Self {
        let mut best = vec![RouteHandle::NONE; model.node_count()];
        for &o in model.origins() {
            best[o.index()] = interner.intern_owned(model.origin_route(o));
        }
        RpvpState { best }
    }

    /// Build a state from owned per-node routes, interning each (used by
    /// cross-checks that obtain a state from outside RPVP, e.g. SPVP).
    pub fn from_routes(routes: &[Option<Route>], interner: &mut RouteInterner) -> Self {
        RpvpState {
            best: routes
                .iter()
                .map(|r| interner.intern_opt(r.as_ref()))
                .collect(),
        }
    }

    /// The handle of node `n`'s best route (`NONE` = `⊥`).
    pub fn handle(&self, n: NodeId) -> RouteHandle {
        self.best[n.index()]
    }

    /// Does node `n` currently hold a route?
    pub fn has_route(&self, n: NodeId) -> bool {
        self.best[n.index()].is_some()
    }

    /// The best route of node `n`, resolved through the interner.
    pub fn best<'i>(&self, n: NodeId, interner: &'i RouteInterner) -> Option<&'i Route> {
        interner.resolve(self.best[n.index()])
    }

    /// Nodes that currently hold some route.
    pub fn nodes_with_routes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.best
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_some())
            .map(|(i, _)| NodeId(i as u32))
    }
}

/// An inline small-vector of `(peer, interned advertisement)` pairs — the
/// payload of [`EnabledChoice::best_updates`]. Branch-heavy searches clone
/// enabled choices at every branch point; with up to [`UpdateVec::INLINE`]
/// entries in place that clone is a `memcpy`, matching the
/// [`HopVec`](crate::hopvec::HopVec) treatment of route paths.
#[derive(Clone)]
pub struct UpdateVec {
    len: u8,
    buf: [(NodeId, RouteHandle); Self::INLINE],
    spill: Vec<(NodeId, RouteHandle)>,
}

impl UpdateVec {
    /// Entries stored without a heap allocation.
    pub const INLINE: usize = 4;

    /// An empty update list.
    pub fn new() -> Self {
        UpdateVec {
            len: 0,
            buf: [(NodeId(0), RouteHandle::NONE); Self::INLINE],
            spill: Vec::new(),
        }
    }

    /// Append one entry, spilling to the heap past the inline capacity.
    pub fn push(&mut self, entry: (NodeId, RouteHandle)) {
        let n = self.len as usize;
        if self.spill.is_empty() && n < Self::INLINE {
            self.buf[n] = entry;
            self.len += 1;
        } else {
            if self.spill.is_empty() {
                self.spill.reserve(Self::INLINE * 2);
                self.spill.extend_from_slice(&self.buf[..n]);
                self.len = 0;
            }
            self.spill.push(entry);
        }
    }

    /// The entries as a slice.
    pub fn as_slice(&self) -> &[(NodeId, RouteHandle)] {
        if self.spill.is_empty() {
            &self.buf[..self.len as usize]
        } else {
            &self.spill
        }
    }
}

impl Default for UpdateVec {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for UpdateVec {
    type Target = [(NodeId, RouteHandle)];
    fn deref(&self) -> &[(NodeId, RouteHandle)] {
        self.as_slice()
    }
}

impl PartialEq for UpdateVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for UpdateVec {}

impl std::fmt::Debug for UpdateVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl FromIterator<(NodeId, RouteHandle)> for UpdateVec {
    fn from_iter<I: IntoIterator<Item = (NodeId, RouteHandle)>>(iter: I) -> Self {
        let mut out = UpdateVec::new();
        for e in iter {
            out.push(e);
        }
        out
    }
}

/// One entry of the enabled set: a node that must still act, why it is
/// enabled, and the peers whose advertisements are maximal for it (the
/// paper's set `U`; more than one peer means a non-deterministic choice).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EnabledChoice {
    /// The enabled node.
    pub node: NodeId,
    /// Is the node's current best path invalid (its next hop no longer
    /// carries the matching path)?
    pub invalid: bool,
    /// The peers producing the highest-ranked usable advertisements, together
    /// with those advertisements (interned). Empty iff the node is enabled
    /// only because its path is invalid.
    pub best_updates: UpdateVec,
}

/// A borrowed view of an enabled set, iterated in node-id order.
///
/// The incremental explorer keeps its enabled set in per-node slots with a
/// presence bitset (no contiguous list to hand out), while the reference
/// explorer and the tests hold plain sorted vectors; this view lets the
/// partial-order-reduction heuristics serve both without copying.
#[derive(Clone, Copy)]
pub enum EnabledView<'a> {
    /// A contiguous slice, already sorted by node id.
    Slice(&'a [EnabledChoice]),
    /// Per-node slots with a presence bitset (`bits[i/64] >> (i%64) & 1`).
    Slots {
        /// `slots[n]` = node `n`'s enabled choice, if enabled.
        slots: &'a [Option<EnabledChoice>],
        /// The presence bitset over node ids.
        bits: &'a [u64],
        /// Number of enabled nodes.
        len: usize,
    },
}

impl<'a> EnabledView<'a> {
    /// Number of enabled nodes.
    pub fn len(&self) -> usize {
        match self {
            EnabledView::Slice(s) => s.len(),
            EnabledView::Slots { len, .. } => *len,
        }
    }

    /// Is the enabled set empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The enabled choice of `node`, if it is enabled.
    pub fn get_node(&self, node: NodeId) -> Option<&'a EnabledChoice> {
        match self {
            EnabledView::Slice(s) => s
                .binary_search_by_key(&node.0, |c| c.node.0)
                .ok()
                .map(|i| &s[i]),
            EnabledView::Slots { slots, .. } => slots.get(node.index()).and_then(Option::as_ref),
        }
    }

    /// The first enabled choice in node-id order.
    pub fn first(&self) -> Option<&'a EnabledChoice> {
        self.iter().next()
    }

    /// Iterate the enabled choices in node-id order.
    pub fn iter(&self) -> EnabledIter<'a> {
        match self {
            EnabledView::Slice(s) => EnabledIter::Slice(s.iter()),
            EnabledView::Slots { slots, bits, .. } => EnabledIter::Slots {
                slots,
                bits,
                word: 0,
                mask: bits.first().copied().unwrap_or(0),
            },
        }
    }

    /// Clone the enabled choices into a vector (test/diagnostic helper).
    pub fn to_vec(&self) -> Vec<EnabledChoice> {
        self.iter().cloned().collect()
    }
}

/// Iterator over an [`EnabledView`], in node-id order.
pub enum EnabledIter<'a> {
    /// Contiguous-slice iteration.
    Slice(std::slice::Iter<'a, EnabledChoice>),
    /// Bitset sweep over slots: `mask` holds the unvisited bits of `word`.
    Slots {
        /// The per-node slots.
        slots: &'a [Option<EnabledChoice>],
        /// The presence bitset.
        bits: &'a [u64],
        /// Index of the word `mask` was drawn from.
        word: usize,
        /// Remaining set bits of the current word.
        mask: u64,
    },
}

impl<'a> Iterator for EnabledIter<'a> {
    type Item = &'a EnabledChoice;

    fn next(&mut self) -> Option<&'a EnabledChoice> {
        match self {
            EnabledIter::Slice(it) => it.next(),
            EnabledIter::Slots {
                slots,
                bits,
                word,
                mask,
            } => loop {
                if *mask == 0 {
                    *word += 1;
                    if *word >= bits.len() {
                        return None;
                    }
                    *mask = bits[*word];
                    continue;
                }
                let bit = mask.trailing_zeros() as usize;
                *mask &= *mask - 1;
                let idx = *word * 64 + bit;
                match slots[idx].as_ref() {
                    Some(c) => return Some(c),
                    // A set bit always has a filled slot; tolerate skew in
                    // release builds rather than panicking mid-search.
                    None => continue,
                }
            },
        }
    }
}

/// A converged RPVP state with handles resolved back to owned routes, so
/// policies and the forwarding analyses downstream never touch the interner.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvergedState {
    /// The best route of every node in the converged state.
    pub best: Vec<Option<Route>>,
}

impl ConvergedState {
    /// Resolve a handle-native state snapshot into owned routes.
    pub fn from_handles(best: &[RouteHandle], interner: &RouteInterner) -> Self {
        ConvergedState {
            best: best.iter().map(|&h| interner.resolve(h).cloned()).collect(),
        }
    }

    /// The best route of node `n`.
    pub fn best(&self, n: NodeId) -> Option<&Route> {
        self.best[n.index()].as_ref()
    }

    /// The forwarding next hop of node `n`, if it has a route and is not the
    /// origin itself.
    pub fn next_hop(&self, n: NodeId) -> Option<NodeId> {
        self.best(n).and_then(|r| r.next_hop())
    }

    /// Follow next hops from `start` until an origin, a node without a
    /// route, or a repeated node is reached. Returns the nodes visited in
    /// order (including `start`). Repeats are detected with a visited bitvec
    /// sized to the network, so the walk is O(path) rather than O(path²).
    pub fn walk_from(&self, start: NodeId) -> Vec<NodeId> {
        let mut visited = vec![false; self.best.len()];
        visited[start.index()] = true;
        let mut seen = vec![start];
        let mut cur = start;
        loop {
            match self.next_hop(cur) {
                Some(next) => {
                    seen.push(next);
                    if visited[next.index()] {
                        return seen;
                    }
                    visited[next.index()] = true;
                    cur = next;
                }
                None => return seen,
            }
        }
    }

    /// Nodes holding a route in this converged state.
    pub fn routed_nodes(&self) -> Vec<NodeId> {
        self.best
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_some())
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }
}

/// The RPVP step machinery over a protocol model.
pub struct Rpvp<'m> {
    model: &'m dyn ProtocolModel,
    /// `origin_mask[n]` ⟺ `n ∈ origins()`, so the per-node-per-step origin
    /// check is a bit test instead of a linear scan of the origin list.
    origin_mask: Vec<bool>,
}

impl<'m> Rpvp<'m> {
    /// Wrap a protocol model.
    pub fn new(model: &'m dyn ProtocolModel) -> Self {
        let mut origin_mask = vec![false; model.node_count()];
        for &o in model.origins() {
            origin_mask[o.index()] = true;
        }
        Rpvp { model, origin_mask }
    }

    /// The underlying protocol model.
    pub fn model(&self) -> &dyn ProtocolModel {
        self.model
    }

    /// The initial state.
    pub fn initial_state(&self, interner: &mut RouteInterner) -> RpvpState {
        RpvpState::initial(self.model, interner)
    }

    /// Is node `n` an origin?
    pub fn is_origin(&self, n: NodeId) -> bool {
        self.origin_mask.get(n.index()).copied().unwrap_or(false)
    }

    /// The advertisement `from` would currently offer `to`
    /// (`import_{to,from}(export_{from,to}(best(from)))`), if any.
    pub fn advertisement(
        &self,
        state: &RpvpState,
        interner: &RouteInterner,
        from: NodeId,
        to: NodeId,
    ) -> Option<Route> {
        let best_from = state.best(from, interner)?;
        self.model.advertise(from, to, best_from)
    }

    /// Is `n`'s current best path invalid: its next hop's best path is not
    /// the continuation of `n`'s path (`best-path(best-path(n).head) ≠
    /// best-path(n).rest`)?
    pub fn invalid(&self, state: &RpvpState, interner: &RouteInterner, n: NodeId) -> bool {
        let Some(route) = state.best(n, interner) else {
            return false;
        };
        let Some(head) = route.next_hop() else {
            // The origin's own route never becomes invalid.
            return false;
        };
        match state.best(head, interner) {
            None => true,
            Some(head_route) => head_route.path != route.rest(),
        }
    }

    /// Can `peer` produce an advertisement that `n` strictly prefers over its
    /// current best route? Returns that advertisement if so.
    pub fn update_from(
        &self,
        state: &RpvpState,
        interner: &RouteInterner,
        n: NodeId,
        peer: NodeId,
    ) -> Option<Route> {
        let adv = self.advertisement(state, interner, peer, n)?;
        match state.best(n, interner) {
            None => Some(adv),
            Some(current) => {
                if self.model.prefer(n, &adv, current) == Preference::Better {
                    Some(adv)
                } else {
                    None
                }
            }
        }
    }

    /// The enabled set of a state (the paper's `E`, line 5 of Algorithm 1),
    /// with each node's best-update peers (`U`, line 13) precomputed.
    /// Origins are never enabled.
    pub fn enabled(&self, state: &RpvpState, interner: &mut RouteInterner) -> Vec<EnabledChoice> {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        for i in 0..self.model.node_count() {
            let n = NodeId(i as u32);
            if let Some(choice) = self.enabled_at_with(state, interner, n, &mut scratch) {
                out.push(choice);
            }
        }
        out
    }

    /// The enabled-choice entry for a single node, if it is enabled.
    pub fn enabled_at(
        &self,
        state: &RpvpState,
        interner: &mut RouteInterner,
        n: NodeId,
    ) -> Option<EnabledChoice> {
        let mut scratch = Vec::new();
        self.enabled_at_with(state, interner, n, &mut scratch)
    }

    /// [`Rpvp::enabled_at`] with a caller-owned candidate buffer, so the
    /// steady-state search path performs no heap allocation: candidate
    /// routes are derived into `scratch` (capacity retained across calls),
    /// only the maximal ones are interned, and the returned choice carries
    /// handles in an inline [`UpdateVec`].
    pub fn enabled_at_with(
        &self,
        state: &RpvpState,
        interner: &mut RouteInterner,
        n: NodeId,
        scratch: &mut Vec<(NodeId, Route)>,
    ) -> Option<EnabledChoice> {
        if self.is_origin(n) {
            return None;
        }
        let invalid = self.invalid(state, interner, n);
        scratch.clear();
        {
            let current = interner.resolve(state.best[n.index()]);
            for &peer in self.model.peers(n) {
                let Some(best_from) = interner.resolve(state.best[peer.index()]) else {
                    continue;
                };
                let Some(adv) = self.model.advertise(peer, n, best_from) else {
                    continue;
                };
                let usable = match current {
                    None => true,
                    Some(cur) => self.model.prefer(n, &adv, cur) == Preference::Better,
                };
                if usable {
                    scratch.push((peer, adv));
                }
            }
        }
        if scratch.is_empty() && !invalid {
            return None;
        }
        // Keep only the maximal advertisements (the paper's
        // `best({n' | can-update(n')})`), preserving candidate order —
        // exactly `ProtocolModel::best_indices` — and intern only those.
        let mut best_updates = UpdateVec::new();
        for i in 0..scratch.len() {
            let mut dominated = false;
            for j in 0..scratch.len() {
                if j != i && self.model.prefer(n, &scratch[j].1, &scratch[i].1) == Preference::Better
                {
                    dominated = true;
                    break;
                }
            }
            if !dominated {
                let handle = interner.intern(&scratch[i].1);
                best_updates.push((scratch[i].0, handle));
            }
        }
        Some(EnabledChoice {
            node: n,
            invalid,
            best_updates,
        })
    }

    /// Is node `n` enabled in `state`? Equivalent to
    /// `enabled_at(...).is_some()` but derives no maximal set and interns
    /// nothing, so it only needs shared access to the interner.
    pub fn is_enabled(&self, state: &RpvpState, interner: &RouteInterner, n: NodeId) -> bool {
        if self.is_origin(n) {
            return false;
        }
        if self.invalid(state, interner, n) {
            return true;
        }
        let current = interner.resolve(state.best[n.index()]);
        for &peer in self.model.peers(n) {
            let Some(best_from) = interner.resolve(state.best[peer.index()]) else {
                continue;
            };
            let Some(adv) = self.model.advertise(peer, n, best_from) else {
                continue;
            };
            let usable = match current {
                None => true,
                Some(cur) => self.model.prefer(n, &adv, cur) == Preference::Better,
            };
            if usable {
                return true;
            }
        }
        false
    }

    /// Perform one RPVP step: node `n` (which must be enabled) clears an
    /// invalid path and, if `from` is given, adopts that peer's
    /// advertisement. `from` must be one of the node's best-update peers.
    pub fn step(
        &self,
        state: &mut RpvpState,
        interner: &mut RouteInterner,
        n: NodeId,
        from: Option<NodeId>,
    ) {
        let adopt = match from {
            Some(peer) => {
                let adv = self
                    .advertisement(state, interner, peer, n)
                    .expect("step() called with a peer that offers no advertisement");
                interner.intern_owned(adv)
            }
            None => RouteHandle::NONE,
        };
        self.step_adopting(state, interner, n, adopt);
    }

    /// Perform one RPVP step in place, adopting an already-interned
    /// advertisement, and return the node's previous best handle as the
    /// (`Copy`) undo record for [`Rpvp::undo_step`].
    ///
    /// This is the explorers' apply primitive: the enabled-set computation
    /// already produced — and interned — the exact route the node adopts
    /// ([`EnabledChoice::best_updates`]), so a step is an integer swap.
    /// `adopt == RouteHandle::NONE` is the clear-an-invalid-path step.
    pub fn step_adopting(
        &self,
        state: &mut RpvpState,
        interner: &RouteInterner,
        n: NodeId,
        adopt: RouteHandle,
    ) -> RouteHandle {
        if adopt.is_some() {
            // Clearing an invalid path before adopting is subsumed by the
            // adoption itself; a single swap preserves `step()` semantics.
            std::mem::replace(&mut state.best[n.index()], adopt)
        } else if self.invalid(state, interner, n) {
            std::mem::replace(&mut state.best[n.index()], RouteHandle::NONE)
        } else {
            // A clear-only step on a valid path is a no-op (the explorer
            // never issues one); keep undo exact anyway.
            state.best[n.index()]
        }
    }

    /// Revert a step applied by [`Rpvp::step_adopting`], restoring the
    /// node's previous best route.
    pub fn undo_step(&self, state: &mut RpvpState, n: NodeId, prev_best: RouteHandle) {
        state.best[n.index()] = prev_best;
    }

    /// Is the state converged (no node enabled)?
    pub fn converged(&self, state: &RpvpState, interner: &RouteInterner) -> bool {
        (0..self.model.node_count() as u32)
            .map(NodeId)
            .all(|n| !self.is_enabled(state, interner, n))
    }

    /// Snapshot a converged state, resolving handles to owned routes.
    pub fn converged_state(&self, state: &RpvpState, interner: &RouteInterner) -> ConvergedState {
        debug_assert!(self.converged(state, interner), "state is not converged");
        ConvergedState::from_handles(&state.best, interner)
    }
}

/// A delta-maintained RPVP enabled set.
///
/// The paper's Algorithm 1 recomputes the enabled set `E` from scratch at
/// every step — O(nodes × peers) of route derivations per transition. But a
/// step at node `n` only changes `best(n)`, and a node `m`'s enabled status
/// depends solely on `best(m)` and `best(p)` for `p ∈ peers(m)`: the only
/// nodes whose status can change are `n` itself and the reverse peers of `n`
/// ([`ProtocolModel::reverse_peers`]).
///
/// The cache is one slot per node plus a presence bitset: installing,
/// replacing or removing an entry is O(1) (the previous sorted-vector cache
/// paid a memmove per update), and iteration in node-id order — the same
/// order as [`Rpvp::enabled`] — is a word-at-a-time bitset sweep
/// ([`EnabledView::Slots`]). Displaced entries are handed back to the caller
/// so an apply/undo search can restore them exactly when it backtracks.
pub struct IncrementalEnabled {
    /// `slots[n]` = node `n`'s enabled choice, if currently enabled.
    slots: Vec<Option<EnabledChoice>>,
    /// Presence bitset over node ids (`bits[n/64] >> (n%64) & 1`).
    bits: Vec<u64>,
    /// Number of enabled nodes.
    len: usize,
    /// `rev_peers[n]` = nodes that consider advertisements from `n`.
    rev_peers: Vec<Vec<NodeId>>,
    /// Nodes that may ever be enabled (non-origins, and allowed by any
    /// influence pruning the search applies). Ineligible nodes are skipped
    /// entirely, never recomputed.
    eligible: Vec<bool>,
    /// Total `enabled_at` recomputations performed (observability: the
    /// pre-change explorer recomputed every node at every step).
    recomputed: u64,
    /// Candidate-route buffer threaded into
    /// [`Rpvp::enabled_at_with`], reused across every recomputation.
    candidates: Vec<(NodeId, Route)>,
}

impl IncrementalEnabled {
    /// An enabled set over the given reverse-peer index and eligibility mask.
    /// Call [`IncrementalEnabled::rebuild`] before use.
    pub fn new(rev_peers: Vec<Vec<NodeId>>, eligible: Vec<bool>) -> Self {
        let n = eligible.len();
        IncrementalEnabled {
            slots: (0..n).map(|_| None).collect(),
            bits: vec![0; n.div_ceil(64)],
            len: 0,
            rev_peers,
            eligible,
            recomputed: 0,
            candidates: Vec::new(),
        }
    }

    /// Recompute the whole enabled set from scratch (initialization).
    pub fn rebuild(&mut self, rpvp: &Rpvp, state: &RpvpState, interner: &mut RouteInterner) {
        for slot in &mut self.slots {
            *slot = None;
        }
        self.bits.fill(0);
        self.len = 0;
        for i in 0..self.eligible.len() {
            if !self.eligible[i] {
                continue;
            }
            self.recomputed += 1;
            if let Some(choice) =
                rpvp.enabled_at_with(state, interner, NodeId(i as u32), &mut self.candidates)
            {
                self.slots[i] = Some(choice);
                self.bits[i / 64] |= 1 << (i % 64);
                self.len += 1;
            }
        }
    }

    /// A view of the enabled choices, iterable in node-id order — exactly
    /// the (eligible subset of the) list [`Rpvp::enabled`] would return for
    /// the current state.
    pub fn view(&self) -> EnabledView<'_> {
        EnabledView::Slots {
            slots: &self.slots,
            bits: &self.bits,
            len: self.len,
        }
    }

    /// Number of currently enabled nodes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the enabled set empty (i.e. the state converged)?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of `enabled_at` recomputations performed so far.
    pub fn recompute_count(&self) -> u64 {
        self.recomputed
    }

    /// Install `entry` as node `node`'s cache slot (None = not enabled) and
    /// return the displaced previous slot. O(1): a slot swap plus a bitset
    /// update. Used both for delta maintenance and for restoring displaced
    /// entries on undo.
    pub fn set_entry(
        &mut self,
        node: NodeId,
        entry: Option<EnabledChoice>,
    ) -> Option<EnabledChoice> {
        let idx = node.index();
        let now = entry.is_some();
        let prev = std::mem::replace(&mut self.slots[idx], entry);
        let was = prev.is_some();
        if now != was {
            let bit = 1u64 << (idx % 64);
            if now {
                self.bits[idx / 64] |= bit;
                self.len += 1;
            } else {
                self.bits[idx / 64] &= !bit;
                self.len -= 1;
            }
        }
        prev
    }

    /// Recompute the dirty neighborhood of `node` after its best route
    /// changed: `node` itself plus its reverse peers. Every displaced cache
    /// slot is pushed onto `displaced` (in recompute order) so the caller
    /// can undo the step by replaying them in reverse through
    /// [`IncrementalEnabled::set_entry`].
    pub fn refresh_after_step(
        &mut self,
        rpvp: &Rpvp,
        state: &RpvpState,
        interner: &mut RouteInterner,
        node: NodeId,
        displaced: &mut Vec<(NodeId, Option<EnabledChoice>)>,
    ) {
        self.refresh_node(rpvp, state, interner, node, displaced);
        for k in 0..self.rev_peers[node.index()].len() {
            let m = self.rev_peers[node.index()][k];
            if m != node {
                self.refresh_node(rpvp, state, interner, m, displaced);
            }
        }
    }

    fn refresh_node(
        &mut self,
        rpvp: &Rpvp,
        state: &RpvpState,
        interner: &mut RouteInterner,
        m: NodeId,
        displaced: &mut Vec<(NodeId, Option<EnabledChoice>)>,
    ) {
        if !self.eligible[m.index()] {
            return;
        }
        self.recomputed += 1;
        let entry = rpvp.enabled_at_with(state, interner, m, &mut self.candidates);
        let had_new = entry.is_some();
        let prev = self.set_entry(m, entry);
        // (None → None) transitions need no undo record.
        if had_new || prev.is_some() {
            displaced.push((m, prev));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Preference;
    use plankton_net::ip::Prefix;

    /// A 4-node line 0-1-2-3 where node 0 originates; ranking prefers fewer
    /// hops, ties broken deterministically by lower next-hop id (total
    /// order), so RPVP has a single converged state.
    struct Line4;

    impl ProtocolModel for Line4 {
        fn node_count(&self) -> usize {
            4
        }
        fn origins(&self) -> &[NodeId] {
            const O: [NodeId; 1] = [NodeId(0)];
            &O
        }
        fn peers(&self, n: NodeId) -> &[NodeId] {
            const P0: [NodeId; 1] = [NodeId(1)];
            const P1: [NodeId; 2] = [NodeId(0), NodeId(2)];
            const P2: [NodeId; 2] = [NodeId(1), NodeId(3)];
            const P3: [NodeId; 1] = [NodeId(2)];
            match n.0 {
                0 => &P0,
                1 => &P1,
                2 => &P2,
                _ => &P3,
            }
        }
        fn advertise(&self, from: NodeId, to: NodeId, r: &Route) -> Option<Route> {
            if r.traverses(to) {
                return None;
            }
            Some(r.extended_through(from))
        }
        fn origin_route(&self, _o: NodeId) -> Route {
            Route::originated(Prefix::DEFAULT)
        }
        fn prefer(&self, _n: NodeId, a: &Route, b: &Route) -> Preference {
            match a
                .hop_count()
                .cmp(&b.hop_count())
                .then_with(|| a.next_hop().map(|x| x.0).cmp(&b.next_hop().map(|x| x.0)))
            {
                std::cmp::Ordering::Less => Preference::Better,
                std::cmp::Ordering::Greater => Preference::Worse,
                std::cmp::Ordering::Equal => Preference::Tied,
            }
        }
        fn name(&self) -> &'static str {
            "line4"
        }
    }

    #[test]
    fn initial_state_has_origin_epsilon() {
        let m = Line4;
        let rpvp = Rpvp::new(&m);
        let mut interner = RouteInterner::new();
        let s = rpvp.initial_state(&mut interner);
        assert!(s.best(NodeId(0), &interner).unwrap().is_origin());
        assert!(s.best(NodeId(1), &interner).is_none());
        assert!(s.has_route(NodeId(0)));
        assert!(!s.has_route(NodeId(1)));
        assert_eq!(s.nodes_with_routes().count(), 1);
    }

    #[test]
    fn enabled_set_grows_as_routes_propagate() {
        let m = Line4;
        let rpvp = Rpvp::new(&m);
        let mut interner = RouteInterner::new();
        let mut s = rpvp.initial_state(&mut interner);
        // Initially only node 1 (adjacent to the origin) is enabled.
        let enabled = rpvp.enabled(&s, &mut interner);
        assert_eq!(enabled.len(), 1);
        assert_eq!(enabled[0].node, NodeId(1));
        assert!(!enabled[0].invalid);
        assert_eq!(enabled[0].best_updates.len(), 1);
        // After node 1 acts, node 2 becomes enabled.
        rpvp.step(&mut s, &mut interner, NodeId(1), Some(NodeId(0)));
        let enabled = rpvp.enabled(&s, &mut interner);
        assert_eq!(enabled.len(), 1);
        assert_eq!(enabled[0].node, NodeId(2));
    }

    #[test]
    fn full_execution_converges_to_shortest_paths() {
        let m = Line4;
        let rpvp = Rpvp::new(&m);
        let mut interner = RouteInterner::new();
        let mut s = rpvp.initial_state(&mut interner);
        let mut steps = 0;
        while let Some(choice) = rpvp.enabled(&s, &mut interner).into_iter().next() {
            let peer = choice.best_updates.first().map(|(p, _)| *p);
            rpvp.step(&mut s, &mut interner, choice.node, peer);
            steps += 1;
            assert!(steps <= 10, "execution did not converge");
        }
        assert!(rpvp.converged(&s, &interner));
        let c = rpvp.converged_state(&s, &interner);
        assert_eq!(c.next_hop(NodeId(1)), Some(NodeId(0)));
        assert_eq!(c.next_hop(NodeId(2)), Some(NodeId(1)));
        assert_eq!(c.next_hop(NodeId(3)), Some(NodeId(2)));
        assert_eq!(
            c.walk_from(NodeId(3)),
            vec![NodeId(3), NodeId(2), NodeId(1), NodeId(0)]
        );
        assert_eq!(c.routed_nodes().len(), 4);
    }

    #[test]
    fn invalid_detection_when_upstream_withdraws() {
        let m = Line4;
        let rpvp = Rpvp::new(&m);
        let mut interner = RouteInterner::new();
        let mut s = rpvp.initial_state(&mut interner);
        rpvp.step(&mut s, &mut interner, NodeId(1), Some(NodeId(0)));
        rpvp.step(&mut s, &mut interner, NodeId(2), Some(NodeId(1)));
        // Manually clear node 1's path: node 2's path is now invalid.
        s.best[1] = RouteHandle::NONE;
        assert!(rpvp.invalid(&s, &interner, NodeId(2)));
        assert!(!rpvp.invalid(&s, &interner, NodeId(3)));
        let choice = rpvp.enabled_at(&s, &mut interner, NodeId(2)).unwrap();
        assert!(choice.invalid);
        // Stepping with no peer clears the invalid path.
        rpvp.step(&mut s, &mut interner, NodeId(2), None);
        assert!(s.best(NodeId(2), &interner).is_none());
    }

    #[test]
    fn origins_are_never_enabled() {
        let m = Line4;
        let rpvp = Rpvp::new(&m);
        let mut interner = RouteInterner::new();
        let s = rpvp.initial_state(&mut interner);
        assert!(rpvp.enabled_at(&s, &mut interner, NodeId(0)).is_none());
        assert!(!rpvp.is_enabled(&s, &interner, NodeId(0)));
        assert!(rpvp.is_origin(NodeId(0)));
        assert!(!rpvp.is_origin(NodeId(1)));
    }

    #[test]
    fn converged_detection() {
        let m = Line4;
        let rpvp = Rpvp::new(&m);
        let mut interner = RouteInterner::new();
        let s = rpvp.initial_state(&mut interner);
        assert!(!rpvp.converged(&s, &interner));
        assert!(rpvp.is_enabled(&s, &interner, NodeId(1)));
    }

    #[test]
    fn step_adopting_round_trips_through_undo() {
        let m = Line4;
        let rpvp = Rpvp::new(&m);
        let mut interner = RouteInterner::new();
        let mut s = rpvp.initial_state(&mut interner);
        let before = s.clone();
        let choice = rpvp.enabled(&s, &mut interner).remove(0);
        let (peer, handle) = choice.best_updates[0];
        // Adoption matches the peer-recomputing step()...
        let prev = rpvp.step_adopting(&mut s, &interner, choice.node, handle);
        let mut via_step = before.clone();
        rpvp.step(&mut via_step, &mut interner, choice.node, Some(peer));
        assert_eq!(s, via_step);
        // ...and undo restores the exact prior state.
        rpvp.undo_step(&mut s, choice.node, prev);
        assert_eq!(s, before);
    }

    #[test]
    fn clear_step_round_trips_through_undo() {
        let m = Line4;
        let rpvp = Rpvp::new(&m);
        let mut interner = RouteInterner::new();
        let mut s = rpvp.initial_state(&mut interner);
        rpvp.step(&mut s, &mut interner, NodeId(1), Some(NodeId(0)));
        rpvp.step(&mut s, &mut interner, NodeId(2), Some(NodeId(1)));
        s.best[1] = RouteHandle::NONE; // node 2's path is now invalid
        let before = s.clone();
        let prev = rpvp.step_adopting(&mut s, &interner, NodeId(2), RouteHandle::NONE);
        assert!(s.best(NodeId(2), &interner).is_none());
        assert!(prev.is_some());
        rpvp.undo_step(&mut s, NodeId(2), prev);
        assert_eq!(s, before);
    }

    #[test]
    fn from_routes_round_trips() {
        let m = Line4;
        let rpvp = Rpvp::new(&m);
        let mut interner = RouteInterner::new();
        let mut s = rpvp.initial_state(&mut interner);
        rpvp.step(&mut s, &mut interner, NodeId(1), Some(NodeId(0)));
        let routes: Vec<Option<Route>> = s
            .best
            .iter()
            .map(|&h| interner.resolve(h).cloned())
            .collect();
        let rebuilt = RpvpState::from_routes(&routes, &mut interner);
        assert_eq!(rebuilt, s, "re-interning the same routes hits same handles");
    }

    #[test]
    fn update_vec_spills_past_inline_capacity() {
        let mut v = UpdateVec::new();
        for i in 0..UpdateVec::INLINE as u32 + 2 {
            v.push((NodeId(i), RouteHandle(i as u64 + 1)));
        }
        assert_eq!(v.len(), UpdateVec::INLINE + 2);
        for (i, &(n, h)) in v.iter().enumerate() {
            assert_eq!(n, NodeId(i as u32));
            assert_eq!(h, RouteHandle(i as u64 + 1));
        }
        let w: UpdateVec = v.iter().copied().collect();
        assert_eq!(v, w);
    }

    fn eligible_for(m: &dyn ProtocolModel) -> Vec<bool> {
        let rpvp = Rpvp::new(m);
        (0..m.node_count())
            .map(|i| !rpvp.is_origin(NodeId(i as u32)))
            .collect()
    }

    #[test]
    fn incremental_enabled_tracks_full_recompute() {
        let m = Line4;
        let rpvp = Rpvp::new(&m);
        let mut interner = RouteInterner::new();
        let mut s = rpvp.initial_state(&mut interner);
        let mut inc = IncrementalEnabled::new(m.reverse_peers(), eligible_for(&m));
        inc.rebuild(&rpvp, &s, &mut interner);
        let mut displaced = Vec::new();
        let mut steps = 0;
        while let Some(choice) = inc.view().first().cloned() {
            let adopt = choice
                .best_updates
                .first()
                .map(|&(_, h)| h)
                .unwrap_or(RouteHandle::NONE);
            rpvp.step_adopting(&mut s, &interner, choice.node, adopt);
            inc.refresh_after_step(&rpvp, &s, &mut interner, choice.node, &mut displaced);
            assert_eq!(inc.view().to_vec(), rpvp.enabled(&s, &mut interner));
            assert_eq!(inc.len(), inc.view().iter().count());
            steps += 1;
            assert!(steps <= 10, "execution did not converge");
        }
        assert!(rpvp.converged(&s, &interner));
        assert!(inc.is_empty());
        assert!(inc.recompute_count() > 0);
    }

    #[test]
    fn incremental_enabled_undo_restores_displaced_entries() {
        let m = Line4;
        let rpvp = Rpvp::new(&m);
        let mut interner = RouteInterner::new();
        let mut s = rpvp.initial_state(&mut interner);
        let mut inc = IncrementalEnabled::new(m.reverse_peers(), eligible_for(&m));
        inc.rebuild(&rpvp, &s, &mut interner);
        let before = inc.view().to_vec();
        let choice = inc.view().first().cloned().unwrap();
        let adopt = choice
            .best_updates
            .first()
            .map(|&(_, h)| h)
            .unwrap_or(RouteHandle::NONE);
        let prev_best = rpvp.step_adopting(&mut s, &interner, choice.node, adopt);
        let mut displaced = Vec::new();
        inc.refresh_after_step(&rpvp, &s, &mut interner, choice.node, &mut displaced);
        assert_ne!(inc.view().to_vec(), before);
        // Undo: revert the state, then replay displaced entries in reverse.
        rpvp.undo_step(&mut s, choice.node, prev_best);
        for (node, entry) in displaced.into_iter().rev() {
            inc.set_entry(node, entry);
        }
        assert_eq!(inc.view().to_vec(), before);
        assert_eq!(inc.view().to_vec(), rpvp.enabled(&s, &mut interner));
    }

    #[test]
    fn enabled_view_lookup_and_order() {
        let m = Line4;
        let rpvp = Rpvp::new(&m);
        let mut interner = RouteInterner::new();
        let mut s = rpvp.initial_state(&mut interner);
        rpvp.step(&mut s, &mut interner, NodeId(1), Some(NodeId(0)));
        s.best[1] = RouteHandle::NONE; // nodes 1 and 2 both enabled now
        let list = rpvp.enabled(&s, &mut interner);
        let slice_view = EnabledView::Slice(&list);
        let mut inc = IncrementalEnabled::new(m.reverse_peers(), eligible_for(&m));
        inc.rebuild(&rpvp, &s, &mut interner);
        let nodes: Vec<NodeId> = inc.view().iter().map(|c| c.node).collect();
        assert!(nodes.windows(2).all(|w| w[0].0 < w[1].0), "node-id order");
        assert_eq!(inc.view().to_vec(), list);
        for c in &list {
            assert_eq!(slice_view.get_node(c.node), Some(c));
            assert_eq!(inc.view().get_node(c.node), Some(c));
        }
        assert_eq!(slice_view.get_node(NodeId(0)), None);
        assert_eq!(inc.view().get_node(NodeId(0)), None);
        assert_eq!(slice_view.first(), list.first());
        assert_eq!(inc.view().first(), list.first());
    }
}
