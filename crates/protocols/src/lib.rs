//! # plankton-protocols
//!
//! The abstract control-plane model that Plankton's model checker explores
//! (§3.4 of the paper):
//!
//! * [`route`] — the route representation shared by all protocols: a path to
//!   an origin plus BGP-style attributes, IGP cost and session kind.
//! * [`model`] — the [`ProtocolModel`](model::ProtocolModel) trait: origins,
//!   peers, import/export (advertisement production) and the ranking
//!   function, which may be a *partial* order (ties express the
//!   non-determinism of e.g. age-based tie-breaking).
//! * [`rpvp`] — the Reduced Path Vector Protocol (Algorithm 1): a shared
//!   memory model whose non-deterministic executions reach exactly the
//!   converged states of extended SPVP.
//! * [`spvp`] — extended SPVP itself (Appendix A), a message-passing
//!   reference implementation used to cross-check RPVP in tests.
//! * [`ospf`] — OSPF as a protocol model: shortest paths over configured
//!   link costs, deterministic outcome, equal-cost multipath derived from the
//!   converged costs.
//! * [`bgp`] — BGP as a protocol model: import/export route maps, the BGP
//!   decision process as a partial-order ranking function, eBGP and iBGP
//!   sessions, with iBGP rankings driven by an IGP underlay supplied by the
//!   PEC dependency machinery.

pub mod bgp;
pub mod hopvec;
pub mod interner;
pub mod model;
pub mod ospf;
pub mod route;
pub mod rpvp;
pub mod spvp;

pub use bgp::{BgpModel, IgpUnderlay, TableUnderlay, UniformUnderlay};
pub use hopvec::HopVec;
pub use interner::{RouteHandle, RouteInterner};
pub use model::{Preference, ProtocolModel};
pub use ospf::OspfModel;
pub use route::{Route, SessionType};
pub use rpvp::{
    ConvergedState, EnabledChoice, EnabledView, IncrementalEnabled, Rpvp, RpvpState, UpdateVec,
};
