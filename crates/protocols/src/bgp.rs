//! BGP as a protocol model: eBGP and iBGP sessions, import/export route
//! maps, and the BGP decision process as a partial-order ranking function.
//!
//! The decision process implemented here follows the steps the paper's
//! deterministic-node heuristic walks (§4.1.2): local preference, AS-path
//! length, eBGP-over-iBGP, IGP cost to the next hop — and then *stops*:
//! anything still tied is an age-based (arrival-order) tie, which is exactly
//! the protocol non-determinism the model checker must explore.
//!
//! iBGP sessions peer between loopbacks and are only "up" when the IGP
//! underlay can reach the peer; the underlay also supplies the IGP cost used
//! in the decision process. The underlay is provided by the verifier from the
//! converged outcomes of the PECs this PEC depends on (§3.2).

use crate::model::{Preference, ProtocolModel};
use crate::route::{Route, SessionType};
use plankton_config::bgp::BgpSessionKind;
use plankton_config::route_map::RouteAttrs;
use plankton_config::Network;
use plankton_net::failure::FailureSet;
use plankton_net::ip::Prefix;
use plankton_net::topology::NodeId;
use std::collections::HashMap;
use std::sync::Arc;

/// The IGP underlay consulted by iBGP: can `from` reach `to` (a loopback
/// owner), and at what IGP cost?
pub trait IgpUnderlay: Send + Sync {
    /// IGP cost from `from` to `to`, or `None` if unreachable.
    fn cost_between(&self, from: NodeId, to: NodeId) -> Option<u64>;
}

/// An underlay in which every node reaches every other at cost 0. Suitable
/// for pure-eBGP networks (which never consult the underlay) and for tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct UniformUnderlay;

impl IgpUnderlay for UniformUnderlay {
    fn cost_between(&self, _from: NodeId, _to: NodeId) -> Option<u64> {
        Some(0)
    }
}

/// An underlay backed by an explicit cost table (used by the verifier to
/// expose the converged IGP state of dependency PECs, and by tests).
#[derive(Clone, Debug, Default)]
pub struct TableUnderlay {
    costs: HashMap<(NodeId, NodeId), u64>,
}

impl TableUnderlay {
    /// An empty table (nothing reachable).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `from` reaches `to` at `cost`.
    pub fn set(&mut self, from: NodeId, to: NodeId, cost: u64) {
        self.costs.insert((from, to), cost);
    }
}

impl IgpUnderlay for TableUnderlay {
    fn cost_between(&self, from: NodeId, to: NodeId) -> Option<u64> {
        if from == to {
            return Some(0);
        }
        self.costs.get(&(from, to)).copied()
    }
}

/// One configured, currently-up BGP session as seen from one side.
#[derive(Clone, Debug)]
struct Session {
    peer: NodeId,
    kind: BgpSessionKind,
}

/// A BGP instance for a single destination prefix.
pub struct BgpModel {
    node_count: usize,
    origins: Vec<NodeId>,
    prefix: Prefix,
    /// Per node: the sessions that are up.
    sessions: Vec<Vec<Session>>,
    /// Per node: peer list (same order as `sessions`), for `peers()`.
    peer_lists: Vec<Vec<NodeId>>,
    asn: Vec<u32>,
    underlay: Arc<dyn IgpUnderlay>,
    /// The per-device configuration, needed for import/export maps.
    network: Network,
}

impl BgpModel {
    /// Build the BGP model for `prefix` with the given originating routers,
    /// under a set of failed links and over an IGP underlay. eBGP sessions
    /// are up when a live link joins the two routers; iBGP sessions are up
    /// when the underlay reports the peer reachable.
    pub fn new(
        network: &Network,
        prefix: Prefix,
        origins: Vec<NodeId>,
        failures: &FailureSet,
        underlay: Arc<dyn IgpUnderlay>,
    ) -> Self {
        let topo = &network.topology;
        let node_count = topo.node_count();
        let mut sessions: Vec<Vec<Session>> = vec![Vec::new(); node_count];
        let mut asn = vec![0u32; node_count];

        for n in topo.node_ids() {
            let Some(bgp) = &network.device(n).bgp else {
                continue;
            };
            asn[n.index()] = bgp.asn;
            for nbr in &bgp.neighbors {
                let up = match nbr.kind {
                    BgpSessionKind::Ebgp => topo
                        .links_between(n, nbr.peer)
                        .into_iter()
                        .any(|l| !failures.contains(l)),
                    BgpSessionKind::Ibgp => underlay.cost_between(n, nbr.peer).is_some(),
                };
                // The peer must run BGP too.
                if up && network.device(nbr.peer).runs_bgp() {
                    sessions[n.index()].push(Session {
                        peer: nbr.peer,
                        kind: nbr.kind,
                    });
                }
            }
        }
        let peer_lists = sessions
            .iter()
            .map(|s| s.iter().map(|x| x.peer).collect())
            .collect();

        let mut origins = origins;
        origins.sort();
        origins.dedup();
        origins.retain(|o| network.device(*o).runs_bgp());

        BgpModel {
            node_count,
            origins,
            prefix,
            sessions,
            peer_lists,
            asn,
            underlay,
            network: network.clone(),
        }
    }

    /// The destination prefix.
    pub fn prefix(&self) -> Prefix {
        self.prefix
    }

    /// The AS number of a node (0 if it does not run BGP).
    pub fn asn(&self, n: NodeId) -> u32 {
        self.asn[n.index()]
    }

    /// The session kind between `n` and `peer`, if a session is up.
    pub fn session_kind(&self, n: NodeId, peer: NodeId) -> Option<BgpSessionKind> {
        self.session(n, peer).map(|s| s.kind)
    }

    /// Does `n` have any eBGP session that is up? A node with only iBGP
    /// sessions and no origination can never produce an advertisement for its
    /// iBGP peers (split horizon), which the deterministic-node heuristic
    /// exploits.
    pub fn has_ebgp_session(&self, n: NodeId) -> bool {
        self.sessions[n.index()]
            .iter()
            .any(|s| s.kind == BgpSessionKind::Ebgp)
    }

    /// The IGP cost `n` pays to reach routes learned from `peer`
    /// (0 for eBGP sessions).
    pub fn underlay_cost(&self, n: NodeId, peer: NodeId) -> u64 {
        match self.session_kind(n, peer) {
            Some(kind) => self.igp_cost_of(n, peer, kind),
            None => u64::MAX,
        }
    }

    /// The highest LOCAL_PREF any import route map in the network could
    /// assign (at least the default of 100). Used as a conservative bound by
    /// the deterministic-node heuristic (§4.1.2): no future advertisement can
    /// arrive with a higher local preference than this.
    pub fn max_import_local_pref_global(&self) -> u32 {
        use plankton_config::route_map::SetAction;
        let mut max = 100u32;
        for n in self.network.topology.node_ids() {
            let Some(bgp) = &self.network.device(n).bgp else {
                continue;
            };
            for nbr in &bgp.neighbors {
                for clause in &nbr.import.clauses {
                    for set in &clause.sets {
                        if let SetAction::LocalPref(v) = set {
                            max = max.max(*v);
                        }
                    }
                }
            }
        }
        max
    }

    /// For every node, the minimum possible AS-path length of any route it
    /// could ever hold for this prefix: a 0/1-weight BFS over the up sessions
    /// from the origins, counting eBGP crossings. Used as the AS-path bound
    /// by the deterministic-node heuristic.
    pub fn min_as_path_distances(&self) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.node_count];
        let mut deque: std::collections::VecDeque<NodeId> = std::collections::VecDeque::new();
        for &o in &self.origins {
            dist[o.index()] = 0;
            deque.push_back(o);
        }
        while let Some(n) = deque.pop_front() {
            // Advertisements flow from n to every peer it has a session with.
            for s in &self.sessions[n.index()] {
                // The peer must also see the session as up.
                if self.session(s.peer, n).is_none() {
                    continue;
                }
                let weight = match s.kind {
                    BgpSessionKind::Ebgp => 1,
                    BgpSessionKind::Ibgp => 0,
                };
                let nd = dist[n.index()].saturating_add(weight);
                if nd < dist[s.peer.index()] {
                    dist[s.peer.index()] = nd;
                    if weight == 0 {
                        deque.push_front(s.peer);
                    } else {
                        deque.push_back(s.peer);
                    }
                }
            }
        }
        dist
    }

    fn session(&self, n: NodeId, peer: NodeId) -> Option<&Session> {
        self.sessions[n.index()].iter().find(|s| s.peer == peer)
    }

    /// The IGP cost `n` pays to reach the BGP next hop of `route` (the
    /// session peer for iBGP routes, 0 for eBGP/originated routes).
    fn igp_cost_of(&self, n: NodeId, peer: NodeId, kind: BgpSessionKind) -> u64 {
        match kind {
            BgpSessionKind::Ebgp => 0,
            BgpSessionKind::Ibgp => self.underlay.cost_between(n, peer).unwrap_or(u64::MAX),
        }
    }
}

impl ProtocolModel for BgpModel {
    fn node_count(&self) -> usize {
        self.node_count
    }

    fn origins(&self) -> &[NodeId] {
        &self.origins
    }

    fn peers(&self, n: NodeId) -> &[NodeId] {
        &self.peer_lists[n.index()]
    }

    fn advertise(&self, from: NodeId, to: NodeId, best_of_from: &Route) -> Option<Route> {
        // Node-path loop rejection.
        if best_of_from.traverses(to) {
            return None;
        }
        let from_session = self.session(from, to)?;
        let to_session = self.session(to, from)?;

        // iBGP split horizon: routes learned over iBGP are not re-advertised
        // to other iBGP peers (no route reflection modeled).
        if best_of_from.learned_via == SessionType::Ibgp
            && from_session.kind == BgpSessionKind::Ibgp
        {
            return None;
        }

        let from_cfg = self.network.device(from).bgp.as_ref()?;
        let to_cfg = self.network.device(to).bgp.as_ref()?;

        // Export at `from`.
        let mut attrs: RouteAttrs = from_cfg
            .neighbor(to)
            .map(|nbr| nbr.export.apply(&best_of_from.attrs, to))
            .unwrap_or_else(|| Some(best_of_from.attrs.clone()))?;

        if from_session.kind == BgpSessionKind::Ebgp {
            // The exporting AS prepends itself.
            attrs.as_path.insert(0, self.asn(from));
        }

        // AS-path loop rejection at the receiver.
        if attrs.as_path.contains(&self.asn(to)) {
            return None;
        }

        // LOCAL_PREF is not transitive across AS boundaries: reset to the
        // default before the receiver's import policy runs.
        if to_session.kind == BgpSessionKind::Ebgp {
            attrs.local_pref = 100;
        }

        // Import at `to`.
        let attrs = to_cfg
            .neighbor(from)
            .map(|nbr| nbr.import.apply(&attrs, from))
            .unwrap_or(Some(attrs))?;

        let mut route = best_of_from.extended_through(from);
        route.attrs = attrs;
        route.learned_via = match to_session.kind {
            BgpSessionKind::Ebgp => SessionType::Ebgp,
            BgpSessionKind::Ibgp => SessionType::Ibgp,
        };
        route.igp_cost = self.igp_cost_of(to, from, to_session.kind);
        Some(route)
    }

    fn origin_route(&self, _origin: NodeId) -> Route {
        Route::originated(self.prefix)
    }

    fn prefer(&self, _n: NodeId, a: &Route, b: &Route) -> Preference {
        // An originated route always wins over anything learned.
        match (a.is_origin(), b.is_origin()) {
            (true, false) => return Preference::Better,
            (false, true) => return Preference::Worse,
            (true, true) => return Preference::Tied,
            (false, false) => {}
        }
        // 1. Highest LOCAL_PREF.
        match a.attrs.local_pref.cmp(&b.attrs.local_pref) {
            std::cmp::Ordering::Greater => return Preference::Better,
            std::cmp::Ordering::Less => return Preference::Worse,
            std::cmp::Ordering::Equal => {}
        }
        // 2. Shortest AS path.
        match a.attrs.as_path_len().cmp(&b.attrs.as_path_len()) {
            std::cmp::Ordering::Less => return Preference::Better,
            std::cmp::Ordering::Greater => return Preference::Worse,
            std::cmp::Ordering::Equal => {}
        }
        // 3. eBGP preferred over iBGP.
        let session_rank = |r: &Route| match r.learned_via {
            SessionType::Ebgp => 0u8,
            _ => 1,
        };
        match session_rank(a).cmp(&session_rank(b)) {
            std::cmp::Ordering::Less => return Preference::Better,
            std::cmp::Ordering::Greater => return Preference::Worse,
            std::cmp::Ordering::Equal => {}
        }
        // 4. Lowest IGP cost to the next hop.
        match a.igp_cost.cmp(&b.igp_cost) {
            std::cmp::Ordering::Less => return Preference::Better,
            std::cmp::Ordering::Greater => return Preference::Worse,
            std::cmp::Ordering::Equal => {}
        }
        // 5. Age-based tie breaking: genuinely non-deterministic.
        Preference::Tied
    }

    fn name(&self) -> &'static str {
        "bgp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpvp::Rpvp;
    use plankton_config::scenarios::{bgp_wedgie, disagree_gadget, fat_tree_bgp_rfc7938};

    fn converge_first_choice(model: &BgpModel) -> crate::rpvp::ConvergedState {
        let rpvp = Rpvp::new(model);
        let mut interner = crate::interner::RouteInterner::new();
        let mut state = rpvp.initial_state(&mut interner);
        let mut steps = 0usize;
        loop {
            let enabled = rpvp.enabled(&state, &mut interner);
            let Some(choice) = enabled.into_iter().next() else {
                break;
            };
            let peer = choice.best_updates.first().map(|(p, _)| *p);
            rpvp.step(&mut state, &mut interner, choice.node, peer);
            steps += 1;
            assert!(steps < 100_000, "BGP did not converge");
        }
        rpvp.converged_state(&state, &interner)
    }

    #[test]
    fn ebgp_propagates_and_prepends_as_path() {
        let g = disagree_gadget();
        let model = BgpModel::new(
            &g.network,
            g.destination,
            vec![g.origin],
            &FailureSet::none(),
            Arc::new(UniformUnderlay),
        );
        let origin_route = model.origin_route(g.origin);
        let a = g.actors[0];
        let adv = model.advertise(g.origin, a, &origin_route).unwrap();
        assert_eq!(adv.next_hop(), Some(g.origin));
        assert_eq!(adv.attrs.as_path, vec![model.asn(g.origin)]);
        assert_eq!(adv.learned_via, SessionType::Ebgp);
    }

    #[test]
    fn as_path_loop_is_rejected() {
        let g = disagree_gadget();
        let model = BgpModel::new(
            &g.network,
            g.destination,
            vec![g.origin],
            &FailureSet::none(),
            Arc::new(UniformUnderlay),
        );
        let a = g.actors[0];
        let b = g.actors[1];
        // A route already carrying b's ASN cannot be advertised to b.
        let mut r = model.origin_route(g.origin).extended_through(g.origin);
        r.attrs.as_path = vec![model.asn(g.origin)];
        let via_a = model.advertise(a, b, &r).unwrap();
        assert!(
            model.advertise(b, a, &via_a).is_none() || !via_a.attrs.as_path.contains(&model.asn(a))
        );
        let mut looped = r.clone();
        looped.attrs.as_path.push(model.asn(b));
        assert!(model.advertise(a, b, &looped).is_none());
    }

    #[test]
    fn disagree_gadget_has_nondeterministic_tie() {
        let g = disagree_gadget();
        let model = BgpModel::new(
            &g.network,
            g.destination,
            vec![g.origin],
            &FailureSet::none(),
            Arc::new(UniformUnderlay),
        );
        // From a's point of view, the direct route (local pref 100, path len
        // 1) loses to the route through b (local pref 200, path len 2).
        let direct = model
            .advertise(g.origin, g.actors[0], &model.origin_route(g.origin))
            .unwrap();
        let b_route = model
            .advertise(g.origin, g.actors[1], &model.origin_route(g.origin))
            .unwrap();
        let via_b = model.advertise(g.actors[1], g.actors[0], &b_route).unwrap();
        assert_eq!(via_b.attrs.local_pref, 200);
        assert_eq!(
            model.prefer(g.actors[0], &via_b, &direct),
            Preference::Better
        );
    }

    #[test]
    fn disagree_gadget_converges_consistently() {
        let g = disagree_gadget();
        let model = BgpModel::new(
            &g.network,
            g.destination,
            vec![g.origin],
            &FailureSet::none(),
            Arc::new(UniformUnderlay),
        );
        let converged = converge_first_choice(&model);
        // Exactly one of a, b uses the other as next hop; the other goes
        // direct (whichever order the first-choice walk took).
        let a = g.actors[0];
        let b = g.actors[1];
        let nh_a = converged.next_hop(a).unwrap();
        let nh_b = converged.next_hop(b).unwrap();
        assert!(
            (nh_a == b && nh_b == g.origin) || (nh_b == a && nh_a == g.origin),
            "unexpected converged state: {nh_a:?} {nh_b:?}"
        );
    }

    #[test]
    fn ibgp_session_requires_underlay_reachability() {
        // Two routers with an iBGP session but no IGP: the session is down.
        use plankton_config::{BgpConfig, BgpNeighborConfig, Network};
        use plankton_net::ip::Ipv4Addr;
        use plankton_net::topology::TopologyBuilder;
        let mut tb = TopologyBuilder::new();
        let a = tb.add_router("a");
        let b = tb.add_router("b");
        tb.set_loopback(a, Ipv4Addr::new(1, 1, 1, 1));
        tb.set_loopback(b, Ipv4Addr::new(2, 2, 2, 2));
        tb.add_link(a, b);
        let mut net = Network::unconfigured(tb.build());
        let prefix: Prefix = "99.0.0.0/16".parse().unwrap();
        net.device_mut(a).bgp = Some(
            BgpConfig::new(65000, 1)
                .with_network(prefix)
                .with_neighbor(BgpNeighborConfig::ibgp(b, 65000)),
        );
        net.device_mut(b).bgp =
            Some(BgpConfig::new(65000, 2).with_neighbor(BgpNeighborConfig::ibgp(a, 65000)));

        // Empty underlay: session down.
        let down = BgpModel::new(
            &net,
            prefix,
            vec![a],
            &FailureSet::none(),
            Arc::new(TableUnderlay::new()),
        );
        assert!(down.peers(b).is_empty());

        // Underlay with reachability: session up, route learned over iBGP.
        let mut table = TableUnderlay::new();
        table.set(a, b, 4);
        table.set(b, a, 4);
        let up = BgpModel::new(&net, prefix, vec![a], &FailureSet::none(), Arc::new(table));
        assert_eq!(up.peers(b), &[a]);
        let adv = up.advertise(a, b, &up.origin_route(a)).unwrap();
        assert_eq!(adv.learned_via, SessionType::Ibgp);
        assert_eq!(adv.igp_cost, 4);
        // iBGP does not prepend the AS path.
        assert!(adv.attrs.as_path.is_empty());
    }

    #[test]
    fn decision_process_order() {
        let g = fat_tree_bgp_rfc7938(4, 1);
        let model = BgpModel::new(
            &g.network,
            g.destinations[0],
            vec![g.fat_tree.edges_flat()[0]],
            &FailureSet::none(),
            Arc::new(UniformUnderlay),
        );
        let n = g.fat_tree.core[0];
        let mk = |local_pref: u32, as_len: usize, via: SessionType, igp: u64| {
            let mut r = Route::originated(g.destinations[0]).extended_through(NodeId(1));
            r.attrs.local_pref = local_pref;
            r.attrs.as_path = vec![65000; as_len];
            r.learned_via = via;
            r.igp_cost = igp;
            r
        };
        // Local pref dominates AS-path length.
        assert_eq!(
            model.prefer(
                n,
                &mk(200, 5, SessionType::Ebgp, 0),
                &mk(100, 1, SessionType::Ebgp, 0)
            ),
            Preference::Better
        );
        // AS-path length dominates session type.
        assert_eq!(
            model.prefer(
                n,
                &mk(100, 1, SessionType::Ibgp, 9),
                &mk(100, 2, SessionType::Ebgp, 0)
            ),
            Preference::Better
        );
        // eBGP beats iBGP at equal local pref and AS-path length.
        assert_eq!(
            model.prefer(
                n,
                &mk(100, 2, SessionType::Ebgp, 0),
                &mk(100, 2, SessionType::Ibgp, 0)
            ),
            Preference::Better
        );
        // IGP cost breaks iBGP ties.
        assert_eq!(
            model.prefer(
                n,
                &mk(100, 2, SessionType::Ibgp, 3),
                &mk(100, 2, SessionType::Ibgp, 8)
            ),
            Preference::Better
        );
        // Everything equal: a genuine (age-based) tie.
        assert_eq!(
            model.prefer(
                n,
                &mk(100, 2, SessionType::Ebgp, 0),
                &mk(100, 2, SessionType::Ebgp, 0)
            ),
            Preference::Tied
        );
    }

    #[test]
    fn wedgie_backup_route_gets_low_local_pref() {
        let g = bgp_wedgie();
        let model = BgpModel::new(
            &g.network,
            g.destination,
            vec![g.origin],
            &FailureSet::none(),
            Arc::new(UniformUnderlay),
        );
        let a2 = g.actors[0];
        let a4 = g.actors[2];
        let backup = model
            .advertise(g.origin, a2, &model.origin_route(g.origin))
            .unwrap();
        assert_eq!(backup.attrs.local_pref, 10);
        let primary = model
            .advertise(g.origin, a4, &model.origin_route(g.origin))
            .unwrap();
        assert_eq!(primary.attrs.local_pref, 200);
    }

    #[test]
    fn ebgp_session_down_when_link_failed() {
        let g = disagree_gadget();
        let link = g
            .network
            .topology
            .link_between(g.origin, g.actors[0])
            .unwrap();
        let model = BgpModel::new(
            &g.network,
            g.destination,
            vec![g.origin],
            &FailureSet::single(link),
            Arc::new(UniformUnderlay),
        );
        assert!(!model.peers(g.actors[0]).contains(&g.origin));
        assert!(model.peers(g.actors[1]).contains(&g.origin));
    }
}
