//! Extended SPVP (Appendix A of the paper): the message-passing reference
//! semantics that RPVP reduces.
//!
//! Peers are connected by reliable FIFO buffers. Each step, one non-empty
//! buffer is chosen (here: by a seeded pseudo-random scheduler), the head
//! advertisement is imported, `rib-in` is updated, the best path is
//! re-selected, and—if it changed—the new best path is exported to every
//! peer. A state with all buffers empty is converged.
//!
//! This implementation exists to cross-check RPVP: Theorem 1 says every
//! converged state SPVP can reach is also reachable by RPVP (and vice versa,
//! soundness), which the property tests in this crate and in the integration
//! suite exercise on small networks.

use crate::model::ProtocolModel;
use crate::route::Route;
use crate::rpvp::ConvergedState;
use plankton_net::topology::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// One advertisement in flight: the sender's best route at send time, or a
/// withdrawal (`None`).
type Message = Option<Route>;

/// The SPVP simulator state.
pub struct Spvp<'m> {
    model: &'m dyn ProtocolModel,
    /// rib_in[n][peer_index] = the latest advertisement imported from that
    /// peer.
    rib_in: Vec<Vec<Option<Route>>>,
    /// best[n] = the currently selected best route.
    best: Vec<Option<Route>>,
    /// buffers[n][peer_index] = FIFO of messages from that peer to `n`.
    buffers: Vec<Vec<VecDeque<Message>>>,
}

impl<'m> Spvp<'m> {
    /// Initialize: origins hold `ε` and have advertised it to all their
    /// peers; every other buffer is empty.
    pub fn new(model: &'m dyn ProtocolModel) -> Self {
        let n = model.node_count();
        let mut spvp = Spvp {
            model,
            rib_in: (0..n)
                .map(|i| vec![None; model.peers(NodeId(i as u32)).len()])
                .collect(),
            best: vec![None; n],
            buffers: (0..n)
                .map(|i| {
                    (0..model.peers(NodeId(i as u32)).len())
                        .map(|_| VecDeque::new())
                        .collect()
                })
                .collect(),
        };
        for &o in model.origins() {
            let route = model.origin_route(o);
            spvp.best[o.index()] = Some(route.clone());
            spvp.send_to_peers(o, &Some(route));
        }
        spvp
    }

    fn peer_index(&self, n: NodeId, peer: NodeId) -> Option<usize> {
        self.model.peers(n).iter().position(|&p| p == peer)
    }

    /// Queue `n`'s current best (post-export) to every peer. The export and
    /// import filters are applied at delivery time via
    /// [`ProtocolModel::advertise`], so what travels in the buffer is the
    /// sender's raw best path, exactly as in the SPVP formalization.
    fn send_to_peers(&mut self, n: NodeId, best: &Option<Route>) {
        for &peer in self.model.peers(n) {
            if let Some(idx) = self.peer_index(peer, n) {
                self.buffers[peer.index()][idx].push_back(best.clone());
            }
        }
    }

    /// Are all buffers empty (converged)?
    pub fn converged(&self) -> bool {
        self.buffers
            .iter()
            .all(|bufs| bufs.iter().all(|b| b.is_empty()))
    }

    /// The indices `(node, peer_index)` of every non-empty buffer.
    fn pending(&self) -> Vec<(NodeId, usize)> {
        let mut out = Vec::new();
        for (i, bufs) in self.buffers.iter().enumerate() {
            for (j, b) in bufs.iter().enumerate() {
                if !b.is_empty() {
                    out.push((NodeId(i as u32), j));
                }
            }
        }
        out
    }

    /// Deliver one message: node `n` takes the head of the buffer from its
    /// `peer_idx`-th peer, imports it, reselects its best path and, if it
    /// changed, advertises to its peers.
    fn deliver(&mut self, n: NodeId, peer_idx: usize) {
        let peer = self.model.peers(n)[peer_idx];
        let Some(message) = self.buffers[n.index()][peer_idx].pop_front() else {
            return;
        };
        // Import (filters + loop rejection) happens on delivery.
        let imported = message.and_then(|sent_best| self.model.advertise(peer, n, &sent_best));
        self.rib_in[n.index()][peer_idx] = imported;

        // Origins never change their selection.
        if self.model.origins().contains(&n) {
            return;
        }

        // Re-select the best path from rib_in.
        let candidates: Vec<(usize, Route)> = self.rib_in[n.index()]
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.clone().map(|r| (i, r)))
            .collect();
        let new_best = if candidates.is_empty() {
            None
        } else {
            let routes: Vec<Route> = candidates.iter().map(|(_, r)| r.clone()).collect();
            let best_idx = self.model.best_indices(n, &routes);
            // Keep the current best if it is still among the maximal
            // candidates (the SPVP rule: do not churn on equal-rank paths).
            let current_still_best = self.best[n.index()].as_ref().map(|cur| {
                routes
                    .iter()
                    .enumerate()
                    .any(|(i, r)| best_idx.contains(&i) && r == cur)
            });
            if current_still_best == Some(true) {
                self.best[n.index()].clone()
            } else {
                best_idx.first().map(|&i| routes[i].clone())
            }
        };

        if new_best != self.best[n.index()] {
            self.best[n.index()] = new_best.clone();
            self.send_to_peers(n, &new_best);
        }
    }

    /// Run with a seeded pseudo-random scheduler until convergence or until
    /// `max_steps` deliveries have happened. Returns the converged state, or
    /// `None` if the run was cut off (which can legitimately happen: SPVP may
    /// diverge for some configurations).
    pub fn run(mut self, seed: u64, max_steps: usize) -> Option<ConvergedState> {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..max_steps {
            let pending = self.pending();
            if pending.is_empty() {
                return Some(ConvergedState { best: self.best });
            }
            let (n, idx) = pending[rng.gen_range(0..pending.len())];
            self.deliver(n, idx);
        }
        if self.converged() {
            Some(ConvergedState { best: self.best })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bgp::{BgpModel, UniformUnderlay};
    use crate::ospf::OspfModel;
    use plankton_config::scenarios::{disagree_gadget, ring_ospf};
    use plankton_net::failure::FailureSet;
    use std::sync::Arc;

    #[test]
    fn spvp_converges_on_ospf_ring_to_same_state_for_any_seed() {
        let s = ring_ospf(6);
        let model = OspfModel::new(
            &s.network,
            s.destination,
            vec![s.origin],
            &FailureSet::none(),
        );
        let baseline = Spvp::new(&model).run(1, 100_000).expect("must converge");
        for seed in 2..8u64 {
            let other = Spvp::new(&model).run(seed, 100_000).expect("must converge");
            for n in s.network.topology.node_ids() {
                assert_eq!(
                    baseline.best(n).map(|r| r.igp_cost),
                    other.best(n).map(|r| r.igp_cost),
                    "OSPF outcome must be deterministic"
                );
            }
        }
    }

    #[test]
    fn spvp_disagree_gadget_reaches_both_states_across_seeds() {
        let g = disagree_gadget();
        let model = BgpModel::new(
            &g.network,
            g.destination,
            vec![g.origin],
            &FailureSet::none(),
            Arc::new(UniformUnderlay),
        );
        let a = g.actors[0];
        let b = g.actors[1];
        let mut outcomes = std::collections::HashSet::new();
        for seed in 0..40u64 {
            if let Some(converged) = Spvp::new(&model).run(seed, 100_000) {
                let nh_a = converged.next_hop(a);
                let nh_b = converged.next_hop(b);
                outcomes.insert((nh_a, nh_b));
            }
        }
        // Both stable states must be observable across schedules.
        assert!(
            outcomes.contains(&(Some(b), Some(g.origin)))
                || outcomes.contains(&(Some(g.origin), Some(a)))
        );
        assert!(!outcomes.is_empty());
    }

    #[test]
    fn spvp_converged_states_are_stable_under_rpvp() {
        // Every SPVP-converged state should have an empty RPVP enabled set
        // (soundness direction of Theorem 1 at the state level).
        let g = disagree_gadget();
        let model = BgpModel::new(
            &g.network,
            g.destination,
            vec![g.origin],
            &FailureSet::none(),
            Arc::new(UniformUnderlay),
        );
        let rpvp = crate::rpvp::Rpvp::new(&model);
        let mut interner = crate::interner::RouteInterner::new();
        for seed in 0..10u64 {
            if let Some(converged) = Spvp::new(&model).run(seed, 100_000) {
                let state = crate::rpvp::RpvpState::from_routes(&converged.best, &mut interner);
                assert!(
                    rpvp.converged(&state, &interner),
                    "SPVP-converged state is not RPVP-stable (seed {seed})"
                );
            }
        }
    }
}
