//! The abstract protocol model interface (extended SPVP's import/export
//! filters and ranking functions, §3.4.1 of the paper).

use crate::route::Route;
use plankton_net::topology::NodeId;

/// The result of comparing two candidate routes at a node.
///
/// The ranking function is a *partial* order (the paper's extension of SPVP):
/// [`Preference::Tied`] means the node may legitimately select either route —
/// e.g. BGP age-based tie-breaking, where the winner depends on arrival
/// order. Ties are exactly where the model checker must branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Preference {
    /// The first route is strictly preferred.
    Better,
    /// The second route is strictly preferred.
    Worse,
    /// Neither is preferred: a non-deterministic choice.
    Tied,
}

impl Preference {
    /// Flip the comparison direction.
    pub fn reverse(self) -> Preference {
        match self {
            Preference::Better => Preference::Worse,
            Preference::Worse => Preference::Better,
            Preference::Tied => Preference::Tied,
        }
    }
}

/// A routing protocol instance for **one destination prefix**: the abstract
/// import/export filters and ranking function that RPVP executes over.
///
/// The model is queried, never mutated — all non-determinism lives in the
/// RPVP execution, which keeps protocol instances trivially shareable across
/// verification threads.
pub trait ProtocolModel: Sync {
    /// Number of nodes in the network (node ids are dense `0..node_count`).
    fn node_count(&self) -> usize;

    /// The nodes that originate the destination prefix (their best path is
    /// `ε` in the initial state and never changes).
    fn origins(&self) -> &[NodeId];

    /// The peers of `n` whose advertisements `n` may consider. For OSPF these
    /// are the adjacent routers over live, protocol-enabled links; for BGP
    /// the configured sessions that are currently up.
    fn peers(&self, n: NodeId) -> &[NodeId];

    /// The route `to` would obtain if `from` advertised its current best
    /// route `best_of_from` to it: `import_{to,from}(export_{from,to}(r))`.
    /// Returns `None` if either filter rejects the route (including loop
    /// rejection). The returned route must already be extended through
    /// `from` (i.e. `from` is its next hop) with all attribute rewrites
    /// applied.
    fn advertise(&self, from: NodeId, to: NodeId, best_of_from: &Route) -> Option<Route>;

    /// The route an origin holds for the destination (`ε` plus any
    /// origination attributes).
    fn origin_route(&self, origin: NodeId) -> Route;

    /// The ranking function of `n`: compare two candidate routes.
    fn prefer(&self, n: NodeId, a: &Route, b: &Route) -> Preference;

    /// A short protocol name for reporting ("ospf", "bgp").
    fn name(&self) -> &'static str;

    /// The reverse-peer index: `reverse_peers()[n]` lists the nodes that
    /// consider advertisements *from* `n` (every `m` with `n ∈ peers(m)`),
    /// sorted and deduplicated. An RPVP step at `n` can only change the
    /// enabled status of `n` itself and of these nodes, which is what makes
    /// delta-maintained enabled sets sound. Built once per checker run
    /// (O(edges)); models with precomputed adjacency may override.
    fn reverse_peers(&self) -> Vec<Vec<NodeId>> {
        let n = self.node_count();
        let mut rev: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for i in 0..n {
            let m = NodeId(i as u32);
            for &p in self.peers(m) {
                rev[p.index()].push(m);
            }
        }
        for list in &mut rev {
            list.sort_unstable();
            list.dedup();
        }
        rev
    }

    /// Select the most-preferred routes among `candidates` according to `n`'s
    /// ranking function. Returns the indices of the maximal elements: more
    /// than one index means the choice among them is non-deterministic.
    fn best_indices(&self, n: NodeId, candidates: &[Route]) -> Vec<usize> {
        let mut best: Vec<usize> = Vec::new();
        'outer: for (i, c) in candidates.iter().enumerate() {
            // Discard c if any other candidate is strictly better.
            for (j, other) in candidates.iter().enumerate() {
                if i != j && self.prefer(n, other, c) == Preference::Better {
                    continue 'outer;
                }
            }
            best.push(i);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::Route;
    use plankton_net::ip::Prefix;

    /// A toy model over a line 0-1-2 where node 2 originates and lower
    /// local-pref loses.
    struct Line;

    impl ProtocolModel for Line {
        fn node_count(&self) -> usize {
            3
        }
        fn origins(&self) -> &[NodeId] {
            const O: [NodeId; 1] = [NodeId(2)];
            &O
        }
        fn peers(&self, n: NodeId) -> &[NodeId] {
            const P0: [NodeId; 1] = [NodeId(1)];
            const P1: [NodeId; 2] = [NodeId(0), NodeId(2)];
            const P2: [NodeId; 1] = [NodeId(1)];
            match n.0 {
                0 => &P0,
                1 => &P1,
                _ => &P2,
            }
        }
        fn advertise(&self, from: NodeId, to: NodeId, r: &Route) -> Option<Route> {
            if r.traverses(to) {
                return None;
            }
            Some(r.extended_through(from))
        }
        fn origin_route(&self, _origin: NodeId) -> Route {
            Route::originated(Prefix::DEFAULT)
        }
        fn prefer(&self, _n: NodeId, a: &Route, b: &Route) -> Preference {
            match a.attrs.local_pref.cmp(&b.attrs.local_pref) {
                std::cmp::Ordering::Greater => Preference::Better,
                std::cmp::Ordering::Less => Preference::Worse,
                std::cmp::Ordering::Equal => Preference::Tied,
            }
        }
        fn name(&self) -> &'static str {
            "line"
        }
    }

    #[test]
    fn preference_reverse() {
        assert_eq!(Preference::Better.reverse(), Preference::Worse);
        assert_eq!(Preference::Worse.reverse(), Preference::Better);
        assert_eq!(Preference::Tied.reverse(), Preference::Tied);
    }

    #[test]
    fn best_indices_picks_maximal_elements() {
        let m = Line;
        let mut a = Route::originated(Prefix::DEFAULT);
        a.attrs.local_pref = 200;
        let mut b = Route::originated(Prefix::DEFAULT);
        b.attrs.local_pref = 100;
        let c = b.clone();
        let best = m.best_indices(NodeId(0), &[a.clone(), b.clone(), c.clone()]);
        assert_eq!(best, vec![0]);
        let tied = m.best_indices(NodeId(0), &[b, c]);
        assert_eq!(tied, vec![0, 1]);
        let empty: Vec<usize> = m.best_indices(NodeId(0), &[]);
        assert!(empty.is_empty());
    }

    #[test]
    fn reverse_peers_inverts_the_peer_relation() {
        let m = Line;
        let rev = m.reverse_peers();
        assert_eq!(rev.len(), 3);
        for i in 0..3u32 {
            let n = NodeId(i);
            // m ∈ rev[n] ⟺ n ∈ peers(m).
            for j in 0..3u32 {
                let mm = NodeId(j);
                assert_eq!(
                    rev[n.index()].contains(&mm),
                    m.peers(mm).contains(&n),
                    "rev[{n}] vs peers({mm})"
                );
            }
            // Sorted and deduplicated.
            assert!(rev[n.index()].windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn loop_rejection_in_advertise() {
        let m = Line;
        let r = Route::originated(Prefix::DEFAULT).extended_through(NodeId(1));
        assert!(m.advertise(NodeId(0), NodeId(1), &r).is_none());
        assert!(m.advertise(NodeId(1), NodeId(0), &r).is_some());
    }
}
