//! The route representation shared by every protocol model.

use crate::hopvec::HopVec;
use plankton_config::route_map::RouteAttrs;
use plankton_net::ip::Prefix;
use plankton_net::topology::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a route was learned at a node. Affects both the decision process
/// (eBGP routes are preferred over iBGP routes) and propagation rules
/// (iBGP-learned routes are not re-advertised to other iBGP peers).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SessionType {
    /// Locally originated (the node is an origin for the prefix).
    Originated,
    /// Learned over an eBGP session.
    Ebgp,
    /// Learned over an iBGP session.
    Ibgp,
    /// Learned through the IGP (OSPF).
    Igp,
}

/// A candidate route at a node: the node-level path to an origin plus the
/// attributes the ranking function needs.
///
/// The `path` lists the nodes the route traverses *starting with the next
/// hop* and ending at the origin, so an origin's own route has an empty path
/// (the paper's `ε`) and `path[0]` is the forwarding next hop (the paper's
/// `best-path(n).head`).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Route {
    /// Next hop first, origin last. Empty for an origin's own route.
    /// Stored inline for short paths ([`HopVec`]) so the checker's
    /// per-step route clones in `step_adopting` stay allocation-free.
    pub path: HopVec,
    /// BGP-style attributes (prefix, AS path, communities, local-pref, MED).
    pub attrs: RouteAttrs,
    /// Accumulated IGP cost: for OSPF routes the path cost, for iBGP routes
    /// the IGP cost to the session peer (next hop).
    pub igp_cost: u64,
    /// How the route was learned at the node holding it.
    pub learned_via: SessionType,
}

impl Route {
    /// The route an origin node holds for its own prefix (`ε`).
    pub fn originated(prefix: Prefix) -> Self {
        Route {
            path: HopVec::new(),
            attrs: RouteAttrs::originated(prefix),
            igp_cost: 0,
            learned_via: SessionType::Originated,
        }
    }

    /// Is this an origin's own route (`ε`)?
    pub fn is_origin(&self) -> bool {
        self.path.is_empty()
    }

    /// The forwarding next hop, if any (`best-path(n).head`).
    pub fn next_hop(&self) -> Option<NodeId> {
        self.path.first().copied()
    }

    /// The rest of the path after the next hop (`best-path(n).rest`).
    pub fn rest(&self) -> &[NodeId] {
        if self.path.is_empty() {
            &[]
        } else {
            &self.path[1..]
        }
    }

    /// The origin node the path leads to, or `None` for an origin's own
    /// route (which *is* at the origin).
    pub fn origin_node(&self) -> Option<NodeId> {
        self.path.last().copied()
    }

    /// Number of node hops to the origin.
    pub fn hop_count(&self) -> usize {
        self.path.len()
    }

    /// Does the path already traverse `node`? Used for loop rejection in
    /// import filters (Appendix B: "All import filters reject paths that
    /// cause forwarding loops").
    pub fn traverses(&self, node: NodeId) -> bool {
        self.path.contains(&node)
    }

    /// The route as seen by a receiving neighbor `receiver`: the advertising
    /// node `advertiser` is prepended to the node path. Attribute rewrites
    /// (AS-path prepending, cost accumulation) are the protocol model's job;
    /// this only extends the node-level path.
    pub fn extended_through(&self, advertiser: NodeId) -> Route {
        let mut path = HopVec::with_capacity(self.path.len() + 1);
        path.push(advertiser);
        path.extend_from_slice(&self.path);
        Route {
            path,
            attrs: self.attrs.clone(),
            igp_cost: self.igp_cost,
            learned_via: self.learned_via,
        }
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "ε→{}", self.attrs.prefix)
        } else {
            let hops: Vec<String> = self.path.iter().map(|n| n.to_string()).collect();
            write!(f, "[{}]→{}", hops.join(" "), self.attrs.prefix)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prefix() -> Prefix {
        "10.0.0.0/24".parse().unwrap()
    }

    #[test]
    fn origin_route_is_epsilon() {
        let r = Route::originated(prefix());
        assert!(r.is_origin());
        assert_eq!(r.next_hop(), None);
        assert_eq!(r.origin_node(), None);
        assert_eq!(r.hop_count(), 0);
        assert_eq!(r.learned_via, SessionType::Originated);
    }

    #[test]
    fn extension_prepends_advertiser() {
        let origin = Route::originated(prefix());
        let at_neighbor = origin.extended_through(NodeId(5));
        assert_eq!(at_neighbor.path, vec![NodeId(5)]);
        assert_eq!(at_neighbor.next_hop(), Some(NodeId(5)));
        assert_eq!(at_neighbor.origin_node(), Some(NodeId(5)));
        let further = at_neighbor.extended_through(NodeId(7));
        assert_eq!(further.path, vec![NodeId(7), NodeId(5)]);
        assert_eq!(further.next_hop(), Some(NodeId(7)));
        assert_eq!(further.origin_node(), Some(NodeId(5)));
        assert_eq!(further.rest(), &[NodeId(5)]);
        assert!(further.traverses(NodeId(7)));
        assert!(!further.traverses(NodeId(9)));
    }

    #[test]
    fn display_formats() {
        let r = Route::originated(prefix());
        assert!(r.to_string().starts_with('ε'));
        let e = r.extended_through(NodeId(1));
        assert!(e.to_string().contains("n1"));
    }
}
