//! An inline small-vector for route paths.
//!
//! `Route::path` used to be a `Vec<NodeId>`, which costs one heap allocation
//! per route — and the checker's inner loop clones routes on every adopted
//! advertisement (`Rpvp::step_adopting`) and on every `extended_through`.
//! Control-plane paths are short in practice (a k-ary fat tree's longest
//! shortest path is 4 hops; the paper's AS topologies stay in single
//! digits), so [`HopVec`] stores up to [`HopVec::INLINE`] hops in place and
//! only spills to the heap beyond that. Equality, ordering, hashing and
//! serialization are defined on the *contents*, never the representation,
//! so interner handle numbering — and therefore bitstate fingerprints — are
//! unchanged relative to the `Vec` days.

use plankton_net::topology::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;

#[derive(Clone)]
enum Repr {
    Inline {
        len: u8,
        buf: [NodeId; HopVec::INLINE],
    },
    Heap(Vec<NodeId>),
}

/// A sequence of [`NodeId`] hops, inline up to four entries.
#[derive(Clone)]
pub struct HopVec {
    repr: Repr,
}

impl HopVec {
    /// Hops stored without a heap allocation.
    pub const INLINE: usize = 4;

    /// An empty path (the origin's `ε`).
    pub fn new() -> Self {
        HopVec {
            repr: Repr::Inline {
                len: 0,
                buf: [NodeId(0); Self::INLINE],
            },
        }
    }

    /// An empty path that will hold `capacity` hops; pre-allocates only when
    /// the capacity exceeds the inline buffer.
    pub fn with_capacity(capacity: usize) -> Self {
        if capacity <= Self::INLINE {
            Self::new()
        } else {
            HopVec {
                repr: Repr::Heap(Vec::with_capacity(capacity)),
            }
        }
    }

    /// The hops as a slice.
    pub fn as_slice(&self) -> &[NodeId] {
        match &self.repr {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Heap(v) => v.as_slice(),
        }
    }

    /// Append one hop, spilling to the heap past the inline capacity.
    pub fn push(&mut self, hop: NodeId) {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                let n = *len as usize;
                if n < Self::INLINE {
                    buf[n] = hop;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(Self::INLINE * 2);
                    v.extend_from_slice(&buf[..n]);
                    v.push(hop);
                    self.repr = Repr::Heap(v);
                }
            }
            Repr::Heap(v) => v.push(hop),
        }
    }

    /// Append every hop of `hops`.
    pub fn extend_from_slice(&mut self, hops: &[NodeId]) {
        match &mut self.repr {
            Repr::Inline { len, buf } if *len as usize + hops.len() <= Self::INLINE => {
                let n = *len as usize;
                buf[n..n + hops.len()].copy_from_slice(hops);
                *len += hops.len() as u8;
            }
            Repr::Inline { len, buf } => {
                let n = *len as usize;
                let mut v = Vec::with_capacity(n + hops.len());
                v.extend_from_slice(&buf[..n]);
                v.extend_from_slice(hops);
                self.repr = Repr::Heap(v);
            }
            Repr::Heap(v) => v.extend_from_slice(hops),
        }
    }

    /// Is the path stored inline (no heap allocation)?
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline { .. })
    }
}

impl Default for HopVec {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for HopVec {
    type Target = [NodeId];
    fn deref(&self) -> &[NodeId] {
        self.as_slice()
    }
}

impl From<Vec<NodeId>> for HopVec {
    fn from(v: Vec<NodeId>) -> Self {
        if v.len() <= Self::INLINE {
            let mut out = HopVec::new();
            out.extend_from_slice(&v);
            out
        } else {
            HopVec {
                repr: Repr::Heap(v),
            }
        }
    }
}

impl FromIterator<NodeId> for HopVec {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut out = HopVec::new();
        for hop in iter {
            out.push(hop);
        }
        out
    }
}

impl<'a> IntoIterator for &'a HopVec {
    type Item = &'a NodeId;
    type IntoIter = std::slice::Iter<'a, NodeId>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

// Content-based comparisons: a spilled path and an inline path with the same
// hops are the same path.
impl PartialEq for HopVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for HopVec {}

impl PartialEq<[NodeId]> for HopVec {
    fn eq(&self, other: &[NodeId]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[NodeId]> for HopVec {
    fn eq(&self, other: &&[NodeId]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<NodeId>> for HopVec {
    fn eq(&self, other: &Vec<NodeId>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for HopVec {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Delegate to the slice hash (length-prefixed), exactly what
        // `Vec<NodeId>` hashed to before the inline representation.
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for HopVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl Serialize for HopVec {
    fn to_value(&self) -> serde::Value {
        self.as_slice().to_value()
    }
}

impl Deserialize for HopVec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Vec::<NodeId>::from_value(v).map(HopVec::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hops(ids: &[u32]) -> Vec<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn inline_until_capacity_then_spills() {
        let mut v = HopVec::new();
        for i in 0..4 {
            v.push(NodeId(i));
            assert!(v.is_inline());
        }
        assert_eq!(v.len(), 4);
        v.push(NodeId(4));
        assert!(!v.is_inline());
        assert_eq!(v.as_slice(), hops(&[0, 1, 2, 3, 4]).as_slice());
    }

    #[test]
    fn equality_and_hash_ignore_representation() {
        let inline: HopVec = hops(&[1, 2, 3]).into();
        let spilled = {
            let mut v: HopVec = hops(&[1, 2, 3, 4, 5]).into();
            assert!(!v.is_inline());
            // Rebuild the same 3-hop path through a heap representation.
            v = HopVec {
                repr: Repr::Heap(hops(&[1, 2, 3])),
            };
            v
        };
        assert!(inline.is_inline());
        assert_eq!(inline, spilled);
        let h = |v: &HopVec| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&inline), h(&spilled));
        // And the hash matches the plain Vec hash (interner stability).
        let mut s = DefaultHasher::new();
        hops(&[1, 2, 3]).hash(&mut s);
        assert_eq!(h(&inline), s.finish());
    }

    #[test]
    fn extend_from_slice_across_the_boundary() {
        let mut v: HopVec = hops(&[9]).into();
        v.extend_from_slice(&hops(&[8, 7]));
        assert!(v.is_inline());
        v.extend_from_slice(&hops(&[6, 5]));
        assert!(!v.is_inline());
        assert_eq!(v, hops(&[9, 8, 7, 6, 5]));
    }

    #[test]
    fn slice_api_via_deref() {
        let v: HopVec = hops(&[3, 1, 2]).into();
        assert_eq!(v.first(), Some(&NodeId(3)));
        assert_eq!(v.last(), Some(&NodeId(2)));
        assert!(v.contains(&NodeId(1)));
        assert_eq!(&v[1..], hops(&[1, 2]).as_slice());
    }

    #[test]
    fn serde_roundtrips_as_an_array() {
        let v: HopVec = hops(&[1, 2, 3, 4, 5, 6]).into();
        let value = v.to_value();
        assert_eq!(value, hops(&[1, 2, 3, 4, 5, 6]).to_value());
        let back = HopVec::from_value(&value).unwrap();
        assert_eq!(back, v);
    }
}
