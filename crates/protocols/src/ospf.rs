//! OSPF as a protocol model: shortest-path routing over configured interface
//! costs.
//!
//! OSPF's ranking function is a *total* order (cost, then a deterministic
//! next-hop tie-break), matching the paper's observation that "OSPF by its
//! nature has deterministic outcomes". Equal-cost multipath is recovered
//! after convergence from the converged costs ([`OspfModel::ecmp_next_hops`])
//! — the special-case deviation from single-best-path RPVP that the paper
//! describes for OSPF.

use crate::model::{Preference, ProtocolModel};
use crate::route::{Route, SessionType};
use plankton_config::Network;
use plankton_net::failure::FailureSet;
use plankton_net::ip::Prefix;
use plankton_net::topology::NodeId;
use std::collections::HashMap;

/// An OSPF instance for a single destination prefix.
#[derive(Clone, Debug)]
pub struct OspfModel {
    node_count: usize,
    origins: Vec<NodeId>,
    peers: Vec<Vec<NodeId>>,
    /// cost[(n, m)] = the cost configured at `n` for its cheapest live,
    /// OSPF-enabled link towards `m`.
    cost: HashMap<(NodeId, NodeId), u64>,
    prefix: Prefix,
}

impl OspfModel {
    /// Build the OSPF model for `prefix` with the given originating routers,
    /// under a set of failed links. Only routers with an OSPF process
    /// participate; adjacency requires OSPF enabled on the link at both ends
    /// and the link to be alive.
    pub fn new(
        network: &Network,
        prefix: Prefix,
        origins: Vec<NodeId>,
        failures: &FailureSet,
    ) -> Self {
        let topo = &network.topology;
        let node_count = topo.node_count();
        let mut peers = vec![Vec::new(); node_count];
        let mut cost = HashMap::new();

        for n in topo.node_ids() {
            let Some(my_ospf) = &network.device(n).ospf else {
                continue;
            };
            for &(m, link) in topo.neighbors(n) {
                if failures.contains(link) {
                    continue;
                }
                let Some(peer_ospf) = &network.device(m).ospf else {
                    continue;
                };
                let (Some(my_cost), Some(_)) = (my_ospf.cost(link), peer_ospf.cost(link)) else {
                    continue;
                };
                let entry = cost.entry((n, m)).or_insert(u64::MAX);
                *entry = (*entry).min(my_cost as u64);
                if !peers[n.index()].contains(&m) {
                    peers[n.index()].push(m);
                }
            }
        }
        for p in peers.iter_mut() {
            p.sort();
        }

        let mut origins = origins;
        origins.sort();
        origins.dedup();
        // Only OSPF speakers can originate into OSPF.
        origins.retain(|o| network.device(*o).runs_ospf());

        OspfModel {
            node_count,
            origins,
            peers,
            cost,
            prefix,
        }
    }

    /// The destination prefix this instance routes.
    pub fn prefix(&self) -> Prefix {
        self.prefix
    }

    /// The configured cost from `n` towards `m`, if they are OSPF-adjacent.
    pub fn link_cost(&self, n: NodeId, m: NodeId) -> Option<u64> {
        self.cost.get(&(n, m)).copied()
    }

    /// The equal-cost next hops of `n` in a converged state: every OSPF peer
    /// `m` whose advertised route would have the same cost as `n`'s converged
    /// best route. This recovers OSPF multipath from the single-best-path
    /// converged state.
    pub fn ecmp_next_hops(&self, best: &[Option<Route>], n: NodeId) -> Vec<NodeId> {
        let Some(Some(my_best)) = best.get(n.index()) else {
            return Vec::new();
        };
        if my_best.is_origin() {
            return Vec::new();
        }
        let mut hops = Vec::new();
        for &m in &self.peers[n.index()] {
            let Some(Some(peer_best)) = best.get(m.index()) else {
                continue;
            };
            if peer_best.traverses(n) {
                continue;
            }
            let Some(link) = self.link_cost(n, m) else {
                continue;
            };
            if peer_best.igp_cost + link == my_best.igp_cost {
                hops.push(m);
            }
        }
        hops.sort();
        hops
    }
}

impl ProtocolModel for OspfModel {
    fn node_count(&self) -> usize {
        self.node_count
    }

    fn origins(&self) -> &[NodeId] {
        &self.origins
    }

    fn peers(&self, n: NodeId) -> &[NodeId] {
        &self.peers[n.index()]
    }

    fn advertise(&self, from: NodeId, to: NodeId, best_of_from: &Route) -> Option<Route> {
        // Loop rejection: never accept a path that already traverses the
        // receiving node.
        if best_of_from.traverses(to) {
            return None;
        }
        let link = self.link_cost(to, from)?;
        let mut adv = best_of_from.extended_through(from);
        adv.igp_cost = best_of_from.igp_cost.saturating_add(link);
        adv.learned_via = SessionType::Igp;
        Some(adv)
    }

    fn origin_route(&self, _origin: NodeId) -> Route {
        Route::originated(self.prefix)
    }

    fn prefer(&self, _n: NodeId, a: &Route, b: &Route) -> Preference {
        // Total order: lower cost wins, then fewer hops, then lower next-hop
        // id — OSPF convergence is deterministic.
        let key = |r: &Route| {
            (
                r.igp_cost,
                r.hop_count(),
                r.next_hop().map(|x| x.0).unwrap_or(0),
            )
        };
        match key(a).cmp(&key(b)) {
            std::cmp::Ordering::Less => Preference::Better,
            std::cmp::Ordering::Greater => Preference::Worse,
            std::cmp::Ordering::Equal => Preference::Tied,
        }
    }

    fn name(&self) -> &'static str {
        "ospf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpvp::Rpvp;
    use plankton_config::scenarios::{fat_tree_ospf, ring_ospf, CoreStaticRoutes};
    use plankton_config::{DeviceConfig, OspfConfig};
    use plankton_net::graph::dijkstra;
    use plankton_net::topology::TopologyBuilder;

    fn run_to_convergence(model: &OspfModel) -> crate::rpvp::ConvergedState {
        let rpvp = Rpvp::new(model);
        let mut interner = crate::interner::RouteInterner::new();
        let mut state = rpvp.initial_state(&mut interner);
        let mut steps = 0usize;
        loop {
            let enabled = rpvp.enabled(&state, &mut interner);
            let Some(choice) = enabled.into_iter().next() else {
                break;
            };
            let peer = choice.best_updates.first().map(|(p, _)| *p);
            rpvp.step(&mut state, &mut interner, choice.node, peer);
            steps += 1;
            assert!(steps < 100_000, "OSPF did not converge");
        }
        rpvp.converged_state(&state, &interner)
    }

    #[test]
    fn ring_converges_to_shortest_paths() {
        let s = ring_ospf(8);
        let model = OspfModel::new(
            &s.network,
            s.destination,
            vec![s.origin],
            &FailureSet::none(),
        );
        let converged = run_to_convergence(&model);
        // Compare against Dijkstra from the origin (symmetric unit weights).
        let sp = dijkstra(
            &s.network.topology,
            s.origin,
            &FailureSet::none(),
            |_, _| Some(1),
        );
        for n in s.network.topology.node_ids() {
            let cost = converged.best(n).map(|r| r.igp_cost);
            assert_eq!(cost, sp.cost(n), "cost mismatch at {n}");
        }
    }

    #[test]
    fn ring_with_failure_routes_the_long_way() {
        let s = ring_ospf(6);
        // Fail the link between the origin and its clockwise neighbor.
        let failed = FailureSet::single(s.ring.links[0]);
        let model = OspfModel::new(&s.network, s.destination, vec![s.origin], &failed);
        let converged = run_to_convergence(&model);
        // Router 1 (the far end of the failed link) must now route the long
        // way round: 5 hops.
        let r1 = s.ring.routers[1];
        assert_eq!(converged.best(r1).unwrap().hop_count(), 5);
        assert_eq!(converged.best(r1).unwrap().igp_cost, 5);
    }

    #[test]
    fn fat_tree_edge_reaches_other_pod_in_four_hops() {
        let s = fat_tree_ospf(4, CoreStaticRoutes::None);
        let dest_edge = s.fat_tree.edge[0][0];
        let prefix = s.fat_tree.prefix_of_edge(dest_edge).unwrap();
        let model = OspfModel::new(&s.network, prefix, vec![dest_edge], &FailureSet::none());
        let converged = run_to_convergence(&model);
        let other_pod_edge = s.fat_tree.edge[2][1];
        let route = converged.best(other_pod_edge).unwrap();
        // edge → agg → core → agg → edge = 4 hops at cost 40.
        assert_eq!(route.hop_count(), 4);
        assert_eq!(route.igp_cost, 40);
        // Same-pod edge is 2 hops away.
        let same_pod = s.fat_tree.edge[0][1];
        assert_eq!(converged.best(same_pod).unwrap().hop_count(), 2);
    }

    #[test]
    fn ecmp_next_hops_found_in_fat_tree() {
        let s = fat_tree_ospf(4, CoreStaticRoutes::None);
        let dest_edge = s.fat_tree.edge[0][0];
        let prefix = s.fat_tree.prefix_of_edge(dest_edge).unwrap();
        let model = OspfModel::new(&s.network, prefix, vec![dest_edge], &FailureSet::none());
        let converged = run_to_convergence(&model);
        // An edge switch in another pod has two equal-cost uplinks.
        let other_pod_edge = s.fat_tree.edge[1][0];
        let hops = model.ecmp_next_hops(&converged.best, other_pod_edge);
        assert_eq!(hops.len(), 2);
        assert!(hops.iter().all(|h| s.fat_tree.aggregation[1].contains(h)));
        // The origin has no next hops.
        assert!(model.ecmp_next_hops(&converged.best, dest_edge).is_empty());
    }

    #[test]
    fn disabled_ospf_devices_do_not_participate() {
        let mut tb = TopologyBuilder::new();
        let a = tb.add_router("a");
        let b = tb.add_router("b");
        let c = tb.add_router("c");
        tb.add_link(a, b);
        tb.add_link(b, c);
        let mut net = Network::unconfigured(tb.build());
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        *net.device_mut(a) = DeviceConfig::empty().with_ospf(OspfConfig::originating(vec![p]));
        // b runs no OSPF: c can never learn the prefix.
        *net.device_mut(c) = DeviceConfig::empty().with_ospf(OspfConfig::enabled());
        let model = OspfModel::new(&net, p, vec![a], &FailureSet::none());
        assert!(model.peers(a).is_empty());
        assert!(model.peers(c).is_empty());
        let converged = run_to_convergence(&model);
        assert!(converged.best(c).is_none());
    }

    #[test]
    fn asymmetric_costs_use_receiving_side() {
        let mut tb = TopologyBuilder::new();
        let a = tb.add_router("a");
        let b = tb.add_router("b");
        let l = tb.add_link(a, b);
        let mut net = Network::unconfigured(tb.build());
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        *net.device_mut(a) =
            DeviceConfig::empty().with_ospf(OspfConfig::originating(vec![p]).with_cost(l, 5));
        *net.device_mut(b) = DeviceConfig::empty().with_ospf(OspfConfig::enabled().with_cost(l, 7));
        let model = OspfModel::new(&net, p, vec![a], &FailureSet::none());
        // b's cost towards a is b's configured interface cost (7).
        assert_eq!(model.link_cost(b, a), Some(7));
        assert_eq!(model.link_cost(a, b), Some(5));
        let converged = run_to_convergence(&model);
        assert_eq!(converged.best(b).unwrap().igp_cost, 7);
    }

    #[test]
    fn failures_remove_adjacency() {
        let s = ring_ospf(4);
        let failed = FailureSet::from_links(vec![s.ring.links[0], s.ring.links[3]]);
        // Router 0 is now isolated from router 1 and 3.
        let model = OspfModel::new(&s.network, s.destination, vec![s.origin], &failed);
        assert!(model.peers(s.ring.routers[0]).is_empty());
        let converged = run_to_convergence(&model);
        assert!(converged.best(s.ring.routers[1]).is_none());
        assert!(converged.best(s.ring.routers[2]).is_none());
    }
}
