//! Route interning: the paper's state-hashing optimization (§4.4), now
//! living *below* the RPVP layer so routes are interned at generation time.
//!
//! A network state is one routing entry per device; most entries repeat
//! across the millions of states the checker visits. Each distinct
//! [`Route`] is therefore stored exactly once in a table and everything
//! above — [`RpvpState`](crate::rpvp::RpvpState),
//! [`EnabledChoice`](crate::rpvp::EnabledChoice), the checker's undo
//! records and visited sets — holds compact handles. Copying states is a
//! `memcpy`, visited-state comparison is a vector-of-integers comparison,
//! and the checker's per-step route clone disappears entirely.
//!
//! Each entry also carries a *content hash* computed once at intern time.
//! Handle numbering depends on first-occurrence order, which differs
//! between explorers that evaluate nodes in different orders; bitstate
//! fingerprints therefore hash the content-hash sequence instead of the
//! handles, making pruning decisions independent of numbering.

use crate::route::Route;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Handle of an interned route. `NONE` represents `⊥` (no route).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RouteHandle(pub u64);

impl RouteHandle {
    /// The handle for "no route" (`⊥`).
    pub const NONE: RouteHandle = RouteHandle(0);

    /// Is this the `⊥` handle?
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Is this a real route handle?
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

impl Serialize for RouteHandle {
    fn to_value(&self) -> serde::Value {
        self.0.to_value()
    }
}

impl Deserialize for RouteHandle {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        u64::from_value(v).map(RouteHandle)
    }
}

/// The content hash reported for the `⊥` handle (an arbitrary fixed odd
/// constant, distinct from any `DefaultHasher` output with overwhelming
/// probability is not required — it only needs to be *consistent*).
const NONE_CONTENT_HASH: u64 = 0x9E37_79B9_7F4A_7C15;

/// The interning table. The route value is stored once, in an [`Arc`]
/// shared between the lookup map and the resolve table (the previous
/// design stored a full clone in each).
///
/// The table is designed to stay **warm across runs**: handles are
/// content-addressed, so a worker that verifies hundreds of failure
/// scenarios keeps one table and pays the miss cost (clone + content hash +
/// map growth) for each distinct route only once. Per-run statistics stay
/// exact through *run stamping*: [`RouteInterner::begin_run`] opens a new
/// accounting epoch, and each intern call marks its entry as touched, so
/// [`RouteInterner::run_interned`] reports exactly what a freshly allocated
/// interner would contain after the same run.
#[derive(Default)]
pub struct RouteInterner {
    by_route: HashMap<Arc<Route>, RouteHandle>,
    by_handle: Vec<Arc<Route>>,
    /// `content[h-1]` = a hash of the route's value, computed once at
    /// intern time; stable across interners within one process.
    content: Vec<u64>,
    /// `run_stamp[h-1]` = the accounting epoch that last interned the
    /// route (parallel to `by_handle`).
    run_stamp: Vec<u64>,
    /// The current accounting epoch.
    run_id: u64,
    /// Distinct routes interned during the current epoch.
    run_touched: u64,
    /// Sum of the per-route size terms over the current epoch's routes.
    run_route_bytes: usize,
}

/// The per-route term of the memory estimate (doubled by the reporting
/// methods: the route is referenced from both the map key and the table).
fn route_bytes(r: &Route) -> usize {
    std::mem::size_of::<Route>()
        + r.path.len() * std::mem::size_of::<u32>()
        + r.attrs.as_path.len() * 4
        + r.attrs.communities.len() * 4
}

impl RouteInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    fn insert_new(&mut self, route: Arc<Route>) -> RouteHandle {
        let handle = RouteHandle(self.by_handle.len() as u64 + 1);
        let mut h = DefaultHasher::new();
        route.hash(&mut h);
        self.content.push(h.finish());
        self.run_stamp.push(self.run_id);
        self.run_touched += 1;
        self.run_route_bytes += route_bytes(&route);
        self.by_handle.push(Arc::clone(&route));
        self.by_route.insert(route, handle);
        handle
    }

    /// Mark a pre-existing entry as interned during the current epoch.
    #[inline]
    fn touch(&mut self, handle: RouteHandle) {
        let idx = handle.0 as usize - 1;
        if self.run_stamp[idx] != self.run_id {
            self.run_stamp[idx] = self.run_id;
            self.run_touched += 1;
            self.run_route_bytes += route_bytes(&self.by_handle[idx]);
        }
    }

    /// Intern a route, returning its (stable) handle. Clones the route
    /// (once, into a shared [`Arc`]) only when it was not already present.
    pub fn intern(&mut self, route: &Route) -> RouteHandle {
        if let Some(&h) = self.by_route.get(route) {
            self.touch(h);
            return h;
        }
        self.insert_new(Arc::new(route.clone()))
    }

    /// Intern an owned route without cloning (zero-copy on both hit and
    /// miss).
    pub fn intern_owned(&mut self, route: Route) -> RouteHandle {
        if let Some(&h) = self.by_route.get(&route) {
            self.touch(h);
            return h;
        }
        self.insert_new(Arc::new(route))
    }

    /// Intern an optional route (`None` maps to [`RouteHandle::NONE`]).
    pub fn intern_opt(&mut self, route: Option<&Route>) -> RouteHandle {
        match route {
            Some(r) => self.intern(r),
            None => RouteHandle::NONE,
        }
    }

    /// Resolve a handle back to its route (`None` for the `⊥` handle).
    pub fn resolve(&self, handle: RouteHandle) -> Option<&Route> {
        if handle.is_none() {
            None
        } else {
            self.by_handle.get(handle.0 as usize - 1).map(Arc::as_ref)
        }
    }

    /// The content hash of a handle's route, computed at intern time.
    /// Numbering-independent: two interners that interned the same route
    /// under different handles report the same content hash for it.
    pub fn content_hash(&self, handle: RouteHandle) -> u64 {
        if handle.is_none() {
            NONE_CONTENT_HASH
        } else {
            self.content
                .get(handle.0 as usize - 1)
                .copied()
                .unwrap_or(handle.0)
        }
    }

    /// Compress a full state (one optional route per node) into handles.
    pub fn compress_state(&mut self, best: &[Option<Route>]) -> Vec<RouteHandle> {
        best.iter().map(|r| self.intern_opt(r.as_ref())).collect()
    }

    /// Number of distinct routes interned.
    pub fn len(&self) -> usize {
        self.by_handle.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.by_handle.is_empty()
    }

    /// Reset to empty while keeping the map and table allocations, so a
    /// worker can reuse one interner across many verification runs.
    /// Handles from before the clear are invalidated.
    pub fn clear(&mut self) {
        self.by_route.clear();
        self.by_handle.clear();
        self.content.clear();
        self.run_stamp.clear();
        self.run_touched = 0;
        self.run_route_bytes = 0;
    }

    /// Open a new accounting epoch without discarding the table. Existing
    /// handles stay valid (routes are content-addressed); only the per-run
    /// counters reset. A warm worker calls this between verification runs so
    /// [`Self::run_interned`] / [`Self::run_approx_bytes`] report exactly
    /// what a fresh interner would have after the run.
    pub fn begin_run(&mut self) {
        self.run_id += 1;
        self.run_touched = 0;
        self.run_route_bytes = 0;
    }

    /// Distinct routes interned since the last [`Self::begin_run`] (or
    /// creation). Equals [`Self::len`] on a freshly created interner.
    pub fn run_interned(&self) -> u64 {
        self.run_touched
    }

    /// Approximate memory the current run's routes would occupy in a fresh
    /// interner, in bytes. Equals [`Self::approx_bytes`] on a freshly
    /// created interner.
    pub fn run_approx_bytes(&self) -> usize {
        self.run_route_bytes * 2 // map key + table reference
    }

    /// Approximate memory used by the distinct route entries, in bytes
    /// (used by the memory statistics the benchmarks report).
    pub fn approx_bytes(&self) -> usize {
        self.by_handle.iter().map(|r| route_bytes(r)).sum::<usize>() * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plankton_net::ip::Prefix;
    use plankton_net::topology::NodeId;

    fn route(hops: &[u32]) -> Route {
        let mut r = Route::originated(Prefix::DEFAULT);
        for &h in hops.iter().rev() {
            r = r.extended_through(NodeId(h));
        }
        r
    }

    #[test]
    fn interning_is_idempotent() {
        let mut i = RouteInterner::new();
        let r1 = route(&[1, 2, 3]);
        let h1 = i.intern(&r1);
        let h2 = i.intern(&r1);
        assert_eq!(h1, h2);
        assert_eq!(i.len(), 1);
        assert_eq!(i.resolve(h1), Some(&r1));
        // The owned path hits the same entry.
        assert_eq!(i.intern_owned(r1), h1);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_routes_get_distinct_handles() {
        let mut i = RouteInterner::new();
        let h1 = i.intern(&route(&[1]));
        let h2 = i.intern(&route(&[2]));
        assert_ne!(h1, h2);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn none_handle_is_reserved() {
        let mut i = RouteInterner::new();
        assert_eq!(i.intern_opt(None), RouteHandle::NONE);
        assert!(RouteHandle::NONE.is_none());
        assert_eq!(i.resolve(RouteHandle::NONE), None);
        let h = i.intern_opt(Some(&route(&[5])));
        assert!(!h.is_none());
        assert!(h.is_some());
    }

    #[test]
    fn compress_state_roundtrips() {
        let mut i = RouteInterner::new();
        let state = vec![Some(route(&[1])), None, Some(route(&[1, 2]))];
        let compressed = i.compress_state(&state);
        assert_eq!(compressed.len(), 3);
        assert_eq!(i.resolve(compressed[0]), state[0].as_ref());
        assert_eq!(i.resolve(compressed[1]), None);
        assert_eq!(i.resolve(compressed[2]), state[2].as_ref());
        // Same state compresses to the same handles without growing the table.
        let before = i.len();
        let again = i.compress_state(&state);
        assert_eq!(again, compressed);
        assert_eq!(i.len(), before);
    }

    #[test]
    fn content_hashes_are_numbering_independent() {
        // Intern the same two routes in opposite orders: handles differ,
        // content hashes agree route-for-route.
        let (a, b) = (route(&[1]), route(&[2, 3]));
        let mut left = RouteInterner::new();
        let la = left.intern(&a);
        let lb = left.intern(&b);
        let mut right = RouteInterner::new();
        let rb = right.intern(&b);
        let ra = right.intern(&a);
        assert_ne!(la, ra);
        assert_eq!(left.content_hash(la), right.content_hash(ra));
        assert_eq!(left.content_hash(lb), right.content_hash(rb));
        assert_ne!(left.content_hash(la), left.content_hash(lb));
        assert_eq!(
            left.content_hash(RouteHandle::NONE),
            right.content_hash(RouteHandle::NONE)
        );
    }

    #[test]
    fn clear_keeps_working_and_renumbers() {
        let mut i = RouteInterner::new();
        i.intern(&route(&[1]));
        i.intern(&route(&[2]));
        assert_eq!(i.len(), 2);
        i.clear();
        assert!(i.is_empty());
        let h = i.intern(&route(&[2]));
        assert_eq!(h, RouteHandle(1), "handles restart after clear");
        assert_eq!(i.resolve(h), Some(&route(&[2])));
    }

    #[test]
    fn run_counters_match_a_fresh_interner() {
        // Warm path: intern a, b; begin_run; re-intern b plus a new c. The
        // run counters must equal what a fresh interner would report after
        // interning just {b, c}.
        let (a, b, c) = (route(&[1]), route(&[2, 3]), route(&[4, 5, 6]));
        let mut warm = RouteInterner::new();
        let ha = warm.intern(&a);
        let hb = warm.intern(&b);
        warm.begin_run();
        assert_eq!(warm.run_interned(), 0);
        assert_eq!(warm.run_approx_bytes(), 0);
        assert_eq!(warm.intern(&b), hb, "handles survive begin_run");
        assert_eq!(warm.intern(&b), hb, "re-touch in the same run is idempotent");
        let hc = warm.intern(&c);
        assert_ne!(hc, ha);
        let mut fresh = RouteInterner::new();
        fresh.intern(&b);
        fresh.intern(&c);
        assert_eq!(warm.run_interned(), fresh.len() as u64);
        assert_eq!(warm.run_approx_bytes(), fresh.approx_bytes());
        // A fresh interner's run counters agree with its totals.
        assert_eq!(fresh.run_interned(), fresh.len() as u64);
        assert_eq!(fresh.run_approx_bytes(), fresh.approx_bytes());
    }

    #[test]
    fn memory_estimate_is_nonzero() {
        let mut i = RouteInterner::new();
        assert!(i.is_empty());
        i.intern(&route(&[1, 2, 3, 4]));
        assert!(i.approx_bytes() > 0);
    }
}
