//! Per-device forwarding tables.
//!
//! Plankton executes the control plane separately for each prefix of a PEC;
//! the FIB model then combines the per-prefix, per-protocol results into one
//! forwarding decision per device (§3.3): the longest matching prefix wins,
//! and within a prefix the route source with the lowest administrative
//! distance wins.

use plankton_net::ip::Prefix;
use plankton_net::topology::NodeId;
use serde::{Deserialize, Serialize};

/// Where a FIB entry came from, with its default administrative distance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RouteSource {
    /// A directly connected / locally originated prefix.
    Connected,
    /// A static route (the configured distance may differ from the default).
    Static,
    /// OSPF.
    Ospf,
    /// BGP over an external session.
    Ebgp,
    /// BGP over an internal session.
    Ibgp,
}

impl RouteSource {
    /// The default administrative distance of this source.
    pub fn default_distance(self) -> u8 {
        match self {
            RouteSource::Connected => plankton_config::admin_distance::CONNECTED,
            RouteSource::Static => plankton_config::admin_distance::STATIC,
            RouteSource::Ospf => plankton_config::admin_distance::OSPF,
            RouteSource::Ebgp => plankton_config::admin_distance::EBGP,
            RouteSource::Ibgp => plankton_config::admin_distance::IBGP,
        }
    }
}

/// One candidate forwarding entry at a device.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FibEntry {
    /// The destination prefix the entry matches.
    pub prefix: Prefix,
    /// The next-hop devices (more than one for equal-cost multipath). Empty
    /// means the traffic is delivered locally (the device owns the prefix) —
    /// or discarded, if `drop` is set.
    pub next_hops: Vec<NodeId>,
    /// Is this a null route (discard)?
    pub drop: bool,
    /// Where the entry came from.
    pub source: RouteSource,
    /// Administrative distance used to arbitrate between sources.
    pub admin_distance: u8,
}

impl FibEntry {
    /// A locally-delivered entry (the device owns the prefix).
    pub fn local(prefix: Prefix, source: RouteSource) -> Self {
        FibEntry {
            prefix,
            next_hops: Vec::new(),
            drop: false,
            source,
            admin_distance: source.default_distance(),
        }
    }

    /// A forwarding entry towards the given next hops.
    pub fn via(prefix: Prefix, next_hops: Vec<NodeId>, source: RouteSource) -> Self {
        FibEntry {
            prefix,
            next_hops,
            drop: false,
            source,
            admin_distance: source.default_distance(),
        }
    }

    /// A null route.
    pub fn null(prefix: Prefix) -> Self {
        FibEntry {
            prefix,
            next_hops: Vec::new(),
            drop: true,
            source: RouteSource::Static,
            admin_distance: RouteSource::Static.default_distance(),
        }
    }

    /// Override the administrative distance, builder-style.
    pub fn with_distance(mut self, distance: u8) -> Self {
        self.admin_distance = distance;
        self
    }

    /// Is the traffic delivered locally by this entry?
    pub fn is_local(&self) -> bool {
        !self.drop && self.next_hops.is_empty()
    }
}

/// The FIB of a single device: candidate entries for the prefixes of one PEC.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Fib {
    entries: Vec<FibEntry>,
}

impl Fib {
    /// An empty FIB.
    pub fn new() -> Self {
        Fib::default()
    }

    /// Add a candidate entry.
    pub fn add(&mut self, entry: FibEntry) {
        self.entries.push(entry);
    }

    /// All candidate entries.
    pub fn entries(&self) -> &[FibEntry] {
        &self.entries
    }

    /// Is the FIB empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The winning entry for a destination address: longest prefix match
    /// first, then lowest administrative distance.
    pub fn lookup(&self, addr: plankton_net::ip::Ipv4Addr) -> Option<&FibEntry> {
        self.entries
            .iter()
            .filter(|e| e.prefix.contains(addr))
            .min_by_key(|e| (std::cmp::Reverse(e.prefix.len()), e.admin_distance))
    }
}

/// The FIBs of every device for one PEC.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct NetworkFib {
    /// Per-device FIB, indexed by node id.
    pub fibs: Vec<Fib>,
}

impl NetworkFib {
    /// An empty network FIB for `n` devices.
    pub fn new(n: usize) -> Self {
        NetworkFib {
            fibs: vec![Fib::new(); n],
        }
    }

    /// The FIB of device `n`.
    pub fn fib(&self, n: NodeId) -> &Fib {
        &self.fibs[n.index()]
    }

    /// Mutable access to the FIB of device `n`.
    pub fn fib_mut(&mut self, n: NodeId) -> &mut Fib {
        &mut self.fibs[n.index()]
    }

    /// The winning entry at device `n` for a destination address.
    pub fn lookup(&self, n: NodeId, addr: plankton_net::ip::Ipv4Addr) -> Option<&FibEntry> {
        self.fib(n).lookup(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plankton_net::ip::Ipv4Addr;

    #[test]
    fn longest_prefix_match_wins() {
        let mut fib = Fib::new();
        fib.add(FibEntry::via(
            "10.0.0.0/8".parse().unwrap(),
            vec![NodeId(1)],
            RouteSource::Ospf,
        ));
        fib.add(FibEntry::via(
            "10.1.0.0/16".parse().unwrap(),
            vec![NodeId(2)],
            RouteSource::Ospf,
        ));
        let e = fib.lookup(Ipv4Addr::new(10, 1, 2, 3)).unwrap();
        assert_eq!(e.next_hops, vec![NodeId(2)]);
        let e = fib.lookup(Ipv4Addr::new(10, 200, 0, 1)).unwrap();
        assert_eq!(e.next_hops, vec![NodeId(1)]);
        assert!(fib.lookup(Ipv4Addr::new(11, 0, 0, 1)).is_none());
    }

    #[test]
    fn admin_distance_breaks_same_prefix_ties() {
        let mut fib = Fib::new();
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        fib.add(FibEntry::via(p, vec![NodeId(1)], RouteSource::Ospf));
        fib.add(FibEntry::via(p, vec![NodeId(2)], RouteSource::Static));
        let e = fib.lookup(Ipv4Addr::new(10, 0, 0, 5)).unwrap();
        assert_eq!(e.source, RouteSource::Static);
        assert_eq!(e.next_hops, vec![NodeId(2)]);
    }

    #[test]
    fn static_beats_ospf_but_respects_floating_distance() {
        let mut fib = Fib::new();
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        fib.add(FibEntry::via(p, vec![NodeId(1)], RouteSource::Ospf));
        fib.add(FibEntry::via(p, vec![NodeId(2)], RouteSource::Static).with_distance(250));
        // The floating static route (distance 250) loses to OSPF (110).
        let e = fib.lookup(Ipv4Addr::new(10, 0, 0, 5)).unwrap();
        assert_eq!(e.source, RouteSource::Ospf);
    }

    #[test]
    fn local_and_null_entries() {
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        let local = FibEntry::local(p, RouteSource::Connected);
        assert!(local.is_local());
        let null = FibEntry::null(p);
        assert!(!null.is_local());
        assert!(null.drop);
    }

    #[test]
    fn admin_distance_defaults_are_ordered() {
        assert!(RouteSource::Connected.default_distance() < RouteSource::Static.default_distance());
        assert!(RouteSource::Static.default_distance() < RouteSource::Ebgp.default_distance());
        assert!(RouteSource::Ebgp.default_distance() < RouteSource::Ospf.default_distance());
        assert!(RouteSource::Ospf.default_distance() < RouteSource::Ibgp.default_distance());
    }

    #[test]
    fn network_fib_indexing() {
        let mut nf = NetworkFib::new(3);
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        nf.fib_mut(NodeId(1))
            .add(FibEntry::local(p, RouteSource::Connected));
        assert!(nf.fib(NodeId(0)).is_empty());
        assert!(nf.lookup(NodeId(1), Ipv4Addr::new(10, 0, 0, 1)).is_some());
        assert!(nf.lookup(NodeId(2), Ipv4Addr::new(10, 0, 0, 1)).is_none());
    }
}
