//! # plankton-dataplane
//!
//! The data-plane model: per-device FIBs assembled from converged
//! control-plane states (combining protocols by administrative distance and
//! prefixes by longest match, §3.3 of the paper), and the per-PEC forwarding
//! graph over which policies are evaluated (path walks, equal-cost multipath
//! enumeration, loop and black-hole detection).

pub mod fib;
pub mod forwarding;

pub use fib::{Fib, FibEntry, NetworkFib, RouteSource};
pub use forwarding::{ForwardingGraph, PathOutcome};
