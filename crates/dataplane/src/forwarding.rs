//! The per-PEC forwarding graph and path analysis.
//!
//! Once the FIBs for a PEC are assembled, forwarding behavior for that PEC is
//! a graph: each device has zero or more next hops (several with ECMP), is a
//! delivery point, or drops the traffic. Policies are functions over this
//! graph (§3.5), so the walks, loop detection and multipath enumeration here
//! are the substrate every policy is built on.

use crate::fib::NetworkFib;
use plankton_net::ip::Ipv4Addr;
use plankton_net::topology::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// What happens to a packet injected at some device.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PathOutcome {
    /// The packet reaches a delivery point; the path includes both endpoints.
    Delivered {
        /// The nodes traversed, source first, delivery point last.
        path: Vec<NodeId>,
    },
    /// The packet enters a forwarding loop; the path ends with the first
    /// repeated node.
    Loop {
        /// The nodes traversed until the repeat.
        path: Vec<NodeId>,
    },
    /// The packet is dropped (no route, or a null route) before delivery.
    Blackhole {
        /// The nodes traversed until the drop.
        path: Vec<NodeId>,
    },
}

impl PathOutcome {
    /// The traversed path regardless of outcome.
    pub fn path(&self) -> &[NodeId] {
        match self {
            PathOutcome::Delivered { path }
            | PathOutcome::Loop { path }
            | PathOutcome::Blackhole { path } => path,
        }
    }

    /// Was the packet delivered?
    pub fn is_delivered(&self) -> bool {
        matches!(self, PathOutcome::Delivered { .. })
    }

    /// Did the packet loop?
    pub fn is_loop(&self) -> bool {
        matches!(self, PathOutcome::Loop { .. })
    }

    /// Number of hops traversed (edges, not nodes).
    pub fn hop_count(&self) -> usize {
        self.path().len().saturating_sub(1)
    }
}

/// The forwarding graph of one PEC.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ForwardingGraph {
    /// Per device: its next hops for this PEC (empty for delivery points,
    /// drops and routeless devices).
    pub next_hops: Vec<Vec<NodeId>>,
    /// Per device: is traffic delivered here (the device owns a matching
    /// prefix)?
    pub delivers: Vec<bool>,
    /// Per device: does it explicitly discard this PEC's traffic (null route)?
    pub drops: Vec<bool>,
}

impl ForwardingGraph {
    /// An empty graph over `n` devices (everything is a blackhole).
    pub fn new(n: usize) -> Self {
        ForwardingGraph {
            next_hops: vec![Vec::new(); n],
            delivers: vec![false; n],
            drops: vec![false; n],
        }
    }

    /// Build the graph by looking up `addr` in every device's FIB.
    pub fn from_fib(fib: &NetworkFib, addr: Ipv4Addr) -> Self {
        let n = fib.fibs.len();
        let mut graph = ForwardingGraph::new(n);
        for i in 0..n {
            let node = NodeId(i as u32);
            match fib.lookup(node, addr) {
                None => {}
                Some(entry) if entry.drop => graph.drops[i] = true,
                Some(entry) if entry.is_local() => graph.delivers[i] = true,
                Some(entry) => graph.next_hops[i] = entry.next_hops.clone(),
            }
        }
        graph
    }

    /// Number of devices.
    pub fn node_count(&self) -> usize {
        self.next_hops.len()
    }

    /// The devices where traffic is delivered.
    pub fn delivery_points(&self) -> Vec<NodeId> {
        (0..self.node_count())
            .filter(|&i| self.delivers[i])
            .map(|i| NodeId(i as u32))
            .collect()
    }

    /// Walk from `src` following the *first* next hop at every device (the
    /// single-path view used by most policies).
    pub fn walk(&self, src: NodeId) -> PathOutcome {
        let mut path = vec![src];
        let mut seen: HashSet<NodeId> = HashSet::from([src]);
        let mut cur = src;
        loop {
            if self.delivers[cur.index()] {
                return PathOutcome::Delivered { path };
            }
            if self.drops[cur.index()] {
                return PathOutcome::Blackhole { path };
            }
            match self.next_hops[cur.index()].first() {
                None => return PathOutcome::Blackhole { path },
                Some(&next) => {
                    path.push(next);
                    if !seen.insert(next) {
                        return PathOutcome::Loop { path };
                    }
                    cur = next;
                }
            }
        }
    }

    /// Enumerate every multipath branch from `src`, up to `limit` paths.
    pub fn all_paths(&self, src: NodeId, limit: usize) -> Vec<PathOutcome> {
        let mut out = Vec::new();
        let mut stack = vec![(vec![src], HashSet::from([src]))];
        while let Some((path, seen)) = stack.pop() {
            if out.len() >= limit {
                break;
            }
            let cur = *path.last().expect("paths are never empty");
            if self.delivers[cur.index()] {
                out.push(PathOutcome::Delivered { path });
                continue;
            }
            if self.drops[cur.index()] || self.next_hops[cur.index()].is_empty() {
                out.push(PathOutcome::Blackhole { path });
                continue;
            }
            for &next in &self.next_hops[cur.index()] {
                let mut p = path.clone();
                p.push(next);
                if seen.contains(&next) {
                    out.push(PathOutcome::Loop { path: p });
                } else {
                    let mut s = seen.clone();
                    s.insert(next);
                    stack.push((p, s));
                }
            }
        }
        out
    }

    /// Does any forwarding loop exist that is reachable from one of
    /// `sources` (or from anywhere, if `sources` is `None`)? Considers every
    /// ECMP branch.
    pub fn has_loop(&self, sources: Option<&[NodeId]>) -> Option<Vec<NodeId>> {
        let starts: Vec<NodeId> = match sources {
            Some(s) => s.to_vec(),
            None => (0..self.node_count() as u32).map(NodeId).collect(),
        };
        // Reachable subgraph from the starts.
        let mut reachable = vec![false; self.node_count()];
        let mut queue: Vec<NodeId> = Vec::new();
        for s in starts {
            if !reachable[s.index()] {
                reachable[s.index()] = true;
                queue.push(s);
            }
        }
        while let Some(u) = queue.pop() {
            if self.delivers[u.index()] || self.drops[u.index()] {
                continue;
            }
            for &v in &self.next_hops[u.index()] {
                if !reachable[v.index()] {
                    reachable[v.index()] = true;
                    queue.push(v);
                }
            }
        }
        // Cycle detection (iterative DFS with colors) on the reachable part.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color = vec![Color::White; self.node_count()];
        for start in 0..self.node_count() {
            if !reachable[start] || color[start] != Color::White {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            color[start] = Color::Gray;
            let mut trail = vec![NodeId(start as u32)];
            while let Some(&(u, edge)) = stack.last() {
                let hops: &[NodeId] = if self.delivers[u] || self.drops[u] {
                    &[]
                } else {
                    &self.next_hops[u]
                };
                if edge < hops.len() {
                    let v = hops[edge];
                    stack.last_mut().expect("stack is non-empty").1 += 1;
                    match color[v.index()] {
                        Color::Gray => {
                            // Found a cycle: report the trail from v onwards.
                            let pos = trail.iter().position(|&x| x == v).unwrap_or(0);
                            let mut cycle = trail[pos..].to_vec();
                            cycle.push(v);
                            return Some(cycle);
                        }
                        Color::White => {
                            color[v.index()] = Color::Gray;
                            trail.push(v);
                            stack.push((v.index(), 0));
                        }
                        Color::Black => {}
                    }
                } else {
                    color[u] = Color::Black;
                    stack.pop();
                    trail.pop();
                }
            }
        }
        None
    }

    /// The devices whose traffic ends in a blackhole (considering the first
    /// next hop at each step).
    pub fn blackhole_sources(&self) -> Vec<NodeId> {
        (0..self.node_count() as u32)
            .map(NodeId)
            .filter(|&n| matches!(self.walk(n), PathOutcome::Blackhole { .. }))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a small graph by hand: 0 -> 1 -> 2 (delivers), 3 -> 4 (drops),
    /// 5 -> 6 -> 5 (loop), 7 has ECMP {1, 6}.
    fn sample() -> ForwardingGraph {
        let mut g = ForwardingGraph::new(8);
        g.next_hops[0] = vec![NodeId(1)];
        g.next_hops[1] = vec![NodeId(2)];
        g.delivers[2] = true;
        g.next_hops[3] = vec![NodeId(4)];
        g.drops[4] = true;
        g.next_hops[5] = vec![NodeId(6)];
        g.next_hops[6] = vec![NodeId(5)];
        g.next_hops[7] = vec![NodeId(1), NodeId(6)];
        g
    }

    #[test]
    fn walk_outcomes() {
        let g = sample();
        assert!(g.walk(NodeId(0)).is_delivered());
        assert_eq!(g.walk(NodeId(0)).hop_count(), 2);
        assert!(matches!(g.walk(NodeId(3)), PathOutcome::Blackhole { .. }));
        assert!(g.walk(NodeId(5)).is_loop());
        assert!(g.walk(NodeId(2)).is_delivered());
        assert_eq!(g.walk(NodeId(2)).hop_count(), 0);
    }

    #[test]
    fn all_paths_enumerates_ecmp_branches() {
        let g = sample();
        let paths = g.all_paths(NodeId(7), 16);
        assert_eq!(paths.len(), 2);
        assert!(paths.iter().any(|p| p.is_delivered()));
        assert!(paths.iter().any(|p| p.is_loop()));
    }

    #[test]
    fn loop_detection_scoped_by_sources() {
        let g = sample();
        assert!(g.has_loop(None).is_some());
        assert!(g.has_loop(Some(&[NodeId(0)])).is_none());
        assert!(g.has_loop(Some(&[NodeId(5)])).is_some());
        assert!(g.has_loop(Some(&[NodeId(7)])).is_some());
        let cycle = g.has_loop(Some(&[NodeId(5)])).unwrap();
        assert_eq!(cycle.first(), cycle.last());
    }

    #[test]
    fn blackhole_sources_found() {
        let g = sample();
        let sinks = g.blackhole_sources();
        assert!(sinks.contains(&NodeId(3)));
        assert!(sinks.contains(&NodeId(4)));
        assert!(!sinks.contains(&NodeId(0)));
    }

    #[test]
    fn from_fib_builds_graph() {
        use crate::fib::{FibEntry, NetworkFib, RouteSource};
        let p = "10.0.0.0/24".parse().unwrap();
        let mut fib = NetworkFib::new(3);
        fib.fib_mut(NodeId(0))
            .add(FibEntry::via(p, vec![NodeId(1)], RouteSource::Ospf));
        fib.fib_mut(NodeId(1))
            .add(FibEntry::local(p, RouteSource::Connected));
        fib.fib_mut(NodeId(2)).add(FibEntry::null(p));
        let g = ForwardingGraph::from_fib(&fib, Ipv4Addr::new(10, 0, 0, 1));
        assert!(g.walk(NodeId(0)).is_delivered());
        assert!(g.delivers[1]);
        assert!(g.drops[2]);
        assert_eq!(g.delivery_points(), vec![NodeId(1)]);
    }

    #[test]
    fn empty_graph_is_all_blackholes() {
        let g = ForwardingGraph::new(4);
        assert_eq!(g.blackhole_sources().len(), 4);
        assert!(g.has_loop(None).is_none());
        assert!(g.delivery_points().is_empty());
    }
}
