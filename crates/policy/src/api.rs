//! The policy trait and the converged-state view handed to policies.

use plankton_dataplane::ForwardingGraph;
use plankton_net::topology::NodeId;
use plankton_pec::Pec;
use plankton_protocols::Route;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The verdict of a policy on one converged data plane.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyResult {
    /// The policy holds for this converged state.
    Holds,
    /// The policy is violated; the string is a human-readable reason included
    /// in the verification report next to the execution trail.
    Violated(String),
}

impl PolicyResult {
    /// Did the policy hold?
    pub fn holds(&self) -> bool {
        matches!(self, PolicyResult::Holds)
    }

    /// Construct a violation with a formatted reason.
    pub fn violated(reason: impl Into<String>) -> Self {
        PolicyResult::Violated(reason.into())
    }
}

impl fmt::Display for PolicyResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyResult::Holds => write!(f, "holds"),
            PolicyResult::Violated(reason) => write!(f, "violated: {reason}"),
        }
    }
}

/// Everything a policy callback can inspect about one converged state of one
/// PEC: the forwarding graph (data plane), the PEC's definition, and the
/// converged control-plane routes (needed by control-plane policies such as
/// Path Consistency).
pub struct ConvergedView<'a> {
    /// The PEC being checked.
    pub pec: &'a Pec,
    /// The combined data plane for the PEC.
    pub forwarding: &'a ForwardingGraph,
    /// The converged control-plane route selected by each device for the
    /// PEC's most specific prefix (`None` for devices with no route).
    pub control_routes: &'a [Option<Route>],
}

impl<'a> ConvergedView<'a> {
    /// All devices in the network.
    pub fn all_nodes(&self) -> Vec<NodeId> {
        (0..self.forwarding.node_count() as u32)
            .map(NodeId)
            .collect()
    }
}

/// A verification policy.
pub trait Policy: Sync {
    /// A short name for reports ("reachability", "loop-freedom", ...).
    fn name(&self) -> &str;

    /// The source nodes this policy cares about. `None` means every node is a
    /// potential source, which disables policy-based pruning (§4.2) — e.g.
    /// loop freedom must consider all sources.
    fn sources(&self) -> Option<Vec<NodeId>> {
        None
    }

    /// Nodes whose position on the path matters to the policy (§3.5), e.g.
    /// the firewalls of a waypoint policy. Used by the failure-equivalence
    /// optimization to keep them in dedicated device equivalence classes.
    fn interesting_nodes(&self) -> Option<Vec<NodeId>> {
        None
    }

    /// Check the policy against one converged data plane.
    fn check(&self, view: &ConvergedView<'_>) -> PolicyResult;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_result_helpers() {
        assert!(PolicyResult::Holds.holds());
        let v = PolicyResult::violated("path missed the firewall");
        assert!(!v.holds());
        assert!(v.to_string().contains("firewall"));
        assert_eq!(PolicyResult::Holds.to_string(), "holds");
    }
}
