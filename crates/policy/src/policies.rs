//! The built-in policies listed in §3.5 of the paper.

use crate::api::{ConvergedView, Policy, PolicyResult};
use plankton_net::topology::NodeId;

/// Maximum number of multipath branches a policy enumerates per source.
const MULTIPATH_LIMIT: usize = 256;

/// Reachability: traffic injected at every source must be delivered.
#[derive(Clone, Debug)]
pub struct Reachability {
    /// The sources that must be able to reach the destination PEC.
    pub sources: Vec<NodeId>,
}

impl Reachability {
    /// Reachability from the given sources.
    pub fn new(sources: Vec<NodeId>) -> Self {
        Reachability { sources }
    }
}

impl Policy for Reachability {
    fn name(&self) -> &str {
        "reachability"
    }

    fn sources(&self) -> Option<Vec<NodeId>> {
        Some(self.sources.clone())
    }

    fn check(&self, view: &ConvergedView<'_>) -> PolicyResult {
        for &src in &self.sources {
            let outcome = view.forwarding.walk(src);
            if !outcome.is_delivered() {
                return PolicyResult::violated(format!(
                    "traffic from {src} for {} is not delivered (path {:?})",
                    view.pec.range,
                    outcome.path()
                ));
            }
        }
        PolicyResult::Holds
    }
}

/// Waypointing: traffic from the sources must pass through one of the
/// waypoints before being delivered.
#[derive(Clone, Debug)]
pub struct Waypoint {
    /// The sources whose traffic is constrained.
    pub sources: Vec<NodeId>,
    /// The acceptable waypoints (e.g. firewalls).
    pub waypoints: Vec<NodeId>,
}

impl Waypoint {
    /// A waypoint policy.
    pub fn new(sources: Vec<NodeId>, waypoints: Vec<NodeId>) -> Self {
        Waypoint { sources, waypoints }
    }
}

impl Policy for Waypoint {
    fn name(&self) -> &str {
        "waypoint"
    }

    fn sources(&self) -> Option<Vec<NodeId>> {
        Some(self.sources.clone())
    }

    fn interesting_nodes(&self) -> Option<Vec<NodeId>> {
        Some(self.waypoints.clone())
    }

    fn check(&self, view: &ConvergedView<'_>) -> PolicyResult {
        for &src in &self.sources {
            for outcome in view.forwarding.all_paths(src, MULTIPATH_LIMIT) {
                if !outcome.is_delivered() {
                    // Undelivered traffic is not this policy's concern.
                    continue;
                }
                let transit = &outcome.path()[..outcome.path().len()];
                if !transit.iter().any(|n| self.waypoints.contains(n)) {
                    return PolicyResult::violated(format!(
                        "path {:?} from {src} bypasses every waypoint",
                        outcome.path()
                    ));
                }
            }
        }
        PolicyResult::Holds
    }
}

/// Loop freedom: no forwarding loop may be reachable from any source
/// (from anywhere, if no sources are given — the paper notes this policy
/// cannot prune aggressively because it must consider all sources).
#[derive(Clone, Debug, Default)]
pub struct LoopFreedom {
    /// Optional restriction of the traffic entry points.
    pub sources: Option<Vec<NodeId>>,
}

impl LoopFreedom {
    /// Loop freedom over the whole network.
    pub fn everywhere() -> Self {
        LoopFreedom { sources: None }
    }
}

impl Policy for LoopFreedom {
    fn name(&self) -> &str {
        "loop-freedom"
    }

    fn sources(&self) -> Option<Vec<NodeId>> {
        self.sources.clone()
    }

    fn check(&self, view: &ConvergedView<'_>) -> PolicyResult {
        match view.forwarding.has_loop(self.sources.as_deref()) {
            None => PolicyResult::Holds,
            Some(cycle) => PolicyResult::violated(format!(
                "forwarding loop {:?} for {}",
                cycle, view.pec.range
            )),
        }
    }
}

/// Black-hole freedom: traffic from the sources must never be silently
/// dropped (it must either be delivered or explicitly rejected by a null
/// route — the strict variant also forbids null routes).
#[derive(Clone, Debug, Default)]
pub struct BlackholeFreedom {
    /// Optional restriction of the traffic entry points (`None` = every
    /// device that has a route for the PEC).
    pub sources: Option<Vec<NodeId>>,
}

impl Policy for BlackholeFreedom {
    fn name(&self) -> &str {
        "blackhole-freedom"
    }

    fn sources(&self) -> Option<Vec<NodeId>> {
        self.sources.clone()
    }

    fn check(&self, view: &ConvergedView<'_>) -> PolicyResult {
        let sources: Vec<NodeId> = match &self.sources {
            Some(s) => s.clone(),
            None => view
                .all_nodes()
                .into_iter()
                .filter(|n| {
                    // Only nodes that participate in this PEC at all.
                    !view.forwarding.next_hops[n.index()].is_empty()
                        || view.forwarding.delivers[n.index()]
                })
                .collect(),
        };
        for src in sources {
            let outcome = view.forwarding.walk(src);
            if let plankton_dataplane::PathOutcome::Blackhole { path } = &outcome {
                return PolicyResult::violated(format!(
                    "traffic from {src} is blackholed at {:?}",
                    path.last().expect("paths are never empty")
                ));
            }
        }
        PolicyResult::Holds
    }
}

/// Bounded path length: delivered traffic from the sources must take at most
/// `max_hops` hops.
#[derive(Clone, Debug)]
pub struct BoundedPathLength {
    /// The sources whose paths are measured.
    pub sources: Vec<NodeId>,
    /// Maximum allowed number of hops.
    pub max_hops: usize,
}

impl BoundedPathLength {
    /// A bounded-path-length policy.
    pub fn new(sources: Vec<NodeId>, max_hops: usize) -> Self {
        BoundedPathLength { sources, max_hops }
    }
}

impl Policy for BoundedPathLength {
    fn name(&self) -> &str {
        "bounded-path-length"
    }

    fn sources(&self) -> Option<Vec<NodeId>> {
        Some(self.sources.clone())
    }

    fn check(&self, view: &ConvergedView<'_>) -> PolicyResult {
        for &src in &self.sources {
            for outcome in view.forwarding.all_paths(src, MULTIPATH_LIMIT) {
                if outcome.is_delivered() && outcome.hop_count() > self.max_hops {
                    return PolicyResult::violated(format!(
                        "path {:?} from {src} has {} hops (> {})",
                        outcome.path(),
                        outcome.hop_count(),
                        self.max_hops
                    ));
                }
            }
        }
        PolicyResult::Holds
    }
}

/// Multipath consistency: for every source, either all its equal-cost paths
/// deliver the traffic or none does (no partial delivery depending on the
/// hash bucket) — the definition used by Minesweeper and adopted in the
/// paper's evaluation.
#[derive(Clone, Debug, Default)]
pub struct MultipathConsistency {
    /// Optional restriction of the traffic entry points.
    pub sources: Option<Vec<NodeId>>,
}

impl Policy for MultipathConsistency {
    fn name(&self) -> &str {
        "multipath-consistency"
    }

    fn sources(&self) -> Option<Vec<NodeId>> {
        self.sources.clone()
    }

    fn check(&self, view: &ConvergedView<'_>) -> PolicyResult {
        let sources = match &self.sources {
            Some(s) => s.clone(),
            None => view.all_nodes(),
        };
        for src in sources {
            let outcomes = view.forwarding.all_paths(src, MULTIPATH_LIMIT);
            if outcomes.is_empty() {
                continue;
            }
            let delivered = outcomes.iter().filter(|o| o.is_delivered()).count();
            if delivered != 0 && delivered != outcomes.len() {
                return PolicyResult::violated(format!(
                    "{src} delivers on {delivered}/{} of its equal-cost paths",
                    outcomes.len()
                ));
            }
        }
        PolicyResult::Holds
    }
}

/// Path consistency: a set of devices must have identical behavior in the
/// converged state — the same control-plane selection (hop count towards the
/// destination) and data-plane paths of the same length with the same
/// outcome. This is the control-plane policy the paper implements as a
/// representative of class (i) in §3.5 (similar to Minesweeper's Local
/// Equivalence).
#[derive(Clone, Debug)]
pub struct PathConsistency {
    /// The devices whose behavior must be identical.
    pub devices: Vec<NodeId>,
}

impl PathConsistency {
    /// A path-consistency policy over the given devices.
    pub fn new(devices: Vec<NodeId>) -> Self {
        PathConsistency { devices }
    }
}

impl Policy for PathConsistency {
    fn name(&self) -> &str {
        "path-consistency"
    }

    fn sources(&self) -> Option<Vec<NodeId>> {
        Some(self.devices.clone())
    }

    fn check(&self, view: &ConvergedView<'_>) -> PolicyResult {
        let mut reference: Option<(bool, usize, Option<usize>)> = None;
        for &d in &self.devices {
            let outcome = view.forwarding.walk(d);
            let control_hops = view.control_routes[d.index()]
                .as_ref()
                .map(|r| r.hop_count());
            let signature = (outcome.is_delivered(), outcome.hop_count(), control_hops);
            match &reference {
                None => reference = Some(signature),
                Some(r) if *r != signature => {
                    return PolicyResult::violated(format!(
                        "{d} behaves differently from {}: {:?} vs {:?}",
                        self.devices[0], signature, r
                    ));
                }
                Some(_) => {}
            }
        }
        PolicyResult::Holds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plankton_dataplane::ForwardingGraph;
    use plankton_net::ip::{IpRange, Ipv4Addr};
    use plankton_pec::{Pec, PecId};
    use plankton_protocols::Route;

    fn pec() -> Pec {
        Pec {
            id: PecId(0),
            range: IpRange::new(Ipv4Addr::new(10, 0, 0, 0), Ipv4Addr::new(10, 0, 0, 255)),
            prefixes: vec![],
        }
    }

    /// 0 -> 1 -> 2 (delivers); 3 -> 4 (blackhole); 5 <-> 6 loop;
    /// 7 has ECMP to {1, 4}.
    fn graph() -> ForwardingGraph {
        let mut g = ForwardingGraph::new(8);
        g.next_hops[0] = vec![NodeId(1)];
        g.next_hops[1] = vec![NodeId(2)];
        g.delivers[2] = true;
        g.next_hops[3] = vec![NodeId(4)];
        g.next_hops[5] = vec![NodeId(6)];
        g.next_hops[6] = vec![NodeId(5)];
        g.next_hops[7] = vec![NodeId(1), NodeId(4)];
        g
    }

    fn routes() -> Vec<Option<Route>> {
        let p = "10.0.0.0/24".parse().unwrap();
        let origin = Route::originated(p);
        let r1 = origin.extended_through(NodeId(2));
        let r0 = r1.extended_through(NodeId(1));
        vec![
            Some(r0),
            Some(r1),
            Some(origin),
            None,
            None,
            None,
            None,
            None,
        ]
    }

    fn view<'a>(
        pec: &'a Pec,
        g: &'a ForwardingGraph,
        routes: &'a [Option<Route>],
    ) -> ConvergedView<'a> {
        ConvergedView {
            pec,
            forwarding: g,
            control_routes: routes,
        }
    }

    #[test]
    fn reachability_policy() {
        let (p, g, r) = (pec(), graph(), routes());
        let v = view(&p, &g, &r);
        assert!(Reachability::new(vec![NodeId(0), NodeId(1)])
            .check(&v)
            .holds());
        assert!(!Reachability::new(vec![NodeId(3)]).check(&v).holds());
        assert!(!Reachability::new(vec![NodeId(5)]).check(&v).holds());
        assert_eq!(
            Reachability::new(vec![NodeId(0)]).sources(),
            Some(vec![NodeId(0)])
        );
    }

    #[test]
    fn waypoint_policy() {
        let (p, g, r) = (pec(), graph(), routes());
        let v = view(&p, &g, &r);
        // Path 0 -> 1 -> 2 passes through 1.
        assert!(Waypoint::new(vec![NodeId(0)], vec![NodeId(1)])
            .check(&v)
            .holds());
        // But not through 6.
        assert!(!Waypoint::new(vec![NodeId(0)], vec![NodeId(6)])
            .check(&v)
            .holds());
        // Undelivered traffic doesn't trigger the waypoint policy.
        assert!(Waypoint::new(vec![NodeId(3)], vec![NodeId(6)])
            .check(&v)
            .holds());
        assert!(Waypoint::new(vec![NodeId(0)], vec![NodeId(1)])
            .interesting_nodes()
            .is_some());
    }

    #[test]
    fn loop_freedom_policy() {
        let (p, g, r) = (pec(), graph(), routes());
        let v = view(&p, &g, &r);
        assert!(!LoopFreedom::everywhere().check(&v).holds());
        assert!(LoopFreedom {
            sources: Some(vec![NodeId(0)])
        }
        .check(&v)
        .holds());
        assert!(!LoopFreedom {
            sources: Some(vec![NodeId(5)])
        }
        .check(&v)
        .holds());
        assert!(LoopFreedom::everywhere().sources().is_none());
    }

    #[test]
    fn blackhole_policy() {
        let (p, g, r) = (pec(), graph(), routes());
        let v = view(&p, &g, &r);
        assert!(!BlackholeFreedom::default().check(&v).holds());
        assert!(BlackholeFreedom {
            sources: Some(vec![NodeId(0)])
        }
        .check(&v)
        .holds());
        assert!(!BlackholeFreedom {
            sources: Some(vec![NodeId(3)])
        }
        .check(&v)
        .holds());
    }

    #[test]
    fn bounded_path_length_policy() {
        let (p, g, r) = (pec(), graph(), routes());
        let v = view(&p, &g, &r);
        assert!(BoundedPathLength::new(vec![NodeId(0)], 2).check(&v).holds());
        assert!(!BoundedPathLength::new(vec![NodeId(0)], 1).check(&v).holds());
        // Blackholed traffic is not measured.
        assert!(BoundedPathLength::new(vec![NodeId(3)], 0).check(&v).holds());
    }

    #[test]
    fn multipath_consistency_policy() {
        let (p, g, r) = (pec(), graph(), routes());
        let v = view(&p, &g, &r);
        // Node 7 delivers on one branch and blackholes on the other.
        assert!(!MultipathConsistency::default().check(&v).holds());
        assert!(MultipathConsistency {
            sources: Some(vec![NodeId(0)])
        }
        .check(&v)
        .holds());
        assert!(!MultipathConsistency {
            sources: Some(vec![NodeId(7)])
        }
        .check(&v)
        .holds());
    }

    #[test]
    fn path_consistency_policy() {
        let (p, g, r) = (pec(), graph(), routes());
        let v = view(&p, &g, &r);
        // 0 and 1 both deliver but at different distances: inconsistent.
        assert!(!PathConsistency::new(vec![NodeId(0), NodeId(1)])
            .check(&v)
            .holds());
        // A device is always consistent with itself.
        assert!(PathConsistency::new(vec![NodeId(0), NodeId(0)])
            .check(&v)
            .holds());
        // 3 and 5 both fail to deliver with hop counts 1 — but control-plane
        // state is also None for both, so they are considered equivalent.
        assert!(PathConsistency::new(vec![NodeId(5), NodeId(6)])
            .check(&v)
            .holds());
    }
}
