//! # plankton-policy
//!
//! The policy API (§3.5 of the paper) and the built-in policies.
//!
//! A policy is "an arbitrary function computed over a data plane state and
//! returning a Boolean value": the verifier invokes [`Policy::check`] on
//! every converged data plane it generates for a PEC, passing a
//! [`ConvergedView`] with the forwarding graph, the PEC being checked and the
//! converged control-plane routes. Policies may additionally declare *source
//! nodes* and *interesting nodes*, which the verifier uses for policy-based
//! pruning and converged-state equivalence suppression (§4.2, §4.3).
//!
//! Built-in policies (the set listed in the paper): [`Reachability`],
//! [`Waypoint`], [`LoopFreedom`], [`BlackholeFreedom`], [`BoundedPathLength`],
//! [`MultipathConsistency`] and [`PathConsistency`].

pub mod api;
pub mod policies;

pub use api::{ConvergedView, Policy, PolicyResult};
pub use policies::{
    BlackholeFreedom, BoundedPathLength, LoopFreedom, MultipathConsistency, PathConsistency,
    Reachability, Waypoint,
};
