//! Readiness-driven I/O for the Unix-socket server, with no external
//! crates.
//!
//! The previous accept loop was `O(connections)` per tick: every connection
//! owned a thread (bounded by `--threads`-ish `max_connections`), and the
//! listener round-robined nonblocking accepts with a sleep. That caps
//! concurrent clients at the thread budget and burns a wakeup per idle
//! connection. This module provides the one primitive the rewrite needs — a
//! [`Poller`] multiplexing *readable* readiness over an arbitrary number of
//! fds — so `serve_unix` can keep thousands of idle connections parked for
//! free and hand only *ready* ones to a small worker pool.
//!
//! On Linux this is epoll, reached through `extern "C"` declarations
//! against symbols the already-linked C runtime exports (the workspace
//! vendors no libc crate; adding dependencies is off the table). Connection
//! fds are registered `EPOLLONESHOT` so exactly one worker owns a readable
//! connection until it re-arms it — no herd, no double-read. Other unixes
//! get a `poll(2)` fallback with the same surface.
//!
//! Tokens are caller-chosen `u64`s carried in the kernel event payload;
//! [`TOKEN_LISTENER`] and [`TOKEN_WAKE`] are reserved by convention, and the
//! wake channel (a socketpair the poller owns) lets any thread kick
//! [`Poller::wait`] out of its block — used for shutdown.

use std::io::{self, Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Token conventionally used for the accept listener (level-triggered).
pub const TOKEN_LISTENER: u64 = 0;
/// Token reserved for the poller's internal wake channel.
pub const TOKEN_WAKE: u64 = 1;
/// First token free for connection fds.
pub const TOKEN_FIRST_CONN: u64 = 2;

/// One readiness event: which registration fired, and whether the peer has
/// hung up (best-effort; a read returning 0 is still the authoritative EOF).
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The peer closed (HUP/ERR); the fd should be drained and dropped.
    pub closed: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    // x86-64's epoll_event layout is packed (no padding between the 32-bit
    // mask and the 64-bit payload); other architectures use natural C
    // alignment.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }
    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLONESHOT: u32 = 1 << 30;

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn close(fd: i32) -> i32;
    }
}

/// Readiness multiplexer over raw fds. See the module docs.
pub struct Poller {
    #[cfg(target_os = "linux")]
    epfd: RawFd,
    /// `poll(2)` fallback registry: fd -> (token, oneshot, armed).
    #[cfg(not(target_os = "linux"))]
    registry: std::sync::Mutex<std::collections::BTreeMap<RawFd, (u64, bool, bool)>>,
    wake_rx: UnixStream,
    wake_tx: UnixStream,
}

impl Poller {
    /// A poller with its wake channel registered under [`TOKEN_WAKE`].
    pub fn new() -> io::Result<Poller> {
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        #[cfg(target_os = "linux")]
        {
            let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            let poller = Poller {
                epfd,
                wake_rx,
                wake_tx,
            };
            poller.add(poller.wake_rx.as_raw_fd(), TOKEN_WAKE, false)?;
            Ok(poller)
        }
        #[cfg(not(target_os = "linux"))]
        {
            let poller = Poller {
                registry: std::sync::Mutex::new(std::collections::BTreeMap::new()),
                wake_rx,
                wake_tx,
            };
            poller.add(poller.wake_rx.as_raw_fd(), TOKEN_WAKE, false)?;
            Ok(poller)
        }
    }

    /// Register an fd for readable readiness under `token`. With `oneshot`,
    /// the registration disarms after one event until [`Poller::rearm`] —
    /// exactly one worker owns a ready connection at a time.
    pub fn add(&self, fd: RawFd, token: u64, oneshot: bool) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            let mut event = sys::EpollEvent {
                events: sys::EPOLLIN
                    | sys::EPOLLRDHUP
                    | if oneshot { sys::EPOLLONESHOT } else { 0 },
                data: token,
            };
            if unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_ADD, fd, &mut event) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }
        #[cfg(not(target_os = "linux"))]
        {
            self.registry
                .lock()
                .unwrap()
                .insert(fd, (token, oneshot, true));
            Ok(())
        }
    }

    /// Re-arm a oneshot registration after the owning worker is done with
    /// the fd.
    pub fn rearm(&self, fd: RawFd, token: u64) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            let mut event = sys::EpollEvent {
                events: sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLONESHOT,
                data: token,
            };
            if unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_MOD, fd, &mut event) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }
        #[cfg(not(target_os = "linux"))]
        {
            if let Some(entry) = self.registry.lock().unwrap().get_mut(&fd) {
                *entry = (token, true, true);
            }
            Ok(())
        }
    }

    /// Remove an fd (close it *after* deleting, never before).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            let mut event = sys::EpollEvent { events: 0, data: 0 };
            if unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, &mut event) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }
        #[cfg(not(target_os = "linux"))]
        {
            self.registry.lock().unwrap().remove(&fd);
            Ok(())
        }
    }

    /// Kick a blocked [`Poller::wait`] from any thread.
    pub fn wake(&self) {
        let _ = (&self.wake_tx).write(&[1]);
    }

    /// Block until something is readable (or `timeout`), appending events to
    /// `events` (cleared first). Wake-channel traffic is drained internally:
    /// a wake returns with zero events so the caller re-checks its own
    /// state. EINTR retries.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        #[cfg(target_os = "linux")]
        {
            const CAPACITY: usize = 64;
            let mut buffer = [sys::EpollEvent { events: 0, data: 0 }; CAPACITY];
            let timeout_ms = timeout
                .map(|t| i32::try_from(t.as_millis()).unwrap_or(i32::MAX).max(1))
                .unwrap_or(-1);
            let n = loop {
                let n = unsafe {
                    sys::epoll_wait(self.epfd, buffer.as_mut_ptr(), CAPACITY as i32, timeout_ms)
                };
                if n >= 0 {
                    break n as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for event in &buffer[..n] {
                // Copy out of the (possibly packed) struct before use.
                let token = event.data;
                let mask = event.events;
                if token == TOKEN_WAKE {
                    self.drain_wake();
                    continue;
                }
                events.push(Event {
                    token,
                    closed: mask & (sys::EPOLLHUP | sys::EPOLLERR | sys::EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
        #[cfg(not(target_os = "linux"))]
        {
            #[repr(C)]
            struct PollFd {
                fd: i32,
                events: i16,
                revents: i16,
            }
            extern "C" {
                fn poll(fds: *mut PollFd, nfds: u32, timeout: i32) -> i32;
            }
            const POLLIN: i16 = 0x001;
            const POLLERR: i16 = 0x008;
            const POLLHUP: i16 = 0x010;
            let (mut fds, tokens): (Vec<PollFd>, Vec<u64>) = {
                let registry = self.registry.lock().unwrap();
                registry
                    .iter()
                    .filter(|(_, (_, _, armed))| *armed)
                    .map(|(fd, (token, _, _))| {
                        (
                            PollFd {
                                fd: *fd,
                                events: POLLIN,
                                revents: 0,
                            },
                            *token,
                        )
                    })
                    .unzip()
            };
            let timeout_ms = timeout
                .map(|t| i32::try_from(t.as_millis()).unwrap_or(i32::MAX).max(1))
                .unwrap_or(-1);
            let n = loop {
                let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u32, timeout_ms) };
                if n >= 0 {
                    break n;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            if n == 0 {
                return Ok(());
            }
            for (pollfd, token) in fds.iter().zip(tokens) {
                if pollfd.revents == 0 {
                    continue;
                }
                if token == TOKEN_WAKE {
                    self.drain_wake();
                    continue;
                }
                let mut registry = self.registry.lock().unwrap();
                if let Some((_, oneshot, armed)) = registry.get_mut(&pollfd.fd) {
                    if *oneshot {
                        *armed = false;
                    }
                }
                drop(registry);
                events.push(Event {
                    token,
                    closed: pollfd.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    fn drain_wake(&self) {
        let mut sink = [0u8; 64];
        while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
    }
}

#[cfg(target_os = "linux")]
impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { sys::close(self.epfd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::unix::net::{UnixListener, UnixStream};

    #[test]
    fn wake_unblocks_wait_with_no_events() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::clone(&poller);
        let kicker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.wake();
        });
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.is_empty());
        kicker.join().unwrap();
    }

    #[test]
    fn listener_readiness_fires_on_connect_and_oneshot_conn_needs_rearm() {
        let dir = std::env::temp_dir().join(format!("plankton-poller-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("poller.sock");
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path).unwrap();
        let poller = Poller::new().unwrap();
        poller
            .add(listener.as_raw_fd(), TOKEN_LISTENER, false)
            .unwrap();

        let mut client = UnixStream::connect(&path).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == TOKEN_LISTENER));

        let (conn, _) = listener.accept().unwrap();
        poller
            .add(conn.as_raw_fd(), TOKEN_FIRST_CONN, true)
            .unwrap();
        client.write_all(b"one\n").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == TOKEN_FIRST_CONN));

        // Oneshot: without a re-arm, more client bytes do not fire again.
        client.write_all(b"two\n").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(!events.iter().any(|e| e.token == TOKEN_FIRST_CONN));

        poller.rearm(conn.as_raw_fd(), TOKEN_FIRST_CONN).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == TOKEN_FIRST_CONN));

        poller.delete(conn.as_raw_fd()).unwrap();
        drop(conn);
        drop(client);
        let _ = std::fs::remove_file(&path);
    }
}
