//! # plankton-service
//!
//! The incremental verification service: a long-running daemon that accepts
//! a network once, then serves a stream of requests — `Verify`,
//! `ApplyDelta` (link up/down, link-cost change, static-route add/remove,
//! BGP policy edit, node add/remove), `Query` (per-PEC/per-policy results,
//! counterexample trails) and `Stats` — over newline-delimited JSON on
//! stdin/stdout or a Unix socket (`planktond`, with `planktonctl` as the
//! matching client).
//!
//! Real operators re-verify after every small change; re-running Plankton
//! from scratch each time throws away almost all of the previous run. The
//! service instead keeps a content-addressed result cache
//! ([`plankton_core::ResultCache`]): each (PEC × failure-scenario) task is
//! keyed by a hash of everything it reads (PEC content, protocol network
//! slices, policy/options, failure set, and — recursively — its dependency
//! PECs' keys), a delta rebuilds only the cheap analysis layers, and the
//! next verification re-submits *only* the dirtied tasks to the
//! work-stealing engine while clean results are served from the cache. The
//! merged report is identical to a from-scratch verification of the
//! post-delta network.

pub mod proto;
pub mod queue;
#[cfg(unix)]
pub mod readiness;
pub mod serve;
pub mod session;

pub use proto::{
    error_kind, DeltaAck, DeltaAckMode, DeltaSummary, DumpEvent, LagSummary, PolicySpec, Query,
    ReportSummary, Request, Response, ServiceStats, TaskCostSummary, VerifyOptions,
    ViolationSummary, PROTO_FEATURES, PROTO_VERSION, PROTO_VERSION_MAJOR,
};
pub use queue::{
    coalesce_batch, BatchFate, CoalescedBatch, Coalescer, DeltaQueue, LagSnapshot, PushError,
    QueueCounters,
};
#[cfg(unix)]
pub use serve::{connect_with_retry, serve_unix};
pub use serve::{handle_line, handle_line_at, serve, ServeOptions};
pub use session::{ServiceSession, StreamingHandle};
