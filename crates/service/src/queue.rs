//! The streaming delta queue: batching, coalescing, backpressure and the
//! bounded-lag drain contract.
//!
//! Production routers emit updates far faster than one verification per
//! update can absorb (ROADMAP item 2). The [`DeltaQueue`] decouples
//! ingestion from verification: `ApplyDeltas {ack: "enqueued"}` appends to
//! the queue and returns immediately; a background drain
//! ([`crate::StreamingHandle`]) takes whole batches and applies them in one
//! analysis rebuild ([`plankton_core::IncrementalVerifier::apply_deltas`]).
//!
//! # Coalescing
//!
//! While deltas wait, redundant ones collapse ([`Coalescer`]):
//!
//! * `LinkDown` / `LinkUp` on one link, and `OspfCostChange` on one
//!   (device, link): **last writer wins** — the earlier queued delta is
//!   replaced in place.
//! * `BgpPolicyEdit` on one (device, peer) session: **field-merged** — a
//!   later edit's `Some` fields win, its `None` fields keep the earlier
//!   edit's values (matching `apply`'s only-`Some`-overwrites semantics).
//! * `StaticRouteRemove (device, prefix)` **cancels** every pending
//!   `StaticRouteAdd`/`StaticRouteRemove` for the same slot (`apply`
//!   removes *all* routes for the prefix, so intermediate adds are
//!   invisible in the final state). `StaticRouteAdd`s never coalesce with
//!   each other: the device's route table is an ordered, duplicate-keeping
//!   `Vec` and replay must preserve it exactly.
//! * `NodeAdd` / `NodeRemove` are structural **barriers**: they seal every
//!   open slot, so nothing coalesces across them.
//!
//! Coalescing is *final-state* equivalence: replaying the coalesced batch
//! through one [`apply_deltas`](plankton_core::IncrementalVerifier::apply_deltas)
//! call yields a network byte-identical to sequential one-at-a-time replay
//! of the raw stream. A coalesced pair like `[Down, Up]` can leave a no-op
//! residue (`Up` on an already-up link); batch apply skips such errors
//! per-delta exactly as sequential replay would have (the delta layer
//! guarantees an errored apply leaves the network unchanged).
//!
//! # Lag contract and backpressure
//!
//! The drain thread wakes when `pending >= max_lag_deltas` or the oldest
//! pending delta is older than `max_lag_ms` (coalesced survivors keep the
//! *earliest* enqueue time of anything folded into them, so coalescing can
//! never hide age). Above `max_pending_deltas` the queue sheds new deltas
//! with the PR 7 `overloaded + retry_after_ms` contract instead of growing
//! unboundedly.

use plankton_config::ConfigDelta;
use plankton_net::ip::Prefix;
use plankton_net::topology::{LinkId, NodeId};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Where a delta lands in the coalescing map: one slot per independently
/// updatable piece of network state.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum SlotKey {
    /// Administrative link state (`LinkDown` / `LinkUp`).
    Link(LinkId),
    /// One device's OSPF cost on one link.
    OspfCost(NodeId, LinkId),
    /// One device's static routes for one prefix.
    StaticRoute(NodeId, Prefix),
    /// One BGP session's policy.
    Bgp(NodeId, NodeId),
}

fn slot_key(delta: &ConfigDelta) -> Option<SlotKey> {
    match delta {
        ConfigDelta::LinkDown { link } | ConfigDelta::LinkUp { link } => Some(SlotKey::Link(*link)),
        ConfigDelta::OspfCostChange { device, link, .. } => Some(SlotKey::OspfCost(*device, *link)),
        ConfigDelta::StaticRouteAdd { device, route } => {
            Some(SlotKey::StaticRoute(*device, route.prefix))
        }
        ConfigDelta::StaticRouteRemove { device, prefix } => {
            Some(SlotKey::StaticRoute(*device, *prefix))
        }
        ConfigDelta::BgpPolicyEdit { device, peer, .. } => Some(SlotKey::Bgp(*device, *peer)),
        // Structural deltas have no slot: they are coalescing barriers.
        ConfigDelta::NodeAdd { .. } | ConfigDelta::NodeRemove { .. } => None,
    }
}

/// A delta waiting in the queue (or surviving coalescing inside a
/// [`Coalescer`]). Tombstoned entries keep their position but are skipped
/// when the batch is taken.
struct Pending {
    delta: ConfigDelta,
    /// When the *earliest* delta folded into this entry was enqueued — lag
    /// accounting stays conservative under coalescing.
    enqueued: Instant,
    dead: bool,
}

/// What happens to slots when a delta enters a [`Coalescer`].
enum SlotState {
    /// Single-survivor slots (link, OSPF cost, BGP): index of the live entry.
    One(usize),
    /// Static-route slots: indices of every live add/remove, in order.
    Routes(Vec<usize>),
}

/// The pure coalescing engine: an ordered list of entries plus the open-slot
/// map. Shared by the live [`DeltaQueue`] and the synchronous
/// `ApplyDeltas {ack: "verified"}` path (which coalesces a request's batch
/// without queueing it).
#[derive(Default)]
pub struct Coalescer {
    entries: Vec<Pending>,
    slots: BTreeMap<SlotKey, SlotState>,
    live: usize,
    coalesced: u64,
}

impl Coalescer {
    /// Fold one delta in. Returns the entry index the delta's effect landed
    /// in and how many previously pending deltas this push coalesced away
    /// (0 for a plain append).
    pub fn push(&mut self, delta: ConfigDelta, enqueued: Instant) -> (usize, u64) {
        let before = self.coalesced;
        let entry = match slot_key(&delta) {
            None => {
                // Structural barrier: seal every open slot.
                self.slots.clear();
                self.append(delta, enqueued, None)
            }
            Some(key @ SlotKey::Link(_)) | Some(key @ SlotKey::OspfCost(..)) => {
                match self.slots.get(&key) {
                    Some(SlotState::One(index)) => {
                        let index = *index;
                        self.replace(index, delta);
                        index
                    }
                    _ => self.append(delta, enqueued, Some((key, false))),
                }
            }
            Some(key @ SlotKey::Bgp(..)) => match self.slots.get(&key) {
                Some(SlotState::One(index)) => {
                    let index = *index;
                    self.merge_bgp(index, delta);
                    index
                }
                _ => self.append(delta, enqueued, Some((key, false))),
            },
            Some(key @ SlotKey::StaticRoute(..)) => {
                let removes = matches!(delta, ConfigDelta::StaticRouteRemove { .. });
                if removes {
                    // Remove wipes every route for the prefix: pending adds
                    // and removes in this slot are invisible in the final
                    // state. Tombstone them, keeping the earliest age.
                    let mut earliest = enqueued;
                    if let Some(SlotState::Routes(indices)) = self.slots.remove(&key) {
                        for index in indices {
                            let entry = &mut self.entries[index];
                            if !entry.dead {
                                entry.dead = true;
                                self.live -= 1;
                                self.coalesced += 1;
                                earliest = earliest.min(entry.enqueued);
                            }
                        }
                    }
                    self.append(delta, earliest, Some((key, true)))
                } else {
                    self.append(delta, enqueued, Some((key, true)))
                }
            }
        };
        (entry, self.coalesced - before)
    }

    fn append(
        &mut self,
        delta: ConfigDelta,
        enqueued: Instant,
        slot: Option<(SlotKey, bool)>,
    ) -> usize {
        let index = self.entries.len();
        self.entries.push(Pending {
            delta,
            enqueued,
            dead: false,
        });
        self.live += 1;
        if let Some((key, routes)) = slot {
            if routes {
                match self
                    .slots
                    .entry(key)
                    .or_insert_with(|| SlotState::Routes(Vec::new()))
                {
                    SlotState::Routes(indices) => indices.push(index),
                    one => *one = SlotState::Routes(vec![index]),
                }
            } else {
                self.slots.insert(key, SlotState::One(index));
            }
        }
        index
    }

    /// Last writer wins: overwrite the surviving entry's delta in place,
    /// keeping its queue position and (earlier) enqueue time.
    fn replace(&mut self, index: usize, delta: ConfigDelta) {
        self.entries[index].delta = delta;
        self.coalesced += 1;
    }

    /// Field-merge a BGP edit: the later edit's `Some` fields win, `None`
    /// fields keep the earlier values — matching `apply`'s semantics of
    /// only overwriting `Some` route maps.
    fn merge_bgp(&mut self, index: usize, delta: ConfigDelta) {
        let (ConfigDelta::BgpPolicyEdit {
            import: new_import,
            export: new_export,
            ..
        },) = (delta,)
        else {
            unreachable!("Bgp slot only ever holds BgpPolicyEdit");
        };
        let ConfigDelta::BgpPolicyEdit { import, export, .. } = &mut self.entries[index].delta
        else {
            unreachable!("Bgp slot only ever holds BgpPolicyEdit");
        };
        if let Some(map) = new_import {
            *import = Some(map);
        }
        if let Some(map) = new_export {
            *export = Some(map);
        }
        self.coalesced += 1;
    }

    /// Deltas currently alive (pending minus tombstones).
    pub fn live(&self) -> usize {
        self.live
    }

    /// Deltas coalesced away so far.
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }

    /// Enqueue time of the oldest live delta.
    pub fn oldest(&self) -> Option<Instant> {
        self.entries
            .iter()
            .filter(|e| !e.dead)
            .map(|e| e.enqueued)
            .min()
    }

    /// Take the surviving batch in order, resetting the coalescer.
    pub fn take(&mut self) -> Vec<(ConfigDelta, Instant)> {
        self.slots.clear();
        self.live = 0;
        self.entries
            .drain(..)
            .filter(|e| !e.dead)
            .map(|e| (e.delta, e.enqueued))
            .collect()
    }
}

/// Per-input fate from [`coalesce_batch`]: either the delta is the final
/// writer of a surviving batch slot, or its effect was folded into one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchFate {
    /// The delta survived coalescing as `deltas[output]` in the batch.
    Survivor {
        /// Index into [`CoalescedBatch::deltas`].
        output: usize,
    },
    /// The delta's effect was folded into a later (or merged) survivor.
    Coalesced,
}

/// Result of [`coalesce_batch`]: the surviving deltas in order, a fate per
/// *input* delta, and the coalesced-away count.
pub struct CoalescedBatch {
    /// Surviving deltas, in arrival order of their slots.
    pub deltas: Vec<ConfigDelta>,
    /// One fate per input delta, in input order.
    pub fates: Vec<BatchFate>,
    /// How many input deltas were coalesced away.
    pub coalesced: u64,
}

/// Coalesce a one-shot batch (the synchronous `ack: "verified"` path),
/// tracking which input delta ended up where so per-delta acks can report
/// `applied` vs `coalesced`.
pub fn coalesce_batch(deltas: Vec<ConfigDelta>) -> CoalescedBatch {
    let mut coalescer = Coalescer::default();
    let now = Instant::now();
    let mut entry_of = Vec::with_capacity(deltas.len());
    let mut last_writer: Vec<usize> = Vec::new();
    for (input, delta) in deltas.into_iter().enumerate() {
        let (entry, _) = coalescer.push(delta, now);
        if entry == last_writer.len() {
            last_writer.push(input);
        } else {
            last_writer[entry] = input;
        }
        entry_of.push(entry);
    }
    let coalesced = coalescer.coalesced();
    // Surviving entries keep arrival order: map entry index -> batch index.
    let mut output_of = vec![None; coalescer.entries.len()];
    let mut next = 0usize;
    for (index, entry) in coalescer.entries.iter().enumerate() {
        if !entry.dead {
            output_of[index] = Some(next);
            next += 1;
        }
    }
    let fates = entry_of
        .iter()
        .enumerate()
        .map(|(input, &entry)| match output_of[entry] {
            Some(output) if last_writer[entry] == input => BatchFate::Survivor { output },
            _ => BatchFate::Coalesced,
        })
        .collect();
    let deltas = coalescer.take().into_iter().map(|(d, _)| d).collect();
    CoalescedBatch {
        deltas,
        fates,
        coalesced,
    }
}

/// Counters a queue exposes in `Stats` and as metric families. All
/// monotonic except `depth`.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueueCounters {
    /// Deltas currently pending (live, after coalescing).
    pub depth: u64,
    /// Deltas ever accepted into the queue.
    pub enqueued: u64,
    /// Deltas coalesced away while pending.
    pub coalesced: u64,
    /// Deltas shed at the high-water mark.
    pub shed: u64,
    /// Batches drained.
    pub batches: u64,
    /// Largest batch drained.
    pub max_batch: u64,
    /// Longest apply+verify drain cycle observed, in microseconds.
    pub max_cycle_micros: u64,
}

/// Verify-lag percentiles over the recent-sample ring.
#[derive(Clone, Copy, Debug, Default)]
pub struct LagSnapshot {
    /// Samples currently in the ring.
    pub samples: u64,
    /// Median enqueue→verified lag, microseconds.
    pub p50_micros: u64,
    /// 99th-percentile enqueue→verified lag, microseconds.
    pub p99_micros: u64,
    /// Maximum enqueue→verified lag in the ring, microseconds.
    pub max_micros: u64,
}

/// How many recent lag samples the percentile ring keeps.
const LAG_RING: usize = 4096;

struct QueueMetrics {
    depth: Arc<plankton_telemetry::Gauge>,
    enqueued: Arc<plankton_telemetry::Counter>,
    coalesced: Arc<plankton_telemetry::Counter>,
    shed: Arc<plankton_telemetry::Counter>,
    batches: Arc<plankton_telemetry::Counter>,
    lag: Arc<plankton_telemetry::Histogram>,
}

fn queue_metrics() -> &'static QueueMetrics {
    static METRICS: OnceLock<QueueMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = plankton_telemetry::metrics::global();
        QueueMetrics {
            depth: registry.gauge(
                "plankton_delta_queue_depth",
                "Deltas pending in the streaming queue (after coalescing).",
            ),
            enqueued: registry.counter(
                "plankton_deltas_enqueued_total",
                "Deltas accepted into the streaming queue.",
            ),
            coalesced: registry.counter(
                "plankton_deltas_coalesced_total",
                "Pending deltas coalesced away before verification.",
            ),
            shed: registry.counter(
                "plankton_deltas_shed_total",
                "Deltas shed at the queue high-water mark (overloaded).",
            ),
            batches: registry.counter(
                "plankton_delta_batches_total",
                "Coalesced batches drained from the streaming queue.",
            ),
            lag: registry.histogram(
                "plankton_verify_lag_seconds",
                "Per-delta enqueue-to-verified lag through the streaming path.",
                plankton_telemetry::Unit::Micros,
            ),
        }
    })
}

struct QueueInner {
    coalescer: Coalescer,
    stopped: bool,
}

/// The shared streaming queue: a [`Coalescer`] behind a mutex + condvar,
/// with high-water shedding, drain wakeups and lag accounting.
pub struct DeltaQueue {
    inner: Mutex<QueueInner>,
    drain_wakeup: Condvar,
    enqueued: AtomicU64,
    coalesced: AtomicU64,
    shed: AtomicU64,
    batches: AtomicU64,
    max_batch: AtomicU64,
    max_cycle_micros: AtomicU64,
    lag_ring: Mutex<VecDeque<u64>>,
}

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at its high-water mark; retry after the hint.
    HighWater,
    /// The queue was stopped (daemon shutting down).
    Stopped,
}

impl Default for DeltaQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl DeltaQueue {
    /// An empty queue.
    pub fn new() -> Self {
        DeltaQueue {
            inner: Mutex::new(QueueInner {
                coalescer: Coalescer::default(),
                stopped: false,
            }),
            drain_wakeup: Condvar::new(),
            enqueued: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            max_cycle_micros: AtomicU64::new(0),
            lag_ring: Mutex::new(VecDeque::with_capacity(LAG_RING)),
        }
    }

    /// Enqueue one delta, coalescing against everything pending. Returns how
    /// many pending deltas the push coalesced away. Sheds (without mutating
    /// the queue) when `live >= high_water`.
    pub fn push(&self, delta: ConfigDelta, high_water: u64) -> Result<u64, PushError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.stopped {
            return Err(PushError::Stopped);
        }
        if inner.coalescer.live() as u64 >= high_water {
            drop(inner);
            self.shed.fetch_add(1, Ordering::Relaxed);
            queue_metrics().shed.add(1);
            return Err(PushError::HighWater);
        }
        let (_, folded) = inner.coalescer.push(delta, Instant::now());
        let depth = inner.coalescer.live() as u64;
        drop(inner);
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        self.coalesced.fetch_add(folded, Ordering::Relaxed);
        let metrics = queue_metrics();
        metrics.enqueued.add(1);
        if folded > 0 {
            metrics.coalesced.add(folded);
        }
        metrics.depth.set(depth);
        self.drain_wakeup.notify_one();
        Ok(folded)
    }

    /// Deltas currently pending (after coalescing).
    pub fn depth(&self) -> u64 {
        self.inner.lock().unwrap().coalescer.live() as u64
    }

    /// Age of the oldest pending delta.
    pub fn oldest_age(&self) -> Option<Duration> {
        let inner = self.inner.lock().unwrap();
        inner.coalescer.oldest().map(|t| t.elapsed())
    }

    /// Take everything pending right now (the synchronous flush path used by
    /// `Verify` and `ack: "verified"`). Never blocks.
    pub fn take_all(&self) -> Vec<(ConfigDelta, Instant)> {
        let mut inner = self.inner.lock().unwrap();
        let batch = inner.coalescer.take();
        drop(inner);
        self.note_batch(&batch);
        batch
    }

    /// Block until the lag contract requires a drain — `pending >=
    /// max_lag_deltas`, or the oldest pending delta is at least `max_lag`
    /// old. Returns `false` once the queue is stopped *and* empty (the
    /// drain loop exits only after everything pending was taken).
    ///
    /// This deliberately does *not* take the batch: the taker
    /// ([`DeltaQueue::take_all`]) runs under the session's mutation lock, so
    /// a concurrent `Verify` flush can never race a signalled-but-not-yet-
    /// applied batch out from under its pinned snapshot.
    pub fn wait_drain_needed(&self, max_lag_deltas: u64, max_lag: Duration) -> bool {
        let mut inner = self.inner.lock().unwrap();
        loop {
            let live = inner.coalescer.live() as u64;
            if inner.stopped {
                return live > 0;
            }
            if live >= max_lag_deltas.max(1) {
                return true;
            }
            if let Some(oldest) = inner.coalescer.oldest() {
                let age = oldest.elapsed();
                if age >= max_lag {
                    return true;
                }
                // Sleep until the oldest delta crosses the lag bound (or a
                // push/stop wakes us earlier).
                let (guard, _) = self
                    .drain_wakeup
                    .wait_timeout(inner, max_lag - age)
                    .unwrap();
                inner = guard;
            } else {
                inner = self.drain_wakeup.wait(inner).unwrap();
            }
        }
    }

    fn note_batch(&self, batch: &[(ConfigDelta, Instant)]) {
        queue_metrics().depth.set(0);
        if batch.is_empty() {
            return;
        }
        self.batches.fetch_add(1, Ordering::Relaxed);
        queue_metrics().batches.add(1);
        self.max_batch
            .fetch_max(batch.len() as u64, Ordering::Relaxed);
    }

    /// Record enqueue→verified lag for a drained batch, once its
    /// verification completed, plus the drain cycle's own duration.
    pub fn record_drain(&self, enqueued: &[Instant], cycle: Duration) {
        let metrics = queue_metrics();
        let mut ring = self.lag_ring.lock().unwrap();
        for at in enqueued {
            let micros = at.elapsed().as_micros() as u64;
            metrics.lag.observe(micros);
            if ring.len() == LAG_RING {
                ring.pop_front();
            }
            ring.push_back(micros);
        }
        drop(ring);
        self.max_cycle_micros
            .fetch_max(cycle.as_micros() as u64, Ordering::Relaxed);
    }

    /// Discard everything pending without counting a drained batch (used
    /// when `Load` replaces the network the pending deltas referred to).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        let _ = inner.coalescer.take();
        drop(inner);
        queue_metrics().depth.set(0);
    }

    /// Stop the queue: pushes fail, `wait_batch` drains what is left and
    /// then returns `None`.
    pub fn stop(&self) {
        self.inner.lock().unwrap().stopped = true;
        self.drain_wakeup.notify_all();
    }

    /// Monotonic counters plus the current depth.
    pub fn counters(&self) -> QueueCounters {
        QueueCounters {
            depth: self.depth(),
            enqueued: self.enqueued.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            max_cycle_micros: self.max_cycle_micros.load(Ordering::Relaxed),
        }
    }

    /// Lag percentiles over the recent-sample ring.
    pub fn lag(&self) -> LagSnapshot {
        let ring = self.lag_ring.lock().unwrap();
        if ring.is_empty() {
            return LagSnapshot::default();
        }
        let mut sorted: Vec<u64> = ring.iter().copied().collect();
        sorted.sort_unstable();
        let at = |q: f64| sorted[((sorted.len() - 1) as f64 * q) as usize];
        LagSnapshot {
            samples: sorted.len() as u64,
            p50_micros: at(0.50),
            p99_micros: at(0.99),
            max_micros: *sorted.last().unwrap(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plankton_config::StaticRoute;
    use plankton_net::ip::Prefix;

    fn link(n: u32) -> LinkId {
        LinkId(n)
    }
    fn node(n: u32) -> NodeId {
        NodeId(n)
    }
    fn prefix(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn link_flaps_coalesce_to_the_last_writer() {
        let mut c = Coalescer::default();
        let now = Instant::now();
        c.push(ConfigDelta::LinkDown { link: link(3) }, now);
        c.push(ConfigDelta::LinkUp { link: link(3) }, now);
        c.push(ConfigDelta::LinkDown { link: link(3) }, now);
        c.push(ConfigDelta::LinkDown { link: link(9) }, now);
        assert_eq!(c.live(), 2);
        assert_eq!(c.coalesced(), 2);
        let batch: Vec<_> = c.take().into_iter().map(|(d, _)| d).collect();
        assert_eq!(
            batch,
            vec![
                ConfigDelta::LinkDown { link: link(3) },
                ConfigDelta::LinkDown { link: link(9) },
            ]
        );
    }

    #[test]
    fn ospf_cost_slots_are_per_device_and_link() {
        let mut c = Coalescer::default();
        let now = Instant::now();
        for cost in [10, 20, 30] {
            c.push(
                ConfigDelta::OspfCostChange {
                    device: node(1),
                    link: link(2),
                    cost,
                },
                now,
            );
        }
        c.push(
            ConfigDelta::OspfCostChange {
                device: node(2),
                link: link(2),
                cost: 7,
            },
            now,
        );
        assert_eq!(c.live(), 2);
        assert_eq!(c.coalesced(), 2);
        let batch = c.take();
        assert!(matches!(
            batch[0].0,
            ConfigDelta::OspfCostChange { cost: 30, .. }
        ));
    }

    #[test]
    fn static_route_remove_cancels_pending_adds() {
        let mut c = Coalescer::default();
        let now = Instant::now();
        let p = prefix("10.0.0.0/24");
        c.push(
            ConfigDelta::StaticRouteAdd {
                device: node(1),
                route: StaticRoute::null(p),
            },
            now,
        );
        c.push(
            ConfigDelta::StaticRouteAdd {
                device: node(1),
                route: StaticRoute::null(p).with_distance(2),
            },
            now,
        );
        c.push(
            ConfigDelta::StaticRouteRemove {
                device: node(1),
                prefix: p,
            },
            now,
        );
        assert_eq!(c.live(), 1);
        assert_eq!(c.coalesced(), 2);
        let batch = c.take();
        assert!(matches!(batch[0].0, ConfigDelta::StaticRouteRemove { .. }));
    }

    #[test]
    fn static_route_adds_never_coalesce_with_each_other() {
        // The device route table is an ordered Vec that keeps duplicates:
        // two adds must both survive, in order.
        let mut c = Coalescer::default();
        let now = Instant::now();
        let p = prefix("10.0.0.0/24");
        c.push(
            ConfigDelta::StaticRouteAdd {
                device: node(1),
                route: StaticRoute::null(p),
            },
            now,
        );
        c.push(
            ConfigDelta::StaticRouteAdd {
                device: node(1),
                route: StaticRoute::null(p).with_distance(2),
            },
            now,
        );
        assert_eq!(c.live(), 2);
        assert_eq!(c.coalesced(), 0);
    }

    #[test]
    fn bgp_edits_field_merge_with_later_some_winning() {
        use plankton_config::route_map::RouteMap;
        let mut c = Coalescer::default();
        let now = Instant::now();
        c.push(
            ConfigDelta::BgpPolicyEdit {
                device: node(1),
                peer: node(2),
                import: Some(RouteMap::permit_all()),
                export: Some(RouteMap::deny_all()),
            },
            now,
        );
        c.push(
            ConfigDelta::BgpPolicyEdit {
                device: node(1),
                peer: node(2),
                import: None,
                export: Some(RouteMap::permit_all()),
            },
            now,
        );
        assert_eq!(c.live(), 1);
        assert_eq!(c.coalesced(), 1);
        let batch = c.take();
        let ConfigDelta::BgpPolicyEdit { import, export, .. } = &batch[0].0 else {
            panic!("expected a BGP edit");
        };
        // Earlier import survived; later export won.
        assert!(import.is_some());
        assert_eq!(export.as_ref().unwrap(), &RouteMap::permit_all());
    }

    #[test]
    fn structural_deltas_are_coalescing_barriers() {
        let mut c = Coalescer::default();
        let now = Instant::now();
        c.push(ConfigDelta::LinkDown { link: link(3) }, now);
        c.push(ConfigDelta::NodeRemove { device: node(5) }, now);
        c.push(ConfigDelta::LinkUp { link: link(3) }, now);
        // The LinkUp lands *after* the barrier: nothing coalesces.
        assert_eq!(c.live(), 3);
        assert_eq!(c.coalesced(), 0);
    }

    #[test]
    fn queue_sheds_at_the_high_water_mark() {
        let queue = DeltaQueue::new();
        for n in 0..4 {
            queue
                .push(ConfigDelta::LinkDown { link: link(n) }, 4)
                .unwrap();
        }
        assert_eq!(
            queue.push(ConfigDelta::LinkDown { link: link(99) }, 4),
            Err(PushError::HighWater)
        );
        // Coalescing keeps depth below high water: a repeat of link 0 fits.
        queue
            .push(ConfigDelta::LinkUp { link: link(0) }, 5)
            .unwrap();
        let counters = queue.counters();
        assert_eq!(counters.depth, 4);
        assert_eq!(counters.shed, 1);
        assert_eq!(counters.coalesced, 1);
    }

    #[test]
    fn drain_signal_fires_on_count_and_clears_on_stop() {
        let queue = Arc::new(DeltaQueue::new());
        for n in 0..3 {
            queue
                .push(ConfigDelta::LinkDown { link: link(n) }, 100)
                .unwrap();
        }
        assert!(queue.wait_drain_needed(3, Duration::from_secs(3600)));
        assert_eq!(queue.take_all().len(), 3);
        queue
            .push(ConfigDelta::LinkDown { link: link(9) }, 100)
            .unwrap();
        queue.stop();
        // Stopped but non-empty: one final drain is still required.
        assert!(queue.wait_drain_needed(3, Duration::from_secs(3600)));
        assert_eq!(queue.take_all().len(), 1);
        assert!(!queue.wait_drain_needed(3, Duration::from_secs(3600)));
        assert_eq!(
            queue.push(ConfigDelta::LinkDown { link: link(0) }, 100),
            Err(PushError::Stopped)
        );
    }

    #[test]
    fn drain_signal_fires_for_a_lone_delta_once_it_ages_past_the_lag_bound() {
        let queue = DeltaQueue::new();
        queue
            .push(ConfigDelta::LinkDown { link: link(1) }, 100)
            .unwrap();
        let start = Instant::now();
        assert!(queue.wait_drain_needed(1000, Duration::from_millis(20)));
        assert!(start.elapsed() >= Duration::from_millis(10));
        assert_eq!(queue.take_all().len(), 1);
    }

    #[test]
    fn coalesce_batch_reports_per_input_fates() {
        let batch = coalesce_batch(vec![
            ConfigDelta::LinkDown { link: link(1) }, // replaced by index 2
            ConfigDelta::LinkDown { link: link(7) }, // survives untouched
            ConfigDelta::LinkUp { link: link(1) },   // final writer of slot 0
        ]);
        assert_eq!(batch.coalesced, 1);
        assert_eq!(
            batch.deltas,
            vec![
                ConfigDelta::LinkUp { link: link(1) },
                ConfigDelta::LinkDown { link: link(7) },
            ]
        );
        assert_eq!(
            batch.fates,
            vec![
                BatchFate::Coalesced,
                BatchFate::Survivor { output: 1 },
                BatchFate::Survivor { output: 0 },
            ]
        );
    }

    #[test]
    fn lag_percentiles_come_from_the_recent_ring() {
        let queue = DeltaQueue::new();
        let past = Instant::now();
        std::thread::sleep(Duration::from_millis(2));
        queue.record_drain(&[past, past, past, past], Duration::from_millis(1));
        let lag = queue.lag();
        assert_eq!(lag.samples, 4);
        assert!(lag.p50_micros >= 2_000);
        assert!(lag.p99_micros >= lag.p50_micros);
        assert!(lag.max_micros >= lag.p99_micros);
    }
}
