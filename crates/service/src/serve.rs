//! The request loop: newline-delimited JSON over any `BufRead`/`Write`
//! pair (stdin/stdout, a Unix socket connection, or an in-memory buffer in
//! tests), plus the concurrent Unix-socket server for `planktond --socket`.
//!
//! The socket server is thread-per-connection over one shared
//! [`ServiceSession`]: reads (`Verify`/`Query`/`Stats`) from different
//! clients run concurrently against the session's current analysis
//! snapshot, mutations are serialized inside the session, and a `Shutdown`
//! request from any client drains the others gracefully — their in-flight
//! request finishes and its response is written before the connection is
//! closed.

use crate::proto::{Request, Response};
use crate::session::ServiceSession;
use plankton_telemetry::trace::{self, Field, Level};
use std::io::{self, BufRead, Write};

/// Handle one request line, returning the response line and whether the
/// daemon should shut down afterwards.
pub fn handle_line(session: &ServiceSession, line: &str) -> (String, bool) {
    handle_line_at(session, line, 0)
}

/// [`handle_line`], tagged with the line's 1-based position in its stream
/// so a malformed request is attributable in the event log (position 0 =
/// caller did not track one).
pub fn handle_line_at(session: &ServiceSession, line: &str, position: u64) -> (String, bool) {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return (String::new(), false);
    }
    // One trace id per request *line*, installed before parsing so even a
    // malformed line's `parse_error` event and `Error` reply share an id a
    // client can `Dump`. `ServiceSession::handle` reuses the scope.
    let _line_scope = trace::scope(trace::next_trace_id());
    match serde_json::from_str::<Request>(trimmed) {
        Ok(request) => {
            let shutdown = matches!(request, Request::Shutdown);
            (session.handle(&request).to_line(), shutdown)
        }
        Err(e) => {
            session.note_parse_error();
            trace::event(
                Level::Warn,
                "parse_error",
                &[
                    Field::u64("byte_len", trimmed.len() as u64),
                    Field::u64("position", position),
                ],
            );
            (
                Response::error(format!("bad request: {e}")).to_line(),
                false,
            )
        }
    }
}

/// Serve requests from `reader`, writing one response line per request to
/// `writer`, until EOF or a `Shutdown` request. Returns whether a shutdown
/// was requested (as opposed to the peer closing the stream).
///
/// Requests on one stream are processed strictly in order, but a client may
/// *pipeline*: write several request lines without waiting, then read the
/// same number of response lines (`planktonctl --pipeline` does exactly
/// this) — the loop never requires lockstep turns.
pub fn serve<R: BufRead, W: Write>(
    session: &ServiceSession,
    reader: R,
    writer: &mut W,
) -> io::Result<bool> {
    let mut position: u64 = 0;
    for line in reader.lines() {
        let line = line?;
        position += 1;
        let (response, shutdown) = handle_line_at(session, &line, position);
        if response.is_empty() {
            continue;
        }
        // Failpoint: a failed/slow response write models a dead or stalled
        // client socket — the connection errors out, the daemon survives.
        plankton_faultinject::trigger("write")?;
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if shutdown {
            return Ok(true);
        }
    }
    Ok(false)
}

/// How the Unix-socket server runs.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Maximum concurrently served client connections; further connections
    /// queue in the listener backlog until a serving thread finishes.
    pub max_connections: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions { max_connections: 4 }
    }
}

/// Poll interval of the accept loop (it must notice the shutdown flag and
/// freed connection slots without a dedicated wakeup channel).
#[cfg(unix)]
const ACCEPT_POLL: std::time::Duration = std::time::Duration::from_millis(10);

/// Upper bound on one blocked response write. A client that stops reading
/// stalls its serving thread at most this long (then the connection errors
/// out), so a non-reading client can never wedge the shutdown drain.
#[cfg(unix)]
const WRITE_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(30);

/// Bind a Unix socket and serve connections concurrently — one thread per
/// connection, all sharing `session` (deltas applied through one connection
/// are visible to every other: the whole point of a persistent daemon).
///
/// Returns when a client sends `Shutdown`: the listener stops accepting,
/// every other connection's read side is shut down so its serving thread
/// finishes the request currently in flight (writing its response) and
/// exits, and the scope join guarantees the drain completes before this
/// function returns.
#[cfg(unix)]
pub fn serve_unix(
    session: &ServiceSession,
    path: &std::path::Path,
    options: &ServeOptions,
) -> io::Result<()> {
    use parking_lot::Mutex;
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::sync::atomic::{AtomicBool, Ordering};

    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let shutdown = AtomicBool::new(false);
    // Clones of every *live* connection keyed by connection id, so the
    // drain can unblock threads parked in `read_line` (a `shutdown(Read)`
    // turns their next read into EOF). Each serving thread removes its own
    // entry on exit — a long-lived daemon must not accumulate one dead fd
    // per past connection.
    let live: Mutex<std::collections::HashMap<u64, UnixStream>> =
        Mutex::new(std::collections::HashMap::new());
    let max = options.max_connections.max(1) as u64;
    let mut next_id: u64 = 0;

    let result = std::thread::scope(|scope| -> io::Result<()> {
        // The accept loop must *fall through* to the drain on any error:
        // returning early would skip unblocking the serving threads parked
        // in `read_line`, and the scope join would then hang forever on
        // idle connections.
        let mut accept_error: Option<io::Error> = None;
        while !shutdown.load(Ordering::Relaxed) {
            if session.connections_open() >= max {
                // At the connection cap: let the backlog hold new clients
                // until a serving thread frees a slot.
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                    continue;
                }
                // Transient accept errors (signal delivery, a client that
                // reset before we picked up its connection) must not take
                // the whole daemon down — log and keep accepting. Only
                // errors that mean the listener itself is broken are fatal.
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::Interrupted
                            | io::ErrorKind::ConnectionAborted
                            | io::ErrorKind::ConnectionReset
                    ) =>
                {
                    let error = e.to_string();
                    trace::event(Level::Warn, "accept_retry", &[Field::str("error", &error)]);
                    std::thread::sleep(ACCEPT_POLL);
                    continue;
                }
                Err(e) => {
                    accept_error = Some(e);
                    break;
                }
            };
            // Per-connection setup. A failure here (e.g. EMFILE under fd
            // pressure) drops only this connection — the daemon keeps
            // serving the others. The bounded write keeps both the drain
            // and the thread pool safe from a client that stops reading:
            // its serving thread errors out instead of blocking in
            // `write_all` forever (a read-side shutdown cannot unblock a
            // writer). Responsive clients drain the socket far faster.
            let read_half = match stream
                .set_write_timeout(Some(WRITE_TIMEOUT))
                .and_then(|()| stream.try_clone())
            {
                Ok(clone) => clone,
                Err(e) => {
                    eprintln!("planktond: dropping connection (setup failed: {e})");
                    continue;
                }
            };
            let id = next_id;
            next_id += 1;
            live.lock().insert(id, read_half);
            session.connection_opened();
            let shutdown = &shutdown;
            let session = &session;
            let live = &live;
            scope.spawn(move || {
                let serve_one = || -> io::Result<bool> {
                    let reader = io::BufReader::new(stream.try_clone()?);
                    let mut writer = &stream;
                    serve(session, reader, &mut writer)
                };
                // Contain a panicking serving thread: a panic escaping into
                // the scope join would abort the whole daemon on drain, and
                // would skip the slot/live-map cleanup below (leaking a
                // connection slot forever). Request-level panics are already
                // caught in `ServiceSession::handle`; this is the backstop
                // for the serve loop itself.
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(serve_one)) {
                    Ok(Ok(true)) => shutdown.store(true, Ordering::Relaxed),
                    Ok(Ok(false)) => {}
                    Ok(Err(e)) => eprintln!("planktond: connection error: {e}"),
                    Err(_) => eprintln!("planktond: connection thread panicked; dropped"),
                }
                live.lock().remove(&id);
                session.connection_closed();
            });
        }
        // Drain: unblock every reader; the scope join below waits for each
        // serving thread to write the response of its in-flight request
        // (bounded by the write timeout above) and exit.
        for stream in live.lock().values() {
            session.note_connection_drained();
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
        match accept_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    });
    let _ = std::fs::remove_file(path);
    result
}

/// Connect to a daemon socket, retrying with a short backoff until
/// `timeout` elapses — a client racing the daemon's bind (tests, scripts
/// that just spawned `planktond`) should wait, not fail.
#[cfg(unix)]
pub fn connect_with_retry(
    path: &std::path::Path,
    timeout: std::time::Duration,
) -> io::Result<std::os::unix::net::UnixStream> {
    let start = std::time::Instant::now();
    let backoff = std::time::Duration::from_millis(20);
    loop {
        match std::os::unix::net::UnixStream::connect(path) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if start.elapsed() >= timeout {
                    return Err(io::Error::new(
                        e.kind(),
                        format!("{}: {e} (gave up after {:?})", path.display(), timeout),
                    ));
                }
                std::thread::sleep(backoff);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{PolicySpec, Query};
    use plankton_config::scenarios::ring_ospf;
    use plankton_config::ConfigDelta;
    use std::io::Cursor;

    fn lines_of(output: &[u8]) -> Vec<Response> {
        String::from_utf8_lossy(output)
            .lines()
            .map(|l| serde_json::from_str(l).expect("response parses"))
            .collect()
    }

    #[test]
    fn ndjson_session_end_to_end() {
        let s = ring_ospf(4);
        let session = ServiceSession::new();
        let mut input = String::new();
        input.push_str(&format!(
            "{}\n",
            serde_json::to_string(&Request::Load {
                network: s.network.clone()
            })
            .unwrap()
        ));
        let verify = Request::Verify {
            policy: PolicySpec::LoopFreedom,
            options: Some(crate::proto::VerifyOptions {
                max_failures: 1,
                ..Default::default()
            }),
        };
        input.push_str(&format!("{}\n", serde_json::to_string(&verify).unwrap()));
        input.push_str(&format!(
            "{}\n",
            serde_json::to_string(&Request::ApplyDelta {
                delta: ConfigDelta::LinkDown {
                    link: s.ring.links[0]
                }
            })
            .unwrap()
        ));
        input.push_str(&format!("{}\n", serde_json::to_string(&verify).unwrap()));
        input.push_str("\"Stats\"\n\"Shutdown\"\n");

        let mut output = Vec::new();
        let shutdown = serve(&session, Cursor::new(input), &mut output).unwrap();
        assert!(shutdown);
        let responses = lines_of(&output);
        assert_eq!(responses.len(), 6);
        assert!(matches!(responses[0], Response::Loaded { pecs, .. } if pecs > 0));
        let Response::Report(first) = &responses[1] else {
            panic!("expected report, got {:?}", responses[1]);
        };
        assert!(first.holds);
        assert_eq!(first.run.tasks_cached, 0);
        assert!(matches!(&responses[2], Response::DeltaApplied(d) if d.kind == "link_down"));
        let Response::Report(second) = &responses[3] else {
            panic!("expected report, got {:?}", responses[3]);
        };
        // The first verification explored every single-link failure, so the
        // post-delta tasks whose effective failure set is {downed link} (or
        // {downed link} alone of the pairs already seen) hit the cache.
        assert!(second.run.tasks_cached > 0, "{:?}", second.run);
        assert!(second.run.tasks_rerun > 0, "pairs are new work");
        let Response::Stats(stats) = &responses[4] else {
            panic!("expected stats, got {:?}", responses[4]);
        };
        assert_eq!(stats.deltas_applied, 1);
        assert_eq!(stats.verifies, 2);
        assert!(stats.cache_hits > 0);
        assert!(matches!(&responses[5], Response::Ok { .. }));
    }

    #[test]
    fn bad_requests_do_not_kill_the_loop() {
        let session = ServiceSession::new();
        let input = "this is not json\n\"Stats\"\n";
        let mut output = Vec::new();
        let shutdown = serve(&session, Cursor::new(input), &mut output).unwrap();
        assert!(!shutdown, "EOF, not shutdown");
        let responses = lines_of(&output);
        assert!(matches!(&responses[0], Response::Error { .. }));
        assert!(matches!(&responses[1], Response::Stats(_)));
    }

    #[test]
    fn persist_without_a_cache_dir_is_an_error() {
        let session = ServiceSession::with_network(ring_ospf(4).network);
        let response = session.handle(&Request::Persist);
        assert!(
            matches!(&response, Response::Error { message, .. } if message.contains("cache-dir")),
            "{response:?}"
        );
    }

    #[test]
    fn persist_and_warm_start_through_a_cache_dir() {
        let dir = std::env::temp_dir().join(format!("plankton-persist-{}", std::process::id()));
        let s = ring_ospf(4);
        let verify = Request::Verify {
            policy: PolicySpec::LoopFreedom,
            options: None,
        };
        let cold_entries;
        {
            let session = ServiceSession::new().with_cache_dir(&dir);
            session.load(s.network.clone());
            let Response::Report(report) = session.handle(&verify) else {
                panic!("verify failed");
            };
            assert_eq!(report.run.tasks_cached, 0, "cold run");
            let Response::Persisted { entries, path } = session.handle(&Request::Persist) else {
                panic!("persist failed");
            };
            assert!(entries > 0);
            assert!(path.ends_with(ServiceSession::CACHE_FILE));
            cold_entries = entries;
        }
        // "Restart": a fresh session over the same cache dir warm-starts.
        let session = ServiceSession::new().with_cache_dir(&dir);
        let Response::Loaded {
            cache_warm_entries, ..
        } = session.load(s.network.clone())
        else {
            panic!("load failed");
        };
        assert_eq!(cache_warm_entries, cold_entries);
        let Response::Report(report) = session.handle(&verify) else {
            panic!("warm verify failed");
        };
        assert_eq!(report.run.tasks_rerun, 0, "{:?}", report.run);
        assert!(report.run.tasks_cached > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queries_read_the_stored_report() {
        let s = ring_ospf(4);
        let session = ServiceSession::with_network(s.network.clone());
        let verify = Request::Verify {
            policy: PolicySpec::Reachability {
                sources: vec![s.network.topology.node(s.ring.routers[1]).name.clone()],
            },
            options: Some(crate::proto::VerifyOptions {
                restrict_prefixes: vec![s.destination],
                ..Default::default()
            }),
        };
        let Response::Report(report) = session.handle(&verify) else {
            panic!("verify failed");
        };
        assert!(report.holds);
        let Response::Violations { violations, .. } = session.handle(&Request::Query {
            query: Query::Violations {
                policy: "reachability".into(),
            },
        }) else {
            panic!("query failed");
        };
        assert!(violations.is_empty());
        let response = session.handle(&Request::Query {
            query: Query::Pec {
                prefix: s.destination,
            },
        });
        assert!(matches!(response, Response::PecInfo { .. }), "{response:?}");
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_serves_and_shuts_down() {
        use std::io::{BufRead, BufReader, Write};
        let dir = std::env::temp_dir().join(format!("plankton-sock-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("planktond.sock");
        let s = ring_ospf(4);
        let network = s.network.clone();
        let sock_path = path.clone();
        let server = std::thread::spawn(move || {
            let session = ServiceSession::with_network(network);
            serve_unix(&session, &sock_path, &ServeOptions::default()).unwrap();
        });
        let stream =
            connect_with_retry(&path, std::time::Duration::from_secs(10)).expect("daemon binds");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer.write_all(b"\"Stats\"\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let response: Response = serde_json::from_str(&line).unwrap();
        assert!(matches!(response, Response::Stats(st) if st.loaded && st.connections_open == 1));
        writer.write_all(b"\"Shutdown\"\n").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        server.join().unwrap();
        assert!(!path.exists(), "socket file cleaned up");
    }

    /// Two clients are served *at the same time*: the second connection gets
    /// its response while the first is still open and idle — which the old
    /// sequential accept loop could not do (it served connections to
    /// completion, one after another).
    #[cfg(unix)]
    #[test]
    fn concurrent_connections_are_served_while_earlier_ones_stay_open() {
        use std::io::{BufRead, BufReader, Write};
        let dir = std::env::temp_dir().join(format!("plankton-sock2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("planktond.sock");
        let s = ring_ospf(4);
        let network = s.network.clone();
        let sock_path = path.clone();
        let server = std::thread::spawn(move || {
            let session = ServiceSession::with_network(network);
            serve_unix(&session, &sock_path, &ServeOptions::default()).unwrap();
        });
        let timeout = std::time::Duration::from_secs(10);
        // First connection: open, exchange one request, then stay idle.
        let first = connect_with_retry(&path, timeout).unwrap();
        let mut first_reader = BufReader::new(first.try_clone().unwrap());
        let mut first_writer = first;
        first_writer.write_all(b"\"Stats\"\n").unwrap();
        let mut line = String::new();
        first_reader.read_line(&mut line).unwrap();
        // Second connection while the first is still open: must be served.
        let second = connect_with_retry(&path, timeout).unwrap();
        let mut second_reader = BufReader::new(second.try_clone().unwrap());
        let mut second_writer = second;
        second_writer.write_all(b"\"Stats\"\n").unwrap();
        line.clear();
        second_reader.read_line(&mut line).unwrap();
        let response: Response = serde_json::from_str(&line).unwrap();
        let Response::Stats(stats) = response else {
            panic!("expected stats, got {line}");
        };
        assert_eq!(stats.connections_open, 2, "both connections live");
        assert_eq!(stats.connections_served, 2);
        // The first connection still works after the second was served.
        first_writer.write_all(b"\"Stats\"\n").unwrap();
        line.clear();
        first_reader.read_line(&mut line).unwrap();
        assert!(serde_json::from_str::<Response>(&line).is_ok());
        // Shutdown from the second connection drains the first (EOF).
        second_writer.write_all(b"\"Shutdown\"\n").unwrap();
        line.clear();
        second_reader.read_line(&mut line).unwrap();
        server.join().unwrap();
        line.clear();
        let drained = first_reader.read_line(&mut line).unwrap();
        assert_eq!(drained, 0, "drained connection reads EOF, not an error");
    }
}
