//! The request loop: newline-delimited JSON over any `BufRead`/`Write`
//! pair (stdin/stdout, a Unix socket connection, or an in-memory buffer in
//! tests), plus the Unix-socket accept loop for `planktond --socket`.

use crate::proto::{Request, Response};
use crate::session::ServiceSession;
use std::io::{self, BufRead, Write};

/// Handle one request line, returning the response line and whether the
/// daemon should shut down afterwards.
pub fn handle_line(session: &mut ServiceSession, line: &str) -> (String, bool) {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return (String::new(), false);
    }
    match serde_json::from_str::<Request>(trimmed) {
        Ok(request) => {
            let shutdown = matches!(request, Request::Shutdown);
            (session.handle(&request).to_line(), shutdown)
        }
        Err(e) => {
            session.note_parse_error();
            (
                Response::Error {
                    message: format!("bad request: {e}"),
                }
                .to_line(),
                false,
            )
        }
    }
}

/// Serve requests from `reader`, writing one response line per request to
/// `writer`, until EOF or a `Shutdown` request. Returns whether a shutdown
/// was requested (as opposed to the peer closing the stream).
pub fn serve<R: BufRead, W: Write>(
    session: &mut ServiceSession,
    reader: R,
    writer: &mut W,
) -> io::Result<bool> {
    for line in reader.lines() {
        let line = line?;
        let (response, shutdown) = handle_line(session, &line);
        if response.is_empty() {
            continue;
        }
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if shutdown {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Bind a Unix socket and serve connections sequentially against one shared
/// session (deltas from one connection are visible to the next — the whole
/// point of a persistent daemon). Returns when a client sends `Shutdown`.
#[cfg(unix)]
pub fn serve_unix(session: &mut ServiceSession, path: &std::path::Path) -> io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    for stream in listener.incoming() {
        let stream = stream?;
        let reader = io::BufReader::new(stream.try_clone()?);
        let mut writer = stream;
        if serve(session, reader, &mut writer)? {
            break;
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{PolicySpec, Query};
    use plankton_config::scenarios::ring_ospf;
    use plankton_config::ConfigDelta;
    use std::io::Cursor;

    fn lines_of(output: &[u8]) -> Vec<Response> {
        String::from_utf8_lossy(output)
            .lines()
            .map(|l| serde_json::from_str(l).expect("response parses"))
            .collect()
    }

    #[test]
    fn ndjson_session_end_to_end() {
        let s = ring_ospf(4);
        let mut session = ServiceSession::new();
        let mut input = String::new();
        input.push_str(&format!(
            "{}\n",
            serde_json::to_string(&Request::Load {
                network: s.network.clone()
            })
            .unwrap()
        ));
        let verify = Request::Verify {
            policy: PolicySpec::LoopFreedom,
            options: Some(crate::proto::VerifyOptions {
                max_failures: 1,
                ..Default::default()
            }),
        };
        input.push_str(&format!("{}\n", serde_json::to_string(&verify).unwrap()));
        input.push_str(&format!(
            "{}\n",
            serde_json::to_string(&Request::ApplyDelta {
                delta: ConfigDelta::LinkDown {
                    link: s.ring.links[0]
                }
            })
            .unwrap()
        ));
        input.push_str(&format!("{}\n", serde_json::to_string(&verify).unwrap()));
        input.push_str("\"Stats\"\n\"Shutdown\"\n");

        let mut output = Vec::new();
        let shutdown = serve(&mut session, Cursor::new(input), &mut output).unwrap();
        assert!(shutdown);
        let responses = lines_of(&output);
        assert_eq!(responses.len(), 6);
        assert!(matches!(responses[0], Response::Loaded { pecs, .. } if pecs > 0));
        let Response::Report(first) = &responses[1] else {
            panic!("expected report, got {:?}", responses[1]);
        };
        assert!(first.holds);
        assert_eq!(first.run.tasks_cached, 0);
        assert!(matches!(&responses[2], Response::DeltaApplied(d) if d.kind == "link_down"));
        let Response::Report(second) = &responses[3] else {
            panic!("expected report, got {:?}", responses[3]);
        };
        // The first verification explored every single-link failure, so the
        // post-delta tasks whose effective failure set is {downed link} (or
        // {downed link} alone of the pairs already seen) hit the cache.
        assert!(second.run.tasks_cached > 0, "{:?}", second.run);
        assert!(second.run.tasks_rerun > 0, "pairs are new work");
        let Response::Stats(stats) = &responses[4] else {
            panic!("expected stats, got {:?}", responses[4]);
        };
        assert_eq!(stats.deltas_applied, 1);
        assert_eq!(stats.verifies, 2);
        assert!(stats.cache_hits > 0);
        assert!(matches!(&responses[5], Response::Ok { .. }));
    }

    #[test]
    fn bad_requests_do_not_kill_the_loop() {
        let mut session = ServiceSession::new();
        let input = "this is not json\n\"Stats\"\n";
        let mut output = Vec::new();
        let shutdown = serve(&mut session, Cursor::new(input), &mut output).unwrap();
        assert!(!shutdown, "EOF, not shutdown");
        let responses = lines_of(&output);
        assert!(matches!(&responses[0], Response::Error { .. }));
        assert!(matches!(&responses[1], Response::Stats(_)));
    }

    #[test]
    fn queries_read_the_stored_report() {
        let s = ring_ospf(4);
        let mut session = ServiceSession::with_network(s.network.clone());
        let verify = Request::Verify {
            policy: PolicySpec::Reachability {
                sources: vec![s.network.topology.node(s.ring.routers[1]).name.clone()],
            },
            options: Some(crate::proto::VerifyOptions {
                restrict_prefixes: vec![s.destination],
                ..Default::default()
            }),
        };
        let Response::Report(report) = session.handle(&verify) else {
            panic!("verify failed");
        };
        assert!(report.holds);
        let Response::Violations { violations, .. } = session.handle(&Request::Query {
            query: Query::Violations {
                policy: "reachability".into(),
            },
        }) else {
            panic!("query failed");
        };
        assert!(violations.is_empty());
        let response = session.handle(&Request::Query {
            query: Query::Pec {
                prefix: s.destination,
            },
        });
        assert!(matches!(response, Response::PecInfo { .. }), "{response:?}");
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_serves_and_shuts_down() {
        use std::io::{BufRead, BufReader, Write};
        let dir = std::env::temp_dir().join(format!("plankton-sock-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("planktond.sock");
        let s = ring_ospf(4);
        let network = s.network.clone();
        let sock_path = path.clone();
        let server = std::thread::spawn(move || {
            let mut session = ServiceSession::with_network(network);
            serve_unix(&mut session, &sock_path).unwrap();
        });
        // Wait for the socket to appear.
        for _ in 0..200 {
            if path.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let stream = std::os::unix::net::UnixStream::connect(&path).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer.write_all(b"\"Stats\"\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let response: Response = serde_json::from_str(&line).unwrap();
        assert!(matches!(response, Response::Stats(st) if st.loaded));
        writer.write_all(b"\"Shutdown\"\n").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        server.join().unwrap();
        assert!(!path.exists(), "socket file cleaned up");
    }
}
