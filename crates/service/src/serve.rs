//! The request loop: newline-delimited JSON over any `BufRead`/`Write`
//! pair (stdin/stdout, a Unix socket connection, or an in-memory buffer in
//! tests), plus the concurrent Unix-socket server for `planktond --socket`.
//!
//! The socket server is thread-per-connection over one shared
//! [`ServiceSession`]: reads (`Verify`/`Query`/`Stats`) from different
//! clients run concurrently against the session's current analysis
//! snapshot, mutations are serialized inside the session, and a `Shutdown`
//! request from any client drains the others gracefully — their in-flight
//! request finishes and its response is written before the connection is
//! closed.

use crate::proto::{Request, Response};
use crate::session::ServiceSession;
use plankton_telemetry::trace::{self, Field, Level};
use std::io::{self, BufRead, Write};

/// Handle one request line, returning the response line and whether the
/// daemon should shut down afterwards.
pub fn handle_line(session: &ServiceSession, line: &str) -> (String, bool) {
    handle_line_at(session, line, 0)
}

/// [`handle_line`], tagged with the line's 1-based position in its stream
/// so a malformed request is attributable in the event log (position 0 =
/// caller did not track one).
pub fn handle_line_at(session: &ServiceSession, line: &str, position: u64) -> (String, bool) {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return (String::new(), false);
    }
    // One trace id per request *line*, installed before parsing so even a
    // malformed line's `parse_error` event and `Error` reply share an id a
    // client can `Dump`. `ServiceSession::handle` reuses the scope.
    let _line_scope = trace::scope(trace::next_trace_id());
    match serde_json::from_str::<Request>(trimmed) {
        Ok(request) => {
            let shutdown = matches!(request, Request::Shutdown);
            (session.handle(&request).to_line(), shutdown)
        }
        Err(e) => {
            session.note_parse_error();
            trace::event(
                Level::Warn,
                "parse_error",
                &[
                    Field::u64("byte_len", trimmed.len() as u64),
                    Field::u64("position", position),
                ],
            );
            (
                Response::error(format!("bad request: {e}")).to_line(),
                false,
            )
        }
    }
}

/// Serve requests from `reader`, writing one response line per request to
/// `writer`, until EOF or a `Shutdown` request. Returns whether a shutdown
/// was requested (as opposed to the peer closing the stream).
///
/// Requests on one stream are processed strictly in order, but a client may
/// *pipeline*: write several request lines without waiting, then read the
/// same number of response lines (`planktonctl --pipeline` does exactly
/// this) — the loop never requires lockstep turns.
pub fn serve<R: BufRead, W: Write>(
    session: &ServiceSession,
    reader: R,
    writer: &mut W,
) -> io::Result<bool> {
    let mut position: u64 = 0;
    for line in reader.lines() {
        let line = line?;
        position += 1;
        let (response, shutdown) = handle_line_at(session, &line, position);
        if response.is_empty() {
            continue;
        }
        // Failpoint: a failed/slow response write models a dead or stalled
        // client socket — the connection errors out, the daemon survives.
        plankton_faultinject::trigger("write")?;
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if shutdown {
            return Ok(true);
        }
    }
    Ok(false)
}

/// How the Unix-socket server runs.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Worker threads handling *ready* connections (`planktond --threads`).
    /// The connection count itself is unbounded: connections are
    /// readiness-multiplexed, so an idle client costs one fd, not a thread.
    pub workers: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions { workers: 4 }
    }
}

/// Upper bound on one response write. A client that stops reading stalls
/// its worker at most this long (then the connection errors out), so a
/// non-reading client can never wedge the worker pool or the shutdown
/// drain.
#[cfg(unix)]
const WRITE_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(30);

/// Readiness-driven Unix-socket server state shared between the event loop
/// and the worker pool.
#[cfg(unix)]
mod unix_server {
    use super::*;
    use crate::readiness::{Poller, TOKEN_FIRST_CONN, TOKEN_LISTENER};
    use std::collections::{HashMap, VecDeque};
    use std::io::Read;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Instant;

    /// One live connection. Exactly one worker owns it at a time (its fd is
    /// registered `EPOLLONESHOT`), so `state` is uncontended in practice —
    /// the mutex is for the shutdown drain racing a worker.
    struct Conn {
        stream: UnixStream,
        state: Mutex<ConnState>,
    }

    #[derive(Default)]
    struct ConnState {
        /// Bytes read but not yet terminated by a newline.
        pending: Vec<u8>,
        /// 1-based line position for parse-error attribution.
        position: u64,
    }

    /// What a worker decided about a connection after pumping it.
    enum Pump {
        /// More may come: re-arm and wait.
        KeepOpen,
        /// EOF or connection error: deregister and drop.
        Close,
        /// The connection requested daemon shutdown (response already
        /// written).
        Shutdown,
    }

    /// Ready-connection tokens, fed by the event loop, drained by workers.
    struct WorkQueue {
        ready: Mutex<(VecDeque<u64>, bool)>,
        available: Condvar,
    }

    impl WorkQueue {
        fn new() -> WorkQueue {
            WorkQueue {
                ready: Mutex::new((VecDeque::new(), false)),
                available: Condvar::new(),
            }
        }

        fn push(&self, token: u64) {
            let mut ready = self.ready.lock().unwrap();
            if ready.1 {
                return;
            }
            ready.0.push_back(token);
            drop(ready);
            self.available.notify_one();
        }

        fn pop(&self) -> Option<u64> {
            let mut ready = self.ready.lock().unwrap();
            loop {
                if let Some(token) = ready.0.pop_front() {
                    return Some(token);
                }
                if ready.1 {
                    return None;
                }
                ready = self.available.wait(ready).unwrap();
            }
        }

        fn stop(&self) {
            self.ready.lock().unwrap().1 = true;
            self.available.notify_all();
        }
    }

    /// Write one response line to a nonblocking stream, bounded by
    /// [`WRITE_TIMEOUT`].
    fn write_line(stream: &UnixStream, line: &str) -> io::Result<()> {
        // Failpoint: a failed/slow response write models a dead or stalled
        // client socket — the connection errors out, the daemon survives.
        plankton_faultinject::trigger("write")?;
        let mut bytes = Vec::with_capacity(line.len() + 1);
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');
        let deadline = Instant::now() + WRITE_TIMEOUT;
        let mut writer = stream;
        let mut written = 0;
        while written < bytes.len() {
            match writer.write(&bytes[written..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "client closed mid-response",
                    ))
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "client stopped reading; response write timed out",
                        ));
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Drain everything currently readable on `conn`, handling each
    /// complete request line in arrival order (pipelined clients get their
    /// responses strictly in request order: one worker owns the connection
    /// for the whole pump).
    fn pump(session: &ServiceSession, conn: &Conn) -> io::Result<Pump> {
        let mut state = conn.state.lock().unwrap();
        let mut chunk = [0u8; 16 * 1024];
        let mut saw_eof = false;
        loop {
            match (&conn.stream).read(&mut chunk) {
                Ok(0) => {
                    saw_eof = true;
                    break;
                }
                Ok(n) => state.pending.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Handle every complete line gathered so far.
        while let Some(end) = state.pending.iter().position(|b| *b == b'\n') {
            let line: Vec<u8> = state.pending.drain(..=end).collect();
            state.position += 1;
            let position = state.position;
            let line = String::from_utf8_lossy(&line[..end]);
            let (response, shutdown) = handle_line_at(session, &line, position);
            if !response.is_empty() {
                write_line(&conn.stream, &response)?;
            }
            if shutdown {
                return Ok(Pump::Shutdown);
            }
        }
        Ok(if saw_eof { Pump::Close } else { Pump::KeepOpen })
    }

    /// See [`serve_unix`].
    pub fn run(
        session: &ServiceSession,
        path: &std::path::Path,
        options: &ServeOptions,
    ) -> io::Result<()> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        // The listener is level-triggered: it stays ready while the backlog
        // is non-empty, so the event loop never misses queued connects.
        poller.add(listener.as_raw_fd(), TOKEN_LISTENER, false)?;
        let shutdown = AtomicBool::new(false);
        let conns: Mutex<HashMap<u64, Arc<Conn>>> = Mutex::new(HashMap::new());
        let queue = WorkQueue::new();
        let mut next_token = TOKEN_FIRST_CONN;

        let result = std::thread::scope(|scope| -> io::Result<()> {
            for _ in 0..options.workers.max(1) {
                let (queue, conns, poller) = (&queue, &conns, &poller);
                let (session, shutdown) = (&session, &shutdown);
                scope.spawn(move || {
                    while let Some(token) = queue.pop() {
                        let Some(conn) = conns.lock().unwrap().get(&token).cloned() else {
                            continue;
                        };
                        // Contain a panicking pump: request-level panics are
                        // already caught in `ServiceSession::handle`; this is
                        // the backstop for the serve loop itself, so one bad
                        // connection cannot abort the daemon via the scope
                        // join.
                        let verdict =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                pump(session, &conn)
                            }));
                        let close = match verdict {
                            Ok(Ok(Pump::KeepOpen)) => {
                                // Re-arm; a failure means the fd is already
                                // gone, so fall through to closing it.
                                poller.rearm(conn.stream.as_raw_fd(), token).is_err()
                            }
                            Ok(Ok(Pump::Close)) => true,
                            Ok(Ok(Pump::Shutdown)) => {
                                shutdown.store(true, Ordering::Relaxed);
                                queue.stop();
                                poller.wake();
                                true
                            }
                            Ok(Err(e)) => {
                                eprintln!("planktond: connection error: {e}");
                                true
                            }
                            Err(_) => {
                                eprintln!("planktond: connection handler panicked; dropped");
                                true
                            }
                        };
                        if close && conns.lock().unwrap().remove(&token).is_some() {
                            let _ = poller.delete(conn.stream.as_raw_fd());
                            session.connection_closed();
                        }
                    }
                });
            }

            // Event loop: accept new connections, dispatch readable ones.
            // It must *fall through* to the drain on any error — returning
            // early would leave workers parked in `pop` and the scope join
            // would hang.
            let mut loop_error: Option<io::Error> = None;
            let mut events = Vec::new();
            while !shutdown.load(Ordering::Relaxed) {
                if let Err(e) = poller.wait(&mut events, None) {
                    loop_error = Some(e);
                    break;
                }
                for event in &events {
                    if event.token != TOKEN_LISTENER {
                        queue.push(event.token);
                        continue;
                    }
                    // Accept everything queued behind this readiness edge.
                    loop {
                        let stream = match listener.accept() {
                            Ok((stream, _)) => stream,
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            // Transient accept errors (signal delivery, a
                            // client that reset before we picked up its
                            // connection) must not take the daemon down.
                            Err(e)
                                if matches!(
                                    e.kind(),
                                    io::ErrorKind::Interrupted
                                        | io::ErrorKind::ConnectionAborted
                                        | io::ErrorKind::ConnectionReset
                                ) =>
                            {
                                let error = e.to_string();
                                trace::event(
                                    Level::Warn,
                                    "accept_retry",
                                    &[Field::str("error", &error)],
                                );
                                continue;
                            }
                            Err(e) => {
                                loop_error = Some(e);
                                break;
                            }
                        };
                        // Per-connection setup; a failure (e.g. EMFILE under
                        // fd pressure) drops only this connection.
                        if let Err(e) = stream.set_nonblocking(true) {
                            eprintln!("planktond: dropping connection (setup failed: {e})");
                            continue;
                        }
                        let token = next_token;
                        next_token += 1;
                        let conn = Arc::new(Conn {
                            stream,
                            state: Mutex::new(ConnState::default()),
                        });
                        conns.lock().unwrap().insert(token, Arc::clone(&conn));
                        if let Err(e) = poller.add(conn.stream.as_raw_fd(), token, true) {
                            conns.lock().unwrap().remove(&token);
                            eprintln!("planktond: dropping connection (register failed: {e})");
                            continue;
                        }
                        session.connection_opened();
                    }
                    if loop_error.is_some() {
                        break;
                    }
                }
                if loop_error.is_some() {
                    break;
                }
            }
            // Stop the workers; the scope join below waits for each to
            // finish the connection it is currently pumping (responses to
            // requests already in flight are written, bounded by the write
            // timeout).
            queue.stop();
            match loop_error {
                Some(e) => Err(e),
                None => Ok(()),
            }
        });
        // Drain: every connection still open gets both sides shut down, so
        // parked clients read EOF instead of hanging.
        for (_, conn) in conns.lock().unwrap().drain() {
            session.note_connection_drained();
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            session.connection_closed();
        }
        let _ = std::fs::remove_file(path);
        result
    }
}

/// Bind a Unix socket and serve connections concurrently, sharing one
/// `session` (deltas applied through one connection are visible to every
/// other: the whole point of a persistent daemon).
///
/// Connections are *readiness-multiplexed* (epoll on Linux, `poll(2)`
/// elsewhere — [`crate::readiness`]): idle connections are parked in the
/// kernel at no per-connection thread cost, and a fixed worker pool
/// ([`ServeOptions::workers`]) pumps whichever connections are readable.
/// Connection fds are registered oneshot, so one worker owns a connection
/// at a time and pipelined requests keep strict response order. Connection
/// count may therefore dwarf `--threads`.
///
/// Returns when a client sends `Shutdown`: accepting stops, workers finish
/// the connections they are pumping (writing those responses), and every
/// remaining connection is shut down so parked clients read EOF.
#[cfg(unix)]
pub fn serve_unix(
    session: &ServiceSession,
    path: &std::path::Path,
    options: &ServeOptions,
) -> io::Result<()> {
    unix_server::run(session, path, options)
}

/// Connect to a daemon socket, retrying with a short backoff until
/// `timeout` elapses — a client racing the daemon's bind (tests, scripts
/// that just spawned `planktond`) should wait, not fail.
#[cfg(unix)]
pub fn connect_with_retry(
    path: &std::path::Path,
    timeout: std::time::Duration,
) -> io::Result<std::os::unix::net::UnixStream> {
    let start = std::time::Instant::now();
    let backoff = std::time::Duration::from_millis(20);
    loop {
        match std::os::unix::net::UnixStream::connect(path) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if start.elapsed() >= timeout {
                    return Err(io::Error::new(
                        e.kind(),
                        format!("{}: {e} (gave up after {:?})", path.display(), timeout),
                    ));
                }
                std::thread::sleep(backoff);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{PolicySpec, Query};
    use plankton_config::scenarios::ring_ospf;
    use plankton_config::ConfigDelta;
    use std::io::Cursor;

    fn lines_of(output: &[u8]) -> Vec<Response> {
        String::from_utf8_lossy(output)
            .lines()
            .map(|l| serde_json::from_str(l).expect("response parses"))
            .collect()
    }

    #[test]
    fn ndjson_session_end_to_end() {
        let s = ring_ospf(4);
        let session = ServiceSession::new();
        let mut input = String::new();
        input.push_str(&format!(
            "{}\n",
            serde_json::to_string(&Request::Load {
                network: s.network.clone()
            })
            .unwrap()
        ));
        let verify = Request::Verify {
            policy: PolicySpec::LoopFreedom,
            options: Some(crate::proto::VerifyOptions {
                max_failures: 1,
                ..Default::default()
            }),
        };
        input.push_str(&format!("{}\n", serde_json::to_string(&verify).unwrap()));
        input.push_str(&format!(
            "{}\n",
            serde_json::to_string(&Request::ApplyDelta {
                delta: ConfigDelta::LinkDown {
                    link: s.ring.links[0]
                }
            })
            .unwrap()
        ));
        input.push_str(&format!("{}\n", serde_json::to_string(&verify).unwrap()));
        input.push_str("\"Stats\"\n\"Shutdown\"\n");

        let mut output = Vec::new();
        let shutdown = serve(&session, Cursor::new(input), &mut output).unwrap();
        assert!(shutdown);
        let responses = lines_of(&output);
        assert_eq!(responses.len(), 6);
        assert!(matches!(responses[0], Response::Loaded { pecs, .. } if pecs > 0));
        let Response::Report(first) = &responses[1] else {
            panic!("expected report, got {:?}", responses[1]);
        };
        assert!(first.holds);
        assert_eq!(first.run.tasks_cached, 0);
        assert!(matches!(&responses[2], Response::DeltaApplied(d) if d.kind == "link_down"));
        let Response::Report(second) = &responses[3] else {
            panic!("expected report, got {:?}", responses[3]);
        };
        // The first verification explored every single-link failure, so the
        // post-delta tasks whose effective failure set is {downed link} (or
        // {downed link} alone of the pairs already seen) hit the cache.
        assert!(second.run.tasks_cached > 0, "{:?}", second.run);
        assert!(second.run.tasks_rerun > 0, "pairs are new work");
        let Response::Stats(stats) = &responses[4] else {
            panic!("expected stats, got {:?}", responses[4]);
        };
        assert_eq!(stats.deltas_applied, 1);
        assert_eq!(stats.verifies, 2);
        assert!(stats.cache_hits > 0);
        assert!(matches!(&responses[5], Response::Ok { .. }));
    }

    #[test]
    fn bad_requests_do_not_kill_the_loop() {
        let session = ServiceSession::new();
        let input = "this is not json\n\"Stats\"\n";
        let mut output = Vec::new();
        let shutdown = serve(&session, Cursor::new(input), &mut output).unwrap();
        assert!(!shutdown, "EOF, not shutdown");
        let responses = lines_of(&output);
        assert!(matches!(&responses[0], Response::Error { .. }));
        assert!(matches!(&responses[1], Response::Stats(_)));
    }

    #[test]
    fn persist_without_a_cache_dir_is_an_error() {
        let session = ServiceSession::with_network(ring_ospf(4).network);
        let response = session.handle(&Request::Persist);
        assert!(
            matches!(&response, Response::Error { message, .. } if message.contains("cache-dir")),
            "{response:?}"
        );
    }

    #[test]
    fn persist_and_warm_start_through_a_cache_dir() {
        let dir = std::env::temp_dir().join(format!("plankton-persist-{}", std::process::id()));
        let s = ring_ospf(4);
        let verify = Request::Verify {
            policy: PolicySpec::LoopFreedom,
            options: None,
        };
        let cold_entries;
        {
            let session = ServiceSession::new().with_cache_dir(&dir);
            session.load(s.network.clone());
            let Response::Report(report) = session.handle(&verify) else {
                panic!("verify failed");
            };
            assert_eq!(report.run.tasks_cached, 0, "cold run");
            let Response::Persisted { entries, path } = session.handle(&Request::Persist) else {
                panic!("persist failed");
            };
            assert!(entries > 0);
            assert!(path.ends_with(ServiceSession::CACHE_FILE));
            cold_entries = entries;
        }
        // "Restart": a fresh session over the same cache dir warm-starts.
        let session = ServiceSession::new().with_cache_dir(&dir);
        let Response::Loaded {
            cache_warm_entries, ..
        } = session.load(s.network.clone())
        else {
            panic!("load failed");
        };
        assert_eq!(cache_warm_entries, cold_entries);
        let Response::Report(report) = session.handle(&verify) else {
            panic!("warm verify failed");
        };
        assert_eq!(report.run.tasks_rerun, 0, "{:?}", report.run);
        assert!(report.run.tasks_cached > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queries_read_the_stored_report() {
        let s = ring_ospf(4);
        let session = ServiceSession::with_network(s.network.clone());
        let verify = Request::Verify {
            policy: PolicySpec::Reachability {
                sources: vec![s.network.topology.node(s.ring.routers[1]).name.clone()],
            },
            options: Some(crate::proto::VerifyOptions {
                restrict_prefixes: vec![s.destination],
                ..Default::default()
            }),
        };
        let Response::Report(report) = session.handle(&verify) else {
            panic!("verify failed");
        };
        assert!(report.holds);
        let Response::Violations { violations, .. } = session.handle(&Request::Query {
            query: Query::Violations {
                policy: "reachability".into(),
            },
        }) else {
            panic!("query failed");
        };
        assert!(violations.is_empty());
        let response = session.handle(&Request::Query {
            query: Query::Pec {
                prefix: s.destination,
            },
        });
        assert!(matches!(response, Response::PecInfo { .. }), "{response:?}");
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_serves_and_shuts_down() {
        use std::io::{BufRead, BufReader, Write};
        let dir = std::env::temp_dir().join(format!("plankton-sock-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("planktond.sock");
        let s = ring_ospf(4);
        let network = s.network.clone();
        let sock_path = path.clone();
        let server = std::thread::spawn(move || {
            let session = ServiceSession::with_network(network);
            serve_unix(&session, &sock_path, &ServeOptions::default()).unwrap();
        });
        let stream =
            connect_with_retry(&path, std::time::Duration::from_secs(10)).expect("daemon binds");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer.write_all(b"\"Stats\"\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let response: Response = serde_json::from_str(&line).unwrap();
        assert!(matches!(response, Response::Stats(st) if st.loaded && st.connections_open == 1));
        writer.write_all(b"\"Shutdown\"\n").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        server.join().unwrap();
        assert!(!path.exists(), "socket file cleaned up");
    }

    /// Two clients are served *at the same time*: the second connection gets
    /// its response while the first is still open and idle — which the old
    /// sequential accept loop could not do (it served connections to
    /// completion, one after another).
    #[cfg(unix)]
    #[test]
    fn concurrent_connections_are_served_while_earlier_ones_stay_open() {
        use std::io::{BufRead, BufReader, Write};
        let dir = std::env::temp_dir().join(format!("plankton-sock2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("planktond.sock");
        let s = ring_ospf(4);
        let network = s.network.clone();
        let sock_path = path.clone();
        let server = std::thread::spawn(move || {
            let session = ServiceSession::with_network(network);
            serve_unix(&session, &sock_path, &ServeOptions::default()).unwrap();
        });
        let timeout = std::time::Duration::from_secs(10);
        // First connection: open, exchange one request, then stay idle.
        let first = connect_with_retry(&path, timeout).unwrap();
        let mut first_reader = BufReader::new(first.try_clone().unwrap());
        let mut first_writer = first;
        first_writer.write_all(b"\"Stats\"\n").unwrap();
        let mut line = String::new();
        first_reader.read_line(&mut line).unwrap();
        // Second connection while the first is still open: must be served.
        let second = connect_with_retry(&path, timeout).unwrap();
        let mut second_reader = BufReader::new(second.try_clone().unwrap());
        let mut second_writer = second;
        second_writer.write_all(b"\"Stats\"\n").unwrap();
        line.clear();
        second_reader.read_line(&mut line).unwrap();
        let response: Response = serde_json::from_str(&line).unwrap();
        let Response::Stats(stats) = response else {
            panic!("expected stats, got {line}");
        };
        assert_eq!(stats.connections_open, 2, "both connections live");
        assert_eq!(stats.connections_served, 2);
        // The first connection still works after the second was served.
        first_writer.write_all(b"\"Stats\"\n").unwrap();
        line.clear();
        first_reader.read_line(&mut line).unwrap();
        assert!(serde_json::from_str::<Response>(&line).is_ok());
        // Shutdown from the second connection drains the first (EOF).
        second_writer.write_all(b"\"Shutdown\"\n").unwrap();
        line.clear();
        second_reader.read_line(&mut line).unwrap();
        server.join().unwrap();
        line.clear();
        let drained = first_reader.read_line(&mut line).unwrap();
        assert_eq!(drained, 0, "drained connection reads EOF, not an error");
    }
}
