//! The service session: one loaded network, its incremental verifier, and
//! the stored reports follow-up queries read.

use crate::proto::{
    DeltaSummary, PolicySpec, Query, ReportSummary, Request, Response, ServiceStats, VerifyOptions,
    ViolationSummary,
};
use plankton_config::Network;
use plankton_core::{IncrementalVerifier, PlanktonOptions, VerificationReport};
use plankton_pec::PecId;
use std::collections::BTreeMap;
use std::time::Instant;

/// Server-side state behind the request loop.
pub struct ServiceSession {
    verifier: Option<IncrementalVerifier>,
    /// Last full report per policy report name, for follow-up queries.
    /// Cleared whenever the network changes (PEC ids are partition-relative).
    last_reports: BTreeMap<String, VerificationReport>,
    verifies: u64,
    /// Request lines that failed to parse. The request loop keeps serving
    /// after a malformed line (one bad client line must not take the daemon
    /// down), but `planktond` exits non-zero at end of stream when any
    /// request failed to parse, so scripted pipelines cannot silently
    /// mistake a typo'd request for success.
    parse_errors: u64,
    started: Instant,
}

impl Default for ServiceSession {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceSession {
    /// An empty session (no network loaded).
    pub fn new() -> Self {
        ServiceSession {
            verifier: None,
            last_reports: BTreeMap::new(),
            verifies: 0,
            parse_errors: 0,
            started: Instant::now(),
        }
    }

    /// Record one request line that failed to parse.
    pub fn note_parse_error(&mut self) {
        self.parse_errors += 1;
    }

    /// Request lines that failed to parse since the session started.
    pub fn parse_errors(&self) -> u64 {
        self.parse_errors
    }

    /// A session pre-loaded with a network.
    pub fn with_network(network: Network) -> Self {
        let mut s = Self::new();
        s.load(network);
        s
    }

    /// Load (or replace) the network.
    pub fn load(&mut self, network: Network) -> Response {
        let devices = network.node_count();
        let links = network.topology.link_count();
        match &mut self.verifier {
            Some(v) => v.load(network),
            None => self.verifier = Some(IncrementalVerifier::new(network)),
        }
        self.last_reports.clear();
        let plankton = self.verifier.as_ref().expect("just loaded").plankton();
        Response::Loaded {
            devices,
            links,
            pecs: plankton.pecs().len(),
            active_pecs: plankton.pecs().active_pecs().len(),
        }
    }

    /// The session's verifier, if a network is loaded.
    pub fn verifier(&self) -> Option<&IncrementalVerifier> {
        self.verifier.as_ref()
    }

    /// Handle one request.
    pub fn handle(&mut self, request: &Request) -> Response {
        match request {
            Request::Load { network } => {
                let problems = network.validate();
                if !problems.is_empty() {
                    let rendered: Vec<String> = problems.iter().map(|p| p.to_string()).collect();
                    return Response::Error {
                        message: format!("invalid configuration: {}", rendered.join("; ")),
                    };
                }
                self.load(network.clone())
            }
            Request::Verify { policy, options } => self.verify(policy, options.as_ref()),
            Request::ApplyDelta { delta } => {
                let Some(verifier) = &mut self.verifier else {
                    return Response::Error {
                        message: "no network loaded".into(),
                    };
                };
                match verifier.apply_delta(delta) {
                    Ok(applied) => {
                        self.last_reports.clear();
                        let network = verifier.network();
                        Response::DeltaApplied(DeltaSummary {
                            kind: applied.kind.to_string(),
                            devices_touched: applied
                                .touch
                                .devices
                                .iter()
                                .map(|n| network.topology.node(*n).name.clone())
                                .collect(),
                            prefixes_touched: applied
                                .touch
                                .prefixes
                                .iter()
                                .map(|p| p.to_string())
                                .collect(),
                            topology_changed: applied.touch.topology,
                            pecs_touched: applied.pecs_touched.len(),
                            pecs_total: applied.pecs_total,
                        })
                    }
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                }
            }
            Request::Query { query } => self.query(query),
            Request::Stats => Response::Stats(self.stats()),
            Request::Shutdown => Response::Ok {
                message: "shutting down".into(),
            },
        }
    }

    fn verify(&mut self, spec: &PolicySpec, options: Option<&VerifyOptions>) -> Response {
        let Some(verifier) = &self.verifier else {
            return Response::Error {
                message: "no network loaded".into(),
            };
        };
        let policy = match spec.build(verifier.network()) {
            Ok(p) => p,
            Err(message) => return Response::Error { message },
        };
        let defaults = VerifyOptions::default();
        let opts = options.unwrap_or(&defaults);
        let mut plankton_options = PlanktonOptions::with_cores(opts.cores.max(1));
        if !opts.restrict_prefixes.is_empty() {
            plankton_options = plankton_options.restricted_to(opts.restrict_prefixes.clone());
        }
        if !opts.stop_at_first {
            plankton_options = plankton_options.collect_all_violations();
        }
        let scenario = plankton_net::failure::FailureScenario::up_to(opts.max_failures);
        // The failure environment is keyed per task (each task's effective
        // failure set is in its content key), so `max_failures` stays out of
        // the policy fingerprint — a fault-tolerance verification's entries
        // then serve the no-failure tasks of later requests, and explored
        // failure scenarios pre-pay for matching link-down deltas.
        let policy_fp = spec.fingerprint();
        let (report, run) =
            verifier.verify(policy.as_ref(), policy_fp, &scenario, &plankton_options);
        self.verifies += 1;
        let summary = ReportSummary::of(&report, run);
        self.last_reports.insert(report.policy.clone(), report);
        Response::Report(summary)
    }

    fn query(&self, query: &Query) -> Response {
        match query {
            Query::Violations { policy } => match self.last_reports.get(policy) {
                Some(report) => Response::Violations {
                    policy: policy.clone(),
                    violations: report.violations.iter().map(ViolationSummary::of).collect(),
                },
                None => Response::Error {
                    message: format!("no stored report for policy {policy:?}"),
                },
            },
            Query::Pec { prefix } => {
                let Some(verifier) = &self.verifier else {
                    return Response::Error {
                        message: "no network loaded".into(),
                    };
                };
                let pecs = verifier.plankton().pecs();
                let Some(pec) = pecs.pec_containing(prefix.addr()) else {
                    return Response::Error {
                        message: format!("no PEC covers {prefix}"),
                    };
                };
                let verdicts = self
                    .last_reports
                    .iter()
                    .map(|(name, report)| {
                        let holds = !report.violations.iter().any(|v| v.pec == pec.id);
                        (name.clone(), holds)
                    })
                    .collect();
                Response::PecInfo {
                    pec: pec.id.0,
                    range: pec.range.to_string(),
                    prefixes: pec.prefixes.iter().map(|p| p.prefix.to_string()).collect(),
                    verdicts,
                }
            }
            Query::Trail { policy, index } => match self.last_reports.get(policy) {
                Some(report) => match report.violations.get(*index) {
                    Some(v) => Response::Trail {
                        policy: policy.clone(),
                        index: *index,
                        trail: v.trail.to_string(),
                    },
                    None => Response::Error {
                        message: format!(
                            "report for {policy:?} has {} violations, no index {index}",
                            report.violations.len()
                        ),
                    },
                },
                None => Response::Error {
                    message: format!("no stored report for policy {policy:?}"),
                },
            },
        }
    }

    /// Current aggregate statistics.
    pub fn stats(&self) -> ServiceStats {
        let mut stats = ServiceStats {
            loaded: self.verifier.is_some(),
            verifies: self.verifies,
            parse_errors: self.parse_errors,
            uptime_ms: self.started.elapsed().as_millis() as u64,
            ..Default::default()
        };
        if let Some(v) = &self.verifier {
            stats.deltas_applied = v.deltas_applied();
            stats.cache_entries = v.cache().len();
            stats.cache_hits = v.cache().hits();
            stats.cache_misses = v.cache().misses();
            stats.cache_evictions = v.cache().evictions();
            stats.pecs_total = v.plankton().pecs().len();
        }
        stats
    }

    /// Look up a stored report.
    pub fn last_report(&self, policy: &str) -> Option<&VerificationReport> {
        self.last_reports.get(policy)
    }

    /// Does any stored report violate for this PEC?
    pub fn pec_holds_everywhere(&self, pec: PecId) -> bool {
        self.last_reports
            .values()
            .all(|r| !r.violations.iter().any(|v| v.pec == pec))
    }
}
