//! The service session: one loaded network, its incremental verifier, and
//! the stored reports follow-up queries read — shared by every client
//! connection.
//!
//! The session is a *shared-state core*: every method takes `&self`, so the
//! concurrent Unix-socket server hands one session to a thread per
//! connection. Reads (`Verify`, `Query`, `Stats`) run concurrently — a
//! verification clones the current analysis snapshot (`Arc`) and works
//! off-lock for its whole duration — while mutations (`Load`, `ApplyDelta`)
//! are serialized inside [`IncrementalVerifier`] and land as an atomic
//! copy-on-write snapshot swap. The shared [`ResultCache`] means concurrent
//! clients warm each other's verifications.
//!
//! With a cache directory configured ([`ServiceSession::with_cache_dir`]),
//! the content-addressed result cache also survives process restarts:
//! `Load` warm-starts from `<dir>/cache.json` when the file's
//! fingerprint-scheme version matches, and the cache is written back on
//! daemon shutdown or an explicit `Persist` request.

use crate::proto::{
    error_kind, DeltaAck, DeltaAckMode, DeltaSummary, DumpEvent, LagSummary, PolicySpec, Query,
    ReportSummary, Request, Response, ServiceStats, TaskCostSummary, VerifyOptions,
    ViolationSummary, PROTO_FEATURES, PROTO_VERSION,
};
use crate::queue::{coalesce_batch, BatchFate, DeltaQueue, PushError};
use parking_lot::{Mutex, RwLock};
use plankton_config::{ConfigDelta, Network};
use plankton_core::{IncrementalVerifier, Plankton, PlanktonOptions, Tuning, VerificationReport};
use plankton_telemetry::trace::{self, Field, Level};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Retry hint handed to shed clients. A verify on any non-trivial network
/// takes longer than this, so an immediate retry storm is avoided without
/// making well-behaved clients wait out a long fixed penalty.
const SHED_RETRY_AFTER_MS: u64 = 100;

/// Process-global service-level instruments, resolved once. Per-request
/// series (`plankton_requests_total{kind}`, `plankton_request_seconds{kind}`)
/// go through the registry on each request instead — one short map lookup
/// against a full JSON parse is noise, and it keeps the kind set open.
struct ServiceMetrics {
    inflight: Arc<plankton_telemetry::Gauge>,
    parse_errors: Arc<plankton_telemetry::Counter>,
    connections_open: Arc<plankton_telemetry::Gauge>,
    connections_total: Arc<plankton_telemetry::Counter>,
    connections_drained: Arc<plankton_telemetry::Counter>,
    requests_shed: Arc<plankton_telemetry::Counter>,
    deadline_exceeded: Arc<plankton_telemetry::Counter>,
    cache_recoveries: Arc<plankton_telemetry::Counter>,
    request_panics: Arc<plankton_telemetry::Counter>,
}

fn service_metrics() -> &'static ServiceMetrics {
    static METRICS: OnceLock<ServiceMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = plankton_telemetry::metrics::global();
        // Build identity, exposed once so scrapes can tell which daemon
        // build (and cache fingerprint scheme) produced the series.
        let scheme = plankton_config::FINGERPRINT_SCHEME_VERSION.to_string();
        registry
            .gauge_with(
                "plankton_build_info",
                "Build identity of the daemon; constant 1, the labels carry the information.",
                &[
                    ("version", env!("CARGO_PKG_VERSION")),
                    ("fingerprint_scheme", &scheme),
                ],
            )
            .set(1);
        ServiceMetrics {
            inflight: registry.gauge(
                "plankton_requests_inflight",
                "Requests currently being handled.",
            ),
            parse_errors: registry.counter(
                "plankton_parse_errors_total",
                "Request lines that failed to parse.",
            ),
            connections_open: registry.gauge(
                "plankton_connections_open",
                "Client connections currently open (socket mode).",
            ),
            connections_total: registry.counter(
                "plankton_connections_total",
                "Client connections accepted since the daemon started.",
            ),
            connections_drained: registry.counter(
                "plankton_connections_drained_total",
                "Connections forcibly unblocked by the shutdown drain.",
            ),
            requests_shed: registry.counter(
                "plankton_requests_shed_total",
                "Verify requests refused with `overloaded` by the --max-inflight gate.",
            ),
            deadline_exceeded: registry.counter(
                "plankton_deadline_exceeded_total",
                "Verify requests abandoned at their deadline_ms budget.",
            ),
            cache_recoveries: registry.counter(
                "plankton_cache_recoveries_total",
                "Persisted-cache loads that failed and degraded to a cold start.",
            ),
            request_panics: registry.counter(
                "plankton_request_panics_total",
                "Request handlers that panicked and were contained as internal_panic errors.",
            ),
        }
    })
}

/// Best-effort extraction of a panic payload's message.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A stored report tagged with the analysis snapshot it was computed
/// against.
type SnapshotReport = (Arc<Plankton>, Arc<VerificationReport>);

/// A policy the background drain re-verifies after each drained batch:
/// every policy a `Verify` request has successfully run since load, with
/// the request's effective options (minus its deadline — a streaming
/// re-verify must not inherit a one-shot request's time budget).
#[derive(Clone)]
struct StreamingPolicy {
    spec: PolicySpec,
    options: PlanktonOptions,
    max_failures: usize,
}

/// Server-side state behind the request loop(s).
pub struct ServiceSession {
    verifier: RwLock<Option<Arc<IncrementalVerifier>>>,
    /// Serializes session-level mutations (`Load`, `ApplyDelta`) with each
    /// other: without it a `Load` could replace the verifier while a
    /// concurrent delta is applying to the old one — the delta would be
    /// acknowledged and then silently discarded with no defined order.
    mutate: Mutex<()>,
    /// Last full report per policy report name, for follow-up queries —
    /// tagged with the analysis snapshot it was computed against. PEC ids
    /// are partition-relative, so queries only read reports whose snapshot
    /// *is* the current one (`Arc::ptr_eq`); a verify that raced a delta and
    /// stored a report for the superseded network is simply never served.
    last_reports: Mutex<BTreeMap<String, SnapshotReport>>,
    verifies: AtomicU64,
    /// Request lines that failed to parse. The request loop keeps serving
    /// after a malformed line (one bad client line must not take the daemon
    /// down), but `planktond` exits non-zero at end of stream when any
    /// request failed to parse, so scripted pipelines cannot silently
    /// mistake a typo'd request for success.
    parse_errors: AtomicU64,
    /// Client connections currently open (socket mode).
    connections_open: AtomicU64,
    /// Client connections accepted over the session's lifetime.
    connections_served: AtomicU64,
    /// Connections forcibly unblocked by the shutdown drain.
    connections_drained: AtomicU64,
    /// Where the result cache is persisted across restarts, when configured.
    cache_dir: Option<PathBuf>,
    /// The CLI/default tuning layer ([`Tuning`]): admission bound, slow-task
    /// threshold, streaming lag and queue bounds. A request's
    /// `VerifyOptions::tuning` overlays this (request > CLI > default).
    tuning: Tuning,
    /// The streaming delta queue (`ApplyDeltas {ack: "enqueued"}`), drained
    /// by [`ServiceSession::start_streaming`]'s background thread or
    /// synchronously flushed by `Verify` / `ack: "verified"`.
    queue: Arc<DeltaQueue>,
    /// Policies the background drain re-verifies after each batch.
    streaming_policies: Mutex<BTreeMap<String, StreamingPolicy>>,
    /// `Verify` requests currently inside the verifier.
    verifies_inflight: AtomicU64,
    /// Engine tasks that panicked and were contained (lifetime).
    tasks_panicked: AtomicU64,
    /// Verifies refused by the admission gate (lifetime).
    requests_shed: AtomicU64,
    /// Verifies abandoned at their deadline (lifetime).
    deadline_exceeded: AtomicU64,
    /// Corrupt persisted-cache loads degraded to cold starts (lifetime).
    cache_recoveries: AtomicU64,
    started: Instant,
}

impl Default for ServiceSession {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceSession {
    /// File name of the persisted cache inside the cache directory.
    pub const CACHE_FILE: &'static str = "cache.json";

    /// An empty session (no network loaded).
    pub fn new() -> Self {
        ServiceSession {
            verifier: RwLock::new(None),
            mutate: Mutex::new(()),
            last_reports: Mutex::new(BTreeMap::new()),
            verifies: AtomicU64::new(0),
            parse_errors: AtomicU64::new(0),
            connections_open: AtomicU64::new(0),
            connections_served: AtomicU64::new(0),
            connections_drained: AtomicU64::new(0),
            cache_dir: None,
            tuning: Tuning::default(),
            queue: Arc::new(DeltaQueue::new()),
            streaming_policies: Mutex::new(BTreeMap::new()),
            verifies_inflight: AtomicU64::new(0),
            tasks_panicked: AtomicU64::new(0),
            requests_shed: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            cache_recoveries: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Configure a directory the result cache is persisted to (on shutdown
    /// and on `Persist` requests) and warm-started from (on `Load`),
    /// builder-style.
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// The configured cache directory, if any.
    pub fn cache_dir(&self) -> Option<&Path> {
        self.cache_dir.as_deref()
    }

    /// Install the session-level (CLI) tuning layer, builder-style. Knobs a
    /// request sets in `VerifyOptions::tuning` overlay these.
    pub fn with_tuning(mut self, tuning: Tuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// The session-level tuning layer.
    pub fn tuning(&self) -> &Tuning {
        &self.tuning
    }

    /// The streaming delta queue.
    pub fn queue(&self) -> &DeltaQueue {
        &self.queue
    }

    /// Bound concurrently running `Verify` requests, builder-style
    /// (`planktond --max-inflight`). Excess verifies are shed with a
    /// structured `overloaded` reply carrying `retry_after_ms`.
    pub fn with_max_inflight(mut self, max: u64) -> Self {
        self.tuning.max_inflight = Some(max);
        self
    }

    /// Set the `slow_task` warn threshold applied to every verification,
    /// builder-style (`planktond --slow-task-ms`).
    pub fn with_slow_task_threshold(mut self, threshold: Duration) -> Self {
        self.tuning.slow_task_ms = Some(threshold.as_millis() as u64);
        self
    }

    /// The persisted-cache path, if a cache directory is configured.
    pub fn cache_file(&self) -> Option<PathBuf> {
        self.cache_dir.as_ref().map(|d| d.join(Self::CACHE_FILE))
    }

    /// Record one request line that failed to parse.
    pub fn note_parse_error(&self) {
        self.parse_errors.fetch_add(1, Ordering::Relaxed);
        service_metrics().parse_errors.inc();
    }

    /// Request lines that failed to parse since the session started.
    pub fn parse_errors(&self) -> u64 {
        self.parse_errors.load(Ordering::Relaxed)
    }

    /// Record one client connection opening (socket mode).
    pub fn connection_opened(&self) {
        self.connections_open.fetch_add(1, Ordering::Relaxed);
        self.connections_served.fetch_add(1, Ordering::Relaxed);
        service_metrics().connections_open.add(1);
        service_metrics().connections_total.inc();
    }

    /// Record one client connection closing (socket mode).
    pub fn connection_closed(&self) {
        self.connections_open.fetch_sub(1, Ordering::Relaxed);
        service_metrics().connections_open.sub(1);
    }

    /// Record one connection the shutdown drain forcibly unblocked.
    pub fn note_connection_drained(&self) {
        self.connections_drained.fetch_add(1, Ordering::Relaxed);
        service_metrics().connections_drained.inc();
    }

    /// Client connections currently open.
    pub fn connections_open(&self) -> u64 {
        self.connections_open.load(Ordering::Relaxed)
    }

    /// A session pre-loaded with a network.
    pub fn with_network(network: Network) -> Self {
        let s = Self::new();
        s.load(network);
        s
    }

    /// Load (or replace) the network. With a cache directory configured the
    /// fresh verifier warm-starts from the persisted cache — content keys
    /// guarantee entries from a different network (or a stale
    /// fingerprint-scheme version, which is rejected outright) can never be
    /// wrongly served.
    pub fn load(&self, network: Network) -> Response {
        let _serialize = self.mutate.lock();
        let devices = network.node_count();
        let links = network.topology.link_count();
        let verifier = Arc::new(IncrementalVerifier::new(network));
        let mut cache_warm_entries = 0;
        if let Some(path) = self.cache_file() {
            if path.exists() {
                match verifier.cache().load_from(&path) {
                    Ok(n) => cache_warm_entries = n,
                    Err(e) => {
                        // A corrupt/truncated snapshot (checksum mismatch,
                        // bad JSON, failpoint) degrades to a cold start —
                        // worst case is re-verification work, never a wrong
                        // answer served from a damaged cache.
                        self.cache_recoveries.fetch_add(1, Ordering::Relaxed);
                        service_metrics().cache_recoveries.inc();
                        let shown_path = path.display().to_string();
                        let error = e.to_string();
                        trace::event(
                            Level::Warn,
                            "cache_recovery",
                            &[Field::str("path", &shown_path), Field::str("error", &error)],
                        );
                        eprintln!("planktond: persisted cache unusable, cold-starting: {e}");
                    }
                }
            }
        }
        let snapshot = verifier.snapshot();
        *self.verifier.write() = Some(verifier);
        self.last_reports.lock().clear();
        self.streaming_policies.lock().clear();
        // Deltas enqueued against the replaced network are meaningless now.
        self.queue.clear();
        Response::Loaded {
            devices,
            links,
            pecs: snapshot.pecs().len(),
            active_pecs: snapshot.pecs().active_pecs().len(),
            cache_warm_entries,
        }
    }

    /// The session's verifier, if a network is loaded.
    pub fn verifier(&self) -> Option<Arc<IncrementalVerifier>> {
        self.verifier.read().clone()
    }

    /// Persist the result cache to the configured cache directory. Returns
    /// the number of entries written.
    pub fn persist(&self) -> Result<usize, String> {
        let Some(path) = self.cache_file() else {
            return Err("no --cache-dir configured".into());
        };
        let Some(verifier) = self.verifier() else {
            return Err("no network loaded".into());
        };
        verifier
            .cache()
            .save_to(&path)
            .map_err(|e| format!("cannot persist cache to {}: {e}", path.display()))
    }

    /// Handle one request: run it under a trace id for its causal chain
    /// (every event the handler emits — delta apply, key invalidation, task
    /// re-runs, report merge — shares it, and `Error` replies are stamped
    /// with it), record the per-kind latency and count, then dispatch. The
    /// request loop installs a per-line scope before parsing; that id is
    /// reused so the wire line and its handling share one chain. Direct
    /// callers (tests, embedding) get a fresh id here.
    pub fn handle(&self, request: &Request) -> Response {
        let kind = request.kind();
        let _trace_scope = match trace::current() {
            0 => Some(trace::scope(trace::next_trace_id())),
            _ => None,
        };
        trace::event(Level::Info, "request", &[Field::str("kind", kind)]);
        let metrics = service_metrics();
        metrics.inflight.add(1);
        let start = Instant::now();
        // A panic anywhere in a handler (engine join bug, shim edge case,
        // `internal_panic` failpoint) is contained to this request: the
        // client gets a structured error and the daemon keeps serving.
        // catch_unwind also keeps the inflight gauge and latency accounting
        // below panic-safe.
        let response =
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.dispatch(request)))
            {
                Ok(response) => response,
                Err(payload) => {
                    let message = panic_text(payload.as_ref());
                    metrics.request_panics.inc();
                    trace::event(
                        Level::Error,
                        "request_panicked",
                        &[Field::str("kind", kind), Field::str("message", &message)],
                    );
                    Response::error_kind(
                        error_kind::INTERNAL_PANIC,
                        format!("request handler panicked: {message}"),
                    )
                }
            };
        let registry = plankton_telemetry::metrics::global();
        registry
            .histogram_with(
                "plankton_request_seconds",
                "Request handling latency by request kind.",
                plankton_telemetry::Unit::Micros,
                &[("kind", kind)],
            )
            .observe(start.elapsed().as_micros() as u64);
        registry
            .counter_with(
                "plankton_requests_total",
                "Requests handled by request kind.",
                &[("kind", kind)],
            )
            .inc();
        metrics.inflight.sub(1);
        response
    }

    fn dispatch(&self, request: &Request) -> Response {
        match request {
            Request::Load { network } => {
                let problems = network.validate();
                if !problems.is_empty() {
                    let rendered: Vec<String> = problems.iter().map(|p| p.to_string()).collect();
                    return Response::error(format!(
                        "invalid configuration: {}",
                        rendered.join("; ")
                    ));
                }
                self.load(network.clone())
            }
            Request::Verify { policy, options } => self.verify(policy, options.as_ref()),
            Request::Hello => Response::Welcome {
                proto_version: PROTO_VERSION.to_string(),
                features: PROTO_FEATURES.iter().map(|f| f.to_string()).collect(),
            },
            Request::ApplyDeltas { deltas, ack } => self.apply_deltas(deltas, ack),
            Request::ApplyDelta { delta } => {
                let _serialize = self.mutate.lock();
                let Some(verifier) = self.verifier() else {
                    return Response::error("no network loaded");
                };
                match verifier.apply_delta(delta) {
                    Ok(applied) => {
                        self.last_reports.lock().clear();
                        let snapshot = verifier.snapshot();
                        let network = snapshot.network();
                        Response::DeltaApplied(DeltaSummary {
                            kind: applied.kind.to_string(),
                            devices_touched: applied
                                .touch
                                .devices
                                .iter()
                                .map(|n| network.topology.node(*n).name.clone())
                                .collect(),
                            prefixes_touched: applied
                                .touch
                                .prefixes
                                .iter()
                                .map(|p| p.to_string())
                                .collect(),
                            topology_changed: applied.touch.topology,
                            pecs_touched: applied.pecs_touched.len(),
                            pecs_total: applied.pecs_total,
                        })
                    }
                    Err(e) => Response::error(e.to_string()),
                }
            }
            Request::Query { query } => self.query(query),
            Request::Stats => Response::Stats(self.stats()),
            Request::Metrics => Response::MetricsText {
                text: plankton_telemetry::metrics::global().render(),
            },
            Request::Persist => match self.persist() {
                Ok(entries) => {
                    // `Persist` is the durability point: the log tail goes
                    // to stable storage together with the cache snapshot.
                    trace::sync_sinks();
                    Response::Persisted {
                        entries,
                        path: self
                            .cache_file()
                            .expect("persist() checked the cache dir")
                            .display()
                            .to_string(),
                    }
                }
                Err(message) => Response::error(message),
            },
            Request::Shutdown => Response::Ok {
                message: "shutting down".into(),
            },
            Request::Dump { trace_id, last } => self.dump(*trace_id, *last),
            Request::Top { k } => self.top(*k),
        }
    }

    /// Answer `Dump`: the flight recorder's retained events, oldest first.
    fn dump(&self, trace_id: Option<u64>, last: Option<usize>) -> Response {
        let Some(recorder) = plankton_telemetry::recorder::global() else {
            return Response::error(
                "no flight recorder installed (planktond installs one by default; \
                 was it started with --recorder-capacity 0?)",
            );
        };
        let events = recorder
            .dump(trace_id, last)
            .into_iter()
            .map(|e| DumpEvent {
                seq: e.seq,
                mono_us: e.mono_us,
                trace: e.trace_id,
                level: e.level.as_str().to_string(),
                event: e.name,
                json: e.json,
            })
            .collect();
        Response::Dump {
            events,
            total_recorded: recorder.total_recorded(),
            dropped: recorder.dropped(),
        }
    }

    /// Answer `Top`: the K hottest (PEC × failure-set) tasks by total
    /// accumulated duration (`k` 0 = 10).
    fn top(&self, k: usize) -> Response {
        let costs = plankton_telemetry::taskstats::global();
        let all = costs.snapshot();
        let total_micros = all.iter().map(|r| r.total_micros).sum();
        let tasks_tracked = all.len() as u64;
        let rows = costs
            .top(if k == 0 { 10 } else { k })
            .into_iter()
            .map(|r| TaskCostSummary {
                pec: r.group,
                failures: r.label,
                runs: r.runs,
                total_micros: r.total_micros,
                max_micros: r.max_micros,
                states: r.states,
                cache_hits: r.cache_hits,
                panics: r.panics,
            })
            .collect();
        Response::Top {
            rows,
            total_micros,
            tasks_tracked,
        }
    }

    fn verify(&self, spec: &PolicySpec, options: Option<&VerifyOptions>) -> Response {
        // Admission control first: shedding is only useful if it costs
        // nothing, so it runs before snapshot pinning or policy building.
        // Increment-then-check keeps the gate race-free without a lock; the
        // guard decrements on every exit path, including panics.
        struct InflightGuard<'a>(&'a AtomicU64);
        impl Drop for InflightGuard<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::Relaxed);
            }
        }
        self.verifies_inflight.fetch_add(1, Ordering::Relaxed);
        let _inflight = InflightGuard(&self.verifies_inflight);
        if let Some(max) = self.tuning.max_inflight {
            if self.verifies_inflight.load(Ordering::Relaxed) > max {
                self.requests_shed.fetch_add(1, Ordering::Relaxed);
                service_metrics().requests_shed.inc();
                trace::event(
                    Level::Warn,
                    "request_shed",
                    &[Field::u64("max_inflight", max)],
                );
                return Response::overloaded(
                    format!("daemon at --max-inflight {max} verifies; retry later"),
                    SHED_RETRY_AFTER_MS,
                );
            }
        }
        let Some(verifier) = self.verifier() else {
            return Response::error("no network loaded");
        };
        // Read-your-writes: everything the client enqueued before this
        // verify is applied first (an empty queue makes this a no-op).
        self.flush_queue(&verifier);
        // Pin the snapshot for name resolution *and* verification: a delta
        // landing between the two must not tear this request.
        let snapshot = verifier.snapshot();
        let policy = match spec.build(snapshot.network()) {
            Ok(p) => p,
            Err(message) => return Response::error(message),
        };
        let defaults = VerifyOptions::default();
        let opts = options.unwrap_or(&defaults);
        // One precedence order for every knob: the request's `tuning`
        // overlays its own legacy fields (v1 `cores`/`deadline_ms`), which
        // overlay the session (CLI) layer; whatever is still unset falls
        // through to the defaults baked into PlanktonOptions.
        let legacy = Tuning {
            cores: (opts.cores > 0).then_some(opts.cores as u64),
            deadline_ms: (opts.deadline_ms > 0).then_some(opts.deadline_ms),
            ..Default::default()
        };
        let effective = opts.tuning.overlaid_on(&legacy).overlaid_on(&self.tuning);
        let mut plankton_options = PlanktonOptions::default();
        if !opts.restrict_prefixes.is_empty() {
            plankton_options = plankton_options.restricted_to(opts.restrict_prefixes.clone());
        }
        if !opts.stop_at_first {
            plankton_options = plankton_options.collect_all_violations();
        }
        effective.apply_to(&mut plankton_options);
        let deadline_ms = effective.deadline_ms.unwrap_or(0);
        let scenario = plankton_net::failure::FailureScenario::up_to(opts.max_failures);
        // The failure environment is keyed per task (each task's effective
        // failure set is in its content key), so `max_failures` stays out of
        // the policy fingerprint — a fault-tolerance verification's entries
        // then serve the no-failure tasks of later requests, and explored
        // failure scenarios pre-pay for matching link-down deltas.
        let policy_fp = spec.fingerprint();
        let (report, run) = snapshot.verify_with_cache(
            policy.as_ref(),
            policy_fp,
            &scenario,
            &plankton_options,
            verifier.cache(),
        );
        self.verifies.fetch_add(1, Ordering::Relaxed);
        // A run with contained task panics or an expired deadline is
        // *incomplete*: its verdict is not trustworthy, so it is neither
        // served as a report nor stored for follow-up queries. (The result
        // cache is already safe — incomplete per-task results are never
        // inserted — so a clean retry recomputes only what was abandoned.)
        if let Some(engine) = &report.engine {
            if engine.tasks_panicked > 0 {
                self.tasks_panicked
                    .fetch_add(engine.tasks_panicked, Ordering::Relaxed);
                let detail = engine
                    .failures
                    .first()
                    .map(|f| format!("task {}: {}", f.task, f.message))
                    .unwrap_or_else(|| "no failure detail".into());
                trace::event(
                    Level::Error,
                    "verify_task_panicked",
                    &[
                        Field::u64("tasks_panicked", engine.tasks_panicked),
                        Field::str("first_failure", &detail),
                    ],
                );
                return Response::error_kind(
                    error_kind::TASK_PANICKED,
                    format!(
                        "verification abandoned: {} task(s) panicked ({detail}); \
                         partial results were not cached",
                        engine.tasks_panicked
                    ),
                );
            }
        }
        if report.deadline_exceeded {
            self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            service_metrics().deadline_exceeded.inc();
            trace::event(
                Level::Warn,
                "verify_deadline_exceeded",
                &[Field::u64("deadline_ms", deadline_ms)],
            );
            return Response::error_kind(
                error_kind::DEADLINE_EXCEEDED,
                format!(
                    "verification exceeded its {deadline_ms}ms deadline; \
                     partial results were not served"
                ),
            );
        }
        let summary = ReportSummary::of(&report, run);
        self.last_reports
            .lock()
            .insert(report.policy.clone(), (snapshot, Arc::new(report)));
        // Register for streaming: the background drain re-verifies this
        // policy after every drained batch, with the same effective options
        // minus the deadline (a one-shot time budget must not recur).
        let mut streaming_options = plankton_options.clone();
        streaming_options.deadline = None;
        self.streaming_policies.lock().insert(
            summary.policy.clone(),
            StreamingPolicy {
                spec: spec.clone(),
                options: streaming_options,
                max_failures: opts.max_failures,
            },
        );
        Response::Report(summary)
    }

    /// Handle `ApplyDeltas {deltas, ack}` — the batched v2 delta surface.
    fn apply_deltas(&self, deltas: &[ConfigDelta], ack: &str) -> Response {
        let Some(mode) = DeltaAckMode::parse(ack) else {
            return Response::error(format!(
                "unknown ack mode {ack:?} (use \"verified\" or \"enqueued\")"
            ));
        };
        if deltas.is_empty() {
            return Response::DeltasAccepted {
                ack: mode.as_str().to_string(),
                deltas: Vec::new(),
                coalesced: 0,
                lag: self.lag_summary(),
            };
        }
        match mode {
            DeltaAckMode::Enqueued => self.enqueue_deltas(deltas),
            DeltaAckMode::Verified => self.apply_deltas_now(deltas),
        }
    }

    /// `ack: "enqueued"`: append to the streaming queue and return without
    /// waiting for the rebuild. Backpressure: at the high-water mark the
    /// whole request is refused with the `overloaded + retry_after_ms`
    /// contract (nothing past the shed point is enqueued).
    fn enqueue_deltas(&self, deltas: &[ConfigDelta]) -> Response {
        if self.verifier().is_none() {
            return Response::error("no network loaded");
        }
        let high_water = self.tuning.effective_max_pending_deltas();
        let mut acks = Vec::with_capacity(deltas.len());
        let mut coalesced = 0u64;
        for delta in deltas {
            match self.queue.push(delta.clone(), high_water) {
                Ok(folded) => {
                    coalesced += folded;
                    acks.push(DeltaAck {
                        kind: delta.kind().to_string(),
                        status: if folded > 0 { "coalesced" } else { "enqueued" }.to_string(),
                        detail: if folded > 0 {
                            format!("folded {folded} pending delta(s)")
                        } else {
                            String::new()
                        },
                    });
                }
                Err(PushError::HighWater) => {
                    let retry = self.tuning.effective_max_lag_ms().max(SHED_RETRY_AFTER_MS);
                    trace::event(
                        Level::Warn,
                        "deltas_shed",
                        &[Field::u64("high_water", high_water)],
                    );
                    return Response::overloaded(
                        format!(
                            "delta queue at high water ({high_water} pending); \
                             {} of {} deltas enqueued, retry the rest later",
                            acks.len(),
                            deltas.len()
                        ),
                        retry,
                    );
                }
                Err(PushError::Stopped) => {
                    return Response::error("daemon shutting down; delta queue stopped");
                }
            }
        }
        Response::DeltasAccepted {
            ack: "enqueued".to_string(),
            deltas: acks,
            coalesced,
            lag: self.lag_summary(),
        }
    }

    /// `ack: "verified"`: flush anything already pending (read-your-writes),
    /// coalesce the request's own batch, and apply it in one analysis
    /// rebuild before replying — per-delta acks report `applied`,
    /// `coalesced` or `rejected` (a rejected delta, e.g. a no-op, leaves the
    /// network unchanged exactly as sequential replay would).
    fn apply_deltas_now(&self, deltas: &[ConfigDelta]) -> Response {
        let _serialize = self.mutate.lock();
        let Some(verifier) = self.verifier() else {
            return Response::error("no network loaded");
        };
        self.flush_queue_locked(&verifier);
        let batch = coalesce_batch(deltas.to_vec());
        let outcome = verifier.apply_deltas(&batch.deltas);
        self.last_reports.lock().clear();
        let acks = deltas
            .iter()
            .zip(&batch.fates)
            .map(|(delta, fate)| match fate {
                BatchFate::Coalesced => DeltaAck {
                    kind: delta.kind().to_string(),
                    status: "coalesced".to_string(),
                    detail: String::new(),
                },
                BatchFate::Survivor { output } => match &outcome.outcomes[*output] {
                    Ok(applied) => DeltaAck {
                        kind: applied.kind.to_string(),
                        status: "applied".to_string(),
                        detail: format!(
                            "{} of {} PECs touched",
                            applied.pecs_touched.len(),
                            applied.pecs_total
                        ),
                    },
                    Err(e) => DeltaAck {
                        kind: delta.kind().to_string(),
                        status: "rejected".to_string(),
                        detail: e.to_string(),
                    },
                },
            })
            .collect();
        Response::DeltasAccepted {
            ack: "verified".to_string(),
            deltas: acks,
            coalesced: batch.coalesced,
            lag: self.lag_summary(),
        }
    }

    /// Apply everything pending in the streaming queue, serialized against
    /// other mutations. Called by `Verify` (read-your-writes: a verify must
    /// observe every delta the client enqueued before it).
    fn flush_queue(&self, verifier: &Arc<IncrementalVerifier>) {
        if self.queue.depth() == 0 {
            return;
        }
        let _serialize = self.mutate.lock();
        self.flush_queue_locked(verifier);
    }

    /// The mutate-lock-held flush body ([`Mutex`] here is not reentrant, so
    /// paths already holding the lock call this directly).
    fn flush_queue_locked(&self, verifier: &IncrementalVerifier) {
        let start = Instant::now();
        let batch = self.queue.take_all();
        if batch.is_empty() {
            return;
        }
        let (deltas, enqueued): (Vec<_>, Vec<_>) = batch.into_iter().unzip();
        let _ = verifier.apply_deltas(&deltas);
        self.last_reports.lock().clear();
        // Lag is enqueue→applied here; the caller's verify completes against
        // the flushed snapshot immediately after.
        self.queue.record_drain(&enqueued, start.elapsed());
    }

    /// Pending/oldest/percentile lag figures for `DeltasAccepted` replies.
    fn lag_summary(&self) -> LagSummary {
        let lag = self.queue.lag();
        LagSummary {
            pending: self.queue.depth(),
            oldest_ms: self
                .queue
                .oldest_age()
                .map(|age| age.as_millis() as u64)
                .unwrap_or(0),
            p50_ms: lag.p50_micros as f64 / 1_000.0,
            p99_ms: lag.p99_micros as f64 / 1_000.0,
        }
    }

    /// Drain everything pending in the streaming queue: apply it in one
    /// rebuild, then re-verify every registered streaming policy against
    /// the pinned post-batch snapshot so follow-up queries keep getting
    /// served. The take happens *under* the mutate lock — a concurrent
    /// `Verify` flush therefore either applies these deltas itself (and
    /// this drain takes an empty batch) or waits and pins the post-batch
    /// snapshot; a signalled batch can never fall between a flush and its
    /// pinned snapshot. Verification runs off the lock — a delta landing
    /// mid-verify just means the stored report fails its snapshot-identity
    /// check and is refreshed on the next drain.
    fn drain_pending(&self) {
        let start = Instant::now();
        let guard = self.mutate.lock();
        let batch = self.queue.take_all();
        if batch.is_empty() {
            return;
        }
        let (deltas, enqueued): (Vec<_>, Vec<_>) = batch.into_iter().unzip();
        let Some(verifier) = self.verifier() else {
            return; // Load raced the drain; its queue.clear() owns cleanup.
        };
        let outcome = verifier.apply_deltas(&deltas);
        self.last_reports.lock().clear();
        drop(guard);
        let snapshot = outcome.snapshot.clone();
        let policies: Vec<StreamingPolicy> =
            self.streaming_policies.lock().values().cloned().collect();
        let mut reverified = 0u64;
        for streaming in &policies {
            // A policy can stop building after a structural delta (e.g. its
            // device was removed); it is skipped, not fatal.
            let Ok(policy) = streaming.spec.build(snapshot.network()) else {
                continue;
            };
            let scenario = plankton_net::failure::FailureScenario::up_to(streaming.max_failures);
            let (report, _run) = snapshot.verify_with_cache(
                policy.as_ref(),
                streaming.spec.fingerprint(),
                &scenario,
                &streaming.options,
                verifier.cache(),
            );
            if let Some(engine) = &report.engine {
                if engine.tasks_panicked > 0 {
                    continue;
                }
            }
            reverified += 1;
            self.last_reports
                .lock()
                .insert(report.policy.clone(), (snapshot.clone(), Arc::new(report)));
        }
        self.queue.record_drain(&enqueued, start.elapsed());
        trace::event(
            Level::Info,
            "stream_drain",
            &[
                Field::u64("batch", deltas.len() as u64),
                Field::u64("applied", outcome.applied as u64),
                Field::u64("policies_reverified", reverified),
                Field::u64("elapsed_us", start.elapsed().as_micros() as u64),
            ],
        );
    }

    /// Start the background drain thread enforcing the bounded-lag contract:
    /// it wakes when `max_lag_deltas` deltas are pending or the oldest
    /// pending delta is `max_lag_ms` old (session tuning), drains the whole
    /// coalesced batch in one rebuild, and re-verifies streaming policies.
    /// Dropping (or `stop`ping) the handle drains what is left and joins.
    pub fn start_streaming(self: &Arc<Self>) -> StreamingHandle {
        let session = Arc::clone(self);
        let max_lag_deltas = self.tuning.effective_max_lag_deltas();
        let max_lag = Duration::from_millis(self.tuning.effective_max_lag_ms());
        let queue = Arc::clone(&self.queue);
        let thread = std::thread::Builder::new()
            .name("plankton-drain".into())
            .spawn(move || {
                while session.queue.wait_drain_needed(max_lag_deltas, max_lag) {
                    session.drain_pending();
                }
            })
            .expect("spawn streaming drain thread");
        StreamingHandle {
            queue,
            thread: Some(thread),
        }
    }

    fn query(&self, query: &Query) -> Response {
        match query {
            Query::Violations { policy } => match self.last_report(policy) {
                Some(report) => Response::Violations {
                    policy: policy.clone(),
                    violations: report.violations.iter().map(ViolationSummary::of).collect(),
                },
                None => Response::error(format!("no stored report for policy {policy:?}")),
            },
            Query::Pec { prefix } => {
                let Some(verifier) = self.verifier() else {
                    return Response::error("no network loaded");
                };
                let snapshot = verifier.snapshot();
                let pecs = snapshot.pecs();
                let Some(pec) = pecs.pec_containing(prefix.addr()) else {
                    return Response::error(format!("no PEC covers {prefix}"));
                };
                let verdicts = self
                    .last_reports
                    .lock()
                    .iter()
                    .filter(|(_, (of, _))| Arc::ptr_eq(of, &snapshot))
                    .map(|(name, (_, report))| {
                        let holds = !report.violations.iter().any(|v| v.pec == pec.id);
                        (name.clone(), holds)
                    })
                    .collect();
                Response::PecInfo {
                    pec: pec.id.0,
                    range: pec.range.to_string(),
                    prefixes: pec.prefixes.iter().map(|p| p.prefix.to_string()).collect(),
                    verdicts,
                }
            }
            Query::Trail { policy, index } => match self.last_report(policy) {
                Some(report) => match report.violations.get(*index) {
                    Some(v) => Response::Trail {
                        policy: policy.clone(),
                        index: *index,
                        trail: v.trail.to_string(),
                    },
                    None => Response::error(format!(
                        "report for {policy:?} has {} violations, no index {index}",
                        report.violations.len()
                    )),
                },
                None => Response::error(format!("no stored report for policy {policy:?}")),
            },
        }
    }

    /// Current aggregate statistics.
    pub fn stats(&self) -> ServiceStats {
        let verifier = self.verifier();
        let mut stats = ServiceStats {
            loaded: verifier.is_some(),
            verifies: self.verifies.load(Ordering::Relaxed),
            parse_errors: self.parse_errors(),
            connections_open: self.connections_open.load(Ordering::Relaxed),
            connections_served: self.connections_served.load(Ordering::Relaxed),
            connections_drained: self.connections_drained.load(Ordering::Relaxed),
            tasks_panicked: self.tasks_panicked.load(Ordering::Relaxed),
            requests_shed: self.requests_shed.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            cache_recoveries: self.cache_recoveries.load(Ordering::Relaxed),
            uptime_ms: self.started.elapsed().as_millis() as u64,
            ..Default::default()
        };
        let counters = self.queue.counters();
        let lag = self.queue.lag();
        stats.queue_depth = counters.depth;
        stats.deltas_enqueued = counters.enqueued;
        stats.deltas_coalesced = counters.coalesced;
        stats.deltas_shed = counters.shed;
        stats.delta_batches = counters.batches;
        stats.max_batch = counters.max_batch;
        stats.verify_lag_p50_ms = lag.p50_micros as f64 / 1_000.0;
        stats.verify_lag_p99_ms = lag.p99_micros as f64 / 1_000.0;
        stats.streaming_policies = self.streaming_policies.lock().len() as u64;
        if let Some(v) = verifier {
            stats.deltas_applied = v.deltas_applied();
            stats.cache_entries = v.cache().len();
            stats.cache_hits = v.cache().hits();
            stats.cache_misses = v.cache().misses();
            stats.cache_evictions = v.cache().evictions();
            stats.cache_shard_entries = v.cache().shard_occupancy();
            let consulted = stats.cache_hits + stats.cache_misses;
            if consulted > 0 {
                stats.cache_hit_rate = stats.cache_hits as f64 / consulted as f64;
            }
            stats.pecs_total = v.snapshot().pecs().len();
        }
        stats
    }

    /// Look up a stored report — only if it was computed against the
    /// *current* analysis snapshot (PEC ids are partition-relative; a
    /// report that raced a delta must not be read against the new
    /// partition).
    pub fn last_report(&self, policy: &str) -> Option<Arc<VerificationReport>> {
        let current = self.verifier()?.snapshot();
        let reports = self.last_reports.lock();
        let (of, report) = reports.get(policy)?;
        Arc::ptr_eq(of, &current).then(|| report.clone())
    }

    /// Does any stored current-snapshot report violate for this PEC?
    pub fn pec_holds_everywhere(&self, pec: plankton_pec::PecId) -> bool {
        let Some(verifier) = self.verifier() else {
            return true;
        };
        let current = verifier.snapshot();
        self.last_reports
            .lock()
            .values()
            .filter(|(of, _)| Arc::ptr_eq(of, &current))
            .all(|(_, r)| !r.violations.iter().any(|v| v.pec == pec))
    }
}

/// Owner of the background drain thread started by
/// [`ServiceSession::start_streaming`]. `stop` (or dropping the handle)
/// stops the queue — pending deltas get one final drain, pushes start
/// failing with [`PushError::Stopped`] — and joins the thread.
pub struct StreamingHandle {
    queue: Arc<DeltaQueue>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl StreamingHandle {
    /// Stop the drain: final-drain what is pending, then join.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.queue.stop();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for StreamingHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}
