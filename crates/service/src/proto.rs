//! The wire protocol of the verification service: newline-delimited JSON.
//!
//! One request per line in, one response per line out. Requests and
//! responses are serde enums in externally-tagged form — e.g.
//!
//! ```json
//! {"Verify": {"policy": {"Reachability": {"sources": ["edge-1-0"]}}}}
//! ```
//!
//! Device references are *names*, not ids: names are stable across node-add
//! deltas (ids are append-only but names are what operators type), and the
//! session resolves them against the currently loaded topology.

use plankton_config::{ConfigDelta, Network};
use plankton_core::{IncrementalRunStats, PhaseTimings, Tuning, VerificationReport, Violation};
use plankton_net::ip::Prefix;
use plankton_net::topology::NodeId;
use plankton_policy::{
    BlackholeFreedom, BoundedPathLength, LoopFreedom, Policy, Reachability, Waypoint,
};
use serde::{Deserialize, Serialize};

/// The protocol version answered by [`Response::Welcome`]. Major bumps mean
/// incompatible changes (a client refusing an unknown major is correct);
/// minor bumps are additive — v1 request lines parse unchanged under v2.
pub const PROTO_VERSION: &str = "2.0";
/// The major component of [`PROTO_VERSION`], for client-side refusal.
pub const PROTO_VERSION_MAJOR: u64 = 2;
/// Capabilities advertised by [`Response::Welcome`].
pub const PROTO_FEATURES: [&str; 4] = ["streaming", "dump", "top", "persist"];

/// How `ApplyDeltas` acknowledges: synchronously applied, or enqueued into
/// the streaming queue for the bounded-lag drain. On the wire this is the
/// `ack` string field: `"verified"` (the default) or `"enqueued"`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DeltaAckMode {
    /// Flush the queue, then apply this batch before responding: a
    /// subsequent `Verify` is guaranteed to reflect every delta. This is
    /// the previously *implicit* `ApplyDelta` contract, now explicit.
    #[default]
    Verified,
    /// Coalesce into the streaming queue and return immediately; the
    /// background drain applies and verifies within the lag bounds.
    Enqueued,
}

impl DeltaAckMode {
    /// Parse the wire string (empty = the `"verified"` default).
    pub fn parse(s: &str) -> Option<DeltaAckMode> {
        match s {
            "" | "verified" => Some(DeltaAckMode::Verified),
            "enqueued" => Some(DeltaAckMode::Enqueued),
            _ => None,
        }
    }

    /// The wire string.
    pub fn as_str(&self) -> &'static str {
        match self {
            DeltaAckMode::Verified => "verified",
            DeltaAckMode::Enqueued => "enqueued",
        }
    }
}

/// Which policy to verify, with every parameter on the wire (the policy
/// cache fingerprint is derived from this spec, so two specs that could
/// yield different verdicts always hash differently).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// Every source reaches the destination prefix's owners.
    Reachability {
        /// Source device names.
        sources: Vec<String>,
    },
    /// No forwarding loops anywhere.
    LoopFreedom,
    /// No blackholes (configured destinations are delivered).
    BlackholeFreedom,
    /// Traffic from the sources traverses one of the waypoints.
    Waypoint {
        /// Source device names.
        sources: Vec<String>,
        /// Waypoint device names.
        waypoints: Vec<String>,
    },
    /// Paths from the sources stay within a hop bound.
    BoundedPathLength {
        /// Source device names.
        sources: Vec<String>,
        /// Maximum allowed hops.
        max_hops: usize,
    },
}

impl PolicySpec {
    /// The cache fingerprint of this spec (covers every parameter).
    pub fn fingerprint(&self) -> u64 {
        plankton_config::fingerprint_of(self)
    }

    /// Resolve device names and build the policy object.
    pub fn build(&self, network: &Network) -> Result<Box<dyn Policy>, String> {
        let resolve = |names: &[String]| -> Result<Vec<NodeId>, String> {
            names
                .iter()
                .map(|name| {
                    network
                        .topology
                        .node_by_name(name)
                        .ok_or_else(|| format!("unknown device {name:?}"))
                })
                .collect()
        };
        Ok(match self {
            PolicySpec::Reachability { sources } => Box::new(Reachability::new(resolve(sources)?)),
            PolicySpec::LoopFreedom => Box::new(LoopFreedom::everywhere()),
            PolicySpec::BlackholeFreedom => Box::<BlackholeFreedom>::default(),
            PolicySpec::Waypoint { sources, waypoints } => {
                Box::new(Waypoint::new(resolve(sources)?, resolve(waypoints)?))
            }
            PolicySpec::BoundedPathLength { sources, max_hops } => {
                Box::new(BoundedPathLength::new(resolve(sources)?, *max_hops))
            }
        })
    }
}

/// Per-request verification options (all fields optional on the wire).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct VerifyOptions {
    /// Explore up to this many simultaneous link failures (default 0).
    #[serde(default)]
    pub max_failures: usize,
    /// Restrict verification to PECs overlapping these prefixes (empty =
    /// every active PEC).
    #[serde(default)]
    pub restrict_prefixes: Vec<Prefix>,
    /// Stop at the first violation instead of collecting all of them. The
    /// service defaults to *collecting all* — a cache serving many queries
    /// wants complete, deterministic per-task outcomes.
    #[serde(default)]
    pub stop_at_first: bool,
    /// Engine worker threads (default 1).
    #[serde(default)]
    pub cores: usize,
    /// Abandon the verification after this many milliseconds and answer
    /// with `Error {kind: "deadline_exceeded"}` instead of a report
    /// (0 = no deadline). The abandoned run's partial results are never
    /// cached and never stored for queries.
    #[serde(default)]
    pub deadline_ms: u64,
    /// The unified tuning surface ([`Tuning`]): any knob set here wins over
    /// the daemon's CLI layer (request > CLI > default). The legacy `cores`
    /// and `deadline_ms` fields above remain honored for v1 clients; a
    /// knob set in both places resolves to `tuning`.
    #[serde(default)]
    pub tuning: Tuning,
}

/// Follow-up queries against the session's last results.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Query {
    /// Violations of the last verification of the named policy
    /// ("reachability", "loop-freedom", ...).
    Violations {
        /// The policy report name.
        policy: String,
    },
    /// Which PEC covers a prefix, and its verdict in every stored report.
    Pec {
        /// The prefix to look up.
        prefix: Prefix,
    },
    /// The full counterexample trail of one violation of a stored report.
    Trail {
        /// The policy report name.
        policy: String,
        /// Index into the report's violation list.
        index: usize,
    },
}

/// A request line.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Request {
    /// Load (or replace) the network under verification.
    Load {
        /// The network document (`Network::to_json` format).
        network: Network,
    },
    /// Verify a policy on the current network, incrementally.
    Verify {
        /// The policy to verify.
        policy: PolicySpec,
        /// Options (defaults when omitted).
        #[serde(default)]
        options: Option<VerifyOptions>,
    },
    /// Capability handshake: answered with [`Response::Welcome`]. v1
    /// clients never send it and are untouched; `planktonctl` sends it once
    /// per connection and refuses an unknown major version.
    Hello,
    /// Apply one configuration delta, synchronously (kept as the
    /// single-element alias of `ApplyDeltas {ack: "verified"}`; the
    /// response stays [`Response::DeltaApplied`] for wire compatibility).
    ApplyDelta {
        /// The delta.
        delta: ConfigDelta,
    },
    /// Apply a batch of deltas. `ack: "verified"` (default) flushes the
    /// streaming queue and applies the batch before responding;
    /// `ack: "enqueued"` coalesces into the queue and returns immediately,
    /// leaving verification to the bounded-lag background drain. Answered
    /// with [`Response::DeltasAccepted`].
    ApplyDeltas {
        /// The deltas, applied in order (after coalescing).
        deltas: Vec<ConfigDelta>,
        /// `"verified"` (default) or `"enqueued"` — see [`DeltaAckMode`].
        #[serde(default)]
        ack: String,
    },
    /// Query stored results.
    Query {
        /// The query.
        query: Query,
    },
    /// Service statistics.
    Stats,
    /// The process-global metrics registry, rendered as Prometheus-style
    /// text exposition (answered with [`Response::MetricsText`]).
    Metrics,
    /// Write the result cache to the daemon's `--cache-dir` now (it is also
    /// written automatically on shutdown). Errors when no cache directory
    /// is configured.
    Persist,
    /// Stop the daemon: stop accepting connections, drain in-flight
    /// requests, persist the cache when a `--cache-dir` is configured.
    Shutdown,
    /// Recent flight-recorder events — the post-hoc view of what the daemon
    /// just did, available even with no `--log-json` sink configured.
    /// Answered with [`Response::Dump`].
    Dump {
        /// Only events of this trace id (an `Error` reply carries its
        /// `trace_id`, so a failed request's causal chain is one `Dump`
        /// away). `None` returns every retained event.
        #[serde(default)]
        trace_id: Option<u64>,
        /// Only the last N events (applied after the trace filter).
        #[serde(default)]
        last: Option<usize>,
    },
    /// The K hottest (PEC × failure-set) tasks by accumulated duration.
    /// Answered with [`Response::Top`].
    Top {
        /// Rows to return (0 = the default of 10).
        #[serde(default)]
        k: usize,
    },
}

impl Request {
    /// The request's kind tag, the `kind` label of the per-request metrics
    /// (`plankton_requests_total`, `plankton_request_seconds`).
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Load { .. } => "load",
            Request::Verify { .. } => "verify",
            Request::Hello => "hello",
            Request::ApplyDelta { .. } => "apply_delta",
            Request::ApplyDeltas { .. } => "apply_deltas",
            Request::Query { .. } => "query",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Persist => "persist",
            Request::Shutdown => "shutdown",
            Request::Dump { .. } => "dump",
            Request::Top { .. } => "top",
        }
    }
}

/// One flight-recorder event on the wire.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DumpEvent {
    /// Recorder sequence number (global, monotonically increasing).
    pub seq: u64,
    /// Monotonic microseconds since the recorder was created.
    pub mono_us: u64,
    /// The trace id the event was emitted under (0 = none).
    pub trace: u64,
    /// Severity name (`trace|debug|info|warn|error`).
    pub level: String,
    /// The event name (`request`, `slow_task`, ...).
    pub event: String,
    /// The full JSONL rendering (wall-clock timestamp and all fields).
    pub json: String,
}

/// One row of the hottest-tasks table: the accumulated cost of a single
/// (PEC × failure-set) task identity.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TaskCostSummary {
    /// The PEC id.
    pub pec: u64,
    /// The failure set, rendered.
    pub failures: String,
    /// Completed executions.
    pub runs: u64,
    /// Total execution time, microseconds.
    pub total_micros: u64,
    /// Longest single execution, microseconds.
    pub max_micros: u64,
    /// Model-checker states explored across executions.
    pub states: u64,
    /// Executions avoided entirely by the result cache.
    pub cache_hits: u64,
    /// Executions that panicked.
    pub panics: u64,
}

/// One violation, summarized for the wire.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ViolationSummary {
    /// The PEC id.
    pub pec: u32,
    /// The most specific prefix of that PEC.
    pub prefix: Option<String>,
    /// The failure scenario, rendered.
    pub failures: String,
    /// The policy's reason.
    pub reason: String,
    /// Non-deterministic protocol choices in the counterexample trail.
    pub nondeterministic_steps: usize,
}

impl ViolationSummary {
    /// Summarize a report violation.
    pub fn of(v: &Violation) -> Self {
        ViolationSummary {
            pec: v.pec.0,
            prefix: v.prefix.map(|p| p.to_string()),
            failures: v.failures.to_string(),
            reason: v.reason.clone(),
            nondeterministic_steps: v.trail.nondeterministic_steps(),
        }
    }
}

/// A verification report, summarized for the wire.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReportSummary {
    /// The policy report name.
    pub policy: String,
    /// Did the policy hold?
    pub holds: bool,
    /// Number of violations found.
    pub violations: usize,
    /// The first violation, if any.
    pub first_violation: Option<ViolationSummary>,
    /// PECs whose verdict the request needed.
    pub pecs_verified: usize,
    /// Failure scenarios explored per PEC.
    pub failure_sets_explored: usize,
    /// Converged data planes the policy was evaluated on.
    pub data_planes_checked: u64,
    /// Model-checker states explored (cached + fresh).
    pub states_explored: u64,
    /// Wall-clock milliseconds.
    pub elapsed_ms: u64,
    /// Where the wall time went, per phase. Carried explicitly here because
    /// [`VerificationReport`] skips it in serialization (it would perturb
    /// normalized-report identity checks).
    #[serde(default)]
    pub phase_timings: PhaseTimings,
    /// What the incremental layer did (re-explored vs cached).
    pub run: IncrementalRunStats,
}

impl ReportSummary {
    /// Summarize a report plus its incremental run statistics.
    pub fn of(report: &VerificationReport, run: IncrementalRunStats) -> Self {
        ReportSummary {
            policy: report.policy.clone(),
            holds: report.holds(),
            violations: report.violations.len(),
            first_violation: report.first_violation().map(ViolationSummary::of),
            pecs_verified: report.pecs_verified,
            failure_sets_explored: report.failure_sets_explored,
            data_planes_checked: report.data_planes_checked,
            states_explored: report.stats.states_explored(),
            elapsed_ms: report.elapsed.as_millis() as u64,
            phase_timings: report.phases,
            run,
        }
    }
}

/// The result of an `ApplyDelta` request.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeltaSummary {
    /// The delta kind tag.
    pub kind: String,
    /// Devices the config diff touched (names).
    pub devices_touched: Vec<String>,
    /// Prefixes the config diff touched.
    pub prefixes_touched: Vec<String>,
    /// Did the protocol-visible topology change?
    pub topology_changed: bool,
    /// PECs of the new partition the touch maps to (advisory dirty set).
    pub pecs_touched: usize,
    /// Total PECs in the new partition.
    pub pecs_total: usize,
}

/// One delta's fate inside a `DeltasAccepted` response, in request order.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeltaAck {
    /// The delta kind tag.
    pub kind: String,
    /// `"applied"` (took effect now), `"enqueued"` (pending in the
    /// streaming queue), `"coalesced"` (folded into another pending delta —
    /// its effect survives there), or `"rejected"` (apply error; the
    /// network is unchanged by this delta).
    pub status: String,
    /// For `"rejected"`: the apply error.
    #[serde(default)]
    pub detail: String,
}

/// The streaming queue's lag picture at response time.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LagSummary {
    /// Deltas pending in the queue (after coalescing).
    #[serde(default)]
    pub pending: u64,
    /// Age of the oldest pending delta, milliseconds.
    #[serde(default)]
    pub oldest_ms: u64,
    /// Median enqueue→verified lag over recent drains, milliseconds.
    #[serde(default)]
    pub p50_ms: f64,
    /// 99th-percentile enqueue→verified lag over recent drains, milliseconds.
    #[serde(default)]
    pub p99_ms: f64,
}

/// Aggregate statistics of the running service.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Is a network loaded?
    pub loaded: bool,
    /// Deltas applied since the network was loaded.
    pub deltas_applied: u64,
    /// Verify requests served.
    pub verifies: u64,
    /// Resident result-cache entries.
    pub cache_entries: usize,
    /// Lifetime per-task cache key hits.
    pub cache_hits: u64,
    /// Lifetime per-task cache key misses.
    pub cache_misses: u64,
    /// Request lines that failed to parse (the daemon replies with an
    /// `Error` and keeps serving, but exits non-zero at end of stream).
    #[serde(default)]
    pub parse_errors: u64,
    /// Entries evicted by the cache capacity bound (oldest-first).
    pub cache_evictions: u64,
    /// Client connections currently open (socket mode; 0 on stdio).
    #[serde(default)]
    pub connections_open: u64,
    /// Client connections accepted since the daemon started.
    #[serde(default)]
    pub connections_served: u64,
    /// Connections forcibly unblocked by the shutdown drain (their streams
    /// were shut down while a request might still have been in flight).
    #[serde(default)]
    pub connections_drained: u64,
    /// Resident result-cache entries per shard, in shard order (occupancy
    /// skew means the key hash is not spreading).
    #[serde(default)]
    pub cache_shard_entries: Vec<usize>,
    /// Lifetime cache hit rate, `hits / (hits + misses)` (0.0 when the cache
    /// was never consulted).
    #[serde(default)]
    pub cache_hit_rate: f64,
    /// PECs in the current partition.
    pub pecs_total: usize,
    /// Milliseconds since the service started.
    pub uptime_ms: u64,
    /// Engine tasks that panicked and were contained as structured errors
    /// (the daemon answered `task_panicked` and kept serving).
    #[serde(default)]
    pub tasks_panicked: u64,
    /// Verify requests refused with `overloaded` by the `--max-inflight`
    /// admission gate.
    #[serde(default)]
    pub requests_shed: u64,
    /// Verify requests abandoned at their `deadline_ms` budget.
    #[serde(default)]
    pub deadline_exceeded: u64,
    /// Persisted-cache loads that failed (corrupt/truncated/stale snapshot)
    /// and degraded to a cold start instead of an error.
    #[serde(default)]
    pub cache_recoveries: u64,
    /// Deltas pending in the streaming queue (after coalescing).
    #[serde(default)]
    pub queue_depth: u64,
    /// Deltas ever accepted into the streaming queue.
    #[serde(default)]
    pub deltas_enqueued: u64,
    /// Pending deltas coalesced away before verification (the work the
    /// queue saved).
    #[serde(default)]
    pub deltas_coalesced: u64,
    /// Deltas shed at the queue high-water mark (`--max-pending-deltas`).
    #[serde(default)]
    pub deltas_shed: u64,
    /// Coalesced batches drained from the streaming queue.
    #[serde(default)]
    pub delta_batches: u64,
    /// Largest drained batch.
    #[serde(default)]
    pub max_batch: u64,
    /// Median enqueue→verified lag over recent drains, milliseconds.
    #[serde(default)]
    pub verify_lag_p50_ms: f64,
    /// 99th-percentile enqueue→verified lag over recent drains, milliseconds.
    #[serde(default)]
    pub verify_lag_p99_ms: f64,
    /// Policies the background drain re-verifies after each batch (every
    /// policy a `Verify` request has run since load).
    #[serde(default)]
    pub streaming_policies: u64,
}

/// A response line.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Response {
    /// Generic success.
    Ok {
        /// Human-readable detail.
        message: String,
    },
    /// A network was loaded.
    Loaded {
        /// Devices in the topology.
        devices: usize,
        /// Links in the topology.
        links: usize,
        /// PECs computed.
        pecs: usize,
        /// PECs carrying configuration.
        active_pecs: usize,
        /// Result-cache entries warm-started from the persisted cache file
        /// (0 without `--cache-dir`, on a cold start, or when the persisted
        /// snapshot's fingerprint-scheme version was stale and rejected).
        #[serde(default)]
        cache_warm_entries: usize,
    },
    /// The capability handshake reply.
    Welcome {
        /// The protocol version ([`PROTO_VERSION`]), `"major.minor"`.
        proto_version: String,
        /// Advertised capabilities ([`PROTO_FEATURES`]).
        features: Vec<String>,
    },
    /// A verification finished.
    Report(ReportSummary),
    /// A delta was applied.
    DeltaApplied(DeltaSummary),
    /// A delta batch was accepted (`ApplyDeltas`).
    DeltasAccepted {
        /// The ack mode that was honored (`"verified"` or `"enqueued"`).
        ack: String,
        /// Per-delta fates, in request order.
        deltas: Vec<DeltaAck>,
        /// Deltas coalesced away by this request (within the batch and
        /// against already-pending deltas).
        #[serde(default)]
        coalesced: u64,
        /// The queue's lag picture after this request.
        #[serde(default)]
        lag: LagSummary,
    },
    /// Violations of a stored report.
    Violations {
        /// The policy report name.
        policy: String,
        /// The violations.
        violations: Vec<ViolationSummary>,
    },
    /// PEC lookup result.
    PecInfo {
        /// The PEC id.
        pec: u32,
        /// The PEC's address range, rendered.
        range: String,
        /// Contributing prefixes, rendered.
        prefixes: Vec<String>,
        /// `(policy, holds-for-this-pec)` per stored report.
        verdicts: Vec<(String, bool)>,
    },
    /// A counterexample trail, rendered.
    Trail {
        /// The policy report name.
        policy: String,
        /// The violation index.
        index: usize,
        /// The rendered trail (failure scenario + RPVP steps).
        trail: String,
    },
    /// Service statistics.
    Stats(ServiceStats),
    /// The metrics registry in Prometheus text exposition format.
    MetricsText {
        /// The rendered exposition.
        text: String,
    },
    /// The result cache was persisted.
    Persisted {
        /// Entries written.
        entries: usize,
        /// The file they were written to.
        path: String,
    },
    /// Recent flight-recorder events, oldest first.
    Dump {
        /// The retained events matching the request's filters.
        events: Vec<DumpEvent>,
        /// Events ever recorded (including overwritten ones).
        total_recorded: u64,
        /// Events lost to ring overwriting.
        dropped: u64,
    },
    /// The hottest-tasks attribution table, hottest first.
    Top {
        /// The K hottest (PEC × failure-set) rows by total duration.
        rows: Vec<TaskCostSummary>,
        /// Sum of `total_micros` over *every* tracked task (not just the
        /// returned rows) — comparable against `plankton_task_seconds`.
        total_micros: u64,
        /// Task identities tracked in the registry.
        tasks_tracked: u64,
    },
    /// The request failed.
    Error {
        /// What went wrong.
        message: String,
        /// Machine-readable failure kind: `"request"` (bad input),
        /// `"task_panicked"`, `"deadline_exceeded"`, `"overloaded"`, or
        /// `"internal_panic"`. Clients branch on this, not on `message`.
        #[serde(default)]
        kind: String,
        /// For `"overloaded"`: how long the client should back off before
        /// retrying.
        #[serde(default)]
        retry_after_ms: Option<u64>,
        /// The trace id the failing request ran under (0 = none): pass it to
        /// `Dump {trace_id}` to retrieve the causal chain post-hoc.
        #[serde(default)]
        trace_id: u64,
    },
}

/// The `kind` values carried by [`Response::Error`].
pub mod error_kind {
    /// Bad input: unparsable line, unknown device, missing network, ...
    pub const REQUEST: &str = "request";
    /// A verification task panicked; the run was contained and abandoned.
    pub const TASK_PANICKED: &str = "task_panicked";
    /// The verification exceeded its `deadline_ms` budget.
    pub const DEADLINE_EXCEEDED: &str = "deadline_exceeded";
    /// The `--max-inflight` admission gate refused the verify.
    pub const OVERLOADED: &str = "overloaded";
    /// The request handler itself panicked (a service bug, contained).
    pub const INTERNAL_PANIC: &str = "internal_panic";
}

impl Response {
    /// A bad-input error (`kind: "request"`).
    pub fn error(message: impl Into<String>) -> Response {
        Response::error_kind(error_kind::REQUEST, message)
    }

    /// An error with an explicit machine-readable kind, stamped with the
    /// emitting thread's current trace id (request handlers run inside a
    /// trace scope, so the stamp matches the events the request logged).
    pub fn error_kind(kind: &str, message: impl Into<String>) -> Response {
        Response::Error {
            message: message.into(),
            kind: kind.to_string(),
            retry_after_ms: None,
            trace_id: plankton_telemetry::trace::current(),
        }
    }

    /// An admission-control refusal carrying a retry hint.
    pub fn overloaded(message: impl Into<String>, retry_after_ms: u64) -> Response {
        Response::Error {
            message: message.into(),
            kind: error_kind::OVERLOADED.to_string(),
            retry_after_ms: Some(retry_after_ms),
            trace_id: plankton_telemetry::trace::current(),
        }
    }
}

impl Request {
    /// Serialize to one wire line.
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("requests always serialize")
    }
}

impl Response {
    /// Serialize to one wire line.
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("responses always serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let req = Request::Verify {
            policy: PolicySpec::Reachability {
                sources: vec!["r1".into(), "r2".into()],
            },
            options: Some(VerifyOptions {
                max_failures: 1,
                ..Default::default()
            }),
        };
        let line = serde_json::to_string(&req).unwrap();
        let back: Request = serde_json::from_str(&line).unwrap();
        match back {
            Request::Verify { policy, options } => {
                assert_eq!(
                    policy,
                    PolicySpec::Reachability {
                        sources: vec!["r1".into(), "r2".into()]
                    }
                );
                assert_eq!(options.unwrap().max_failures, 1);
            }
            other => panic!("bad roundtrip: {other:?}"),
        }
    }

    #[test]
    fn omitted_options_default() {
        let back: Request =
            serde_json::from_str(r#"{"Verify": {"policy": "LoopFreedom"}}"#).unwrap();
        match back {
            Request::Verify { policy, options } => {
                assert_eq!(policy, PolicySpec::LoopFreedom);
                assert!(options.is_none());
            }
            other => panic!("bad parse: {other:?}"),
        }
        let back: Request = serde_json::from_str(r#""Stats""#).unwrap();
        assert!(matches!(back, Request::Stats));
    }

    #[test]
    fn hello_and_apply_deltas_roundtrip() {
        let back: Request = serde_json::from_str(r#""Hello""#).unwrap();
        assert!(matches!(back, Request::Hello));
        assert_eq!(back.kind(), "hello");

        // `ack` is serde-defaulted: a batch without it is synchronous.
        let line = r#"{"ApplyDeltas": {"deltas": [{"LinkDown": {"link": 3}}]}}"#;
        let back: Request = serde_json::from_str(line).unwrap();
        let Request::ApplyDeltas { deltas, ack } = back else {
            panic!("bad parse");
        };
        assert_eq!(deltas.len(), 1);
        assert_eq!(DeltaAckMode::parse(&ack), Some(DeltaAckMode::Verified));
        assert_eq!(
            DeltaAckMode::parse("enqueued"),
            Some(DeltaAckMode::Enqueued)
        );
        assert_eq!(DeltaAckMode::parse("nonsense"), None);
    }

    #[test]
    fn v1_stats_and_options_still_parse_under_v2() {
        // A v1 `Stats` payload (no streaming fields) deserializes with the
        // new fields defaulted — old clients and old daemons interoperate.
        let v1 = r#"{"loaded":true,"deltas_applied":2,"verifies":1,"cache_entries":0,
                     "cache_hits":0,"cache_misses":0,"cache_evictions":0,
                     "pecs_total":63,"uptime_ms":5}"#;
        let stats: ServiceStats = serde_json::from_str(v1).unwrap();
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.deltas_coalesced, 0);

        // A v1 VerifyOptions without `tuning` gets the empty tuning layer.
        let opts: VerifyOptions = serde_json::from_str(r#"{"max_failures":1}"#).unwrap();
        assert!(opts.tuning.is_empty());
        assert_eq!(opts.max_failures, 1);
    }

    #[test]
    fn welcome_advertises_version_and_features() {
        let welcome = Response::Welcome {
            proto_version: PROTO_VERSION.to_string(),
            features: PROTO_FEATURES.iter().map(|f| f.to_string()).collect(),
        };
        let line = welcome.to_line();
        assert!(line.contains("2.0"));
        assert!(line.contains("streaming"));
        let major: u64 = PROTO_VERSION.split('.').next().unwrap().parse().unwrap();
        assert_eq!(major, PROTO_VERSION_MAJOR);
    }

    #[test]
    fn spec_fingerprints_cover_parameters() {
        let a = PolicySpec::BoundedPathLength {
            sources: vec!["x".into()],
            max_hops: 4,
        };
        let b = PolicySpec::BoundedPathLength {
            sources: vec!["x".into()],
            max_hops: 5,
        };
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
    }
}
