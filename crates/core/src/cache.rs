//! The content-addressed verification result cache.
//!
//! One entry stores the complete outcome of verifying a single PEC under a
//! single failure scenario for a given policy/options pair — keyed by the
//! task content key computed in [`plankton_pec::invalidation`]: a hash over
//! the PEC's configuration content, the network slices its protocol models
//! read, the policy/options fingerprints, the failure set, and (composed
//! recursively) the keys of every PEC it transitively depends on. Equal key
//! ⟹ bit-identical inputs ⟹ the cached outcome *is* the outcome, so
//! incremental re-verification serves clean tasks from here and re-executes
//! only tasks whose key misses.
//!
//! The cache is built for concurrent sessions: the map is split into
//! [`ResultCache::SHARDS`] independently locked shards (keys are FNV
//! outputs, so the low bits spread uniformly), which keeps insert traffic
//! from the engine's worker pool and planning-pass lookups from several
//! client connections off one global lock. Counters are plain atomics.
//!
//! Because keys are content hashes, entries are also meaningful *across
//! process lifetimes*: [`ResultCache::to_snapshot`] /
//! [`ResultCache::absorb_snapshot`] serialize the map (version-stamped with
//! [`plankton_config::FINGERPRINT_SCHEME_VERSION`]) so a restarted daemon
//! can warm-start from the previous run's results — see
//! [`ResultCache::save_to`] / [`ResultCache::load_from`].

use crate::outcome::ConvergedRecord;
use crate::report::Violation;
use parking_lot::Mutex;
use plankton_checker::SearchStats;
use plankton_config::FINGERPRINT_SCHEME_VERSION;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Process-global cache metrics, resolved once. Every [`ResultCache`]
/// instance in the process folds into the same series (the daemon runs one
/// cache; tests tolerate sharing).
struct CacheMetrics {
    hits: Arc<plankton_telemetry::Counter>,
    misses: Arc<plankton_telemetry::Counter>,
    evictions: Arc<plankton_telemetry::Counter>,
    /// One occupancy gauge per shard, labelled `shard="0"`..`shard="15"`.
    shard_entries: Vec<Arc<plankton_telemetry::Gauge>>,
}

fn cache_metrics() -> &'static CacheMetrics {
    static METRICS: OnceLock<CacheMetrics> = OnceLock::new();
    const SHARD_LABELS: [&str; ResultCache::SHARDS] = [
        "0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15",
    ];
    METRICS.get_or_init(|| {
        let registry = plankton_telemetry::metrics::global();
        CacheMetrics {
            hits: registry.counter(
                "plankton_cache_hits_total",
                "Verification tasks served from the result cache.",
            ),
            misses: registry.counter(
                "plankton_cache_misses_total",
                "Verification tasks that had to be recomputed.",
            ),
            evictions: registry.counter(
                "plankton_cache_evictions_total",
                "Entries evicted oldest-first by the capacity bound.",
            ),
            shard_entries: SHARD_LABELS
                .iter()
                .map(|shard| {
                    registry.gauge_with(
                        "plankton_cache_entries",
                        "Resident result-cache entries per shard.",
                        &[("shard", shard)],
                    )
                })
                .collect(),
        }
    })
}

/// The cached outcome of one (PEC × failure scenario) verification task.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PolicyOutcome {
    /// Violations found on this PEC under this failure set. The `pec` field
    /// of each entry holds the id at caching time; it is relabeled to the
    /// current id when merged into a report (PEC ids shift when a delta
    /// repartitions the header space, content does not).
    pub violations: Vec<Violation>,
    /// Model-checking statistics of the task.
    pub stats: SearchStats,
    /// Converged data planes on which the policy was evaluated.
    pub data_planes_checked: u64,
    /// Converged records for dependent PECs (empty when the PEC had no
    /// dependents under this request).
    pub records: Vec<Arc<ConvergedRecord>>,
}

/// One lock's worth of the cache: the key → outcome map plus the key
/// insertion order, so the capacity bound can evict oldest-first.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<u64, Arc<PolicyOutcome>>,
    /// Keys in insertion order. First-write-wins inserts keep this in exact
    /// 1:1 correspondence with `map` (every resident key appears exactly
    /// once), so popping the front is popping the oldest resident entry.
    order: VecDeque<u64>,
}

/// A serializable image of the cache contents, stamped with the
/// fingerprint-scheme version that produced the keys. Snapshots from a
/// different scheme version are rejected on load: their keys were computed
/// under different hashing semantics and must not be matched against.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CacheSnapshot {
    /// [`FINGERPRINT_SCHEME_VERSION`] at save time.
    pub version: u32,
    /// Every resident `(key, outcome)` pair, in shard-then-insertion order.
    pub entries: Vec<(u64, Arc<PolicyOutcome>)>,
}

/// A concurrent, sharded, content-hash-keyed map of task outcomes.
///
/// Entries are immutable once inserted (`Arc`-shared). The cache is bounded
/// per shard: when an insert would exceed a shard's share of the capacity,
/// the shard's *oldest* entries are evicted first — content keys carry no
/// recency signal beyond insertion order, and oldest-first keeps the warm
/// working set (what recent verifies touched) alive. Eviction only costs
/// re-verification, never correctness.
#[derive(Debug)]
pub struct ResultCache {
    shards: Box<[Mutex<Shard>]>,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for ResultCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ResultCache {
    /// Default bound on resident entries.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Lock shards (a power of two; keys are FNV hashes, so the low bits
    /// select uniformly).
    pub const SHARDS: usize = 16;

    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// An empty cache bounded to (approximately, rounded up to a multiple of
    /// [`ResultCache::SHARDS`]) `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        let shards = (0..Self::SHARDS).map(|_| Mutex::new(Shard::default()));
        ResultCache {
            shards: shards.collect(),
            shard_capacity: capacity.max(1).div_ceil(Self::SHARDS),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        &self.shards[(key as usize) & (Self::SHARDS - 1)]
    }

    /// Look a task outcome up, counting the hit/miss.
    pub fn get(&self, key: u64) -> Option<Arc<PolicyOutcome>> {
        let found = self.shard(key).lock().map.get(&key).cloned();
        match &found {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                cache_metrics().hits.inc();
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                cache_metrics().misses.inc();
            }
        };
        found
    }

    /// Look a task outcome up without touching the hit/miss counters (used
    /// by the planning pass that classifies tasks before execution — a key
    /// that hits but whose component re-runs anyway saved no work and must
    /// not count as reuse).
    pub fn peek(&self, key: u64) -> Option<Arc<PolicyOutcome>> {
        self.shard(key).lock().map.get(&key).cloned()
    }

    /// Record `n` tasks actually served from the cache (the planning pass
    /// classifies with [`ResultCache::peek`] and reports reuse explicitly).
    pub fn count_hits(&self, n: u64) {
        self.hits.fetch_add(n, Ordering::Relaxed);
        cache_metrics().hits.add(n);
    }

    /// Record `n` tasks that had to be recomputed.
    pub fn count_misses(&self, n: u64) {
        self.misses.fetch_add(n, Ordering::Relaxed);
        cache_metrics().misses.add(n);
    }

    /// Insert a task outcome. First write wins (outcomes for equal keys are
    /// equal by construction); returns whether the entry was actually
    /// inserted (`false` = the key was already resident). When the shard is
    /// at capacity the oldest resident entries are evicted to make room.
    pub fn insert(&self, key: u64, outcome: Arc<PolicyOutcome>) -> bool {
        let mut shard = self.shard(key).lock();
        if shard.map.contains_key(&key) {
            return false;
        }
        let mut evicted = 0u64;
        while shard.map.len() >= self.shard_capacity {
            let Some(oldest) = shard.order.pop_front() else {
                break;
            };
            shard.map.remove(&oldest);
            evicted += 1;
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            cache_metrics().evictions.add(evicted);
        }
        shard.map.insert(key, outcome);
        shard.order.push_back(key);
        cache_metrics().shard_entries[(key as usize) & (Self::SHARDS - 1)]
            .set(shard.map.len() as u64);
        true
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry.
    pub fn clear(&self) {
        for (i, shard) in self.shards.iter().enumerate() {
            let mut shard = shard.lock();
            shard.map.clear();
            shard.order.clear();
            cache_metrics().shard_entries[i].set(0);
        }
    }

    /// Resident entries per shard, in shard order (surfaced in daemon
    /// `Stats` so occupancy skew is visible without a metrics scrape).
    pub fn shard_occupancy(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.lock().map.len()).collect()
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by the capacity bound (oldest-first), lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// A serializable image of the current contents, stamped with the
    /// running fingerprint-scheme version.
    pub fn to_snapshot(&self) -> CacheSnapshot {
        let mut entries = Vec::new();
        for shard in self.shards.iter() {
            let shard = shard.lock();
            for &key in &shard.order {
                if let Some(outcome) = shard.map.get(&key) {
                    entries.push((key, outcome.clone()));
                }
            }
        }
        CacheSnapshot {
            version: FINGERPRINT_SCHEME_VERSION,
            entries,
        }
    }

    /// Merge a snapshot's entries into the live cache (first write wins, so
    /// live entries are never replaced). Returns the number of entries
    /// actually inserted — keys already resident, or absorbed-then-evicted
    /// by the capacity bound, are not counted — or an error when the
    /// snapshot's fingerprint-scheme version does not match the running one:
    /// such keys were computed under different hashing semantics and
    /// matching against them would serve wrong results.
    pub fn absorb_snapshot(&self, snapshot: &CacheSnapshot) -> Result<usize, String> {
        if snapshot.version != FINGERPRINT_SCHEME_VERSION {
            return Err(format!(
                "cache snapshot has fingerprint-scheme version {} but this build uses {}; \
                 refusing to warm-start from it",
                snapshot.version, FINGERPRINT_SCHEME_VERSION
            ));
        }
        let mut absorbed = 0;
        for (key, outcome) in &snapshot.entries {
            absorbed += self.insert(*key, outcome.clone()) as usize;
        }
        Ok(absorbed)
    }

    /// Persist the cache contents as version-stamped JSON at `path`
    /// (atomically: written to a writer-unique sibling temp file, then
    /// renamed — concurrent `Persist` requests from different daemon
    /// connections must not interleave writes into one temp file, and each
    /// rename installs a complete snapshot, last one winning). The JSON body
    /// is followed by a [`CHECKSUM_PREFIX`] footer line so `load_from` can
    /// tell a truncated or bit-flipped file from a valid one. Returns the
    /// number of entries written.
    pub fn save_to(&self, path: &Path) -> std::io::Result<usize> {
        static WRITER: AtomicU64 = AtomicU64::new(0);
        plankton_faultinject::trigger("cache_save")?;
        let snapshot = self.to_snapshot();
        let json = serde_json::to_string(&snapshot)
            .map_err(|e| std::io::Error::other(format!("cache snapshot serialize: {e}")))?;
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let tmp = path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            WRITER.fetch_add(1, Ordering::Relaxed)
        ));
        let body = format!(
            "{json}\n{CHECKSUM_PREFIX}{:016x}\n",
            fnv1a64(json.as_bytes())
        );
        std::fs::write(&tmp, body)?;
        std::fs::rename(&tmp, path)?;
        Ok(snapshot.entries.len())
    }

    /// Load a persisted snapshot from `path` and merge it into the live
    /// cache. Returns the number of entries absorbed; a missing file,
    /// unparsable content, a missing/mismatched checksum footer (truncation
    /// or bit rot), or a stale fingerprint-scheme version all report an
    /// error (the caller decides whether a cold start is acceptable).
    pub fn load_from(&self, path: &Path) -> Result<usize, String> {
        plankton_faultinject::trigger("cache_load")
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let raw = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let json = verify_checksum(&raw).map_err(|e| format!("{}: {e}", path.display()))?;
        let snapshot: CacheSnapshot = serde_json::from_str(json)
            .map_err(|e| format!("{}: not a cache snapshot: {e}", path.display()))?;
        self.absorb_snapshot(&snapshot)
    }
}

/// Marker line that carries the snapshot checksum, after the JSON body.
const CHECKSUM_PREFIX: &str = "#plankton-cache-fnv64:";

/// FNV-1a over the snapshot body; cheap, no tables, and plenty to catch the
/// failure modes that actually happen to a cache file (truncation by a
/// mid-write crash, a flipped bit, a partial rename target).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1_0000_0000_01b3);
    }
    hash
}

/// Split a persisted snapshot into body + footer and verify the checksum,
/// returning the JSON body. The error names the corruption class so the
/// daemon's structured warn is actionable.
fn verify_checksum(raw: &str) -> Result<&str, String> {
    let trimmed = raw.trim_end_matches('\n');
    let Some((body, footer)) = trimmed.rsplit_once('\n') else {
        return Err("missing checksum footer (truncated snapshot?)".to_string());
    };
    let Some(hex) = footer.strip_prefix(CHECKSUM_PREFIX) else {
        return Err("missing checksum footer (truncated snapshot?)".to_string());
    };
    let expected = u64::from_str_radix(hex.trim(), 16)
        .map_err(|_| "unreadable checksum footer".to_string())?;
    let actual = fnv1a64(body.as_bytes());
    if actual != expected {
        return Err(format!(
            "checksum mismatch (stored {expected:016x}, computed {actual:016x}): \
             snapshot is corrupt"
        ));
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Keys that all land in one shard (multiples of SHARDS keep the low
    /// bits equal), so the per-shard capacity bound is observable.
    fn shard_key(i: u64) -> u64 {
        i * ResultCache::SHARDS as u64
    }

    /// Tests that touch `save_to`/`load_from` share this lock: one of them
    /// arms the process-global `cache_save` failpoint, which must not fire
    /// under a concurrently running sibling test.
    static FS_TESTS: Mutex<()> = Mutex::new(());

    #[test]
    fn get_insert_and_counters() {
        let cache = ResultCache::new();
        assert!(cache.get(7).is_none());
        cache.insert(7, Arc::new(PolicyOutcome::default()));
        assert!(cache.get(7).is_some());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
        assert!(cache.peek(8).is_none());
        assert_eq!(cache.misses(), 1, "peek does not count");
    }

    #[test]
    fn capacity_bound_evicts_oldest_first() {
        // Total capacity SHARDS*1 → one entry per shard; all keys in one
        // shard, so each insert past the first evicts exactly the oldest.
        let cache = ResultCache::with_capacity(1);
        cache.insert(shard_key(0), Arc::new(PolicyOutcome::default()));
        cache.insert(shard_key(1), Arc::new(PolicyOutcome::default()));
        assert_eq!(cache.evictions(), 1);
        assert!(cache.peek(shard_key(0)).is_none(), "oldest entry evicted");
        assert!(cache.peek(shard_key(1)).is_some(), "newest entry resident");
        cache.insert(shard_key(2), Arc::new(PolicyOutcome::default()));
        assert_eq!(cache.evictions(), 2);
        assert!(cache.peek(shard_key(1)).is_none(), "evicts in FIFO order");
        assert!(cache.peek(shard_key(2)).is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn reinserting_a_resident_key_neither_evicts_nor_duplicates() {
        let cache = ResultCache::with_capacity(ResultCache::SHARDS * 2);
        cache.insert(shard_key(0), Arc::new(PolicyOutcome::default()));
        cache.insert(shard_key(1), Arc::new(PolicyOutcome::default()));
        // Shard full; re-inserting a resident key must not evict anything.
        cache.insert(shard_key(0), Arc::new(PolicyOutcome::default()));
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.len(), 2);
        // The next *new* key evicts key 0 (still the oldest — re-insert did
        // not refresh its position).
        cache.insert(shard_key(2), Arc::new(PolicyOutcome::default()));
        assert_eq!(cache.evictions(), 1);
        assert!(cache.peek(shard_key(0)).is_none());
        assert!(cache.peek(shard_key(1)).is_some());
    }

    #[test]
    fn first_write_wins() {
        let cache = ResultCache::new();
        let a = Arc::new(PolicyOutcome {
            data_planes_checked: 1,
            ..Default::default()
        });
        let b = Arc::new(PolicyOutcome {
            data_planes_checked: 2,
            ..Default::default()
        });
        cache.insert(9, a);
        cache.insert(9, b);
        assert_eq!(cache.peek(9).unwrap().data_planes_checked, 1);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let cache = ResultCache::new();
        for k in [3u64, 19, 0xdead_beef] {
            cache.insert(
                k,
                Arc::new(PolicyOutcome {
                    data_planes_checked: k,
                    ..Default::default()
                }),
            );
        }
        let json = serde_json::to_string(&cache.to_snapshot()).unwrap();
        let snapshot: CacheSnapshot = serde_json::from_str(&json).unwrap();
        let restored = ResultCache::new();
        assert_eq!(restored.absorb_snapshot(&snapshot).unwrap(), 3);
        assert_eq!(restored.len(), 3);
        assert_eq!(restored.peek(19).unwrap().data_planes_checked, 19);
    }

    #[test]
    fn stale_scheme_version_is_rejected() {
        let cache = ResultCache::new();
        cache.insert(1, Arc::new(PolicyOutcome::default()));
        let mut snapshot = cache.to_snapshot();
        snapshot.version = FINGERPRINT_SCHEME_VERSION + 1;
        let restored = ResultCache::new();
        let err = restored.absorb_snapshot(&snapshot).unwrap_err();
        assert!(err.contains("version"), "{err}");
        assert!(restored.is_empty(), "no entries from a stale snapshot");
    }

    #[test]
    fn save_and_load_through_a_file() {
        let _guard = FS_TESTS.lock();
        let dir = std::env::temp_dir().join(format!("plankton-cache-{}", std::process::id()));
        let path = dir.join("cache.json");
        let cache = ResultCache::new();
        cache.insert(42, Arc::new(PolicyOutcome::default()));
        assert_eq!(cache.save_to(&path).unwrap(), 1);
        let restored = ResultCache::new();
        assert_eq!(restored.load_from(&path).unwrap(), 1);
        assert!(restored.peek(42).is_some());
        assert!(restored.load_from(&dir.join("absent.json")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_snapshots_are_detected_by_the_checksum_footer() {
        let _guard = FS_TESTS.lock();
        let dir = std::env::temp_dir().join(format!("plankton-cache-crc-{}", std::process::id()));
        let path = dir.join("cache.json");
        let cache = ResultCache::new();
        for k in 0..4u64 {
            cache.insert(k, Arc::new(PolicyOutcome::default()));
        }
        cache.save_to(&path).unwrap();
        let good = std::fs::read_to_string(&path).unwrap();
        assert!(good.contains(CHECKSUM_PREFIX));

        // Truncation: a crash mid-write loses the tail (and the footer).
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        let err = ResultCache::new().load_from(&path).unwrap_err();
        assert!(err.contains("checksum"), "{err}");

        // Bit rot: same length, one corrupted byte in the body.
        let mut rotten = good.clone().into_bytes();
        rotten[10] ^= 0x41;
        std::fs::write(&path, &rotten).unwrap();
        let err = ResultCache::new().load_from(&path).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");

        // A pre-footer snapshot (or a hand-edited file) is refused too: no
        // footer means no integrity claim.
        let (body, _) = good.trim_end_matches('\n').rsplit_once('\n').unwrap();
        std::fs::write(&path, body).unwrap();
        let err = ResultCache::new().load_from(&path).unwrap_err();
        assert!(err.contains("missing checksum footer"), "{err}");

        // The untouched original still loads.
        std::fs::write(&path, &good).unwrap();
        assert_eq!(ResultCache::new().load_from(&path).unwrap(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_failpoint_surfaces_as_an_io_error() {
        let _guard = FS_TESTS.lock();
        let dir = std::env::temp_dir().join(format!("plankton-cache-fp-{}", std::process::id()));
        let path = dir.join("cache.json");
        let cache = ResultCache::new();
        cache.insert(1, Arc::new(PolicyOutcome::default()));
        plankton_faultinject::configure("cache_save=io_err*1").unwrap();
        let err = cache.save_to(&path).unwrap_err();
        assert!(err.to_string().contains("failpoint"), "{err}");
        assert!(!path.exists(), "a failed save must not install a file");
        // The budget is spent; the retry succeeds and loads clean.
        assert_eq!(cache.save_to(&path).unwrap(), 1);
        plankton_faultinject::clear();
        assert_eq!(ResultCache::new().load_from(&path).unwrap(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
