//! The content-addressed verification result cache.
//!
//! One entry stores the complete outcome of verifying a single PEC under a
//! single failure scenario for a given policy/options pair — keyed by the
//! task content key computed in [`plankton_pec::invalidation`]: a hash over
//! the PEC's configuration content, the network slices its protocol models
//! read, the policy/options fingerprints, the failure set, and (composed
//! recursively) the keys of every PEC it transitively depends on. Equal key
//! ⟹ bit-identical inputs ⟹ the cached outcome *is* the outcome, so
//! incremental re-verification serves clean tasks from here and re-executes
//! only tasks whose key misses.

use crate::outcome::ConvergedRecord;
use crate::report::Violation;
use parking_lot::Mutex;
use plankton_checker::SearchStats;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The cached outcome of one (PEC × failure scenario) verification task.
#[derive(Clone, Debug, Default)]
pub struct PolicyOutcome {
    /// Violations found on this PEC under this failure set. The `pec` field
    /// of each entry holds the id at caching time; it is relabeled to the
    /// current id when merged into a report (PEC ids shift when a delta
    /// repartitions the header space, content does not).
    pub violations: Vec<Violation>,
    /// Model-checking statistics of the task.
    pub stats: SearchStats,
    /// Converged data planes on which the policy was evaluated.
    pub data_planes_checked: u64,
    /// Converged records for dependent PECs (empty when the PEC had no
    /// dependents under this request).
    pub records: Vec<Arc<ConvergedRecord>>,
}

/// A concurrent content-hash-keyed map of task outcomes.
///
/// Entries are immutable once inserted (`Arc`-shared). The cache is bounded:
/// when an insert would exceed the capacity, an arbitrary half of the
/// entries is dropped — content keys make stale entries merely dead weight,
/// so eviction only costs re-verification, never correctness, and keeping
/// half preserves most of a warm working set instead of inverting the
/// incremental win into one giant from-scratch latency spike.
#[derive(Debug)]
pub struct ResultCache {
    map: Mutex<HashMap<u64, Arc<PolicyOutcome>>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for ResultCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ResultCache {
    /// Default bound on resident entries.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// An empty cache bounded to `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        ResultCache {
            map: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Look a task outcome up, counting the hit/miss.
    pub fn get(&self, key: u64) -> Option<Arc<PolicyOutcome>> {
        let found = self.map.lock().get(&key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Look a task outcome up without touching the hit/miss counters (used
    /// by the planning pass that classifies tasks before execution — a key
    /// that hits but whose component re-runs anyway saved no work and must
    /// not count as reuse).
    pub fn peek(&self, key: u64) -> Option<Arc<PolicyOutcome>> {
        self.map.lock().get(&key).cloned()
    }

    /// Record `n` tasks actually served from the cache (the planning pass
    /// classifies with [`ResultCache::peek`] and reports reuse explicitly).
    pub fn count_hits(&self, n: u64) {
        self.hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` tasks that had to be recomputed.
    pub fn count_misses(&self, n: u64) {
        self.misses.fetch_add(n, Ordering::Relaxed);
    }

    /// Insert a task outcome. First write wins (outcomes for equal keys are
    /// equal by construction).
    pub fn insert(&self, key: u64, outcome: Arc<PolicyOutcome>) {
        let mut map = self.map.lock();
        if map.len() >= self.capacity && !map.contains_key(&key) {
            // Evict an arbitrary half (content keys carry no useful
            // recency signal worth the bookkeeping; half keeps most of the
            // warm set alive).
            let keep = self.capacity / 2;
            let drop_keys: Vec<u64> = map.keys().copied().skip(keep).collect();
            for k in drop_keys {
                map.remove(&k);
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        map.entry(key).or_insert(outcome);
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry.
    pub fn clear(&self) {
        self.map.lock().clear();
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// How many times the capacity bound wiped the map.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_insert_and_counters() {
        let cache = ResultCache::new();
        assert!(cache.get(7).is_none());
        cache.insert(7, Arc::new(PolicyOutcome::default()));
        assert!(cache.get(7).is_some());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
        assert!(cache.peek(8).is_none());
        assert_eq!(cache.misses(), 1, "peek does not count");
    }

    #[test]
    fn capacity_bound_evicts_partially() {
        let cache = ResultCache::with_capacity(4);
        for k in 0..4 {
            cache.insert(k, Arc::new(PolicyOutcome::default()));
        }
        cache.insert(4, Arc::new(PolicyOutcome::default()));
        assert_eq!(cache.evictions(), 1);
        // Half the old entries survive, plus the new one.
        assert_eq!(cache.len(), 3);
        assert!(cache.peek(4).is_some());
    }

    #[test]
    fn first_write_wins() {
        let cache = ResultCache::new();
        let a = Arc::new(PolicyOutcome {
            data_planes_checked: 1,
            ..Default::default()
        });
        let b = Arc::new(PolicyOutcome {
            data_planes_checked: 2,
            ..Default::default()
        });
        cache.insert(9, a);
        cache.insert(9, b);
        assert_eq!(cache.peek(9).unwrap().data_planes_checked, 1);
    }
}
