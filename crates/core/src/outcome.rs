//! Per-PEC verification outcomes shared across dependent PECs (§3.2: "all
//! possible outcomes of S are written to an in-memory filesystem" — here, an
//! in-memory [`DependencyStore`](plankton_pec::DependencyStore)).

use plankton_dataplane::ForwardingGraph;
use plankton_net::failure::FailureSet;
use plankton_net::topology::NodeId;
use plankton_pec::PecId;
use plankton_protocols::Route;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One converged data plane of a PEC under one failure scenario, together
/// with the control-plane information dependents need.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConvergedRecord {
    /// The failure scenario this record was computed under.
    pub failures: FailureSet,
    /// The combined data plane for the PEC.
    pub forwarding: ForwardingGraph,
    /// The converged control-plane route per device for the PEC's most
    /// specific prefix (used for control-plane policies and for IGP cost
    /// lookups by dependent PECs). Routes are hash-consed through the
    /// engine's shared interner, so records across failure scenarios and
    /// converged alternatives share one allocation per distinct route.
    pub control_routes: Vec<Option<Arc<Route>>>,
    /// The devices at which the PEC's traffic is delivered (owners of the
    /// matched prefixes).
    pub owners: Vec<NodeId>,
}

impl ConvergedRecord {
    /// The IGP cost from `n` to the PEC's destination, if `n` has a route.
    pub fn igp_cost_from(&self, n: NodeId) -> Option<u64> {
        if self.owners.contains(&n) {
            return Some(0);
        }
        self.control_routes[n.index()].as_ref().map(|r| r.igp_cost)
    }

    /// Is the destination reachable from `n` in this converged state?
    pub fn reachable_from(&self, n: NodeId) -> bool {
        self.forwarding.walk(n).is_delivered()
    }
}

/// Every converged outcome recorded for one PEC (one entry per explored
/// failure set per converged state).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PecOutcome {
    /// The PEC these outcomes belong to.
    pub pec: PecId,
    /// All converged records, grouped implicitly by their failure set.
    /// Records are shared (`Arc`) so dependency lookups and the engine's
    /// per-failure outcome slots can hand them out without deep copies.
    pub records: Vec<Arc<ConvergedRecord>>,
}

impl PecOutcome {
    /// A new, empty outcome for a PEC.
    pub fn new(pec: PecId) -> Self {
        PecOutcome {
            pec,
            records: Vec::new(),
        }
    }

    /// The records computed under a specific failure set. Dependent PECs must
    /// match topology changes across explorations (§3.2), so they only
    /// consume records with exactly their own failure set.
    pub fn under_failures(&self, failures: &FailureSet) -> Vec<Arc<ConvergedRecord>> {
        self.records
            .iter()
            .filter(|r| &r.failures == failures)
            .cloned()
            .collect()
    }

    /// The first record computed under a specific failure set, without the
    /// per-record Arc traffic and allocation of [`PecOutcome::under_failures`]
    /// (the hot path: dependency lookups only consume the first match, §6).
    pub fn first_under_failures(&self, failures: &FailureSet) -> Option<Arc<ConvergedRecord>> {
        self.records
            .iter()
            .find(|r| &r.failures == failures)
            .cloned()
    }

    /// Total number of converged records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the outcome empty?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plankton_net::ip::Prefix;
    use plankton_net::topology::LinkId;

    fn record(failures: FailureSet) -> ConvergedRecord {
        let mut forwarding = ForwardingGraph::new(3);
        forwarding.next_hops[0] = vec![NodeId(1)];
        forwarding.next_hops[1] = vec![NodeId(2)];
        forwarding.delivers[2] = true;
        let origin = Route::originated(Prefix::DEFAULT);
        let r1 = origin.extended_through(NodeId(2));
        let mut r0 = r1.extended_through(NodeId(1));
        r0.igp_cost = 20;
        ConvergedRecord {
            failures,
            forwarding,
            control_routes: vec![
                Some(Arc::new(r0)),
                Some(Arc::new(r1)),
                Some(Arc::new(origin)),
            ],
            owners: vec![NodeId(2)],
        }
    }

    #[test]
    fn igp_cost_and_reachability() {
        let r = record(FailureSet::none());
        assert_eq!(r.igp_cost_from(NodeId(0)), Some(20));
        assert_eq!(r.igp_cost_from(NodeId(2)), Some(0));
        assert!(r.reachable_from(NodeId(0)));
    }

    #[test]
    fn records_filtered_by_failure_set() {
        let mut outcome = PecOutcome::new(PecId(3));
        outcome.records.push(Arc::new(record(FailureSet::none())));
        outcome
            .records
            .push(Arc::new(record(FailureSet::single(LinkId(1)))));
        outcome.records.push(Arc::new(record(FailureSet::none())));
        assert_eq!(outcome.under_failures(&FailureSet::none()).len(), 2);
        assert_eq!(
            outcome.under_failures(&FailureSet::single(LinkId(1))).len(),
            1
        );
        assert_eq!(
            outcome.under_failures(&FailureSet::single(LinkId(9))).len(),
            0
        );
        assert_eq!(outcome.len(), 3);
        assert!(!outcome.is_empty());
    }
}
