//! Verification of a single PEC under a single failure scenario.
//!
//! Plankton executes the control plane separately for each prefix
//! contributing to the PEC (§3.3): OSPF and BGP instances are model-checked
//! exhaustively, static routes and connected prefixes are resolved directly,
//! and the FIB model combines one converged alternative per prefix into a
//! complete data plane for the PEC, which is what policies see.

use crate::options::PlanktonOptions;
use crate::outcome::ConvergedRecord;
use crate::underlay::DependencyUnderlay;
use plankton_checker::{
    BgpPor, ModelChecker, NoPor, OspfPor, PorHeuristic, ReferenceChecker, SearchOptions,
    SearchScratch, SearchStats, Trail, Verdict,
};
use plankton_config::{Network, StaticNextHop};
use plankton_dataplane::{FibEntry, ForwardingGraph, NetworkFib, RouteSource};
use plankton_engine::SharedRouteInterner;
use plankton_net::failure::FailureSet;
use plankton_net::topology::NodeId;
use plankton_pec::{OriginProtocol, Pec, PrefixConfig};
use plankton_protocols::{BgpModel, OspfModel, ProtocolModel, Route, SessionType};
use std::cell::RefCell;
use std::sync::Arc;

/// One converged alternative of one prefix's control plane: the FIB entries
/// it contributes per device, the converged control routes, and the
/// execution trail that produced it.
#[derive(Clone, Debug)]
pub struct PrefixAlternative {
    /// Per-device FIB entries contributed by this alternative.
    pub entries: Vec<Vec<FibEntry>>,
    /// The converged control-plane route per device.
    pub control_routes: Vec<Option<Route>>,
    /// The execution trail (non-deterministic choices) behind it.
    pub trail: Trail,
}

/// The control-plane results for one prefix of the PEC: entries common to
/// every alternative (static routes, connected routes) plus the alternatives
/// produced by model checking the routing protocols.
#[derive(Clone, Debug)]
pub struct PrefixRun {
    /// The prefix these results are for.
    pub prefix: plankton_net::ip::Prefix,
    /// Entries present regardless of protocol convergence.
    pub base_entries: Vec<Vec<FibEntry>>,
    /// Converged protocol alternatives (at least one, possibly empty of
    /// routes).
    pub alternatives: Vec<PrefixAlternative>,
    /// Aggregated model-checking statistics for this prefix.
    pub stats: SearchStats,
}

/// A complete data plane for the PEC (one alternative chosen per prefix).
#[derive(Clone, Debug)]
pub struct DataPlane {
    /// The combined forwarding graph.
    pub forwarding: ForwardingGraph,
    /// Control-plane routes of the most specific prefix with any.
    pub control_routes: Vec<Option<Route>>,
    /// The trail of the alternative that contributed the most specific
    /// prefix's routes.
    pub trail: Trail,
}

/// Inputs describing how one PEC should be verified under one failure set.
pub struct PecSession<'a> {
    /// The network under verification.
    pub network: &'a Network,
    /// The PEC being verified.
    pub pec: &'a Pec,
    /// The failure scenario (links failed before protocol execution).
    pub failures: &'a FailureSet,
    /// Converged dependency information (loopback costs, recursive
    /// next hops).
    pub underlay: Arc<DependencyUnderlay>,
    /// Verifier options.
    pub options: &'a PlanktonOptions,
    /// Source nodes declared by the policy, if any.
    pub policy_sources: Option<Vec<NodeId>>,
    /// Does any other PEC depend on this one? (Disables policy-based and
    /// influence pruning, which are unsound in that case — §4.2.)
    pub has_dependents: bool,
    /// Does this PEC depend on other PECs (iBGP, recursive routes)? Early
    /// policy-based finishing is disabled then: the forwarding path of a
    /// source may traverse IGP transit nodes that have not yet selected
    /// their route in the partial state.
    pub has_dependencies: bool,
    /// Reusable per-worker search state (visited-set allocations), when the
    /// session runs inside the parallel engine. `None` allocates fresh state
    /// per model-checking run.
    pub scratch: Option<&'a RefCell<SearchScratch>>,
}

impl<'a> PecSession<'a> {
    fn search_options(&self, single_prefix: bool) -> SearchOptions {
        let mut search = self.options.search.clone();
        if self.has_dependents || self.has_dependencies {
            search.policy_pruning = false;
            search.influence_pruning = false;
            search.source_nodes = None;
        } else {
            search.source_nodes = self.policy_sources.clone();
            if !single_prefix {
                // Influence pruning is only sound for single-prefix PECs.
                search.influence_pruning = false;
            }
        }
        search
    }

    /// Run the control plane for one contributing prefix.
    fn run_prefix(&self, cfg: &PrefixConfig, single_prefix: bool) -> PrefixRun {
        let n = self.network.node_count();
        let mut base_entries: Vec<Vec<FibEntry>> = vec![Vec::new(); n];
        let mut stats = SearchStats::default();

        // Connected prefixes (loopbacks): delivered locally at their owner.
        for (owner, proto) in &cfg.origins {
            if *proto == OriginProtocol::Connected {
                base_entries[owner.index()]
                    .push(FibEntry::local(cfg.prefix, RouteSource::Connected));
            }
        }

        // Static routes.
        for (device, sr) in &cfg.static_routes {
            let entry = match sr.next_hop {
                StaticNextHop::Null => FibEntry::null(cfg.prefix),
                StaticNextHop::Interface(nbr) => {
                    // Only usable if some live link joins the two devices.
                    let alive = self
                        .network
                        .topology
                        .links_between(*device, nbr)
                        .into_iter()
                        .any(|l| !self.failures.contains(l));
                    if alive {
                        FibEntry::via(cfg.prefix, vec![nbr], RouteSource::Static)
                            .with_distance(sr.admin_distance)
                    } else {
                        continue;
                    }
                }
                StaticNextHop::Ip(addr) => {
                    match self.underlay.resolve_next_hops(*device, addr) {
                        // Recursive resolution through the dependency PEC.
                        Some(hops) if !hops.is_empty() => {
                            FibEntry::via(cfg.prefix, hops, RouteSource::Static)
                                .with_distance(sr.admin_distance)
                        }
                        // The device owns the next-hop address itself.
                        Some(_) => FibEntry::local(cfg.prefix, RouteSource::Static),
                        // Unresolvable next hop: the route is not installed.
                        None => continue,
                    }
                }
            };
            base_entries[device.index()].push(entry);
        }

        // Protocol runs.
        let ospf_origins: Vec<NodeId> = cfg
            .origins
            .iter()
            .filter(|(_, p)| *p == OriginProtocol::Ospf)
            .map(|(n, _)| *n)
            .collect();
        let bgp_origins: Vec<NodeId> = cfg
            .origins
            .iter()
            .filter(|(_, p)| *p == OriginProtocol::Bgp)
            .map(|(n, _)| *n)
            .collect();

        let mut ospf_alts: Vec<PrefixAlternative> = Vec::new();
        if !ospf_origins.is_empty() {
            let model = OspfModel::new(self.network, cfg.prefix, ospf_origins, self.failures);
            let (alts, s) = self.explore(
                &model,
                Box::new(OspfPor),
                single_prefix,
                |converged, node| {
                    let ecmp = model.ecmp_next_hops(&converged.best, node);
                    if !ecmp.is_empty() {
                        return ecmp;
                    }
                    converged
                        .next_hop(node)
                        .map(|h| vec![h])
                        .unwrap_or_default()
                },
                |_| RouteSource::Ospf,
            );
            stats += s;
            ospf_alts = alts;
        }

        let mut bgp_alts: Vec<PrefixAlternative> = Vec::new();
        if !bgp_origins.is_empty() {
            let model = BgpModel::new(
                self.network,
                cfg.prefix,
                bgp_origins,
                self.failures,
                self.underlay.clone(),
            );
            let underlay = self.underlay.clone();
            let por: Box<dyn PorHeuristic> = if self.options.search.deterministic_nodes {
                Box::new(BgpPor::from_model(&model))
            } else {
                Box::new(NoPor)
            };
            let (alts, s) = self.explore(
                &model,
                por,
                single_prefix,
                |converged, node| {
                    let Some(route) = converged.best(node) else {
                        return Vec::new();
                    };
                    let Some(bgp_next_hop) = route.next_hop() else {
                        return Vec::new(); // the origin delivers locally
                    };
                    match route.learned_via {
                        // eBGP peers are directly connected: forward to them.
                        SessionType::Ebgp | SessionType::Igp | SessionType::Originated => {
                            vec![bgp_next_hop]
                        }
                        // iBGP: forward along the IGP towards the peer.
                        SessionType::Ibgp => underlay
                            .igp_next_hops(node, bgp_next_hop)
                            .unwrap_or_default(),
                    }
                },
                |route| match route.learned_via {
                    SessionType::Ibgp => RouteSource::Ibgp,
                    _ => RouteSource::Ebgp,
                },
            );
            stats += s;
            bgp_alts = alts;
        }

        // Combine the per-protocol alternatives (cross product; usually one
        // side is empty or both have a single element).
        let alternatives = match (ospf_alts.is_empty(), bgp_alts.is_empty()) {
            (true, true) => vec![PrefixAlternative {
                entries: vec![Vec::new(); n],
                control_routes: vec![None; n],
                trail: Trail::new(self.failures.clone()),
            }],
            (false, true) => ospf_alts,
            (true, false) => bgp_alts,
            (false, false) => {
                let mut combined = Vec::new();
                for o in &ospf_alts {
                    for b in &bgp_alts {
                        let mut entries = o.entries.clone();
                        for (node, extra) in b.entries.iter().enumerate() {
                            entries[node].extend(extra.iter().cloned());
                        }
                        // Control-plane view: prefer the BGP route where both
                        // exist (admin distance does the same in the FIB).
                        let control_routes = o
                            .control_routes
                            .iter()
                            .zip(&b.control_routes)
                            .map(|(ospf, bgp)| bgp.clone().or_else(|| ospf.clone()))
                            .collect();
                        combined.push(PrefixAlternative {
                            entries,
                            control_routes,
                            trail: b.trail.clone(),
                        });
                    }
                }
                combined
            }
        };

        PrefixRun {
            prefix: cfg.prefix,
            base_entries,
            alternatives,
            stats,
        }
    }

    /// Exhaustively model check one protocol instance, converting each
    /// converged state into a [`PrefixAlternative`].
    fn explore<F, G>(
        &self,
        model: &dyn ProtocolModel,
        por: Box<dyn PorHeuristic + '_>,
        single_prefix: bool,
        next_hops_of: F,
        source_of: G,
    ) -> (Vec<PrefixAlternative>, SearchStats)
    where
        F: Fn(&plankton_protocols::ConvergedState, NodeId) -> Vec<NodeId>,
        G: Fn(&Route) -> RouteSource,
    {
        let n = self.network.node_count();
        let prefix = {
            // The model's origin route carries the prefix.
            model
                .origins()
                .first()
                .map(|&o| model.origin_route(o).attrs.prefix)
                .unwrap_or(plankton_net::ip::Prefix::DEFAULT)
        };
        let search_options = self.search_options(single_prefix);
        let mut alternatives = Vec::new();
        let mut on_converged = |converged: &plankton_protocols::ConvergedState, trail: &Trail| {
            let mut entries = vec![Vec::new(); n];
            let mut control_routes = vec![None; n];
            for i in 0..n {
                let node = NodeId(i as u32);
                let Some(route) = converged.best(node) else {
                    continue;
                };
                control_routes[i] = Some(route.clone());
                if route.is_origin() {
                    entries[i].push(FibEntry::local(prefix, source_of(route)));
                    continue;
                }
                let hops = next_hops_of(converged, node);
                if !hops.is_empty() {
                    entries[i].push(FibEntry::via(prefix, hops, source_of(route)));
                }
            }
            alternatives.push(PrefixAlternative {
                entries,
                control_routes,
                trail: trail.clone(),
            });
            Verdict::Continue
        };
        if self.options.reference_explorer {
            // Differential-testing path: the pre-incremental clone-based
            // search (allocates fresh state; ignores the worker scratch).
            let checker = ReferenceChecker::new(model, por, search_options, self.failures.clone());
            let stats = checker.run(&mut on_converged);
            return (alternatives, stats);
        }
        let checker = match self.scratch {
            Some(scratch) => {
                let parts = scratch.borrow_mut().take_parts(&search_options);
                ModelChecker::new_with_scratch(
                    model,
                    por,
                    search_options,
                    self.failures.clone(),
                    parts,
                )
            }
            None => ModelChecker::new(model, por, search_options, self.failures.clone()),
        };
        let (stats, parts) = checker.run_returning(&mut on_converged);
        if let Some(scratch) = self.scratch {
            scratch.borrow_mut().put_parts(parts);
        }
        (alternatives, stats)
    }

    /// Verify the PEC under this session's failure set: run every prefix,
    /// build every combined data plane (bounded by
    /// [`PlanktonOptions::max_data_planes_per_pec`]).
    pub fn data_planes(&self) -> (Vec<DataPlane>, SearchStats) {
        let n = self.network.node_count();
        let single_prefix = self.pec.prefixes.len() <= 1;
        let mut runs: Vec<PrefixRun> = Vec::new();
        let mut stats = SearchStats::default();
        for cfg in &self.pec.prefixes {
            let run = self.run_prefix(cfg, single_prefix);
            stats += run.stats;
            runs.push(run);
        }
        if runs.is_empty() {
            // A PEC with no configuration: a single all-blackhole data plane.
            return (
                vec![DataPlane {
                    forwarding: ForwardingGraph::new(n),
                    control_routes: vec![None; n],
                    trail: Trail::new(self.failures.clone()),
                }],
                stats,
            );
        }

        // Cross product of per-prefix alternatives.
        let mut planes = Vec::new();
        let mut selection = vec![0usize; runs.len()];
        loop {
            if planes.len() >= self.options.max_data_planes_per_pec {
                break;
            }
            let mut fib = NetworkFib::new(n);
            let mut control_routes: Vec<Option<Route>> = vec![None; n];
            let mut trail = Trail::new(self.failures.clone());
            // Prefixes are ordered most specific first; take the control view
            // and trail from the most specific prefix that produced routes.
            for (run, &alt_idx) in runs.iter().zip(selection.iter()) {
                let alt = &run.alternatives[alt_idx];
                for node in 0..n {
                    for e in &run.base_entries[node] {
                        fib.fib_mut(NodeId(node as u32)).add(e.clone());
                    }
                    for e in &alt.entries[node] {
                        fib.fib_mut(NodeId(node as u32)).add(e.clone());
                    }
                }
                if control_routes.iter().all(|r| r.is_none())
                    && alt.control_routes.iter().any(|r| r.is_some())
                {
                    control_routes = alt.control_routes.clone();
                    trail = alt.trail.clone();
                }
            }
            let forwarding = ForwardingGraph::from_fib(&fib, self.pec.representative());
            planes.push(DataPlane {
                forwarding,
                control_routes,
                trail,
            });

            // Advance the selection (odometer).
            let mut pos = 0;
            loop {
                if pos == runs.len() {
                    return (planes, stats);
                }
                selection[pos] += 1;
                if selection[pos] < runs[pos].alternatives.len() {
                    break;
                }
                selection[pos] = 0;
                pos += 1;
            }
        }
        (planes, stats)
    }

    /// Turn a data plane into the record stored for dependent PECs, sharing
    /// route allocations through the engine's interner.
    pub fn record_of(&self, plane: &DataPlane, interner: &SharedRouteInterner) -> ConvergedRecord {
        ConvergedRecord {
            failures: self.failures.clone(),
            owners: plane.forwarding.delivery_points(),
            forwarding: plane.forwarding.clone(),
            control_routes: plane
                .control_routes
                .iter()
                .map(|r| interner.intern_opt(r.as_ref()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::PlanktonOptions;
    use plankton_config::scenarios::{disagree_gadget, fat_tree_ospf, ring_ospf, CoreStaticRoutes};
    use plankton_pec::compute_pecs;

    fn session_for<'a>(
        network: &'a Network,
        pec: &'a Pec,
        failures: &'a FailureSet,
        options: &'a PlanktonOptions,
    ) -> PecSession<'a> {
        PecSession {
            network,
            pec,
            failures,
            underlay: Arc::new(DependencyUnderlay::new()),
            options,
            policy_sources: None,
            has_dependents: false,
            has_dependencies: false,
            scratch: None,
        }
    }

    #[test]
    fn ring_pec_produces_single_data_plane_with_full_reachability() {
        let s = ring_ospf(6);
        let pecs = compute_pecs(&s.network);
        let pec = pecs.pecs_overlapping(&s.destination)[0];
        let options = PlanktonOptions::default();
        let failures = FailureSet::none();
        let session = session_for(&s.network, pec, &failures, &options);
        let (planes, stats) = session.data_planes();
        assert_eq!(planes.len(), 1);
        assert!(stats.steps > 0);
        for n in s.network.topology.node_ids() {
            assert!(
                planes[0].forwarding.walk(n).is_delivered(),
                "{n} cannot reach the destination"
            );
        }
        let record = session.record_of(&planes[0], &SharedRouteInterner::new());
        assert_eq!(record.owners, vec![s.origin]);
    }

    #[test]
    fn static_loops_show_up_in_the_data_plane() {
        let s = fat_tree_ospf(4, CoreStaticRoutes::Looping);
        let pecs = compute_pecs(&s.network);
        // Prefix 0 is one of the "wrong pod" prefixes (even index).
        let pec = pecs.pecs_overlapping(&s.destinations[0])[0];
        let options = PlanktonOptions::default();
        let failures = FailureSet::none();
        let session = session_for(&s.network, pec, &failures, &options);
        let (planes, _) = session.data_planes();
        assert_eq!(planes.len(), 1);
        assert!(
            planes[0].forwarding.has_loop(None).is_some(),
            "expected a forwarding loop from the misconfigured static routes"
        );
    }

    #[test]
    fn matching_static_routes_keep_the_fat_tree_loop_free() {
        let s = fat_tree_ospf(4, CoreStaticRoutes::MatchingOspf);
        let pecs = compute_pecs(&s.network);
        let options = PlanktonOptions::default();
        let failures = FailureSet::none();
        for prefix in &s.destinations {
            let pec = pecs.pecs_overlapping(prefix)[0];
            let session = session_for(&s.network, pec, &failures, &options);
            let (planes, _) = session.data_planes();
            for plane in &planes {
                assert!(plane.forwarding.has_loop(None).is_none(), "{prefix}");
            }
        }
    }

    #[test]
    fn disagree_pec_produces_two_data_planes() {
        let g = disagree_gadget();
        let pecs = compute_pecs(&g.network);
        let pec = pecs.pecs_overlapping(&g.destination)[0];
        let options = PlanktonOptions::default();
        let failures = FailureSet::none();
        let session = session_for(&g.network, pec, &failures, &options);
        let (planes, _) = session.data_planes();
        assert_eq!(planes.len(), 2);
        // The two planes differ in the next hop of at least one actor.
        let nh = |p: &DataPlane, n: NodeId| p.forwarding.next_hops[n.index()].clone();
        assert_ne!(
            (nh(&planes[0], g.actors[0]), nh(&planes[0], g.actors[1])),
            (nh(&planes[1], g.actors[0]), nh(&planes[1], g.actors[1]))
        );
    }

    #[test]
    fn failed_link_changes_the_forwarding_graph() {
        let s = ring_ospf(6);
        let pecs = compute_pecs(&s.network);
        let pec = pecs.pecs_overlapping(&s.destination)[0];
        let options = PlanktonOptions::default();
        let failures = FailureSet::single(s.ring.links[0]);
        let session = session_for(&s.network, pec, &failures, &options);
        let (planes, _) = session.data_planes();
        assert_eq!(planes.len(), 1);
        let r1 = s.ring.routers[1];
        // Router 1 lost its direct link to the origin and must go the long
        // way: 5 hops.
        let outcome = planes[0].forwarding.walk(r1);
        assert!(outcome.is_delivered());
        assert_eq!(outcome.hop_count(), 5);
    }

    #[test]
    fn inert_pec_yields_blackhole_plane() {
        let s = ring_ospf(4);
        let pecs = compute_pecs(&s.network);
        // The PEC below the destination prefix carries no configuration.
        let inert = pecs
            .iter()
            .find(|p| p.is_inert())
            .expect("ring network has inert PECs");
        let options = PlanktonOptions::default();
        let failures = FailureSet::none();
        let session = session_for(&s.network, inert, &failures, &options);
        let (planes, stats) = session.data_planes();
        assert_eq!(planes.len(), 1);
        assert_eq!(stats.steps, 0);
        assert!(planes[0].forwarding.delivery_points().is_empty());
    }
}
