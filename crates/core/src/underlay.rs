//! Building the IGP underlay for iBGP and recursive routes from the
//! converged outcomes of dependency PECs.
//!
//! When a PEC carried by BGP is verified, its iBGP sessions peer between
//! loopback addresses whose reachability and IGP cost are determined by the
//! converged states of the loopback PECs — which the dependency-aware
//! scheduler has already computed and stored. [`DependencyUnderlay`] adapts
//! those records to the [`IgpUnderlay`] interface the BGP model consumes, and
//! also answers the next-hop resolution queries for recursive static routes.

use crate::outcome::ConvergedRecord;
use plankton_net::ip::Ipv4Addr;
use plankton_net::topology::NodeId;
use plankton_protocols::IgpUnderlay;
use std::collections::HashMap;

/// An IGP underlay assembled from the converged records of dependency PECs.
#[derive(Clone, Debug, Default)]
pub struct DependencyUnderlay {
    /// For each destination device (owner of a loopback), the per-source IGP
    /// cost in the chosen converged state of the loopback's PEC.
    cost_to: HashMap<NodeId, Vec<Option<u64>>>,
    /// For each destination device, the per-source forwarding next hops in
    /// that converged state (used to forward iBGP-learned traffic along the
    /// IGP path towards the BGP next hop).
    hops_to: HashMap<NodeId, Vec<Vec<NodeId>>>,
    /// For each address that recursive static routes point at, the forwarding
    /// next hops per source device in the chosen converged state.
    next_hops_to: HashMap<Ipv4Addr, Vec<Vec<NodeId>>>,
    /// For each recorded address, the devices that own it (deliver locally).
    /// Kept separately because "empty next hops" is ambiguous on its own: it
    /// also describes a device the converged state left unreachable.
    address_owners: HashMap<Ipv4Addr, Vec<NodeId>>,
}

impl DependencyUnderlay {
    /// An empty underlay (no dependency information: all iBGP sessions down,
    /// all recursive routes unresolved).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the converged state of the PEC owning `owner`'s loopback.
    pub fn add_loopback_record(&mut self, owner: NodeId, record: &ConvergedRecord) {
        let costs = (0..record.control_routes.len() as u32)
            .map(|i| record.igp_cost_from(NodeId(i)))
            .collect();
        self.cost_to.insert(owner, costs);
        let hops = (0..record.forwarding.node_count())
            .map(|i| record.forwarding.next_hops[i].clone())
            .collect();
        self.hops_to.insert(owner, hops);
    }

    /// The IGP forwarding next hops `from` uses towards `owner`'s loopback
    /// (empty if `from` is the owner itself), or `None` if unreachable.
    pub fn igp_next_hops(&self, from: NodeId, owner: NodeId) -> Option<Vec<NodeId>> {
        if from == owner {
            return Some(Vec::new());
        }
        let per_node = self.hops_to.get(&owner)?;
        let hops = per_node.get(from.index())?;
        if hops.is_empty() {
            // No forwarding entry for a non-owner: the loopback is
            // unreachable from here in this converged state.
            return None;
        }
        Some(hops.clone())
    }

    /// Record the converged state of the PEC containing `addr`, for recursive
    /// static-route resolution.
    pub fn add_address_record(&mut self, addr: Ipv4Addr, record: &ConvergedRecord) {
        let hops = (0..record.forwarding.node_count())
            .map(|i| {
                let n = NodeId(i as u32);
                if record.owners.contains(&n) {
                    Vec::new()
                } else {
                    record.forwarding.next_hops[i].clone()
                }
            })
            .collect();
        self.next_hops_to.insert(addr, hops);
        self.address_owners.insert(addr, record.owners.clone());
    }

    /// The forwarding next hops `from` uses to reach `addr`, if the
    /// dependency PEC delivered a route there. An empty vector means `from`
    /// owns the address (delivered locally); `None` means unresolvable.
    pub fn resolve_next_hops(&self, from: NodeId, addr: Ipv4Addr) -> Option<Vec<NodeId>> {
        let per_node = self.next_hops_to.get(&addr)?;
        let hops = per_node.get(from.index())?;
        // An address record exists; the node resolves it only if it either
        // owns it or has next hops for it.
        if hops.is_empty() && !self.owns(from, addr) {
            return None;
        }
        Some(hops.clone())
    }

    fn owns(&self, from: NodeId, addr: Ipv4Addr) -> bool {
        self.address_owners
            .get(&addr)
            .map(|owners| owners.contains(&from))
            .unwrap_or(false)
    }

    /// Number of loopback owners recorded.
    pub fn loopback_count(&self) -> usize {
        self.cost_to.len()
    }
}

impl IgpUnderlay for DependencyUnderlay {
    fn cost_between(&self, from: NodeId, to: NodeId) -> Option<u64> {
        if from == to {
            return Some(0);
        }
        self.cost_to
            .get(&to)
            .and_then(|costs| costs.get(from.index()).copied().flatten())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plankton_dataplane::ForwardingGraph;
    use plankton_net::failure::FailureSet;
    use plankton_net::ip::Prefix;
    use plankton_protocols::Route;

    fn record() -> ConvergedRecord {
        // 0 -> 1 -> 2 (owner).
        let mut forwarding = ForwardingGraph::new(3);
        forwarding.next_hops[0] = vec![NodeId(1)];
        forwarding.next_hops[1] = vec![NodeId(2)];
        forwarding.delivers[2] = true;
        let origin = Route::originated(Prefix::DEFAULT);
        let mut r1 = origin.extended_through(NodeId(2));
        r1.igp_cost = 10;
        let mut r0 = r1.extended_through(NodeId(1));
        r0.igp_cost = 20;
        ConvergedRecord {
            failures: FailureSet::none(),
            forwarding,
            control_routes: vec![
                Some(std::sync::Arc::new(r0)),
                Some(std::sync::Arc::new(r1)),
                Some(std::sync::Arc::new(origin)),
            ],
            owners: vec![NodeId(2)],
        }
    }

    #[test]
    fn loopback_costs_feed_the_underlay() {
        let mut u = DependencyUnderlay::new();
        u.add_loopback_record(NodeId(2), &record());
        assert_eq!(u.cost_between(NodeId(0), NodeId(2)), Some(20));
        assert_eq!(u.cost_between(NodeId(1), NodeId(2)), Some(10));
        assert_eq!(u.cost_between(NodeId(2), NodeId(2)), Some(0));
        // Unknown destination: unreachable.
        assert_eq!(u.cost_between(NodeId(0), NodeId(1)), None);
        assert_eq!(u.loopback_count(), 1);
    }

    #[test]
    fn recursive_next_hop_resolution() {
        let mut u = DependencyUnderlay::new();
        let addr = Ipv4Addr::new(9, 9, 9, 9);
        u.add_address_record(addr, &record());
        assert_eq!(u.resolve_next_hops(NodeId(0), addr), Some(vec![NodeId(1)]));
        assert_eq!(u.resolve_next_hops(NodeId(1), addr), Some(vec![NodeId(2)]));
        // The owner resolves to "delivered locally".
        assert_eq!(u.resolve_next_hops(NodeId(2), addr), Some(vec![]));
        // Unknown address: unresolved.
        assert_eq!(
            u.resolve_next_hops(NodeId(0), Ipv4Addr::new(8, 8, 8, 8)),
            None
        );
    }

    #[test]
    fn unreachable_node_does_not_resolve_the_address() {
        // Node 3 exists but the converged state gives it no route towards the
        // address and it is not an owner: the recursive next hop must be
        // unresolvable there, not silently "delivered locally".
        let mut forwarding = ForwardingGraph::new(4);
        forwarding.next_hops[0] = vec![NodeId(1)];
        forwarding.next_hops[1] = vec![NodeId(2)];
        forwarding.delivers[2] = true;
        let rec = ConvergedRecord {
            failures: FailureSet::none(),
            forwarding,
            control_routes: vec![None; 4],
            owners: vec![NodeId(2)],
        };
        let mut u = DependencyUnderlay::new();
        let addr = Ipv4Addr::new(9, 9, 9, 9);
        u.add_address_record(addr, &rec);
        assert_eq!(u.resolve_next_hops(NodeId(0), addr), Some(vec![NodeId(1)]));
        assert_eq!(u.resolve_next_hops(NodeId(2), addr), Some(vec![]));
        assert_eq!(u.resolve_next_hops(NodeId(3), addr), None);
    }
}
