//! Verifier-level options: parallelism, failure-pruning and the optimization
//! toggles forwarded to the model checker.

use plankton_checker::SearchOptions;
use plankton_net::ip::Prefix;
use std::time::{Duration, Instant};

/// Options controlling a whole verification (all PECs, all failure sets).
#[derive(Clone, Debug)]
pub struct PlanktonOptions {
    /// Number of PEC verifications run concurrently (the paper's "cores").
    pub parallelism: usize,
    /// Use the legacy level-barrier scheduler instead of the work-stealing
    /// engine. Kept for differential testing: the engine and the sequential
    /// path must produce identical reports.
    pub sequential: bool,
    /// Use the pre-incremental clone-based explorer
    /// ([`plankton_checker::ReferenceChecker`]) instead of the incremental
    /// one. Kept for differential testing: both explorers must produce
    /// identical reports (modulo the incremental-only stats counters).
    pub reference_explorer: bool,
    /// §4.3 — prune the choice of failed links using link equivalence
    /// classes (only applied when there are no cross-PEC dependencies).
    pub lec_failure_pruning: bool,
    /// Stop the whole verification at the first policy violation (the common
    /// mode: one counterexample is enough).
    pub stop_at_first_violation: bool,
    /// Restrict verification to the PECs overlapping these prefixes (plus
    /// their dependencies). `None` verifies every active PEC.
    pub restrict_to_prefixes: Option<Vec<Prefix>>,
    /// §3.5 — suppress policy checks on converged states that are equivalent
    /// from the policy's point of view (same source path lengths, same
    /// interesting-node positions).
    pub equivalence_suppression: bool,
    /// Upper bound on the number of combined data planes built per PEC and
    /// failure scenario (cross product of per-prefix converged states).
    pub max_data_planes_per_pec: usize,
    /// Optimization toggles forwarded to every model-checking run.
    pub search: SearchOptions,
    /// Abandon the run once this instant passes: remaining tasks drain via
    /// the early-stop broadcast and the report is marked
    /// `deadline_exceeded`. `None` (the default) never times out.
    pub deadline: Option<Instant>,
    /// Emit a `slow_task` warn event for any per-(PEC × failure-set) task
    /// that takes at least this long, in microseconds (`planktond
    /// --slow-task-ms`). Observability-only: never part of the cache key.
    pub slow_task_micros: u64,
}

/// Default [`PlanktonOptions::slow_task_micros`]: 250 ms.
pub const DEFAULT_SLOW_TASK_MICROS: u64 = 250_000;

impl Default for PlanktonOptions {
    fn default() -> Self {
        PlanktonOptions {
            parallelism: 1,
            sequential: false,
            reference_explorer: false,
            lec_failure_pruning: true,
            stop_at_first_violation: true,
            restrict_to_prefixes: None,
            equivalence_suppression: true,
            max_data_planes_per_pec: 512,
            search: SearchOptions::all_optimizations(),
            deadline: None,
            slow_task_micros: DEFAULT_SLOW_TASK_MICROS,
        }
    }
}

impl PlanktonOptions {
    /// Default options with the given degree of parallelism.
    pub fn with_cores(cores: usize) -> Self {
        PlanktonOptions {
            parallelism: cores.max(1),
            ..Default::default()
        }
    }

    /// Every optimization disabled (Figure 8's "None" configuration).
    pub fn no_optimizations() -> Self {
        PlanktonOptions {
            parallelism: 1,
            sequential: false,
            reference_explorer: false,
            lec_failure_pruning: false,
            stop_at_first_violation: true,
            restrict_to_prefixes: None,
            equivalence_suppression: false,
            max_data_planes_per_pec: 512,
            search: SearchOptions::no_optimizations(),
            deadline: None,
            slow_task_micros: DEFAULT_SLOW_TASK_MICROS,
        }
    }

    /// Use the legacy level-barrier scheduler, builder-style (differential
    /// testing against the work-stealing engine).
    pub fn sequential(mut self) -> Self {
        self.sequential = true;
        self
    }

    /// Use the pre-incremental reference explorer, builder-style
    /// (differential testing against the incremental explorer).
    pub fn with_reference_explorer(mut self) -> Self {
        self.reference_explorer = true;
        self
    }

    /// Restrict verification to the given destination prefixes, builder-style.
    pub fn restricted_to(mut self, prefixes: Vec<Prefix>) -> Self {
        self.restrict_to_prefixes = Some(prefixes);
        self
    }

    /// Keep exploring after violations (collect all of them), builder-style.
    pub fn collect_all_violations(mut self) -> Self {
        self.stop_at_first_violation = false;
        self
    }

    /// Disable link-equivalence failure pruning, builder-style.
    pub fn without_lec_pruning(mut self) -> Self {
        self.lec_failure_pruning = false;
        self
    }

    /// Replace the search options, builder-style.
    pub fn with_search(mut self, search: SearchOptions) -> Self {
        self.search = search;
        self
    }

    /// Give the run a deadline `budget` from now, builder-style.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(Instant::now() + budget);
        self
    }

    /// Warn about tasks slower than `threshold`, builder-style.
    pub fn with_slow_task_threshold(mut self, threshold: Duration) -> Self {
        self.slow_task_micros = threshold.as_micros() as u64;
        self
    }

    /// A fingerprint of every option that can change a verification task's
    /// *outcome* (violations, stats, records) — part of the result-cache
    /// key. Scheduling-only knobs (`parallelism`, `sequential`, `deadline`)
    /// and observability-only knobs (`slow_task_micros`) are excluded: they
    /// change who runs a task (or whether it runs at all —
    /// deadline-skipped tasks are never cached) or what gets logged, never
    /// what the task computes.
    pub fn cache_fingerprint(&self) -> u64 {
        let mut fp = plankton_config::Fingerprinter::new();
        fp.write_u8(b'o');
        fp.write_u8(self.reference_explorer as u8);
        fp.write_u8(self.lec_failure_pruning as u8);
        fp.write_u8(self.stop_at_first_violation as u8);
        fp.write_u8(self.equivalence_suppression as u8);
        fp.write_u64(self.max_data_planes_per_pec as u64);
        match &self.restrict_to_prefixes {
            Some(prefixes) => fp.write(prefixes),
            None => fp.write_u8(0xff),
        }
        let s = &self.search;
        fp.write_u8(s.consistent_executions as u8);
        fp.write_u8(s.deterministic_nodes as u8);
        fp.write_u8(s.decision_independence as u8);
        fp.write_u8(s.policy_pruning as u8);
        fp.write_u8(s.influence_pruning as u8);
        match &s.source_nodes {
            Some(nodes) => fp.write(nodes),
            None => fp.write_u8(0xfe),
        }
        fp.write_u64(s.bitstate_bits.map(|b| b as u64).unwrap_or(u64::MAX));
        fp.write_u64(s.max_converged_states.map(|b| b as u64).unwrap_or(u64::MAX));
        fp.write_u64(s.max_steps);
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let o = PlanktonOptions::default();
        assert_eq!(o.parallelism, 1);
        assert!(o.lec_failure_pruning);
        assert!(o.stop_at_first_violation);
        assert!(o.search.deterministic_nodes);
    }

    #[test]
    fn builders() {
        let o = PlanktonOptions::with_cores(8)
            .restricted_to(vec!["10.0.0.0/24".parse().unwrap()])
            .collect_all_violations()
            .without_lec_pruning();
        assert_eq!(o.parallelism, 8);
        assert!(!o.stop_at_first_violation);
        assert!(!o.lec_failure_pruning);
        assert_eq!(o.restrict_to_prefixes.as_ref().unwrap().len(), 1);
        let n = PlanktonOptions::no_optimizations();
        assert!(!n.search.consistent_executions);
        assert!(!n.equivalence_suppression);
    }

    #[test]
    fn slow_task_threshold_is_not_part_of_the_cache_key() {
        let a = PlanktonOptions::default();
        let b = PlanktonOptions::default().with_slow_task_threshold(Duration::from_millis(1));
        assert_eq!(a.slow_task_micros, DEFAULT_SLOW_TASK_MICROS);
        assert_eq!(b.slow_task_micros, 1_000);
        assert_eq!(a.cache_fingerprint(), b.cache_fingerprint());
    }
}
