//! Verifier-level options: parallelism, failure-pruning and the optimization
//! toggles forwarded to the model checker.

use plankton_checker::SearchOptions;
use plankton_net::ip::Prefix;
use std::time::{Duration, Instant};

/// Options controlling a whole verification (all PECs, all failure sets).
#[derive(Clone, Debug)]
pub struct PlanktonOptions {
    /// Number of PEC verifications run concurrently (the paper's "cores").
    pub parallelism: usize,
    /// Use the legacy level-barrier scheduler instead of the work-stealing
    /// engine. Kept for differential testing: the engine and the sequential
    /// path must produce identical reports.
    pub sequential: bool,
    /// Use the pre-incremental clone-based explorer
    /// ([`plankton_checker::ReferenceChecker`]) instead of the incremental
    /// one. Kept for differential testing: both explorers must produce
    /// identical reports (modulo the incremental-only stats counters).
    pub reference_explorer: bool,
    /// §4.3 — prune the choice of failed links using link equivalence
    /// classes (only applied when there are no cross-PEC dependencies).
    pub lec_failure_pruning: bool,
    /// Stop the whole verification at the first policy violation (the common
    /// mode: one counterexample is enough).
    pub stop_at_first_violation: bool,
    /// Restrict verification to the PECs overlapping these prefixes (plus
    /// their dependencies). `None` verifies every active PEC.
    pub restrict_to_prefixes: Option<Vec<Prefix>>,
    /// §3.5 — suppress policy checks on converged states that are equivalent
    /// from the policy's point of view (same source path lengths, same
    /// interesting-node positions).
    pub equivalence_suppression: bool,
    /// Upper bound on the number of combined data planes built per PEC and
    /// failure scenario (cross product of per-prefix converged states).
    pub max_data_planes_per_pec: usize,
    /// Optimization toggles forwarded to every model-checking run.
    pub search: SearchOptions,
    /// Abandon the run once this instant passes: remaining tasks drain via
    /// the early-stop broadcast and the report is marked
    /// `deadline_exceeded`. `None` (the default) never times out.
    pub deadline: Option<Instant>,
    /// Emit a `slow_task` warn event for any per-(PEC × failure-set) task
    /// that takes at least this long, in microseconds (`planktond
    /// --slow-task-ms`). Observability-only: never part of the cache key.
    pub slow_task_micros: u64,
}

/// Default [`PlanktonOptions::slow_task_micros`]: 250 ms.
pub const DEFAULT_SLOW_TASK_MICROS: u64 = 250_000;

impl Default for PlanktonOptions {
    fn default() -> Self {
        PlanktonOptions {
            parallelism: 1,
            sequential: false,
            reference_explorer: false,
            lec_failure_pruning: true,
            stop_at_first_violation: true,
            restrict_to_prefixes: None,
            equivalence_suppression: true,
            max_data_planes_per_pec: 512,
            search: SearchOptions::all_optimizations(),
            deadline: None,
            slow_task_micros: DEFAULT_SLOW_TASK_MICROS,
        }
    }
}

impl PlanktonOptions {
    /// Default options with the given degree of parallelism.
    pub fn with_cores(cores: usize) -> Self {
        PlanktonOptions {
            parallelism: cores.max(1),
            ..Default::default()
        }
    }

    /// Every optimization disabled (Figure 8's "None" configuration).
    pub fn no_optimizations() -> Self {
        PlanktonOptions {
            parallelism: 1,
            sequential: false,
            reference_explorer: false,
            lec_failure_pruning: false,
            stop_at_first_violation: true,
            restrict_to_prefixes: None,
            equivalence_suppression: false,
            max_data_planes_per_pec: 512,
            search: SearchOptions::no_optimizations(),
            deadline: None,
            slow_task_micros: DEFAULT_SLOW_TASK_MICROS,
        }
    }

    /// Use the legacy level-barrier scheduler, builder-style (differential
    /// testing against the work-stealing engine).
    pub fn sequential(mut self) -> Self {
        self.sequential = true;
        self
    }

    /// Use the pre-incremental reference explorer, builder-style
    /// (differential testing against the incremental explorer).
    pub fn with_reference_explorer(mut self) -> Self {
        self.reference_explorer = true;
        self
    }

    /// Restrict verification to the given destination prefixes, builder-style.
    pub fn restricted_to(mut self, prefixes: Vec<Prefix>) -> Self {
        self.restrict_to_prefixes = Some(prefixes);
        self
    }

    /// Keep exploring after violations (collect all of them), builder-style.
    pub fn collect_all_violations(mut self) -> Self {
        self.stop_at_first_violation = false;
        self
    }

    /// Disable link-equivalence failure pruning, builder-style.
    pub fn without_lec_pruning(mut self) -> Self {
        self.lec_failure_pruning = false;
        self
    }

    /// Replace the search options, builder-style.
    pub fn with_search(mut self, search: SearchOptions) -> Self {
        self.search = search;
        self
    }

    /// Give the run a deadline `budget` from now, builder-style.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(Instant::now() + budget);
        self
    }

    /// Warn about tasks slower than `threshold`, builder-style.
    pub fn with_slow_task_threshold(mut self, threshold: Duration) -> Self {
        self.slow_task_micros = threshold.as_micros() as u64;
        self
    }

    /// A fingerprint of every option that can change a verification task's
    /// *outcome* (violations, stats, records) — part of the result-cache
    /// key. Scheduling-only knobs (`parallelism`, `sequential`, `deadline`)
    /// and observability-only knobs (`slow_task_micros`) are excluded: they
    /// change who runs a task (or whether it runs at all —
    /// deadline-skipped tasks are never cached) or what gets logged, never
    /// what the task computes.
    pub fn cache_fingerprint(&self) -> u64 {
        let mut fp = plankton_config::Fingerprinter::new();
        fp.write_u8(b'o');
        fp.write_u8(self.reference_explorer as u8);
        fp.write_u8(self.lec_failure_pruning as u8);
        fp.write_u8(self.stop_at_first_violation as u8);
        fp.write_u8(self.equivalence_suppression as u8);
        fp.write_u64(self.max_data_planes_per_pec as u64);
        match &self.restrict_to_prefixes {
            Some(prefixes) => fp.write(prefixes),
            None => fp.write_u8(0xff),
        }
        let s = &self.search;
        fp.write_u8(s.consistent_executions as u8);
        fp.write_u8(s.deterministic_nodes as u8);
        fp.write_u8(s.decision_independence as u8);
        fp.write_u8(s.policy_pruning as u8);
        fp.write_u8(s.influence_pruning as u8);
        match &s.source_nodes {
            Some(nodes) => fp.write(nodes),
            None => fp.write_u8(0xfe),
        }
        fp.write_u64(s.bitstate_bits.map(|b| b as u64).unwrap_or(u64::MAX));
        fp.write_u64(s.max_converged_states.map(|b| b as u64).unwrap_or(u64::MAX));
        fp.write_u64(s.max_steps);
        fp.finish()
    }
}

/// Default [`Tuning::max_lag_deltas`]: drain the streaming queue once this
/// many deltas are pending.
pub const DEFAULT_MAX_LAG_DELTAS: u64 = 64;
/// Default [`Tuning::max_lag_ms`]: drain the streaming queue once the oldest
/// pending delta is this old, even below the delta-count threshold.
pub const DEFAULT_MAX_LAG_MS: u64 = 50;
/// Default [`Tuning::max_pending_deltas`]: queue high-water mark above which
/// further deltas are shed with `overloaded + retry_after_ms`.
pub const DEFAULT_MAX_PENDING_DELTAS: u64 = 4096;

/// The one tuning surface shared by requests, CLI flags and defaults.
///
/// Every knob that used to live on an ad-hoc builder (`--slow-task-ms`,
/// `--max-inflight`, per-request `cores`/`deadline_ms`) plus the streaming-lag
/// knobs lives here as an `Option`: `None` means "no opinion at this layer".
/// Layers compose with [`Tuning::overlaid_on`] under a single precedence
/// order: **request > CLI > default**. Verify-scoped knobs (`cores`,
/// `deadline_ms`, `slow_task_ms`) are honored per request; daemon-scoped
/// knobs (`max_inflight`, lag and queue bounds) have no per-request reading
/// and are resolved once at the CLI layer.
///
/// Applying a `Tuning` can never change a result-cache key:
/// [`Tuning::apply_to`] only writes [`PlanktonOptions`] fields excluded from
/// [`PlanktonOptions::cache_fingerprint`] (`parallelism`, `deadline`,
/// `slow_task_micros`).
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Tuning {
    /// Degree of parallelism for a verification ([`PlanktonOptions::parallelism`]).
    #[serde(default)]
    pub cores: Option<u64>,
    /// Per-verification deadline in milliseconds ([`PlanktonOptions::deadline`]).
    #[serde(default)]
    pub deadline_ms: Option<u64>,
    /// Slow-task warn threshold in milliseconds (`planktond --slow-task-ms`).
    #[serde(default)]
    pub slow_task_ms: Option<u64>,
    /// Bound on concurrently running verifies (`planktond --max-inflight`).
    #[serde(default)]
    pub max_inflight: Option<u64>,
    /// Streaming: drain once this many deltas are pending (`--max-lag-deltas`).
    #[serde(default)]
    pub max_lag_deltas: Option<u64>,
    /// Streaming: drain once the oldest pending delta is this old (`--max-lag-ms`).
    #[serde(default)]
    pub max_lag_ms: Option<u64>,
    /// Streaming: queue high-water mark before shedding (`--max-pending-deltas`).
    #[serde(default)]
    pub max_pending_deltas: Option<u64>,
}

impl Tuning {
    /// `true` when no layer has expressed any opinion.
    pub fn is_empty(&self) -> bool {
        *self == Tuning::default()
    }

    /// Compose two layers: every knob set in `self` wins, every knob left
    /// `None` falls through to `base`. `request.overlaid_on(&cli)` is the
    /// documented request > CLI > default order.
    pub fn overlaid_on(&self, base: &Tuning) -> Tuning {
        Tuning {
            cores: self.cores.or(base.cores),
            deadline_ms: self.deadline_ms.or(base.deadline_ms),
            slow_task_ms: self.slow_task_ms.or(base.slow_task_ms),
            max_inflight: self.max_inflight.or(base.max_inflight),
            max_lag_deltas: self.max_lag_deltas.or(base.max_lag_deltas),
            max_lag_ms: self.max_lag_ms.or(base.max_lag_ms),
            max_pending_deltas: self.max_pending_deltas.or(base.max_pending_deltas),
        }
    }

    /// Write the verify-scoped knobs into `options`. Only touches fields
    /// excluded from the cache fingerprint, so a tuned and an untuned run
    /// share cached results.
    pub fn apply_to(&self, options: &mut PlanktonOptions) {
        if let Some(cores) = self.cores {
            options.parallelism = (cores as usize).max(1);
        }
        if let Some(ms) = self.deadline_ms {
            options.deadline = Some(Instant::now() + Duration::from_millis(ms));
        }
        if let Some(ms) = self.slow_task_ms {
            options.slow_task_micros = ms.saturating_mul(1_000);
        }
    }

    /// [`Tuning::max_lag_deltas`] or its default.
    pub fn effective_max_lag_deltas(&self) -> u64 {
        self.max_lag_deltas.unwrap_or(DEFAULT_MAX_LAG_DELTAS)
    }

    /// [`Tuning::max_lag_ms`] or its default.
    pub fn effective_max_lag_ms(&self) -> u64 {
        self.max_lag_ms.unwrap_or(DEFAULT_MAX_LAG_MS)
    }

    /// [`Tuning::max_pending_deltas`] or its default.
    pub fn effective_max_pending_deltas(&self) -> u64 {
        self.max_pending_deltas
            .unwrap_or(DEFAULT_MAX_PENDING_DELTAS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let o = PlanktonOptions::default();
        assert_eq!(o.parallelism, 1);
        assert!(o.lec_failure_pruning);
        assert!(o.stop_at_first_violation);
        assert!(o.search.deterministic_nodes);
    }

    #[test]
    fn builders() {
        let o = PlanktonOptions::with_cores(8)
            .restricted_to(vec!["10.0.0.0/24".parse().unwrap()])
            .collect_all_violations()
            .without_lec_pruning();
        assert_eq!(o.parallelism, 8);
        assert!(!o.stop_at_first_violation);
        assert!(!o.lec_failure_pruning);
        assert_eq!(o.restrict_to_prefixes.as_ref().unwrap().len(), 1);
        let n = PlanktonOptions::no_optimizations();
        assert!(!n.search.consistent_executions);
        assert!(!n.equivalence_suppression);
    }

    #[test]
    fn slow_task_threshold_is_not_part_of_the_cache_key() {
        let a = PlanktonOptions::default();
        let b = PlanktonOptions::default().with_slow_task_threshold(Duration::from_millis(1));
        assert_eq!(a.slow_task_micros, DEFAULT_SLOW_TASK_MICROS);
        assert_eq!(b.slow_task_micros, 1_000);
        assert_eq!(a.cache_fingerprint(), b.cache_fingerprint());
    }

    #[test]
    fn tuning_precedence_is_request_over_cli_over_default() {
        let cli = Tuning {
            cores: Some(2),
            slow_task_ms: Some(10),
            max_lag_deltas: Some(128),
            ..Default::default()
        };
        let request = Tuning {
            cores: Some(8),
            deadline_ms: Some(500),
            ..Default::default()
        };
        let effective = request.overlaid_on(&cli);
        assert_eq!(effective.cores, Some(8)); // request wins
        assert_eq!(effective.slow_task_ms, Some(10)); // CLI fills the gap
        assert_eq!(effective.deadline_ms, Some(500));
        assert_eq!(effective.max_lag_deltas, Some(128));
        assert_eq!(effective.max_lag_ms, None); // default layer
        assert_eq!(effective.effective_max_lag_ms(), DEFAULT_MAX_LAG_MS);
    }

    #[test]
    fn tuning_never_changes_the_cache_fingerprint() {
        let tuning = Tuning {
            cores: Some(16),
            deadline_ms: Some(1),
            slow_task_ms: Some(1),
            max_inflight: Some(1),
            max_lag_deltas: Some(1),
            max_lag_ms: Some(1),
            max_pending_deltas: Some(1),
        };
        let plain = PlanktonOptions::default();
        let mut tuned = PlanktonOptions::default();
        tuning.apply_to(&mut tuned);
        assert_eq!(tuned.parallelism, 16);
        assert!(tuned.deadline.is_some());
        assert_eq!(tuned.slow_task_micros, 1_000);
        assert_eq!(plain.cache_fingerprint(), tuned.cache_fingerprint());
    }

    #[test]
    fn tuning_round_trips_through_serde_and_tolerates_missing_fields() {
        let t = Tuning {
            max_lag_deltas: Some(32),
            ..Default::default()
        };
        let json = serde_json::to_string(&t).unwrap();
        let back: Tuning = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
        let empty: Tuning = serde_json::from_str("{}").unwrap();
        assert!(empty.is_empty());
    }
}
