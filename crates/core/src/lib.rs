//! # plankton-core
//!
//! The Plankton verifier: the orchestration layer that ties together PEC
//! computation, the dependency-aware scheduler, the protocol models, the
//! explicit-state model checker, the FIB/data-plane model and the policy API
//! into the pipeline of Figure 3 of the paper:
//!
//! ```text
//! config ─→ PECs ─→ dependency graph ─→ scheduler ─→ model checker ─→ FIB ─→ policy
//!                                            ↑  converged outcomes of   │
//!                                            └──────── dependencies ────┘
//! ```
//!
//! The main entry point is [`Plankton`]: build it from a
//! [`Network`](plankton_config::Network), then call
//! [`Plankton::verify`] with a policy, a failure scenario and options.

pub mod cache;
pub mod failures;
pub mod incremental;
pub mod options;
pub mod outcome;
pub mod report;
pub mod session;
pub mod underlay;
pub mod verifier;

pub use cache::{CacheSnapshot, PolicyOutcome, ResultCache};
pub use failures::{DeviceEquivalence, LinkEquivalenceClasses};
pub use incremental::{AppliedBatch, AppliedDelta, IncrementalRunStats, IncrementalVerifier};
pub use options::{
    PlanktonOptions, Tuning, DEFAULT_MAX_LAG_DELTAS, DEFAULT_MAX_LAG_MS,
    DEFAULT_MAX_PENDING_DELTAS, DEFAULT_SLOW_TASK_MICROS,
};
pub use outcome::{ConvergedRecord, PecOutcome};
pub use report::{PhaseTimings, VerificationReport, Violation};
pub use verifier::Plankton;
