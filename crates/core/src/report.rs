//! Verification results and counterexamples.

use plankton_checker::{SearchStats, Trail};
use plankton_engine::EngineStats;
use plankton_net::failure::FailureSet;
use plankton_net::ip::Prefix;
use plankton_pec::PecId;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// One policy violation: the PEC and prefix it was found on, the failure
/// scenario, the offending execution trail and the policy's reason.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Violation {
    /// The PEC whose converged data plane violated the policy.
    pub pec: PecId,
    /// The most specific prefix of that PEC.
    pub prefix: Option<Prefix>,
    /// The links that were failed before protocol execution.
    pub failures: FailureSet,
    /// The execution trail that produced the violating converged state.
    pub trail: Trail,
    /// The policy's explanation.
    pub reason: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "violation on {}{} under {}: {}",
            self.pec,
            self.prefix.map(|p| format!(" ({p})")).unwrap_or_default(),
            self.failures,
            self.reason
        )
    }
}

/// Where a verification's wall time went, one microsecond bucket per phase.
///
/// Filled by measuring contiguous laps of one clock, so the phases sum to
/// (within scheduling noise of) the report's `elapsed` — "why was this
/// verify slow?" is answerable from the report alone.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Planning the run environment (failure sets, needed/checked PEC sets)
    /// and, on the caching path, computing content-addressed task keys
    /// (device/PEC fingerprints, dependency-closure hashing).
    pub key_compute_micros: u64,
    /// Deciding which tasks to re-run: cache lookups and hit/miss
    /// accounting over the task list. Zero on the non-caching path.
    pub invalidation_micros: u64,
    /// Model checking: the engine run over every re-run task.
    pub exploration_micros: u64,
    /// Folding per-task outcomes into the final report (violation sort,
    /// stat aggregation).
    pub merge_micros: u64,
    /// Replaying cached outcomes into the run (clone out of the cache).
    /// Zero on the non-caching path.
    pub cache_io_micros: u64,
}

impl PhaseTimings {
    /// Total across all phases.
    pub fn sum_micros(&self) -> u64 {
        self.key_compute_micros
            + self.invalidation_micros
            + self.exploration_micros
            + self.merge_micros
            + self.cache_io_micros
    }
}

impl fmt::Display for PhaseTimings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "keys {}us, invalidation {}us, exploration {}us, merge {}us, cache io {}us",
            self.key_compute_micros,
            self.invalidation_micros,
            self.exploration_micros,
            self.merge_micros,
            self.cache_io_micros
        )
    }
}

/// The result of a whole verification.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct VerificationReport {
    /// The policy name that was checked.
    pub policy: String,
    /// Violations found (empty = the policy holds under the environment).
    pub violations: Vec<Violation>,
    /// Aggregated model-checking statistics across every run.
    pub stats: SearchStats,
    /// Number of PECs that were verified.
    pub pecs_verified: usize,
    /// Number of failure scenarios explored per PEC (after pruning).
    pub failure_sets_explored: usize,
    /// Number of combined converged data planes on which the policy was
    /// evaluated.
    pub data_planes_checked: u64,
    /// Wall-clock time of the verification.
    #[serde(skip)]
    pub elapsed: Duration,
    /// Per-phase breakdown of `elapsed`. Skipped in serialization for the
    /// same reason `elapsed` is: timings are execution-path-dependent and
    /// must not perturb `normalized_json` identity checks. The wire protocol
    /// carries them explicitly in its report summary.
    #[serde(skip)]
    pub phases: PhaseTimings,
    /// Size of the largest strongly connected component of the PEC
    /// dependency graph.
    pub largest_scc: usize,
    /// What the parallel engine's worker pool did (`None` when the legacy
    /// sequential scheduler ran).
    pub engine: Option<EngineStats>,
    /// Did the run abandon work because [`PlanktonOptions::deadline`]
    /// passed? A deadline-exceeded report is *incomplete* — unexplored
    /// tasks drained as skipped — so callers must not treat `holds()` as a
    /// verification verdict. Skipped in serialization like `elapsed`:
    /// whether a deadline fired is execution-path-dependent and must not
    /// perturb `normalized_json` identity checks (the service refuses to
    /// serve such reports as results anyway).
    ///
    /// [`PlanktonOptions::deadline`]: crate::options::PlanktonOptions::deadline
    #[serde(skip)]
    pub deadline_exceeded: bool,
}

impl VerificationReport {
    /// Did the policy hold everywhere?
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }

    /// The first violation, if any.
    pub fn first_violation(&self) -> Option<&Violation> {
        self.violations.first()
    }

    /// Canonical JSON of the report with execution-path-dependent fields
    /// nulled (engine pool statistics; `elapsed` is already skipped by
    /// serde). Two runs computed the same verification result iff their
    /// normalized JSON is equal — the single definition every
    /// incremental-vs-from-scratch identity check compares through.
    pub fn normalized_json(&self) -> String {
        let mut r = self.clone();
        r.engine = None;
        serde_json::to_string(&r).expect("reports always serialize")
    }

    /// A one-line summary suitable for experiment logs.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} ({} PECs, {} failure sets, {} data planes, {} states, {:.3}s, ~{:.1} MiB)",
            self.policy,
            if self.holds() { "HOLDS" } else { "VIOLATED" },
            self.pecs_verified,
            self.failure_sets_explored,
            self.data_planes_checked,
            self.stats.states_explored(),
            self.elapsed.as_secs_f64(),
            self.stats.approx_memory_mib(),
        )
    }
}

impl fmt::Display for VerificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.summary())?;
        if let Some(engine) = &self.engine {
            writeln!(f, "  engine: {engine}")?;
        }
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_summary_and_holds() {
        let mut r = VerificationReport {
            policy: "reachability".into(),
            ..Default::default()
        };
        assert!(r.holds());
        assert!(r.summary().contains("HOLDS"));
        r.violations.push(Violation {
            pec: PecId(1),
            prefix: Some("10.0.0.0/24".parse().unwrap()),
            failures: FailureSet::none(),
            trail: Trail::default(),
            reason: "unreachable".into(),
        });
        assert!(!r.holds());
        assert!(r.summary().contains("VIOLATED"));
        assert!(r
            .first_violation()
            .unwrap()
            .to_string()
            .contains("unreachable"));
        assert!(r.to_string().contains("pec1"));
    }
}
