//! The top-level Plankton verifier (Figure 3 of the paper).
//!
//! Two execution paths share one per-(component × failure-scenario) work
//! routine:
//!
//! * the **work-stealing engine** (default): the cross product of PEC
//!   dependency components and failure scenarios becomes a task graph driven
//!   by `plankton_engine` — a component's tasks are released the moment its
//!   dependencies' outcomes land, independent components never wait on each
//!   other, and the whole pool drains early on the first violation;
//! * the **legacy level-barrier scheduler**
//!   ([`PlanktonOptions::sequential`]): kept for differential testing.
//!
//! Violations are sorted before the report is assembled, so with
//! [`PlanktonOptions::collect_all_violations`] both paths produce identical
//! reports regardless of worker interleaving. Under the default
//! stop-at-first-violation semantics only `holds()` is deterministic: which
//! violation lands first — and how much work the fleet did before the stop
//! broadcast reached it — depends on scheduling.

use crate::failures::failure_sets_to_explore;
use crate::options::PlanktonOptions;
use crate::outcome::{ConvergedRecord, PecOutcome};
use crate::report::{PhaseTimings, VerificationReport, Violation};
use crate::session::{DataPlane, PecSession};
use crate::underlay::DependencyUnderlay;
use parking_lot::Mutex;
use plankton_checker::{SearchScratch, SearchStats};
use plankton_config::Network;
use plankton_engine::{pec_task_graph_for, Engine, SharedRouteInterner};
use plankton_net::failure::{FailureScenario, FailureSet};
use plankton_net::topology::NodeId;
use plankton_pec::{compute_pecs, DependencyStore, Pec, PecDependencies, PecId, PecSet, Scheduler};
use plankton_policy::{ConvergedView, Policy};
use plankton_telemetry::trace::{self, Field, Level};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A cheap stable fingerprint of a failure set, used (with the PEC id) as
/// the task identity in the cost-attribution registry. FNV-1a over the
/// canonical sorted link ids, so equal sets key identically across runs.
pub(crate) fn failure_set_fingerprint(failures: &FailureSet) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for link in failures.links() {
        h ^= link.0 as u64 + 1;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Attributes a panicking task to its (PEC × failure-set) identity. Armed
/// around the risky part of a task; a normal drop is a no-op, an unwinding
/// drop bumps the registry's `panics` counter before the panic escapes to
/// the engine's `catch_unwind`.
struct TaskPanicGuard<'a> {
    pec: u64,
    fhash: u64,
    failures: &'a FailureSet,
}

impl Drop for TaskPanicGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            plankton_telemetry::taskstats::global()
                .record_panic(self.pec, self.fhash, || self.failures.to_string());
        }
    }
}

/// Advance `mark` to now and return the microseconds since its previous
/// position. Phases measured as contiguous laps of one clock sum to the
/// enclosing wall time by construction.
pub(crate) fn lap(mark: &mut Instant) -> u64 {
    let now = Instant::now();
    let elapsed = now.duration_since(*mark).as_micros() as u64;
    *mark = now;
    elapsed
}

/// The Plankton configuration verifier.
///
/// ```
/// use plankton_core::{Plankton, PlanktonOptions};
/// use plankton_policy::Reachability;
/// use plankton_net::failure::FailureScenario;
/// use plankton_config::scenarios::ring_ospf;
///
/// let scenario = ring_ospf(4);
/// let sources: Vec<_> = scenario.ring.routers[1..].to_vec();
/// let plankton = Plankton::new(scenario.network.clone());
/// let report = plankton.verify(
///     &Reachability::new(sources),
///     &FailureScenario::no_failures(),
///     &PlanktonOptions::default().restricted_to(vec![scenario.destination]),
/// );
/// assert!(report.holds());
/// ```
pub struct Plankton {
    network: Network,
    pecs: PecSet,
    deps: PecDependencies,
}

/// Shared state of one verification run, visible to every worker.
pub(crate) struct RunCtx<'a> {
    pub(crate) policy: &'a dyn Policy,
    pub(crate) options: &'a PlanktonOptions,
    pub(crate) interesting: Vec<NodeId>,
    pub(crate) failure_sets: Vec<FailureSet>,
    /// PECs that must be verified (restricted set plus transitive deps).
    pub(crate) needed: BTreeSet<PecId>,
    /// PECs whose policy verdict matters.
    pub(crate) checked: BTreeSet<PecId>,
    /// Component indices some needed PEC depends on.
    pub(crate) has_dependents: BTreeSet<usize>,
    pub(crate) violations: Mutex<Vec<Violation>>,
    pub(crate) total_stats: Mutex<SearchStats>,
    pub(crate) data_planes_checked: AtomicU64,
    pub(crate) stop: AtomicBool,
    pub(crate) interner: SharedRouteInterner,
    /// Mirror of [`PlanktonOptions::deadline`], checked between tasks.
    pub(crate) deadline: Option<Instant>,
    /// Latched when the deadline fired; the report is marked incomplete.
    pub(crate) deadline_hit: AtomicBool,
    /// The request's trace id, captured on the submitting thread and
    /// re-installed inside worker closures so events emitted from the pool
    /// (`slow_task`, ...) join the request's causal chain.
    pub(crate) trace_id: u64,
}

/// The outcome of verifying one PEC of one component task under one failure
/// set — the unit the incremental service caches.
#[derive(Clone, Debug, Default)]
pub(crate) struct PecTaskResult {
    /// Converged records for dependent PECs (empty without dependents).
    pub(crate) records: Vec<Arc<ConvergedRecord>>,
    /// Violations found on this PEC under this failure set.
    pub(crate) violations: Vec<Violation>,
    /// Model-checking statistics of this PEC's runs.
    pub(crate) stats: SearchStats,
    /// Converged data planes the policy was evaluated on.
    pub(crate) data_planes_checked: u64,
    /// Did the PEC run to completion? `false` when the early-stop broadcast
    /// skipped it — such results are partial and must never be cached.
    pub(crate) complete: bool,
}

impl<'a> RunCtx<'a> {
    /// Fold one PEC's task result into the run-wide aggregates.
    pub(crate) fn absorb(&self, result: &PecTaskResult) {
        *self.total_stats.lock() += result.stats;
        if result.data_planes_checked > 0 {
            self.data_planes_checked
                .fetch_add(result.data_planes_checked, Ordering::Relaxed);
        }
        if !result.violations.is_empty() {
            self.violations
                .lock()
                .extend(result.violations.iter().cloned());
        }
    }

    /// Has [`PlanktonOptions::deadline`] passed? When it has, latch
    /// `deadline_hit` and broadcast the early-stop drain: remaining work is
    /// skipped exactly like a stop-at-first-violation stop, so
    /// deadline-abandoned tasks produce incomplete (never-cached) results.
    /// Free when no deadline is set (one `Option` check).
    pub(crate) fn deadline_passed(&self) -> bool {
        let Some(deadline) = self.deadline else {
            return false;
        };
        if Instant::now() < deadline {
            return false;
        }
        self.deadline_hit.store(true, Ordering::Relaxed);
        self.stop.store(true, Ordering::Relaxed);
        true
    }
}

impl Plankton {
    /// Build the verifier: computes the PECs and the dependency graph.
    pub fn new(network: Network) -> Self {
        let pecs = compute_pecs(&network);
        let deps = PecDependencies::compute(&network, &pecs);
        Plankton {
            network,
            pecs,
            deps,
        }
    }

    /// The network under verification.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The computed Packet Equivalence Classes.
    pub fn pecs(&self) -> &PecSet {
        &self.pecs
    }

    /// The PEC dependency analysis.
    pub fn dependencies(&self) -> &PecDependencies {
        &self.deps
    }

    /// The PECs that must be verified to decide the policy, honoring
    /// `restrict_to_prefixes`: the restricted (or all active) PECs plus every
    /// PEC they transitively depend on.
    pub(crate) fn needed_pecs(&self, options: &PlanktonOptions) -> BTreeSet<PecId> {
        let primary: Vec<&Pec> = match &options.restrict_to_prefixes {
            Some(prefixes) => prefixes
                .iter()
                .flat_map(|p| self.pecs.pecs_overlapping(p))
                .collect(),
            None => self.pecs.active_pecs(),
        };
        let mut needed: BTreeSet<PecId> = primary.iter().map(|p| p.id).collect();
        for pec in primary {
            let comp = self.deps.component_of(pec.id);
            for dep in self.deps.transitive_dependencies(comp) {
                needed.insert(dep);
            }
        }
        needed
    }

    /// The PECs whose policy verdict matters (the needed set minus
    /// dependency-only PECs when a restriction is in place).
    pub(crate) fn checked_pecs(&self, options: &PlanktonOptions) -> BTreeSet<PecId> {
        match &options.restrict_to_prefixes {
            Some(prefixes) => prefixes
                .iter()
                .flat_map(|p| self.pecs.pecs_overlapping(p))
                .map(|p| p.id)
                .collect(),
            None => self.pecs.active_pecs().iter().map(|p| p.id).collect(),
        }
    }

    /// Build the shared run context of one verification request: the
    /// failure environment (policy-interesting nodes; §4.3 LEC pruning only
    /// without cross-PEC dependencies), the needed/checked PEC sets and the
    /// dependents map, plus fresh run-wide aggregates. One definition used
    /// by both [`Plankton::verify`] and the cached incremental path — they
    /// must plan identical environments for report identity to hold.
    pub(crate) fn prepare_run_ctx<'a>(
        &'a self,
        policy: &'a dyn Policy,
        scenario: &FailureScenario,
        options: &'a PlanktonOptions,
    ) -> RunCtx<'a> {
        let interesting = policy.interesting_nodes().unwrap_or_default();
        let has_cross_pec_deps = self.deps.graph.edge_count() > 0;
        let lec = options.lec_failure_pruning && !has_cross_pec_deps;
        let failure_sets = failure_sets_to_explore(&self.network, scenario, &interesting, lec);

        let needed = self.needed_pecs(options);
        let checked = self.checked_pecs(options);
        // A PEC has dependents when some other needed PEC depends on its
        // component.
        let mut has_dependents: BTreeSet<usize> = BTreeSet::new();
        for &pec in &needed {
            let comp = self.deps.component_of(pec);
            for &dep in &self.deps.component_deps[comp] {
                has_dependents.insert(dep);
            }
        }
        RunCtx {
            policy,
            options,
            interesting,
            failure_sets,
            needed,
            checked,
            has_dependents,
            violations: Mutex::new(Vec::new()),
            total_stats: Mutex::new(SearchStats::default()),
            data_planes_checked: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            interner: SharedRouteInterner::new(),
            deadline: options.deadline,
            deadline_hit: AtomicBool::new(false),
            trace_id: trace::current(),
        }
    }

    /// The deterministic violation order reports are assembled in,
    /// regardless of worker interleaving (shared by every execution path).
    pub(crate) fn sort_violations(violations: &mut [Violation]) {
        violations
            .sort_by(|a, b| (a.pec, &a.failures, &a.reason).cmp(&(b.pec, &b.failures, &b.reason)));
    }

    /// Verify `policy` under the failure environment `scenario`.
    pub fn verify(
        &self,
        policy: &dyn Policy,
        scenario: &FailureScenario,
        options: &PlanktonOptions,
    ) -> VerificationReport {
        let start = Instant::now();
        let mut mark = start;
        let mut phases = PhaseTimings::default();
        let ctx = self.prepare_run_ctx(policy, scenario, options);
        phases.key_compute_micros = lap(&mut mark);

        let (largest_scc, engine_stats) = if options.sequential {
            (self.run_sequential(&ctx), None)
        } else {
            let stats = self.run_engine(&ctx);
            (self.deps.largest_component(), Some(stats))
        };
        phases.exploration_micros = lap(&mut mark);

        let mut violations = ctx.violations.into_inner();
        Self::sort_violations(&mut violations);
        phases.merge_micros = lap(&mut mark);

        VerificationReport {
            policy: policy.name().to_string(),
            violations,
            stats: ctx.total_stats.into_inner(),
            pecs_verified: ctx.checked.len(),
            failure_sets_explored: ctx.failure_sets.len(),
            data_planes_checked: ctx.data_planes_checked.load(Ordering::Relaxed),
            elapsed: start.elapsed(),
            phases,
            largest_scc,
            engine: engine_stats,
            deadline_exceeded: ctx.deadline_hit.load(Ordering::Relaxed),
        }
    }

    /// The work-stealing engine path: one task per (needed component ×
    /// failure scenario), outcomes in per-task slots, early stop broadcast
    /// to the pool.
    fn run_engine(&self, ctx: &RunCtx<'_>) -> plankton_engine::EngineStats {
        let nf = ctx.failure_sets.len();
        // Only components containing a needed PEC become tasks — with
        // `restrict_to_prefixes` on a large network that is a tiny fraction
        // of the cross product. The active set is closed under dependencies
        // (`needed` includes every transitive dependency), so remapped edges
        // never dangle.
        let active: Vec<usize> = (0..self.deps.component_count())
            .filter(|&c| {
                self.deps.components[c]
                    .iter()
                    .any(|p| ctx.needed.contains(p))
            })
            .collect();
        let (graph, map) = pec_task_graph_for(&self.deps, nf, &active);

        // One outcome slot per (needed PEC, failure set); set exactly once,
        // by the task that verified the PEC's component under that failure
        // set, strictly before the engine releases any dependent task.
        let slot_row: BTreeMap<PecId, usize> = ctx
            .needed
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i))
            .collect();
        let slots: Vec<OnceLock<Vec<Arc<ConvergedRecord>>>> =
            (0..slot_row.len() * nf).map(|_| OnceLock::new()).collect();
        let slot = |pec: PecId, f: usize| slot_row.get(&pec).map(|row| &slots[row * nf + f]);

        let engine = Engine::new(ctx.options.parallelism);
        let mut stats = engine.run(&graph, |task, worker| {
            let _trace = trace::scope(ctx.trace_id);
            if ctx.deadline_passed() {
                worker.request_stop();
                return;
            }
            let (active_idx, f) = map.decode(task);
            let component = &self.deps.components[active[active_idx]];
            let failures = &ctx.failure_sets[f];
            let lookup = |p: PecId| -> Option<Arc<ConvergedRecord>> {
                slot(p, f)?
                    .get()
                    .and_then(|records| records.first().cloned())
            };
            let results = self.run_component_under_failures(
                ctx,
                component,
                failures,
                &lookup,
                Some(worker.scratch_cell()),
            );
            for (pec, result) in results {
                ctx.absorb(&result);
                if let Some(cell) = slot(pec, f) {
                    let _ = cell.set(result.records);
                }
            }
            if ctx.stop.load(Ordering::Relaxed) {
                worker.request_stop();
            }
        });
        stats.interned_routes = ctx.interner.len() as u64;
        stats.states_explored = ctx.total_stats.lock().states_explored();
        stats
    }

    /// The legacy level-barrier path, kept behind
    /// [`PlanktonOptions::sequential`] for differential testing. Returns the
    /// scheduler's largest-SCC figure.
    fn run_sequential(&self, ctx: &RunCtx<'_>) -> usize {
        let scheduler = Scheduler::new(ctx.options.parallelism);
        let verify_component = |component: &[PecId], store: &DependencyStore<PecOutcome>| {
            let _trace = trace::scope(ctx.trace_id);
            let mut outcomes: BTreeMap<PecId, PecOutcome> = BTreeMap::new();
            let needs_work = component.iter().any(|p| ctx.needed.contains(p));
            if !needs_work {
                return outcomes;
            }
            for &pec_id in component {
                outcomes.insert(pec_id, PecOutcome::new(pec_id));
            }
            for failures in &ctx.failure_sets {
                if ctx.stop.load(Ordering::Relaxed) || ctx.deadline_passed() {
                    break;
                }
                let lookup = |p: PecId| -> Option<Arc<ConvergedRecord>> {
                    store.get(p).and_then(|o| o.first_under_failures(failures))
                };
                let results =
                    self.run_component_under_failures(ctx, component, failures, &lookup, None);
                for (pec, result) in results {
                    ctx.absorb(&result);
                    outcomes
                        .get_mut(&pec)
                        .expect("component PEC pre-inserted")
                        .records
                        .extend(result.records);
                }
            }
            outcomes
        };
        let (_, sched_report) = scheduler.run(&self.deps, verify_component);
        sched_report.largest_component
    }

    /// Verify every PEC of one component under one failure set: the shared
    /// inner routine of every execution path. Returns per-PEC task results;
    /// the *caller* folds them into the run aggregates (via
    /// [`RunCtx::absorb`]) so the incremental path can additionally cache
    /// each complete result under its content key.
    pub(crate) fn run_component_under_failures(
        &self,
        ctx: &RunCtx<'_>,
        component: &[PecId],
        failures: &FailureSet,
        lookup: &dyn Fn(PecId) -> Option<Arc<ConvergedRecord>>,
        scratch: Option<&RefCell<SearchScratch>>,
    ) -> BTreeMap<PecId, PecTaskResult> {
        let mut out: BTreeMap<PecId, PecTaskResult> = BTreeMap::new();
        if !component.iter().any(|p| ctx.needed.contains(p)) {
            return out;
        }
        for &pec_id in component {
            let mut result = PecTaskResult::default();
            if ctx.stop.load(Ordering::Relaxed) || ctx.deadline_passed() {
                out.insert(pec_id, result);
                continue;
            }
            result.complete = true;
            let fhash = failure_set_fingerprint(failures);
            let _panic_attr = TaskPanicGuard {
                pec: pec_id.0 as u64,
                fhash,
                failures,
            };
            // Chaos hook: `task=panic@pec:<id>` models a bug in this PEC's
            // model-checking run. On the engine path the panic is contained
            // as a structured `TaskFailure` (io_err has no meaning here).
            let _ = plankton_faultinject::trigger_keyed("task", "pec", pec_id.0 as u64);
            // Attribution is always on (like metrics), so the clock always
            // runs: two `Instant` reads per *task*, nothing per step.
            let task_start = Instant::now();
            let pec = self.pecs.pec(pec_id);
            let comp_idx = self.deps.component_of(pec_id);
            let component_has_dependents = ctx.has_dependents.contains(&comp_idx);
            let component_has_dependencies = !self.deps.component_deps[comp_idx].is_empty();
            let should_check = ctx.checked.contains(&pec_id);

            let underlay = Arc::new(self.build_underlay_with(pec, lookup));
            let session = PecSession {
                network: &self.network,
                pec,
                failures,
                underlay,
                options: ctx.options,
                policy_sources: ctx.policy.sources(),
                has_dependents: component_has_dependents,
                has_dependencies: component_has_dependencies,
                scratch,
            };
            let (planes, stats) = session.data_planes();
            result.stats = stats;

            let mut seen_signatures: BTreeSet<Vec<(usize, bool, Vec<usize>)>> = BTreeSet::new();
            for plane in &planes {
                if component_has_dependents {
                    result
                        .records
                        .push(Arc::new(session.record_of(plane, &ctx.interner)));
                }
                if !should_check {
                    continue;
                }
                if ctx.options.equivalence_suppression {
                    let signature = equivalence_signature(
                        plane,
                        ctx.policy.sources().as_deref(),
                        &ctx.interesting,
                    );
                    if !seen_signatures.insert(signature) {
                        continue;
                    }
                }
                result.data_planes_checked += 1;
                let view = ConvergedView {
                    pec,
                    forwarding: &plane.forwarding,
                    control_routes: &plane.control_routes,
                };
                if let plankton_policy::PolicyResult::Violated(reason) = ctx.policy.check(&view) {
                    result.violations.push(Violation {
                        pec: pec_id,
                        prefix: pec.most_specific().map(|c| c.prefix),
                        failures: failures.clone(),
                        trail: plane.trail.clone(),
                        reason,
                    });
                    if ctx.options.stop_at_first_violation {
                        ctx.stop.store(true, Ordering::Relaxed);
                    }
                }
            }
            let elapsed = task_start.elapsed().as_micros() as u64;
            let costs = plankton_telemetry::taskstats::global();
            costs.record_run(
                pec_id.0 as u64,
                fhash,
                elapsed,
                result.stats.states_explored(),
                || failures.to_string(),
            );
            if elapsed >= ctx.options.slow_task_micros && trace::enabled(Level::Warn) {
                let failures_text = failures.to_string();
                let (runs, total_us, max_us) = costs.totals(pec_id.0 as u64, fhash);
                trace::event(
                    Level::Warn,
                    "slow_task",
                    &[
                        Field::u64("pec", pec_id.0 as u64),
                        Field::str("failures", &failures_text),
                        Field::u64("elapsed_us", elapsed),
                        Field::u64("states", result.stats.states_explored()),
                        Field::u64("task_runs", runs),
                        Field::u64("task_total_us", total_us),
                        Field::u64("task_max_us", max_us),
                    ],
                );
            }
            out.insert(pec_id, result);
        }
        out
    }

    /// Assemble the dependency underlay for one PEC from the converged
    /// records of the PECs it depends on, resolved through `lookup` (which
    /// encapsulates both the store and the failure-set matching — §3.2:
    /// dependents only consume records computed under their own failure
    /// set).
    pub(crate) fn build_underlay_with(
        &self,
        pec: &Pec,
        lookup: &dyn Fn(PecId) -> Option<Arc<ConvergedRecord>>,
    ) -> DependencyUnderlay {
        let mut underlay = DependencyUnderlay::new();
        let comp = self.deps.component_of(pec.id);
        let dependency_pecs = self.deps.transitive_dependencies(comp);
        if dependency_pecs.is_empty() {
            return underlay;
        }
        // Loopback records: every node whose loopback falls into a dependency
        // PEC contributes IGP reachability information.
        for node in self.network.topology.nodes() {
            let Some(lb) = node.loopback else { continue };
            let Some(lb_pec) = self.pecs.pec_containing(lb) else {
                continue;
            };
            if !dependency_pecs.contains(&lb_pec.id) {
                continue;
            }
            // Cross-PEC dependencies in practice involve a single converged
            // state per dependency (§6).
            let Some(record) = lookup(lb_pec.id) else {
                continue;
            };
            underlay.add_loopback_record(node.id, &record);
        }
        // Recursive static-route targets.
        for addr in pec.recursive_next_hops() {
            let Some(target_pec) = self.pecs.pec_containing(addr) else {
                continue;
            };
            let Some(record) = lookup(target_pec.id) else {
                continue;
            };
            underlay.add_address_record(addr, &record);
        }
        underlay
    }
}

/// The policy-level equivalence signature of a data plane (§3.5): for every
/// source, the length of its forwarding path, whether it is delivered, and
/// the positions of the interesting nodes along it. Data planes with equal
/// signatures are indistinguishable to the policy, so only one of them is
/// checked.
fn equivalence_signature(
    plane: &DataPlane,
    sources: Option<&[NodeId]>,
    interesting: &[NodeId],
) -> Vec<(usize, bool, Vec<usize>)> {
    let sources: Vec<NodeId> = match sources {
        Some(s) => s.to_vec(),
        None => (0..plane.forwarding.node_count() as u32)
            .map(NodeId)
            .collect(),
    };
    sources
        .iter()
        .map(|&s| {
            let outcome = plane.forwarding.walk(s);
            let path = outcome.path();
            let positions = interesting
                .iter()
                .filter_map(|w| path.iter().position(|n| n == w))
                .collect();
            (path.len(), outcome.is_delivered(), positions)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use plankton_config::scenarios::{disagree_gadget, fat_tree_ospf, ring_ospf, CoreStaticRoutes};
    use plankton_policy::{LoopFreedom, Reachability};

    #[test]
    fn ring_reachability_holds_under_single_failures() {
        let s = ring_ospf(6);
        let plankton = Plankton::new(s.network.clone());
        let sources: Vec<NodeId> = s.ring.routers[1..].to_vec();
        let report = plankton.verify(
            &Reachability::new(sources),
            &FailureScenario::up_to(1),
            &PlanktonOptions::default().restricted_to(vec![s.destination]),
        );
        assert!(report.holds(), "{report}");
        assert!(report.failure_sets_explored > 1);
        assert_eq!(report.pecs_verified, 1);
        assert!(report.engine.is_some(), "engine path is the default");
    }

    #[test]
    fn ring_reachability_fails_under_double_failures() {
        let s = ring_ospf(6);
        let plankton = Plankton::new(s.network.clone());
        let sources: Vec<NodeId> = s.ring.routers[1..].to_vec();
        let report = plankton.verify(
            &Reachability::new(sources),
            &FailureScenario::up_to(2),
            &PlanktonOptions::default()
                .restricted_to(vec![s.destination])
                .without_lec_pruning(),
        );
        assert!(!report.holds());
        let violation = report.first_violation().unwrap();
        assert_eq!(violation.failures.len(), 2);
    }

    #[test]
    fn fat_tree_loop_policy_pass_and_fail() {
        let pass = fat_tree_ospf(4, CoreStaticRoutes::MatchingOspf);
        let plankton = Plankton::new(pass.network.clone());
        let report = plankton.verify(
            &LoopFreedom::everywhere(),
            &FailureScenario::no_failures(),
            &PlanktonOptions::default(),
        );
        assert!(report.holds(), "{report}");

        let fail = fat_tree_ospf(4, CoreStaticRoutes::Looping);
        let plankton = Plankton::new(fail.network.clone());
        let report = plankton.verify(
            &LoopFreedom::everywhere(),
            &FailureScenario::no_failures(),
            &PlanktonOptions::default(),
        );
        assert!(!report.holds());
        assert!(report.first_violation().unwrap().reason.contains("loop"));
    }

    #[test]
    fn disagree_gadget_violation_found_only_in_one_convergence() {
        // Reachability holds in both converged states, but a waypoint through
        // actor a only holds in the state where b routes via a.
        use plankton_policy::Waypoint;
        let g = disagree_gadget();
        let plankton = Plankton::new(g.network.clone());
        let policy = Waypoint::new(vec![g.actors[1]], vec![g.actors[0]]);
        let report = plankton.verify(
            &policy,
            &FailureScenario::no_failures(),
            &PlanktonOptions::default().restricted_to(vec![g.destination]),
        );
        assert!(!report.holds(), "the wedged convergence must be found");
        // The trail of the counterexample contains non-deterministic choices.
        assert!(
            report
                .first_violation()
                .unwrap()
                .trail
                .nondeterministic_steps()
                > 0
        );

        // Reachability, in contrast, holds in every converged state.
        let report = plankton.verify(
            &Reachability::new(vec![g.actors[0], g.actors[1]]),
            &FailureScenario::no_failures(),
            &PlanktonOptions::default().restricted_to(vec![g.destination]),
        );
        assert!(report.holds(), "{report}");
    }

    #[test]
    fn parallel_and_serial_verification_agree() {
        let s = fat_tree_ospf(4, CoreStaticRoutes::Looping);
        let plankton = Plankton::new(s.network.clone());
        let serial = plankton.verify(
            &LoopFreedom::everywhere(),
            &FailureScenario::no_failures(),
            &PlanktonOptions::with_cores(1)
                .sequential()
                .collect_all_violations(),
        );
        let parallel = plankton.verify(
            &LoopFreedom::everywhere(),
            &FailureScenario::no_failures(),
            &PlanktonOptions::with_cores(4).collect_all_violations(),
        );
        assert_eq!(serial.holds(), parallel.holds());
        assert_eq!(serial.violations.len(), parallel.violations.len());
        assert!(serial.engine.is_none());
        let engine = parallel.engine.expect("engine stats recorded");
        assert_eq!(engine.workers, 4);
        assert_eq!(engine.tasks_pending, 0);
        assert_eq!(
            engine.tasks_executed + engine.tasks_skipped,
            engine.tasks_total as u64
        );
    }
}
