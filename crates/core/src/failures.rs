//! Failure-choice pruning via device and link equivalence classes (§4.3).
//!
//! Plankton reduces the number of explored link failures by grouping devices
//! into equivalence classes (in the spirit of Bonsai's control-plane
//! compression), defining a Link Equivalence Class (LEC) as the set of links
//! joining two device classes, and failing only one representative link per
//! LEC. Interesting nodes named by the policy are kept in singleton classes
//! so that their links are never merged away. The verification itself still
//! runs on the original network — only the *choice* of failed links is
//! pruned.

use plankton_config::Network;
use plankton_net::failure::{FailureScenario, FailureSet};
use plankton_net::topology::{LinkId, NodeId};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};

/// Device equivalence classes computed by iterative refinement over
/// configuration roles and neighborhoods.
#[derive(Clone, Debug)]
pub struct DeviceEquivalence {
    /// `class[n]` = the equivalence class of device `n`.
    pub class: Vec<usize>,
    /// Number of distinct classes.
    pub class_count: usize,
}

impl DeviceEquivalence {
    /// Compute device classes. `interesting` devices are forced into
    /// singleton classes.
    pub fn compute(network: &Network, interesting: &[NodeId]) -> Self {
        let topo = &network.topology;
        let n = topo.node_count();

        // Initial classes: a signature of the device's configuration role.
        let mut signature: Vec<u64> = (0..n)
            .map(|i| {
                let node = NodeId(i as u32);
                let d = network.device(node);
                let mut h = DefaultHasher::new();
                d.runs_ospf().hash(&mut h);
                d.runs_bgp().hash(&mut h);
                d.static_routes.len().hash(&mut h);
                d.bgp.as_ref().map(|b| b.neighbors.len()).hash(&mut h);
                topo.degree(node).hash(&mut h);
                // Origination pattern matters: a device that originates
                // prefixes behaves differently from one that does not.
                d.ospf.as_ref().map(|o| o.networks.len()).hash(&mut h);
                d.bgp.as_ref().map(|b| b.networks.len()).hash(&mut h);
                h.finish()
            })
            .collect();
        // Interesting nodes get unique signatures.
        for (i, node) in interesting.iter().enumerate() {
            signature[node.index()] = u64::MAX - i as u64;
        }

        let mut class = Self::canonicalize(&signature);
        // Iterative refinement on neighbor multisets (with OSPF costs so that
        // asymmetric weights break symmetry).
        for _ in 0..n {
            let mut refined: Vec<u64> = Vec::with_capacity(n);
            for i in 0..n {
                let node = NodeId(i as u32);
                let mut neighbor_classes: Vec<(usize, u32)> = topo
                    .neighbors(node)
                    .iter()
                    .map(|&(m, link)| {
                        let cost = network
                            .device(node)
                            .ospf
                            .as_ref()
                            .and_then(|o| o.cost(link))
                            .unwrap_or(0);
                        (class[m.index()], cost)
                    })
                    .collect();
                neighbor_classes.sort_unstable();
                let mut h = DefaultHasher::new();
                class[i].hash(&mut h);
                neighbor_classes.hash(&mut h);
                refined.push(h.finish());
            }
            let new_class = Self::canonicalize(&refined);
            let new_count = Self::count(&new_class);
            if new_count == Self::count(&class) {
                class = new_class;
                break;
            }
            class = new_class;
        }

        let class_count = Self::count(&class);
        DeviceEquivalence { class, class_count }
    }

    fn canonicalize(signature: &[u64]) -> Vec<usize> {
        let mut map: HashMap<u64, usize> = HashMap::new();
        signature
            .iter()
            .map(|s| {
                let next = map.len();
                *map.entry(*s).or_insert(next)
            })
            .collect()
    }

    fn count(class: &[usize]) -> usize {
        class
            .iter()
            .copied()
            .collect::<std::collections::HashSet<_>>()
            .len()
    }

    /// The class of a device.
    pub fn class_of(&self, n: NodeId) -> usize {
        self.class[n.index()]
    }
}

/// Link equivalence classes over a device equivalence.
#[derive(Clone, Debug)]
pub struct LinkEquivalenceClasses {
    /// One representative link per class, in canonical order.
    pub representatives: Vec<LinkId>,
    /// `class_of[link]` = index into the class list.
    pub class_of: Vec<usize>,
    /// Number of classes.
    pub class_count: usize,
}

impl LinkEquivalenceClasses {
    /// Group the candidate links of a scenario by the (unordered) pair of
    /// device classes they join.
    pub fn compute(network: &Network, devices: &DeviceEquivalence, candidates: &[LinkId]) -> Self {
        let mut by_pair: BTreeMap<(usize, usize), Vec<LinkId>> = BTreeMap::new();
        for &link in candidates {
            let l = network.topology.link(link);
            let (a, b) = l.endpoints();
            let (ca, cb) = (devices.class_of(a), devices.class_of(b));
            let key = (ca.min(cb), ca.max(cb));
            by_pair.entry(key).or_default().push(link);
        }
        let mut representatives = Vec::new();
        let mut class_of = vec![usize::MAX; network.topology.link_count()];
        for (class_idx, (_, links)) in by_pair.iter().enumerate() {
            let rep = *links.iter().min().expect("classes are never empty");
            representatives.push(rep);
            for &l in links {
                class_of[l.index()] = class_idx;
            }
        }
        LinkEquivalenceClasses {
            class_count: representatives.len(),
            representatives,
            class_of,
        }
    }
}

/// Enumerate the failure sets to explore for a scenario: the plain
/// combination enumeration, or — when `lec_pruning` is set — combinations of
/// LEC representative links only, refining the representative choice after
/// each selection by excluding already-failed links (§4.3).
///
/// Administratively-down links ([`Network::down_links`], the incremental
/// service's link-down deltas) are excluded from the candidate failure
/// choices and instead unioned into *every* explored set, so protocol
/// adjacency never forms over them in any scenario.
pub fn failure_sets_to_explore(
    network: &Network,
    scenario: &FailureScenario,
    interesting: &[NodeId],
    lec_pruning: bool,
) -> Vec<FailureSet> {
    let down: FailureSet = network.down_links.iter().copied().collect();
    let with_down = |mut sets: Vec<FailureSet>| -> Vec<FailureSet> {
        if down.is_empty() {
            return sets;
        }
        for set in sets.iter_mut() {
            *set = set.union(&down);
        }
        sets.sort_by(|a, b| (a.len(), a.links()).cmp(&(b.len(), b.links())));
        sets.dedup();
        sets
    };
    let scenario_up: FailureScenario;
    let scenario = if down.is_empty() {
        scenario
    } else {
        scenario_up = FailureScenario {
            max_failures: scenario.max_failures,
            candidates: Some(
                scenario
                    .candidate_links(&network.topology)
                    .into_iter()
                    .filter(|l| !down.contains(*l))
                    .collect(),
            ),
        };
        &scenario_up
    };
    if !lec_pruning || scenario.max_failures == 0 {
        return with_down(scenario.enumerate_failure_sets(&network.topology));
    }
    let devices = DeviceEquivalence::compute(network, interesting);
    let candidates = scenario.candidate_links(&network.topology);

    let mut out: Vec<FailureSet> = vec![FailureSet::none()];
    let mut frontier: Vec<FailureSet> = vec![FailureSet::none()];
    for _ in 0..scenario.max_failures {
        let mut next_frontier = Vec::new();
        for base in &frontier {
            // Recompute the LECs over the remaining candidate links (the
            // refinement step: already-failed links are excluded).
            let remaining: Vec<LinkId> = candidates
                .iter()
                .copied()
                .filter(|l| !base.contains(*l))
                .collect();
            let lecs = LinkEquivalenceClasses::compute(network, &devices, &remaining);
            for rep in lecs.representatives {
                let set = base.with(rep);
                if set.len() == base.len() {
                    continue;
                }
                if !out.contains(&set) {
                    out.push(set.clone());
                    next_frontier.push(set);
                }
            }
        }
        frontier = next_frontier;
    }
    out.sort_by(|a, b| (a.len(), a.links()).cmp(&(b.len(), b.links())));
    with_down(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plankton_config::scenarios::{fat_tree_ospf, isp_ospf, CoreStaticRoutes};
    use plankton_net::generators::as_topo::AsTopologySpec;

    #[test]
    fn fat_tree_devices_collapse_into_few_classes() {
        let s = fat_tree_ospf(4, CoreStaticRoutes::None);
        let eq = DeviceEquivalence::compute(&s.network, &[]);
        // A symmetric fat tree has 3 roles but edge switches differ in what
        // they originate; the class count must be far below the device count.
        assert!(
            eq.class_count < s.network.node_count() / 2,
            "expected strong compression, got {} classes for {} devices",
            eq.class_count,
            s.network.node_count()
        );
    }

    #[test]
    fn interesting_nodes_are_singletons() {
        let s = fat_tree_ospf(4, CoreStaticRoutes::None);
        let waypoint = s.fat_tree.aggregation[0][0];
        let eq = DeviceEquivalence::compute(&s.network, &[waypoint]);
        let class = eq.class_of(waypoint);
        let members = s
            .network
            .topology
            .node_ids()
            .filter(|n| eq.class_of(*n) == class)
            .count();
        assert_eq!(members, 1);
    }

    #[test]
    fn lec_pruning_reduces_single_failure_choices() {
        let s = fat_tree_ospf(4, CoreStaticRoutes::None);
        let scenario = FailureScenario::up_to(1);
        let unpruned = failure_sets_to_explore(&s.network, &scenario, &[], false);
        let pruned = failure_sets_to_explore(&s.network, &scenario, &[], true);
        assert!(
            pruned.len() < unpruned.len(),
            "LEC pruning had no effect: {} vs {}",
            pruned.len(),
            unpruned.len()
        );
        // The empty failure set is always explored.
        assert!(pruned.contains(&FailureSet::none()));
    }

    #[test]
    fn asymmetric_network_gets_less_compression() {
        let s = isp_ospf(&AsTopologySpec::paper_as(3967));
        let eq = DeviceEquivalence::compute(&s.network, &[]);
        // Random weights leave little symmetry: classes stay numerous.
        assert!(eq.class_count > s.network.node_count() / 4);
    }

    #[test]
    fn zero_failures_returns_single_empty_set() {
        let s = fat_tree_ospf(4, CoreStaticRoutes::None);
        let sets = failure_sets_to_explore(&s.network, &FailureScenario::no_failures(), &[], true);
        assert_eq!(sets, vec![FailureSet::none()]);
    }

    #[test]
    fn down_links_are_in_every_set_and_never_failure_candidates() {
        let s = fat_tree_ospf(4, CoreStaticRoutes::None);
        let mut net = s.network.clone();
        let down = net.topology.links()[0].id;
        net.set_link_down(down);
        for lec in [false, true] {
            let sets = failure_sets_to_explore(&net, &FailureScenario::up_to(1), &[], lec);
            assert!(sets.iter().all(|f| f.contains(down)), "lec={lec}");
            // The smallest set is just the down link; every other set adds
            // exactly one more (distinct) link.
            assert_eq!(sets[0].len(), 1);
            assert!(sets[1..].iter().all(|f| f.len() == 2));
            let unique: std::collections::BTreeSet<_> = sets.iter().collect();
            assert_eq!(unique.len(), sets.len(), "no duplicate scenarios");
        }
    }

    #[test]
    fn pruned_sets_are_subset_of_unpruned() {
        let s = fat_tree_ospf(4, CoreStaticRoutes::None);
        let scenario = FailureScenario::up_to(2);
        let unpruned = failure_sets_to_explore(&s.network, &scenario, &[], false);
        let pruned = failure_sets_to_explore(&s.network, &scenario, &[], true);
        for set in &pruned {
            assert!(unpruned.contains(set));
        }
        assert!(pruned.len() <= unpruned.len());
    }
}
