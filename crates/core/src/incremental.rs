//! Incremental re-verification: delta-aware invalidation over the result
//! cache plus partial task-graph resubmission.
//!
//! The long-running service keeps one [`IncrementalVerifier`] per loaded
//! network. A configuration delta rebuilds the cheap analysis layers (PEC
//! trie, dependency graph) and leaves the expensive layer — per-task
//! verification results — in the content-addressed [`ResultCache`]. The next
//! `verify` computes every task's content key ([`plankton_pec::TaskKeys`]),
//! serves clean tasks straight from the cache, and resubmits *only* the
//! dirty subset of the (PEC-component × failure-scenario) cross product to
//! the work-stealing engine (`pec_task_graph_sparse`), merging cached and
//! fresh per-PEC outcomes into one [`VerificationReport`] that is identical
//! to what a from-scratch verification of the post-delta network would
//! produce (deterministically so under
//! [`PlanktonOptions::collect_all_violations`]; under stop-at-first
//! semantics only `holds()` is deterministic, exactly as in one-shot mode).

use crate::cache::{PolicyOutcome, ResultCache};
use crate::options::PlanktonOptions;
use crate::outcome::ConvergedRecord;
use crate::report::{PhaseTimings, VerificationReport};
use crate::verifier::{lap, Plankton};
use plankton_config::{ConfigDelta, DeltaError, DeltaTouch, Network};
use plankton_engine::{pec_task_graph_sparse, Engine};
use plankton_net::failure::FailureScenario;
use plankton_pec::{pecs_touched_by, OspfSliceMode, PecId, TaskKeys};
use plankton_telemetry::trace::{self, Field, Level};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Process-global incremental-path counters, resolved once. The ratio of
/// `plankton_tasks_rerun_total` to `plankton_pecs_dirty_advisory_total`
/// (folded in by [`IncrementalVerifier::apply_delta`]) is the invalidation
/// precision the content keys buy over the advisory touch set.
struct IncrementalMetrics {
    tasks_rerun: Arc<plankton_telemetry::Counter>,
    tasks_cached: Arc<plankton_telemetry::Counter>,
}

fn incremental_metrics() -> &'static IncrementalMetrics {
    static METRICS: OnceLock<IncrementalMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = plankton_telemetry::metrics::global();
        IncrementalMetrics {
            tasks_rerun: registry.counter(
                "plankton_tasks_rerun_total",
                "Tasks resubmitted to the engine because their content key missed.",
            ),
            tasks_cached: registry.counter(
                "plankton_tasks_cached_total",
                "Tasks served entirely from the result cache.",
            ),
        }
    })
}

/// What an incremental verification did: how much was re-explored and how
/// much came from the cache.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct IncrementalRunStats {
    /// PECs whose policy verdict the request needed.
    pub pecs_checked: usize,
    /// Distinct PECs that were actually re-explored (member of a dirty
    /// component task).
    pub pecs_reexplored: usize,
    /// Distinct PECs fully served from the cache.
    pub pecs_cached: usize,
    /// (component × failure-set) tasks of the request.
    pub tasks_total: usize,
    /// Tasks resubmitted to the engine.
    pub tasks_rerun: usize,
    /// Tasks served entirely from the cache.
    pub tasks_cached: usize,
    /// Per-(PEC × failure-set) cache key hits during planning.
    pub key_hits: u64,
    /// Per-(PEC × failure-set) cache key misses during planning.
    pub key_misses: u64,
    /// RPVP steps actually re-executed by this run (fresh work).
    pub steps_reexplored: u64,
    /// RPVP steps whose results were served from the cache.
    pub steps_cached: u64,
}

/// The result of applying one delta through an [`IncrementalVerifier`].
#[derive(Clone, Debug)]
pub struct AppliedDelta {
    /// The delta's kind tag (for logs/statistics).
    pub kind: &'static str,
    /// What the config diff layer reports as touched.
    pub touch: DeltaTouch,
    /// The PECs (of the *post-delta* partition) the touch maps to, closed
    /// under reverse dependencies — the advisory dirty set.
    pub pecs_touched: BTreeSet<PecId>,
    /// Number of PECs in the post-delta partition.
    pub pecs_total: usize,
}

/// The result of applying a coalesced batch of deltas in one rebuild
/// ([`IncrementalVerifier::apply_deltas`]).
pub struct AppliedBatch {
    /// Per input delta, in order: `Ok` carries the advisory dirty info,
    /// `Err` the apply error. An errored delta left the network unchanged —
    /// exactly what sequential replay of the same sequence would have done.
    pub outcomes: Vec<Result<AppliedDelta, DeltaError>>,
    /// Number of deltas that applied (the `Ok` outcomes).
    pub applied: usize,
    /// Union advisory dirty set across applied deltas, mapped through the
    /// post-batch partition.
    pub pecs_touched: BTreeSet<PecId>,
    /// Number of PECs in the post-batch partition.
    pub pecs_total: usize,
    /// The pinned post-batch analysis snapshot. Lagged verification runs
    /// against exactly this `Arc`, immune to newer concurrent deltas.
    pub snapshot: Arc<Plankton>,
}

impl Plankton {
    /// Like [`Plankton::verify`], but serves clean (PEC × failure-scenario)
    /// tasks from `cache` and re-executes only tasks whose content key
    /// misses, inserting every complete fresh result for the next call.
    ///
    /// `policy_fp` must fingerprint the policy *including every parameter*
    /// that changes its verdict (built-in policy names alone do not — e.g.
    /// two `BoundedPathLength` bounds share a name). The service layer
    /// derives it from the wire-level policy spec.
    pub fn verify_with_cache(
        &self,
        policy: &dyn plankton_policy::Policy,
        policy_fp: u64,
        scenario: &FailureScenario,
        options: &PlanktonOptions,
        cache: &ResultCache,
    ) -> (VerificationReport, IncrementalRunStats) {
        let start = Instant::now();
        let mut mark = start;
        let mut phases = PhaseTimings::default();
        let deps = self.dependencies();
        // The same environment planning as `Plankton::verify` — identical
        // failure sets and needed/checked partitions are a precondition of
        // report identity.
        let ctx = self.prepare_run_ctx(policy, scenario, options);
        let nf = ctx.failure_sets.len();

        let options_fp = options.cache_fingerprint();
        // Scoped OSPF slices are sound only under deterministic-node
        // exploration (the OspfPor Dijkstra trajectory); with it disabled the
        // explorer branches over every ordering, any cost in a component is
        // observable, and the keys conservatively fall back to the global
        // OSPF slice.
        let ospf_mode = if options.search.deterministic_nodes {
            OspfSliceMode::Scoped
        } else {
            OspfSliceMode::Global
        };
        let keys = TaskKeys::compute(
            self.network(),
            self.pecs(),
            deps,
            &ctx.failure_sets,
            policy_fp,
            options_fp,
            ospf_mode,
            |p| {
                let comp = deps.component_of(p);
                (ctx.has_dependents.contains(&comp) as u8) | ((ctx.checked.contains(&p) as u8) << 1)
            },
        );
        phases.key_compute_micros = lap(&mut mark);

        // Plan: a component task is clean only if *every* PEC it verifies
        // hits the cache; otherwise the whole task re-runs (its PECs share
        // one session pass).
        let needed_components: Vec<usize> = (0..deps.component_count())
            .filter(|&c| deps.components[c].iter().any(|p| ctx.needed.contains(p)))
            .collect();
        let mut stats = IncrementalRunStats {
            pecs_checked: ctx.checked.len(),
            ..Default::default()
        };
        let mut cached: HashMap<(PecId, usize), Arc<PolicyOutcome>> = HashMap::new();
        let mut dirty_tasks: Vec<(usize, usize)> = Vec::new();
        let mut reexplored_pecs: BTreeSet<PecId> = BTreeSet::new();
        let mut cached_pecs: BTreeSet<PecId> = BTreeSet::new();
        for &c in &needed_components {
            for f in 0..nf {
                let mut hits: Vec<(PecId, Arc<PolicyOutcome>)> = Vec::new();
                let mut all_hit = true;
                for &p in &deps.components[c] {
                    match cache.peek(keys.key(p, f)) {
                        Some(outcome) => hits.push((p, outcome)),
                        None => all_hit = false,
                    }
                }
                // A key that hits while a sibling misses saved no work (the
                // whole component re-runs), so only fully-served tasks count
                // as reuse — in the run stats and the cache counters alike.
                let size = deps.components[c].len() as u64;
                if all_hit {
                    stats.key_hits += size;
                    cache.count_hits(size);
                    let fhash = crate::verifier::failure_set_fingerprint(&ctx.failure_sets[f]);
                    for (p, outcome) in hits {
                        plankton_telemetry::taskstats::global().record_cache_hit(
                            p.0 as u64,
                            fhash,
                            || ctx.failure_sets[f].to_string(),
                        );
                        cached_pecs.insert(p);
                        cached.insert((p, f), outcome);
                    }
                } else {
                    stats.key_misses += size;
                    cache.count_misses(size);
                    dirty_tasks.push((c, f));
                    for &p in &deps.components[c] {
                        reexplored_pecs.insert(p);
                    }
                }
            }
        }
        stats.tasks_total = needed_components.len() * nf;
        stats.tasks_rerun = dirty_tasks.len();
        stats.tasks_cached = stats.tasks_total - stats.tasks_rerun;
        stats.pecs_reexplored = reexplored_pecs.len();
        stats.pecs_cached = cached_pecs.difference(&reexplored_pecs).count();
        phases.invalidation_micros = lap(&mut mark);
        incremental_metrics()
            .tasks_rerun
            .add(stats.tasks_rerun as u64);
        incremental_metrics()
            .tasks_cached
            .add(stats.tasks_cached as u64);
        trace::event(
            Level::Info,
            "keys_invalidated",
            &[
                Field::u64("tasks_total", stats.tasks_total as u64),
                Field::u64("tasks_rerun", stats.tasks_rerun as u64),
                Field::u64("tasks_cached", stats.tasks_cached as u64),
                Field::u64("key_hits", stats.key_hits),
                Field::u64("key_misses", stats.key_misses),
            ],
        );

        // Fold the cached outcomes in first (and honor stop-at-first: a
        // cached violation means a fresh run would have stopped too).
        for ((pec, f), outcome) in &cached {
            let mut relabeled = (**outcome).clone();
            for v in &mut relabeled.violations {
                v.pec = *pec;
                // Failure-invariant PECs share one outcome across failure
                // sets; re-annotate with this task's set (a no-op for
                // failure-keyed outcomes, which were computed under it).
                v.failures = ctx.failure_sets[*f].clone();
                v.trail.failures = ctx.failure_sets[*f].clone();
            }
            ctx.absorb(&crate::verifier::PecTaskResult {
                records: Vec::new(),
                violations: relabeled.violations,
                stats: outcome.stats,
                data_planes_checked: outcome.data_planes_checked,
                complete: true,
            });
            stats.steps_cached += outcome.stats.steps;
        }
        if options.stop_at_first_violation && !ctx.violations.lock().is_empty() {
            ctx.stop.store(true, Ordering::Relaxed);
        }
        phases.cache_io_micros = lap(&mut mark);

        // Partial resubmission: only the dirty tasks, with scheduling edges
        // among them (clean dependencies are served from the cache).
        let (graph, map) = pec_task_graph_sparse(deps, &dirty_tasks);
        let slot_row: BTreeMap<PecId, usize> = ctx
            .needed
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i))
            .collect();
        let slots: Vec<OnceLock<Vec<Arc<ConvergedRecord>>>> =
            (0..slot_row.len() * nf).map(|_| OnceLock::new()).collect();
        let slot = |pec: PecId, f: usize| slot_row.get(&pec).map(|row| &slots[row * nf + f]);

        let fresh_steps = AtomicU64::new(0);
        let engine = Engine::new(options.parallelism);
        let mut engine_stats = engine.run(&graph, |task, worker| {
            if ctx.deadline_passed() {
                worker.request_stop();
                return;
            }
            let (c, f) = map.decode(task);
            let component = &deps.components[c];
            let failures = &ctx.failure_sets[f];
            let lookup = |p: PecId| -> Option<Arc<ConvergedRecord>> {
                if let Some(records) = slot(p, f).and_then(|cell| cell.get()) {
                    return records.first().cloned();
                }
                cached
                    .get(&(p, f))
                    .and_then(|outcome| outcome.records.first().cloned())
            };
            let results = self.run_component_under_failures(
                &ctx,
                component,
                failures,
                &lookup,
                Some(worker.scratch_cell()),
            );
            for (pec, result) in results {
                ctx.absorb(&result);
                fresh_steps.fetch_add(result.stats.steps, Ordering::Relaxed);
                if result.complete {
                    cache.insert(
                        keys.key(pec, f),
                        Arc::new(PolicyOutcome {
                            violations: result.violations.clone(),
                            stats: result.stats,
                            data_planes_checked: result.data_planes_checked,
                            records: result.records.clone(),
                        }),
                    );
                }
                if let Some(cell) = slot(pec, f) {
                    let _ = cell.set(result.records);
                }
            }
            if ctx.stop.load(Ordering::Relaxed) {
                worker.request_stop();
            }
        });
        engine_stats.interned_routes = ctx.interner.len() as u64;
        engine_stats.states_explored = ctx.total_stats.lock().states_explored();
        stats.steps_reexplored = fresh_steps.load(Ordering::Relaxed);
        phases.exploration_micros = lap(&mut mark);
        trace::event(
            Level::Info,
            "tasks_rerun",
            &[
                Field::u64("tasks_rerun", stats.tasks_rerun as u64),
                Field::u64("steps_reexplored", stats.steps_reexplored),
                Field::u64("steps_cached", stats.steps_cached),
                Field::u64("elapsed_us", phases.exploration_micros),
            ],
        );

        let mut violations = ctx.violations.into_inner();
        Plankton::sort_violations(&mut violations);
        let elapsed = start.elapsed();
        phases.merge_micros = lap(&mut mark);
        trace::event(
            Level::Info,
            "report_merged",
            &[
                Field::str("policy", policy.name()),
                Field::bool("holds", violations.is_empty()),
                Field::u64("violations", violations.len() as u64),
                Field::u64("elapsed_us", elapsed.as_micros() as u64),
            ],
        );
        let report = VerificationReport {
            policy: policy.name().to_string(),
            violations,
            stats: ctx.total_stats.into_inner(),
            pecs_verified: ctx.checked.len(),
            failure_sets_explored: nf,
            data_planes_checked: ctx.data_planes_checked.load(Ordering::Relaxed),
            elapsed,
            phases,
            largest_scc: deps.largest_component(),
            engine: Some(engine_stats),
            deadline_exceeded: ctx.deadline_hit.load(Ordering::Relaxed),
        };
        (report, stats)
    }
}

/// A persistent verification session: a network, its analysis layers, and
/// the result cache that survives configuration deltas — shared by any
/// number of concurrent readers.
///
/// The ownership model is copy-on-write snapshot swap: the expensive
/// analysis state ([`Plankton`] — network, PEC trie, dependency graph) is an
/// immutable snapshot behind an `Arc`. Readers ([`IncrementalVerifier::verify`],
/// queries) clone the `Arc` and work off their snapshot without holding any
/// lock for the duration of a verification; writers
/// ([`IncrementalVerifier::apply_delta`], [`IncrementalVerifier::load`])
/// build the replacement snapshot *off-lock* and swap the pointer. Writers
/// are serialized by a dedicated mutation lock (a read-modify-write against
/// the current snapshot must not race another), so every delta is applied
/// against the snapshot its caller observed or a successor of it.
///
/// The result cache is shared across all of it without generation tagging:
/// content-addressed keys make an entry computed against *any* snapshot
/// correct wherever its key matches, so a verification racing a delta can
/// keep inserting results for its (old) snapshot — they are simply
/// unreachable from the new snapshot's keys if the delta invalidated them.
pub struct IncrementalVerifier {
    snapshot: parking_lot::RwLock<Arc<Plankton>>,
    /// Serializes mutators (`apply_delta`, `load`) end-to-end; the snapshot
    /// write lock above is only held for the pointer swap itself.
    mutate: parking_lot::Mutex<()>,
    cache: Arc<ResultCache>,
    deltas_applied: AtomicU64,
}

impl IncrementalVerifier {
    /// Start a session for `network`.
    pub fn new(network: Network) -> Self {
        Self::with_cache(network, Arc::new(ResultCache::new()))
    }

    /// Start a session for `network` over an existing (possibly warm,
    /// possibly shared) result cache.
    pub fn with_cache(network: Network, cache: Arc<ResultCache>) -> Self {
        IncrementalVerifier {
            snapshot: parking_lot::RwLock::new(Arc::new(Plankton::new(network))),
            mutate: parking_lot::Mutex::new(()),
            cache,
            deltas_applied: AtomicU64::new(0),
        }
    }

    /// The current analysis snapshot (network, PECs, dependencies). The
    /// returned `Arc` stays valid — and internally consistent — across any
    /// concurrent delta; it just stops being current.
    pub fn snapshot(&self) -> Arc<Plankton> {
        self.snapshot.read().clone()
    }

    /// The result cache.
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Deltas applied since the session started.
    pub fn deltas_applied(&self) -> u64 {
        self.deltas_applied.load(Ordering::Relaxed)
    }

    /// Replace the whole network (a `load` request): drops the cache.
    pub fn load(&self, network: Network) {
        let _serialize = self.mutate.lock();
        let plankton = Arc::new(Plankton::new(network));
        *self.snapshot.write() = plankton;
        // A concurrent verify against the old snapshot may re-insert entries
        // after this clear; content keys keep them harmless (and they stay
        // *useful* if the old network is ever loaded again).
        self.cache.clear();
        self.deltas_applied.store(0, Ordering::Relaxed);
    }

    /// Apply one configuration delta: the network mutates, the PEC trie and
    /// dependency graph are recomputed (off-lock — concurrent verifies keep
    /// reading the old snapshot meanwhile), and the advisory dirty set is
    /// derived by mapping the delta's touch through the new partition. The
    /// result cache is kept — content keys make stale entries unreachable.
    pub fn apply_delta(&self, delta: &ConfigDelta) -> Result<AppliedDelta, DeltaError> {
        let start = Instant::now();
        let _serialize = self.mutate.lock();
        // Chaos hook: `snapshot_swap=delay:<N>ms` widens the rebuild window
        // for race soaks; `snapshot_swap=panic` models a rebuild bug (the
        // service contains it and keeps the *old* snapshot serving).
        let _ = plankton_faultinject::trigger("snapshot_swap");
        let mut network = self.snapshot().network().clone();
        let touch = delta.apply(&mut network)?;
        let plankton = Arc::new(Plankton::new(network));
        let pecs_touched = pecs_touched_by(
            plankton.network(),
            plankton.pecs(),
            plankton.dependencies(),
            &touch,
        );
        let pecs_total = plankton.pecs().len();
        *self.snapshot.write() = plankton;
        self.deltas_applied.fetch_add(1, Ordering::Relaxed);

        let elapsed = start.elapsed().as_micros() as u64;
        static SWAP_SECONDS: OnceLock<Arc<plankton_telemetry::Histogram>> = OnceLock::new();
        static PECS_DIRTY: OnceLock<Arc<plankton_telemetry::Counter>> = OnceLock::new();
        let registry = plankton_telemetry::metrics::global();
        SWAP_SECONDS
            .get_or_init(|| {
                registry.histogram(
                    "plankton_snapshot_swap_seconds",
                    "Delta apply end-to-end: analysis rebuild plus snapshot pointer swap.",
                    plankton_telemetry::Unit::Micros,
                )
            })
            .observe(elapsed);
        PECS_DIRTY
            .get_or_init(|| {
                registry.counter(
                    "plankton_pecs_dirty_advisory_total",
                    "PECs the advisory touch set marked dirty across all deltas \
                     (compare with plankton_tasks_rerun_total for invalidation precision).",
                )
            })
            .add(pecs_touched.len() as u64);
        trace::event(
            Level::Info,
            "delta_applied",
            &[
                Field::str("kind", delta.kind()),
                Field::u64("pecs_touched", pecs_touched.len() as u64),
                Field::u64("pecs_total", pecs_total as u64),
                Field::u64("elapsed_us", elapsed),
            ],
        );

        Ok(AppliedDelta {
            kind: delta.kind(),
            touch,
            pecs_touched,
            pecs_total,
        })
    }

    /// Apply a whole batch of deltas in **one** analysis rebuild: one network
    /// clone, every delta applied to it in order, one `Plankton::new`, one
    /// snapshot swap. This is what makes streaming ingestion sustain high
    /// delta rates — N queued updates cost one rebuild instead of N.
    ///
    /// A delta that fails to apply (e.g. [`DeltaError::NoOp`] from an
    /// `[Up, Down]` pair coalesced to a no-op) is skipped and reported in its
    /// slot: `apply` leaves the network unchanged on error, so skipping is
    /// byte-identical to sequential one-at-a-time replay where the same
    /// delta would have errored against the same state.
    ///
    /// The returned [`AppliedBatch::snapshot`] is the *pinned* post-batch
    /// analysis: a lagged verification must run against exactly this `Arc`
    /// (not [`IncrementalVerifier::snapshot`]) so that deltas landing during
    /// the verification cannot tear the report it is attributed to.
    pub fn apply_deltas(&self, deltas: &[ConfigDelta]) -> AppliedBatch {
        let start = Instant::now();
        let _serialize = self.mutate.lock();
        let _ = plankton_faultinject::trigger("snapshot_swap");

        let mut network = self.snapshot().network().clone();
        let mut touches: Vec<(usize, &'static str, DeltaTouch)> = Vec::new();
        let mut outcomes: Vec<Result<AppliedDelta, DeltaError>> = Vec::with_capacity(deltas.len());
        for (index, delta) in deltas.iter().enumerate() {
            match delta.apply(&mut network) {
                Ok(touch) => {
                    touches.push((index, delta.kind(), touch));
                    // Placeholder; rewritten below once the post-batch
                    // partition exists to map touches through.
                    outcomes.push(Err(DeltaError::NoOp(String::new())));
                }
                Err(e) => outcomes.push(Err(e)),
            }
        }

        let applied = touches.len();
        let (snapshot, pecs_touched, pecs_total) = if applied == 0 {
            // Nothing changed: keep the current snapshot, no rebuild.
            let snapshot = self.snapshot();
            let total = snapshot.pecs().len();
            (snapshot, BTreeSet::new(), total)
        } else {
            let plankton = Arc::new(Plankton::new(network));
            let mut union: BTreeSet<PecId> = BTreeSet::new();
            for (index, kind, touch) in touches {
                let pecs = pecs_touched_by(
                    plankton.network(),
                    plankton.pecs(),
                    plankton.dependencies(),
                    &touch,
                );
                union.extend(pecs.iter().copied());
                outcomes[index] = Ok(AppliedDelta {
                    kind,
                    touch,
                    pecs_touched: pecs,
                    pecs_total: plankton.pecs().len(),
                });
            }
            let total = plankton.pecs().len();
            *self.snapshot.write() = plankton.clone();
            self.deltas_applied
                .fetch_add(applied as u64, Ordering::Relaxed);
            (plankton, union, total)
        };

        let elapsed = start.elapsed().as_micros() as u64;
        static BATCH_SECONDS: OnceLock<Arc<plankton_telemetry::Histogram>> = OnceLock::new();
        let registry = plankton_telemetry::metrics::global();
        BATCH_SECONDS
            .get_or_init(|| {
                registry.histogram(
                    "plankton_delta_batch_seconds",
                    "Batched delta apply end-to-end: one network clone + one \
                     analysis rebuild + one snapshot swap for the whole batch.",
                    plankton_telemetry::Unit::Micros,
                )
            })
            .observe(elapsed);
        trace::event(
            Level::Info,
            "delta_batch_applied",
            &[
                Field::u64("deltas", deltas.len() as u64),
                Field::u64("applied", applied as u64),
                Field::u64("skipped", (deltas.len() - applied) as u64),
                Field::u64("pecs_touched", pecs_touched.len() as u64),
                Field::u64("elapsed_us", elapsed),
            ],
        );

        AppliedBatch {
            outcomes,
            applied,
            pecs_touched,
            pecs_total,
            snapshot,
        }
    }

    /// Verify through the session cache, against the snapshot current at
    /// call time (a delta landing mid-verification does not affect this
    /// run). See [`Plankton::verify_with_cache`] for the `policy_fp`
    /// contract.
    pub fn verify(
        &self,
        policy: &dyn plankton_policy::Policy,
        policy_fp: u64,
        scenario: &FailureScenario,
        options: &PlanktonOptions,
    ) -> (VerificationReport, IncrementalRunStats) {
        self.snapshot()
            .verify_with_cache(policy, policy_fp, scenario, options, &self.cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plankton_config::scenarios::{fat_tree_ospf, ring_ospf, CoreStaticRoutes};
    use plankton_config::static_routes::StaticRoute;
    use plankton_policy::{LoopFreedom, Reachability};

    #[test]
    fn warm_cache_second_run_is_all_hits() {
        let s = fat_tree_ospf(4, CoreStaticRoutes::MatchingOspf);
        let session = IncrementalVerifier::new(s.network.clone());
        let options = PlanktonOptions::default().collect_all_violations();
        let scenario = FailureScenario::no_failures();
        let policy = LoopFreedom::everywhere();
        let (first, s1) = session.verify(&policy, 42, &scenario, &options);
        assert!(first.holds());
        assert_eq!(s1.tasks_cached, 0);
        assert!(s1.tasks_rerun > 0);
        let (second, s2) = session.verify(&policy, 42, &scenario, &options);
        assert_eq!(s2.tasks_rerun, 0, "{s2:?}");
        assert_eq!(s2.tasks_cached, s1.tasks_rerun);
        assert_eq!(first.normalized_json(), second.normalized_json());
    }

    #[test]
    fn cached_run_report_matches_one_shot_verify() {
        let s = ring_ospf(6);
        let sources: Vec<_> = s.ring.routers[1..].to_vec();
        let policy = Reachability::new(sources);
        let scenario = FailureScenario::up_to(1);
        let options = PlanktonOptions::default()
            .restricted_to(vec![s.destination])
            .collect_all_violations();
        let session = IncrementalVerifier::new(s.network.clone());
        let (incr, _) = session.verify(&policy, 7, &scenario, &options);
        let oneshot = Plankton::new(s.network.clone()).verify(&policy, &scenario, &options);
        assert_eq!(incr.normalized_json(), oneshot.normalized_json());
    }

    #[test]
    fn static_route_delta_reexplores_one_pec() {
        let s = fat_tree_ospf(4, CoreStaticRoutes::None);
        let session = IncrementalVerifier::new(s.network.clone());
        let policy = LoopFreedom::everywhere();
        let scenario = FailureScenario::no_failures();
        let options = PlanktonOptions::default().collect_all_violations();
        session.verify(&policy, 1, &scenario, &options);

        let applied = session
            .apply_delta(&ConfigDelta::StaticRouteAdd {
                device: s.fat_tree.core[0],
                route: StaticRoute::null(s.destinations[0]),
            })
            .unwrap();
        assert_eq!(applied.kind, "static_route_add");
        assert!(!applied.pecs_touched.is_empty());

        let (incr, run) = session.verify(&policy, 1, &scenario, &options);
        assert!(run.pecs_reexplored < run.pecs_checked, "{run:?}");
        assert!(run.tasks_cached > 0, "{run:?}");
        let oneshot = Plankton::new(session.snapshot().network().clone())
            .verify(&policy, &scenario, &options);
        assert_eq!(incr.normalized_json(), oneshot.normalized_json());
    }

    #[test]
    fn persisted_cache_warm_starts_a_new_session() {
        // The daemon-restart path: verify, snapshot the cache to JSON, build
        // a brand-new session over the deserialized cache, and re-verify.
        // Every task must be served from the warm cache and the report must
        // be byte-identical to the cold one.
        let s = fat_tree_ospf(4, CoreStaticRoutes::MatchingOspf);
        let policy = LoopFreedom::everywhere();
        let scenario = FailureScenario::up_to(1);
        let options = PlanktonOptions::default().collect_all_violations();
        let session = IncrementalVerifier::new(s.network.clone());
        let (cold, cold_run) = session.verify(&policy, 3, &scenario, &options);
        assert!(cold_run.tasks_rerun > 0);

        let json = serde_json::to_string(&session.cache().to_snapshot()).unwrap();
        drop(session);

        let restarted = IncrementalVerifier::new(s.network.clone());
        let snapshot: crate::cache::CacheSnapshot = serde_json::from_str(&json).unwrap();
        let absorbed = restarted.cache().absorb_snapshot(&snapshot).unwrap();
        assert!(absorbed > 0);
        let (warm, warm_run) = restarted.verify(&policy, 3, &scenario, &options);
        assert_eq!(warm_run.tasks_rerun, 0, "{warm_run:?}");
        assert_eq!(warm_run.tasks_cached, warm_run.tasks_total);
        assert_eq!(cold.normalized_json(), warm.normalized_json());
    }

    #[test]
    fn concurrent_verifies_race_deltas_without_torn_snapshots() {
        // Readers verify in a loop while a writer toggles a static route on
        // and off. Every report a reader produces must byte-match the
        // from-scratch verification of one of the two network states —
        // proving the snapshot swap is atomic (no reader ever observes a
        // half-applied delta) and cached merges stay exact under races.
        let s = fat_tree_ospf(4, CoreStaticRoutes::None);
        let policy = LoopFreedom::everywhere();
        let scenario = FailureScenario::no_failures();
        let options = PlanktonOptions::default().collect_all_violations();
        let add = ConfigDelta::StaticRouteAdd {
            device: s.fat_tree.core[0],
            route: StaticRoute::null(s.destinations[0]),
        };
        let remove = ConfigDelta::StaticRouteRemove {
            device: s.fat_tree.core[0],
            prefix: s.destinations[0],
        };
        let base_oracle = Plankton::new(s.network.clone())
            .verify(&policy, &scenario, &options)
            .normalized_json();
        let mut edited = s.network.clone();
        add.apply(&mut edited).unwrap();
        let edited_oracle = Plankton::new(edited)
            .verify(&policy, &scenario, &options)
            .normalized_json();

        let session = IncrementalVerifier::new(s.network.clone());
        std::thread::scope(|scope| {
            let readers: Vec<_> = (0..3)
                .map(|_| {
                    scope.spawn(|| {
                        let mut seen = Vec::new();
                        for _ in 0..6 {
                            let (report, _) = session.verify(&policy, 1, &scenario, &options);
                            seen.push(report.normalized_json());
                        }
                        seen
                    })
                })
                .collect();
            let writer = scope.spawn(|| {
                for i in 0..6 {
                    let delta = if i % 2 == 0 { &add } else { &remove };
                    session.apply_delta(delta).unwrap();
                }
            });
            writer.join().unwrap();
            for reader in readers {
                for json in reader.join().unwrap() {
                    assert!(
                        json == base_oracle || json == edited_oracle,
                        "a concurrent verify produced a report matching neither network state"
                    );
                }
            }
        });
    }

    /// The acceptance bar for [`PhaseTimings`]: phases are contiguous laps
    /// of one clock, so their sum must land within 10% of the report's wall
    /// time — on the cached path, the warm path, and the one-shot path.
    #[test]
    fn phase_timings_sum_to_report_wall_time() {
        let s = fat_tree_ospf(4, CoreStaticRoutes::MatchingOspf);
        let session = IncrementalVerifier::new(s.network.clone());
        let policy = LoopFreedom::everywhere();
        let scenario = FailureScenario::no_failures();
        let options = PlanktonOptions::default().collect_all_violations();

        let assert_sums = |report: &VerificationReport, label: &str| {
            let wall = report.elapsed.as_micros() as u64;
            let sum = report.phases.sum_micros();
            // Sub-millisecond runs are all scheduling noise; the 10% bound
            // is meaningful once the run does real work.
            let tolerance = (wall / 10).max(1_000);
            assert!(
                sum.abs_diff(wall) <= tolerance,
                "{label}: phases {:?} sum to {sum}us but wall is {wall}us",
                report.phases
            );
        };

        let (cold, _) = session.verify(&policy, 9, &scenario, &options);
        assert_sums(&cold, "cold incremental");
        assert!(cold.phases.exploration_micros > 0, "{:?}", cold.phases);
        let (warm, run) = session.verify(&policy, 9, &scenario, &options);
        assert_eq!(run.tasks_rerun, 0);
        assert_sums(&warm, "warm incremental");

        let oneshot = Plankton::new(s.network.clone()).verify(&policy, &scenario, &options);
        assert_sums(&oneshot, "one-shot");
        assert!(oneshot.phases.exploration_micros > 0);
        assert_eq!(oneshot.phases.cache_io_micros, 0, "no cache on this path");
    }

    #[test]
    fn different_policy_fingerprints_do_not_share_outcomes() {
        let s = ring_ospf(4);
        let session = IncrementalVerifier::new(s.network.clone());
        let sources: Vec<_> = s.ring.routers[1..].to_vec();
        let policy = Reachability::new(sources);
        let scenario = FailureScenario::no_failures();
        let options = PlanktonOptions::default()
            .restricted_to(vec![s.destination])
            .collect_all_violations();
        let (_, a) = session.verify(&policy, 1, &scenario, &options);
        let (_, b) = session.verify(&policy, 2, &scenario, &options);
        assert!(a.tasks_rerun > 0);
        assert_eq!(b.tasks_cached, 0, "different fp must not hit");
        assert!(b.tasks_rerun > 0);
    }
}
