//! The PEC dependency graph and its strongly connected components (§3.2,
//! Figure 5 of the paper).
//!
//! A PEC depends on another when its forwarding outcome cannot be determined
//! without knowing the other's converged state:
//!
//! * a **recursive static route** for a prefix in PEC *i* has a next-hop IP
//!   address that falls into PEC *j* → *i* depends on *j* (possibly *i = j*,
//!   the self-loop observed in real configurations);
//! * a prefix in PEC *i* is carried by **iBGP**: the iBGP session endpoints
//!   (the speakers' loopbacks) must be reachable through the IGP, so *i*
//!   depends on every PEC containing a loopback of an iBGP speaker.
//!
//! Mutually dependent PECs form strongly connected components which must be
//! verified together; SCCs are otherwise verified in dependency order, and
//! independent SCCs in parallel.

use crate::pec::{PecId, PecSet};
use plankton_config::Network;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The dependency graph over a [`PecSet`].
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DependencyGraph {
    /// `depends_on[i]` = the PECs that PEC `i` depends on (must be verified
    /// before `i`, unless they share an SCC).
    pub depends_on: Vec<Vec<PecId>>,
}

/// The result of SCC analysis over a [`DependencyGraph`].
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PecDependencies {
    /// The underlying edge set.
    pub graph: DependencyGraph,
    /// The strongly connected components, each a sorted list of PEC ids.
    /// Components are listed in *reverse topological order of dependencies*:
    /// a component appears after every component it depends on, so verifying
    /// them in list order satisfies all dependencies.
    pub components: Vec<Vec<PecId>>,
    /// `component_of[p]` = index into `components` for PEC `p`.
    pub component_of: Vec<usize>,
    /// `component_deps[c]` = the component indices that component `c`
    /// depends on (excluding itself).
    pub component_deps: Vec<Vec<usize>>,
}

impl DependencyGraph {
    /// Build the dependency edges for a PEC set over a network.
    pub fn build(network: &Network, pecs: &PecSet) -> Self {
        let n = pecs.len();
        let mut depends_on: Vec<BTreeSet<PecId>> = vec![BTreeSet::new(); n];

        // Recursive static routes: PEC -> PEC containing the next-hop IP.
        for pec in pecs.iter() {
            for nh in pec.recursive_next_hops() {
                if let Some(target) = pecs.pec_containing(nh) {
                    depends_on[pec.id.index()].insert(target.id);
                }
            }
        }

        // iBGP: any PEC that involves BGP depends on the PECs holding the
        // loopbacks of iBGP speakers (the session endpoints resolved through
        // the IGP).
        let mut ibgp_loopback_pecs: BTreeSet<PecId> = BTreeSet::new();
        for node in network.topology.node_ids() {
            let device = network.device(node);
            let Some(bgp) = &device.bgp else { continue };
            if bgp.ibgp_neighbors().next().is_none() {
                continue;
            }
            if let Some(lb) = network.topology.node(node).loopback {
                if let Some(p) = pecs.pec_containing(lb) {
                    ibgp_loopback_pecs.insert(p.id);
                }
            }
            // The peers' loopbacks as well (sessions are symmetric but the
            // peer may not itself list an iBGP neighbor back in a
            // misconfigured network).
            for nbr in bgp.ibgp_neighbors() {
                if let Some(lb) = network.topology.node(nbr.peer).loopback {
                    if let Some(p) = pecs.pec_containing(lb) {
                        ibgp_loopback_pecs.insert(p.id);
                    }
                }
            }
        }
        if !ibgp_loopback_pecs.is_empty() {
            for pec in pecs.iter() {
                if pec.involves_bgp() {
                    for &dep in &ibgp_loopback_pecs {
                        if dep != pec.id {
                            depends_on[pec.id.index()].insert(dep);
                        }
                    }
                }
            }
        }

        DependencyGraph {
            depends_on: depends_on
                .into_iter()
                .map(|s| s.into_iter().collect())
                .collect(),
        }
    }

    /// Number of PECs (nodes in the graph).
    pub fn len(&self) -> usize {
        self.depends_on.len()
    }

    /// Is the graph empty?
    pub fn is_empty(&self) -> bool {
        self.depends_on.is_empty()
    }

    /// Total number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.depends_on.iter().map(|d| d.len()).sum()
    }

    /// Does PEC `a` directly depend on PEC `b`?
    pub fn depends_directly(&self, a: PecId, b: PecId) -> bool {
        self.depends_on[a.index()].contains(&b)
    }

    /// Tarjan's strongly-connected-components algorithm, returning the full
    /// dependency analysis. Tarjan emits SCCs in reverse topological order of
    /// the edge direction used; with edges pointing *at dependencies*, the
    /// emitted order is exactly "dependencies first", which is the
    /// verification order the scheduler wants.
    pub fn analyze(self) -> PecDependencies {
        let n = self.len();
        let mut index_counter = 0usize;
        let mut stack: Vec<usize> = Vec::new();
        let mut on_stack = vec![false; n];
        let mut index = vec![usize::MAX; n];
        let mut lowlink = vec![usize::MAX; n];
        let mut components: Vec<Vec<PecId>> = Vec::new();
        let mut component_of = vec![usize::MAX; n];

        // Iterative Tarjan to avoid deep recursion on large PEC sets.
        enum Frame {
            Enter(usize),
            Continue(usize, usize),
        }
        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            let mut call_stack = vec![Frame::Enter(start)];
            while let Some(frame) = call_stack.pop() {
                match frame {
                    Frame::Enter(v) => {
                        index[v] = index_counter;
                        lowlink[v] = index_counter;
                        index_counter += 1;
                        stack.push(v);
                        on_stack[v] = true;
                        call_stack.push(Frame::Continue(v, 0));
                    }
                    Frame::Continue(v, mut edge_idx) => {
                        let mut descended = false;
                        while edge_idx < self.depends_on[v].len() {
                            let w = self.depends_on[v][edge_idx].index();
                            if index[w] == usize::MAX {
                                call_stack.push(Frame::Continue(v, edge_idx + 1));
                                call_stack.push(Frame::Enter(w));
                                descended = true;
                                break;
                            } else if on_stack[w] {
                                lowlink[v] = lowlink[v].min(index[w]);
                            }
                            edge_idx += 1;
                        }
                        if descended {
                            continue;
                        }
                        // All edges processed: close the SCC if v is a root.
                        if lowlink[v] == index[v] {
                            let mut component = Vec::new();
                            loop {
                                let w = stack.pop().expect("stack underflow in Tarjan");
                                on_stack[w] = false;
                                component_of[w] = components.len();
                                component.push(PecId(w as u32));
                                if w == v {
                                    break;
                                }
                            }
                            component.sort();
                            components.push(component);
                        }
                        // Propagate lowlink to the parent frame if any.
                        if let Some(Frame::Continue(parent, _)) = call_stack.last() {
                            let parent = *parent;
                            lowlink[parent] = lowlink[parent].min(lowlink[v]);
                        }
                    }
                }
            }
        }

        // Component-level dependency edges.
        let mut component_deps: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); components.len()];
        for v in 0..n {
            for dep in &self.depends_on[v] {
                let cv = component_of[v];
                let cd = component_of[dep.index()];
                if cv != cd {
                    component_deps[cv].insert(cd);
                }
            }
        }

        PecDependencies {
            graph: self,
            components,
            component_of,
            component_deps: component_deps
                .into_iter()
                .map(|s| s.into_iter().collect())
                .collect(),
        }
    }
}

impl PecDependencies {
    /// Build and analyze the dependency graph for a network's PEC set.
    pub fn compute(network: &Network, pecs: &PecSet) -> Self {
        DependencyGraph::build(network, pecs).analyze()
    }

    /// Number of strongly connected components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// The size of the largest SCC (the paper expects this to almost always
    /// be 1 in practice).
    pub fn largest_component(&self) -> usize {
        self.components.iter().map(|c| c.len()).max().unwrap_or(0)
    }

    /// The component index of a PEC.
    pub fn component_of(&self, pec: PecId) -> usize {
        self.component_of[pec.index()]
    }

    /// Are there any self-loops (a PEC depending on itself)?
    pub fn self_loops(&self) -> Vec<PecId> {
        (0..self.graph.len() as u32)
            .map(PecId)
            .filter(|p| self.graph.depends_directly(*p, *p))
            .collect()
    }

    /// Group components into parallel "waves": every component in wave `k`
    /// depends only on components in waves `< k`. Components in the same wave
    /// can be verified concurrently.
    pub fn waves(&self) -> Vec<Vec<usize>> {
        let n = self.components.len();
        let mut level = vec![0usize; n];
        // components are in dependency order, so a single pass suffices.
        for c in 0..n {
            for &dep in &self.component_deps[c] {
                level[c] = level[c].max(level[dep] + 1);
            }
        }
        let max_level = level.iter().copied().max().unwrap_or(0);
        let mut waves = vec![Vec::new(); max_level + 1];
        for (c, &l) in level.iter().enumerate() {
            waves[l].push(c);
        }
        waves
    }

    /// All PECs that a component (transitively) depends on, excluding the
    /// component's own PECs. These are the converged outcomes the component's
    /// verification run needs as input.
    pub fn transitive_dependencies(&self, component: usize) -> Vec<PecId> {
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut stack = vec![component];
        while let Some(c) = stack.pop() {
            for &dep in &self.component_deps[c] {
                if seen.insert(dep) {
                    stack.push(dep);
                }
            }
        }
        let mut out: Vec<PecId> = seen
            .into_iter()
            .flat_map(|c| self.components[c].iter().copied())
            .collect();
        out.sort();
        out
    }

    /// A map from component index to the PECs it contains, useful for
    /// reporting.
    pub fn components_by_index(&self) -> BTreeMap<usize, Vec<PecId>> {
        self.components
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::compute_pecs;
    use plankton_config::scenarios::{
        isp_ibgp_over_ospf, isp_ospf, static_route_mutual_recursion, static_route_self_loop,
    };
    use plankton_net::generators::as_topo::AsTopologySpec;

    fn graph_from_edges(n: usize, edges: &[(u32, u32)]) -> DependencyGraph {
        let mut depends_on = vec![Vec::new(); n];
        for &(a, b) in edges {
            depends_on[a as usize].push(PecId(b));
        }
        DependencyGraph { depends_on }
    }

    #[test]
    fn tarjan_simple_chain() {
        // 0 depends on 1, 1 depends on 2: three singleton SCCs, order 2,1,0.
        let deps = graph_from_edges(3, &[(0, 1), (1, 2)]).analyze();
        assert_eq!(deps.component_count(), 3);
        assert_eq!(deps.largest_component(), 1);
        // Dependencies appear before dependents.
        let pos = |p: u32| {
            deps.components
                .iter()
                .position(|c| c.contains(&PecId(p)))
                .unwrap()
        };
        assert!(pos(2) < pos(1));
        assert!(pos(1) < pos(0));
    }

    #[test]
    fn tarjan_cycle_collapses() {
        let deps = graph_from_edges(4, &[(0, 1), (1, 0), (2, 0), (3, 3)]).analyze();
        assert_eq!(deps.largest_component(), 2);
        assert_eq!(deps.component_of(PecId(0)), deps.component_of(PecId(1)));
        assert_ne!(deps.component_of(PecId(2)), deps.component_of(PecId(0)));
        assert_eq!(deps.self_loops(), vec![PecId(3)]);
        // 2's component must come after 0/1's.
        assert!(
            deps.components
                .iter()
                .position(|c| c.contains(&PecId(0)))
                .unwrap()
                < deps
                    .components
                    .iter()
                    .position(|c| c.contains(&PecId(2)))
                    .unwrap()
        );
    }

    #[test]
    fn waves_group_independent_components() {
        // 0 -> 2, 1 -> 2, 3 independent.
        let deps = graph_from_edges(4, &[(0, 2), (1, 2)]).analyze();
        let waves = deps.waves();
        assert_eq!(waves.len(), 2);
        // Wave 0 holds 2's and 3's components, wave 1 holds 0's and 1's.
        let c2 = deps.component_of(PecId(2));
        let c3 = deps.component_of(PecId(3));
        assert!(waves[0].contains(&c2));
        assert!(waves[0].contains(&c3));
        assert_eq!(waves[1].len(), 2);
    }

    #[test]
    fn transitive_dependencies_follow_chains() {
        let deps = graph_from_edges(3, &[(0, 1), (1, 2)]).analyze();
        let c0 = deps.component_of(PecId(0));
        let tdeps = deps.transitive_dependencies(c0);
        assert_eq!(tdeps, vec![PecId(1), PecId(2)]);
    }

    #[test]
    fn ospf_only_network_has_no_dependencies() {
        let s = isp_ospf(&AsTopologySpec::paper_as(3967));
        let pecs = compute_pecs(&s.network);
        let deps = PecDependencies::compute(&s.network, &pecs);
        assert_eq!(deps.graph.edge_count(), 0);
        assert_eq!(deps.largest_component(), 1);
        assert_eq!(deps.waves().len(), 1);
    }

    #[test]
    fn ibgp_pecs_depend_on_loopback_pecs() {
        let s = isp_ibgp_over_ospf(&AsTopologySpec::paper_as(3967));
        let pecs = compute_pecs(&s.network);
        let deps = PecDependencies::compute(&s.network, &pecs);
        // Every BGP destination PEC depends on at least one loopback PEC, so
        // its component sits in a later wave.
        assert!(deps.graph.edge_count() > 0);
        assert_eq!(deps.largest_component(), 1, "iBGP must not create SCCs");
        let waves = deps.waves();
        assert_eq!(waves.len(), 2);
        for p in &s.bgp_destinations {
            let pec = pecs.pecs_overlapping(p)[0];
            let comp = deps.component_of(pec.id);
            assert!(waves[1].contains(&comp));
        }
    }

    #[test]
    fn mutual_static_recursion_forms_scc() {
        let g = static_route_mutual_recursion();
        let pecs = compute_pecs(&g.network);
        let deps = PecDependencies::compute(&g.network, &pecs);
        assert_eq!(deps.largest_component(), 2);
    }

    #[test]
    fn static_self_loop_detected() {
        let g = static_route_self_loop();
        let pecs = compute_pecs(&g.network);
        let deps = PecDependencies::compute(&g.network, &pecs);
        assert_eq!(deps.self_loops().len(), 1);
        assert_eq!(deps.largest_component(), 1);
    }
}
