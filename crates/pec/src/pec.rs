//! The Packet Equivalence Class type.

use plankton_config::static_routes::StaticRoute;
use plankton_net::ip::{IpRange, Ipv4Addr, Prefix};
use plankton_net::topology::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a PEC within a [`PecSet`]. Dense indices.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct PecId(pub u32);

impl PecId {
    /// The index of this PEC, for indexing per-PEC vectors.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pec{}", self.0)
    }
}

impl fmt::Display for PecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pec{}", self.0)
    }
}

/// Which protocol a prefix is originated into.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OriginProtocol {
    /// Originated into OSPF (a `network` statement / redistributed connected).
    Ospf,
    /// Originated into BGP (a `network` statement).
    Bgp,
    /// A loopback or connected host prefix (implicitly originated by its
    /// owner; reachable once the IGP carries it).
    Connected,
}

/// The configuration information specific to one prefix contributing to a
/// PEC: who originates it and into which protocol, and which static routes
/// exist for exactly this prefix. This is the paper's "config object"
/// attached to each prefix in the trie (§3.1); the lengths of these prefixes
/// still matter inside the PEC, so they are preserved.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PrefixConfig {
    /// The prefix itself (not the PEC range).
    pub prefix: Prefix,
    /// Devices originating the prefix, with the protocol they originate it
    /// into.
    pub origins: Vec<(NodeId, OriginProtocol)>,
    /// Static routes configured for exactly this prefix, with the device they
    /// are configured on.
    pub static_routes: Vec<(NodeId, StaticRoute)>,
}

impl PrefixConfig {
    /// A prefix with no origins and no static routes.
    pub fn empty(prefix: Prefix) -> Self {
        PrefixConfig {
            prefix,
            origins: Vec::new(),
            static_routes: Vec::new(),
        }
    }

    /// The devices that originate this prefix into any protocol.
    pub fn origin_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.origins.iter().map(|(n, _)| *n).collect();
        nodes.sort();
        nodes.dedup();
        nodes
    }

    /// Does any device originate this prefix into `protocol`?
    pub fn originated_into(&self, protocol: OriginProtocol) -> bool {
        self.origins.iter().any(|(_, p)| *p == protocol)
    }

    /// Is this prefix empty of configuration (no origins, no static routes)?
    pub fn is_inert(&self) -> bool {
        self.origins.is_empty() && self.static_routes.is_empty()
    }
}

/// A Packet Equivalence Class: a contiguous destination-address range plus
/// the configuration of every prefix that covers it. All packets whose
/// destination falls in `range` are forwarded identically throughout
/// Plankton's exploration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Pec {
    /// Identifier within the owning [`PecSet`].
    pub id: PecId,
    /// The destination address range.
    pub range: IpRange,
    /// The contributing prefixes, ordered from most specific (longest) to
    /// least specific. The FIB model resolves forwarding within the PEC by
    /// longest-prefix match over exactly these.
    pub prefixes: Vec<PrefixConfig>,
}

impl Pec {
    /// A representative destination address for this PEC.
    pub fn representative(&self) -> Ipv4Addr {
        self.range.representative()
    }

    /// Is this PEC devoid of any routing configuration? Such PECs have no
    /// routes anywhere (every packet is dropped) and are usually skipped.
    pub fn is_inert(&self) -> bool {
        self.prefixes.iter().all(|p| p.is_inert())
    }

    /// The most specific contributing prefix.
    pub fn most_specific(&self) -> Option<&PrefixConfig> {
        self.prefixes.first()
    }

    /// Does any contributing prefix involve BGP?
    pub fn involves_bgp(&self) -> bool {
        self.prefixes
            .iter()
            .any(|p| p.originated_into(OriginProtocol::Bgp))
    }

    /// All devices originating any contributing prefix.
    pub fn origin_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .prefixes
            .iter()
            .flat_map(|p| p.origin_nodes())
            .collect();
        nodes.sort();
        nodes.dedup();
        nodes
    }

    /// All recursive static-route next-hop addresses referenced by this PEC's
    /// prefixes. The dependency graph adds an edge for each of them.
    pub fn recursive_next_hops(&self) -> Vec<Ipv4Addr> {
        let mut out = Vec::new();
        for p in &self.prefixes {
            for (_, sr) in &p.static_routes {
                if let plankton_config::static_routes::StaticNextHop::Ip(ip) = sr.next_hop {
                    out.push(ip);
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

/// The complete set of PECs computed for a network, in ascending address
/// order.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PecSet {
    /// The PECs, indexed by [`PecId`].
    pub pecs: Vec<Pec>,
}

impl PecSet {
    /// Number of PECs.
    pub fn len(&self) -> usize {
        self.pecs.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.pecs.is_empty()
    }

    /// The PEC with the given id.
    pub fn pec(&self, id: PecId) -> &Pec {
        &self.pecs[id.index()]
    }

    /// Iterate over all PECs.
    pub fn iter(&self) -> impl Iterator<Item = &Pec> {
        self.pecs.iter()
    }

    /// The PEC containing `addr`.
    pub fn pec_containing(&self, addr: Ipv4Addr) -> Option<&Pec> {
        // Ranges are sorted and disjoint: binary search by lower bound.
        let idx = self.pecs.partition_point(|p| p.range.hi < addr);
        self.pecs.get(idx).filter(|p| p.range.contains(addr))
    }

    /// The PECs that overlap `prefix` (a destination of interest, e.g. the
    /// prefix named by a reachability policy).
    pub fn pecs_overlapping(&self, prefix: &Prefix) -> Vec<&Pec> {
        let range = prefix.range();
        self.pecs
            .iter()
            .filter(|p| p.range.overlaps(&range))
            .collect()
    }

    /// The PECs that carry any configuration at all.
    pub fn active_pecs(&self) -> Vec<&Pec> {
        self.pecs.iter().filter(|p| !p.is_inert()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plankton_config::static_routes::StaticRoute;

    fn pec(id: u32, lo: u32, hi: u32, prefixes: Vec<PrefixConfig>) -> Pec {
        Pec {
            id: PecId(id),
            range: IpRange::new(Ipv4Addr(lo), Ipv4Addr(hi)),
            prefixes,
        }
    }

    #[test]
    fn inert_detection() {
        let p = PrefixConfig::empty("10.0.0.0/8".parse().unwrap());
        assert!(p.is_inert());
        let pec = pec(0, 0, 100, vec![p]);
        assert!(pec.is_inert());
        assert!(!pec.involves_bgp());
    }

    #[test]
    fn origin_nodes_deduplicated() {
        let mut p = PrefixConfig::empty("10.0.0.0/8".parse().unwrap());
        p.origins = vec![
            (NodeId(2), OriginProtocol::Ospf),
            (NodeId(1), OriginProtocol::Bgp),
            (NodeId(2), OriginProtocol::Bgp),
        ];
        assert_eq!(p.origin_nodes(), vec![NodeId(1), NodeId(2)]);
        assert!(p.originated_into(OriginProtocol::Bgp));
        assert!(!p.originated_into(OriginProtocol::Connected));
        let pec = pec(0, 0, 100, vec![p]);
        assert!(pec.involves_bgp());
        assert_eq!(pec.origin_nodes(), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn recursive_next_hops_collected() {
        let mut p = PrefixConfig::empty("10.0.0.0/8".parse().unwrap());
        p.static_routes = vec![
            (
                NodeId(0),
                StaticRoute::to_ip("10.0.0.0/8".parse().unwrap(), Ipv4Addr::new(1, 1, 1, 1)),
            ),
            (
                NodeId(1),
                StaticRoute::to_interface("10.0.0.0/8".parse().unwrap(), NodeId(0)),
            ),
        ];
        let pec = pec(0, 0, 100, vec![p]);
        assert_eq!(pec.recursive_next_hops(), vec![Ipv4Addr::new(1, 1, 1, 1)]);
    }

    #[test]
    fn pec_set_lookup() {
        let set = PecSet {
            pecs: vec![
                pec(0, 0, 99, vec![]),
                pec(1, 100, 199, vec![]),
                pec(2, 200, u32::MAX, vec![]),
            ],
        };
        assert_eq!(set.pec_containing(Ipv4Addr(50)).unwrap().id, PecId(0));
        assert_eq!(set.pec_containing(Ipv4Addr(100)).unwrap().id, PecId(1));
        assert_eq!(set.pec_containing(Ipv4Addr(u32::MAX)).unwrap().id, PecId(2));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn pecs_overlapping_prefix() {
        let set = PecSet {
            pecs: vec![
                pec(0, 0, 0x7FFF_FFFF, vec![]),
                pec(1, 0x8000_0000, u32::MAX, vec![]),
            ],
        };
        let found = set.pecs_overlapping(&"128.0.0.0/1".parse().unwrap());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].id, PecId(1));
        let all = set.pecs_overlapping(&Prefix::DEFAULT);
        assert_eq!(all.len(), 2);
    }
}
