//! The dependency-aware scheduler (§3.2 of the paper).
//!
//! Each strongly connected component of the PEC dependency graph is verified
//! by a single verification run; a component can only be scheduled after
//! every component it depends on has finished, and its runs receive the
//! converged outcomes of those dependencies. Components with no ordering
//! constraint between them are run in parallel. The paper's prototype runs
//! each verification as a separate process writing its outcomes to an
//! in-memory filesystem; this implementation uses scoped threads and an
//! in-memory [`DependencyStore`], which plays the same role.

use crate::dependency::PecDependencies;
use crate::pec::PecId;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, RwLock};

/// The shared store of per-PEC outcomes, readable by verification runs of
/// dependent components. `T` is whatever the verifier records per PEC
/// (Plankton stores every converged data plane together with the
/// non-deterministic choices that produced it).
#[derive(Debug)]
pub struct DependencyStore<T> {
    outcomes: RwLock<HashMap<PecId, Arc<T>>>,
}

impl<T> Default for DependencyStore<T> {
    fn default() -> Self {
        DependencyStore {
            outcomes: RwLock::new(HashMap::new()),
        }
    }
}

impl<T> DependencyStore<T> {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded outcome for a PEC, if its component has already been
    /// verified.
    pub fn get(&self, pec: PecId) -> Option<Arc<T>> {
        self.outcomes
            .read()
            .expect("dependency store lock poisoned")
            .get(&pec)
            .cloned()
    }

    /// Record the outcome for a PEC.
    pub fn insert(&self, pec: PecId, outcome: T) {
        self.outcomes
            .write()
            .expect("dependency store lock poisoned")
            .insert(pec, Arc::new(outcome));
    }

    /// Number of PECs with recorded outcomes.
    pub fn len(&self) -> usize {
        self.outcomes
            .read()
            .expect("dependency store lock poisoned")
            .len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Statistics about a scheduler run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedulerReport {
    /// Number of strongly connected components scheduled.
    pub components: usize,
    /// Number of sequential waves.
    pub waves: usize,
    /// The largest number of components that ran concurrently in any wave
    /// (bounded by the configured parallelism).
    pub max_concurrency: usize,
    /// Size of the largest component.
    pub largest_component: usize,
}

/// The dependency-aware scheduler.
#[derive(Clone, Debug)]
pub struct Scheduler {
    /// Maximum number of component verifications run concurrently
    /// (the paper's "number of cores").
    pub parallelism: usize,
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler { parallelism: 1 }
    }
}

impl Scheduler {
    /// A scheduler running at most `parallelism` component verifications at
    /// once.
    pub fn new(parallelism: usize) -> Self {
        Scheduler {
            parallelism: parallelism.max(1),
        }
    }

    /// Run `verify` once per strongly connected component, in dependency
    /// order, parallelising within each wave. `verify` receives the PECs of
    /// the component (sorted) and the store of already-computed outcomes, and
    /// returns the outcome for each of its PECs; those are inserted into the
    /// store before the next wave starts.
    ///
    /// Returns the outcomes of every PEC and a [`SchedulerReport`].
    pub fn run<T, F>(
        &self,
        deps: &PecDependencies,
        verify: F,
    ) -> (BTreeMap<PecId, Arc<T>>, SchedulerReport)
    where
        T: Send + Sync,
        F: Fn(&[PecId], &DependencyStore<T>) -> BTreeMap<PecId, T> + Sync,
    {
        let store: DependencyStore<T> = DependencyStore::new();
        let waves = deps.waves();
        let mut report = SchedulerReport {
            components: deps.component_count(),
            waves: waves.len(),
            max_concurrency: 0,
            largest_component: deps.largest_component(),
        };

        for wave in &waves {
            // Process this wave's components in chunks of at most
            // `parallelism` concurrent verifications.
            for chunk in wave.chunks(self.parallelism) {
                report.max_concurrency = report.max_concurrency.max(chunk.len());
                if chunk.len() == 1 {
                    let comp = &deps.components[chunk[0]];
                    let outcomes = verify(comp, &store);
                    for (pec, outcome) in outcomes {
                        store.insert(pec, outcome);
                    }
                } else {
                    let results: Vec<BTreeMap<PecId, T>> = std::thread::scope(|scope| {
                        let handles: Vec<_> = chunk
                            .iter()
                            .map(|&ci| {
                                let comp = &deps.components[ci];
                                let store_ref = &store;
                                let verify_ref = &verify;
                                scope.spawn(move || verify_ref(comp, store_ref))
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("verification thread panicked"))
                            .collect()
                    });
                    for outcomes in results {
                        for (pec, outcome) in outcomes {
                            store.insert(pec, outcome);
                        }
                    }
                }
            }
        }

        let final_map = store
            .outcomes
            .into_inner()
            .expect("dependency store lock poisoned")
            .into_iter()
            .collect();
        (final_map, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependency::DependencyGraph;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn graph_from_edges(n: usize, edges: &[(u32, u32)]) -> PecDependencies {
        let mut depends_on = vec![Vec::new(); n];
        for &(a, b) in edges {
            depends_on[a as usize].push(PecId(b));
        }
        DependencyGraph { depends_on }.analyze()
    }

    #[test]
    fn store_roundtrip() {
        let store: DependencyStore<u32> = DependencyStore::new();
        assert!(store.is_empty());
        store.insert(PecId(3), 42);
        assert_eq!(store.get(PecId(3)).as_deref(), Some(&42));
        assert_eq!(store.get(PecId(4)), None);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn dependencies_are_available_when_dependents_run() {
        // 0 -> 1 -> 2: when 1 runs, 2's outcome must be in the store, etc.
        let deps = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let scheduler = Scheduler::new(4);
        let (outcomes, report) = scheduler.run(&deps, |pecs, store| {
            let pec = pecs[0];
            let value = match pec.0 {
                2 => 1u64,
                1 => 1 + *store.get(PecId(2)).expect("dependency 2 computed first"),
                0 => 1 + *store.get(PecId(1)).expect("dependency 1 computed first"),
                _ => unreachable!(),
            };
            BTreeMap::from([(pec, value)])
        });
        assert_eq!(*outcomes[&PecId(0)], 3);
        assert_eq!(report.components, 3);
        assert_eq!(report.waves, 3);
        assert_eq!(report.largest_component, 1);
    }

    #[test]
    fn independent_pecs_run_in_parallel_waves() {
        let deps = graph_from_edges(8, &[]);
        let running = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let scheduler = Scheduler::new(4);
        let (outcomes, report) = scheduler.run(&deps, |pecs, _| {
            let now = running.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(10));
            running.fetch_sub(1, Ordering::SeqCst);
            BTreeMap::from([(pecs[0], pecs[0].0)])
        });
        assert_eq!(outcomes.len(), 8);
        assert_eq!(report.waves, 1);
        assert_eq!(report.max_concurrency, 4);
        assert!(peak.load(Ordering::SeqCst) >= 2, "no parallelism observed");
    }

    #[test]
    fn scc_members_are_verified_together() {
        let deps = graph_from_edges(3, &[(0, 1), (1, 0), (2, 0)]);
        let scheduler = Scheduler::new(1);
        let (outcomes, report) = scheduler.run(&deps, |pecs, store| {
            // The 0/1 component arrives as a single two-PEC call; PEC 2 sees
            // both outcomes in the store.
            if pecs.len() == 2 {
                assert_eq!(pecs, &[PecId(0), PecId(1)]);
                pecs.iter().map(|&p| (p, 10u32)).collect()
            } else {
                assert!(store.get(PecId(0)).is_some());
                assert!(store.get(PecId(1)).is_some());
                BTreeMap::from([(pecs[0], 20u32)])
            }
        });
        assert_eq!(*outcomes[&PecId(2)], 20);
        assert_eq!(report.components, 2);
        assert_eq!(report.largest_component, 2);
    }

    #[test]
    fn single_threaded_scheduler_still_completes() {
        let deps = graph_from_edges(5, &[(4, 3), (3, 2), (2, 1), (1, 0)]);
        let scheduler = Scheduler::default();
        let (outcomes, report) =
            scheduler.run(&deps, |pecs, _| pecs.iter().map(|&p| (p, ())).collect());
        assert_eq!(outcomes.len(), 5);
        assert_eq!(report.max_concurrency, 1);
        assert_eq!(report.waves, 5);
    }
}
