//! # plankton-pec
//!
//! Packet Equivalence Class (PEC) computation and scheduling — the first
//! phase of Plankton's analysis (§3.1, §3.2 of the paper).
//!
//! * [`trie`] — the binary prefix trie that collects every prefix referenced
//!   by the configuration and partitions the destination header space into
//!   contiguous ranges with identical covering-prefix sets (Figure 4).
//! * [`pec`] — the [`Pec`](pec::Pec) type: an address range plus the
//!   per-prefix configuration objects that contribute to it.
//! * [`compute`] — building PECs from a [`Network`](plankton_config::Network).
//! * [`dependency`] — the PEC dependency graph (recursive static routes,
//!   iBGP over an IGP), Tarjan SCCs and the condensation DAG (Figure 5).
//! * [`scheduler`] — the dependency-aware scheduler: strongly connected
//!   components are verified together, dependencies first, independent
//!   components in parallel, with converged outcomes of earlier runs stored
//!   for their dependents (§3.2).

pub mod compute;
pub mod dependency;
pub mod invalidation;
pub mod pec;
pub mod scheduler;
pub mod trie;

pub use compute::compute_pecs;
pub use dependency::{DependencyGraph, PecDependencies};
pub use invalidation::{
    pec_content_fingerprint, pec_failure_invariant, pecs_touched_by, OspfSliceMode, TaskKeys,
};
pub use pec::{OriginProtocol, Pec, PecId, PecSet, PrefixConfig};
pub use scheduler::{DependencyStore, Scheduler, SchedulerReport};
pub use trie::PrefixTrie;
