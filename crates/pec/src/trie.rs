//! The binary prefix trie used to compute Packet Equivalence Classes.
//!
//! Plankton seeds the trie with every prefix obtained from the configuration
//! (§3.1): originated prefixes, static route destinations, prefixes matched
//! by route maps, loopbacks. A recursive traversal then slices the 32-bit
//! destination space into contiguous ranges such that every address in a
//! range is covered by exactly the same set of inserted prefixes — which is
//! precisely the property that makes all packets in the range behave
//! identically under destination-based routing.

use plankton_net::ip::{IpRange, Prefix};
use std::collections::BTreeMap;

/// A binary trie mapping [`Prefix`]es to payloads of type `T`.
///
/// Multiple payloads may be attached to the same prefix (they are kept in
/// insertion order).
#[derive(Clone, Debug)]
pub struct PrefixTrie<T> {
    root: Node<T>,
    len: usize,
}

#[derive(Clone, Debug)]
struct Node<T> {
    /// Payloads attached exactly at this node's prefix.
    payloads: Vec<T>,
    /// Is this node the end of an inserted prefix (even if payload-less)?
    terminal: bool,
    /// children[0] = next bit 0, children[1] = next bit 1.
    children: [Option<Box<Node<T>>>; 2],
}

impl<T> Default for Node<T> {
    fn default() -> Self {
        Node {
            payloads: Vec::new(),
            terminal: false,
            children: [None, None],
        }
    }
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        PrefixTrie {
            root: Node::default(),
            len: 0,
        }
    }
}

impl<T> PrefixTrie<T> {
    /// An empty trie.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of inserted (prefix, payload) pairs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the trie empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a payload at `prefix`.
    pub fn insert(&mut self, prefix: Prefix, payload: T) {
        let node = self.node_mut(prefix);
        node.payloads.push(payload);
        node.terminal = true;
        self.len += 1;
    }

    /// Mark `prefix` as a partition boundary without attaching a payload.
    pub fn insert_boundary(&mut self, prefix: Prefix) {
        let node = self.node_mut(prefix);
        node.terminal = true;
    }

    fn node_mut(&mut self, prefix: Prefix) -> &mut Node<T> {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let bit = prefix.bit(i) as usize;
            node = node.children[bit].get_or_insert_with(Box::default);
        }
        node
    }

    /// All payloads attached to prefixes that cover `prefix` (including at
    /// `prefix` itself), from least specific to most specific.
    pub fn covering(&self, prefix: &Prefix) -> Vec<(Prefix, &T)> {
        let mut out = Vec::new();
        let mut node = &self.root;
        let mut depth = 0u8;
        loop {
            for p in &node.payloads {
                out.push((Prefix::new(prefix.addr(), depth), p));
            }
            if depth == prefix.len() {
                break;
            }
            let bit = prefix.bit(depth) as usize;
            match &node.children[bit] {
                Some(child) => {
                    node = child;
                    depth += 1;
                }
                None => break,
            }
        }
        out
    }

    /// Longest-prefix-match lookup for a single address: the payloads of the
    /// most specific inserted prefix covering `addr`, with that prefix.
    pub fn longest_match(&self, addr: plankton_net::ip::Ipv4Addr) -> Option<(Prefix, &[T])> {
        let mut node = &self.root;
        let mut best: Option<(u8, &Node<T>)> = if node.terminal { Some((0, node)) } else { None };
        for depth in 0..32u8 {
            let bit = addr.bit(depth) as usize;
            match &node.children[bit] {
                Some(child) => {
                    node = child;
                    if node.terminal {
                        best = Some((depth + 1, node));
                    }
                }
                None => break,
            }
        }
        best.map(|(len, n)| (Prefix::new(addr, len), n.payloads.as_slice()))
    }

    /// Partition the full address space into contiguous ranges such that all
    /// addresses in a range are covered by the same set of inserted prefixes
    /// (Figure 4 of the paper). Adjacent ranges with identical covering sets
    /// are merged, so the result is the coarsest such partition. The covering
    /// prefixes of each range are listed from least to most specific.
    ///
    /// The ranges are returned in ascending address order, are disjoint, and
    /// together cover the entire 32-bit space.
    pub fn partition(&self) -> Vec<(IpRange, Vec<Prefix>)> {
        let mut raw: Vec<(IpRange, Vec<Prefix>)> = Vec::new();
        let mut covering: Vec<Prefix> = Vec::new();
        Self::walk(&self.root, Prefix::DEFAULT, &mut covering, &mut raw);
        // Merge adjacent ranges with identical covering sets.
        let mut merged: Vec<(IpRange, Vec<Prefix>)> = Vec::new();
        for (range, cover) in raw {
            match merged.last_mut() {
                Some((last_range, last_cover))
                    if *last_cover == cover
                        && last_range.hi.saturating_next() == range.lo
                        && last_range.hi != plankton_net::ip::Ipv4Addr::MAX =>
                {
                    last_range.hi = range.hi;
                }
                _ => merged.push((range, cover)),
            }
        }
        merged
    }

    fn walk(
        node: &Node<T>,
        prefix: Prefix,
        covering: &mut Vec<Prefix>,
        out: &mut Vec<(IpRange, Vec<Prefix>)>,
    ) {
        let pushed = node.terminal;
        if pushed {
            covering.push(prefix);
        }
        match prefix.children() {
            None => out.push((prefix.range(), covering.clone())),
            Some((left, right)) => {
                let both_missing = node.children[0].is_none() && node.children[1].is_none();
                if both_missing {
                    out.push((prefix.range(), covering.clone()));
                } else {
                    match &node.children[0] {
                        Some(child) => Self::walk(child, left, covering, out),
                        None => out.push((left.range(), covering.clone())),
                    }
                    match &node.children[1] {
                        Some(child) => Self::walk(child, right, covering, out),
                        None => out.push((right.range(), covering.clone())),
                    }
                }
            }
        }
        if pushed {
            covering.pop();
        }
    }

    /// Every inserted prefix together with its payloads, in trie
    /// (address/length) order.
    pub fn prefixes(&self) -> Vec<(Prefix, &[T])> {
        let mut out = Vec::new();
        fn rec<'a, T>(node: &'a Node<T>, prefix: Prefix, out: &mut Vec<(Prefix, &'a [T])>) {
            if node.terminal {
                out.push((prefix, node.payloads.as_slice()));
            }
            if let Some((left, right)) = prefix.children() {
                if let Some(c) = &node.children[0] {
                    rec(c, left, out);
                }
                if let Some(c) = &node.children[1] {
                    rec(c, right, out);
                }
            }
        }
        rec(&self.root, Prefix::DEFAULT, &mut out);
        out
    }
}

/// A map-of-prefixes convenience: collect payloads per prefix before
/// inserting into a trie (used by the PEC computation to build one config
/// object per distinct prefix).
pub fn group_by_prefix<T>(
    items: impl IntoIterator<Item = (Prefix, T)>,
) -> BTreeMap<Prefix, Vec<T>> {
    let mut map: BTreeMap<Prefix, Vec<T>> = BTreeMap::new();
    for (p, t) in items {
        map.entry(p).or_default().push(t);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use plankton_net::ip::Ipv4Addr;

    #[test]
    fn empty_trie_partition_is_full_space() {
        let trie: PrefixTrie<()> = PrefixTrie::new();
        let parts = trie.partition();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].0, IpRange::FULL);
        assert!(parts[0].1.is_empty());
    }

    #[test]
    fn paper_figure4_partition() {
        // Prefixes 128.0.0.0/1 and 192.0.0.0/2 produce three PECs:
        // [0, 127.255.255.255]       covered by {}
        // [128.0.0.0, 191.255.255.255] covered by {128/1}
        // [192.0.0.0, 255.255.255.255] covered by {128/1, 192/2}
        let mut trie = PrefixTrie::new();
        trie.insert("128.0.0.0/1".parse().unwrap(), "r0");
        trie.insert("192.0.0.0/2".parse().unwrap(), "r2");
        let parts = trie.partition();
        assert_eq!(parts.len(), 3);
        assert_eq!(
            parts[0].0,
            IpRange::new(Ipv4Addr::ZERO, Ipv4Addr::new(127, 255, 255, 255))
        );
        assert!(parts[0].1.is_empty());
        assert_eq!(
            parts[1].0,
            IpRange::new(
                Ipv4Addr::new(128, 0, 0, 0),
                Ipv4Addr::new(191, 255, 255, 255)
            )
        );
        assert_eq!(parts[1].1, vec!["128.0.0.0/1".parse::<Prefix>().unwrap()]);
        assert_eq!(
            parts[2].0,
            IpRange::new(Ipv4Addr::new(192, 0, 0, 0), Ipv4Addr::MAX)
        );
        assert_eq!(parts[2].1.len(), 2);
    }

    #[test]
    fn partition_covers_space_disjointly() {
        let mut trie = PrefixTrie::new();
        for p in [
            "10.0.0.0/8",
            "10.1.0.0/16",
            "10.1.2.0/24",
            "192.168.0.0/16",
            "0.0.0.0/0",
        ] {
            trie.insert(p.parse().unwrap(), p);
        }
        let parts = trie.partition();
        // Starts at 0, ends at MAX, each range starts right after the
        // previous one.
        assert_eq!(parts.first().unwrap().0.lo, Ipv4Addr::ZERO);
        assert_eq!(parts.last().unwrap().0.hi, Ipv4Addr::MAX);
        for w in parts.windows(2) {
            assert_eq!(w[0].0.hi.saturating_next(), w[1].0.lo);
        }
        // Adjacent ranges have different covering sets (coarsest partition).
        for w in parts.windows(2) {
            assert_ne!(w[0].1, w[1].1);
        }
    }

    #[test]
    fn nested_prefixes_cover_in_specificity_order() {
        let mut trie = PrefixTrie::new();
        trie.insert("10.0.0.0/8".parse().unwrap(), 8u8);
        trie.insert("10.1.0.0/16".parse().unwrap(), 16u8);
        let covering = trie.covering(&"10.1.2.0/24".parse().unwrap());
        assert_eq!(covering.len(), 2);
        assert_eq!(*covering[0].1, 8);
        assert_eq!(*covering[1].1, 16);
    }

    #[test]
    fn longest_match_lookup() {
        let mut trie = PrefixTrie::new();
        trie.insert("10.0.0.0/8".parse().unwrap(), "coarse");
        trie.insert("10.1.0.0/16".parse().unwrap(), "fine");
        let (p, payloads) = trie.longest_match(Ipv4Addr::new(10, 1, 2, 3)).unwrap();
        assert_eq!(p.len(), 16);
        assert_eq!(payloads, &["fine"]);
        let (p, _) = trie.longest_match(Ipv4Addr::new(10, 200, 0, 1)).unwrap();
        assert_eq!(p.len(), 8);
        assert!(trie.longest_match(Ipv4Addr::new(11, 0, 0, 1)).is_none());
    }

    #[test]
    fn multiple_payloads_per_prefix() {
        let mut trie = PrefixTrie::new();
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        trie.insert(p, 1);
        trie.insert(p, 2);
        assert_eq!(trie.len(), 2);
        let prefixes = trie.prefixes();
        assert_eq!(prefixes.len(), 1);
        assert_eq!(prefixes[0].1, &[1, 2]);
    }

    #[test]
    fn host_route_partition() {
        let mut trie: PrefixTrie<()> = PrefixTrie::new();
        trie.insert(Prefix::host(Ipv4Addr::new(1, 2, 3, 4)), ());
        let parts = trie.partition();
        // /32 splits the space into up-to 3 pieces after merging: before,
        // the host itself, after.
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[1].0.size(), 1);
        assert_eq!(parts[1].0.lo, Ipv4Addr::new(1, 2, 3, 4));
        assert_eq!(parts[1].1.len(), 1);
    }

    #[test]
    fn default_route_insert_covers_everything() {
        let mut trie = PrefixTrie::new();
        trie.insert(Prefix::DEFAULT, "default");
        trie.insert("10.0.0.0/8".parse().unwrap(), "ten");
        let parts = trie.partition();
        assert!(parts.iter().all(|(_, c)| !c.is_empty()));
        let ten_part = parts
            .iter()
            .find(|(r, _)| r.contains(Ipv4Addr::new(10, 0, 0, 1)))
            .unwrap();
        assert_eq!(ten_part.1.len(), 2);
    }

    #[test]
    fn group_by_prefix_collects() {
        let p1: Prefix = "10.0.0.0/24".parse().unwrap();
        let p2: Prefix = "20.0.0.0/24".parse().unwrap();
        let grouped = group_by_prefix(vec![(p1, 'a'), (p2, 'b'), (p1, 'c')]);
        assert_eq!(grouped[&p1], vec!['a', 'c']);
        assert_eq!(grouped[&p2], vec!['b']);
    }
}
