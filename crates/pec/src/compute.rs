//! Computing Packet Equivalence Classes from a network configuration
//! (phase 1 of Plankton, §3.1 of the paper).

use crate::pec::{OriginProtocol, Pec, PecId, PecSet, PrefixConfig};
use crate::trie::PrefixTrie;
use plankton_config::Network;
use plankton_net::ip::Prefix;
use std::collections::BTreeMap;

/// Compute the PECs of a network.
///
/// The trie is seeded with every prefix obtained from the configuration:
/// prefixes advertised into OSPF or BGP, static-route destinations, prefixes
/// matched by route maps, and loopback host routes. Each prefix carries a
/// [`PrefixConfig`] describing the configuration specific to it. The trie
/// traversal then partitions the header space; each resulting PEC keeps the
/// config objects of every prefix covering it, most specific first.
pub fn compute_pecs(network: &Network) -> PecSet {
    // One PrefixConfig per distinct prefix.
    let mut configs: BTreeMap<Prefix, PrefixConfig> = BTreeMap::new();
    fn config_for(
        configs: &mut BTreeMap<Prefix, PrefixConfig>,
        prefix: Prefix,
    ) -> &mut PrefixConfig {
        configs
            .entry(prefix)
            .or_insert_with(|| PrefixConfig::empty(prefix))
    }

    for n in network.topology.node_ids() {
        let device = network.device(n);
        if let Some(ospf) = &device.ospf {
            for p in &ospf.networks {
                config_for(&mut configs, *p)
                    .origins
                    .push((n, OriginProtocol::Ospf));
            }
        }
        if let Some(bgp) = &device.bgp {
            for p in &bgp.networks {
                config_for(&mut configs, *p)
                    .origins
                    .push((n, OriginProtocol::Bgp));
            }
            // Prefixes referenced by route maps become partition boundaries
            // but carry no origin of their own.
            for nbr in &bgp.neighbors {
                for p in nbr
                    .import
                    .referenced_prefixes()
                    .into_iter()
                    .chain(nbr.export.referenced_prefixes())
                {
                    config_for(&mut configs, p);
                }
            }
        }
        for sr in &device.static_routes {
            config_for(&mut configs, sr.prefix)
                .static_routes
                .push((n, *sr));
        }
    }
    // Loopbacks: connected host routes owned by their router.
    for node in network.topology.nodes() {
        if let Some(lb) = node.loopback {
            config_for(&mut configs, Prefix::host(lb))
                .origins
                .push((node.id, OriginProtocol::Connected));
        }
    }

    // Build the trie and partition.
    let mut trie: PrefixTrie<PrefixConfig> = PrefixTrie::new();
    for (prefix, cfg) in configs {
        trie.insert(prefix, cfg);
    }
    let partition = trie.partition();

    let mut pecs = Vec::with_capacity(partition.len());
    for (idx, (range, covering)) in partition.into_iter().enumerate() {
        // `covering` is least-specific first; the PEC wants most-specific
        // first so that longest-prefix match is a simple scan.
        let mut prefixes: Vec<PrefixConfig> = covering
            .iter()
            .rev()
            .flat_map(|p| {
                trie.covering(p)
                    .into_iter()
                    .filter(move |(cp, _)| cp == p)
                    .map(|(_, cfg)| cfg.clone())
            })
            .collect();
        // Deduplicate (covering() returns the config once per covering level,
        // but identical prefixes could appear if re-inserted).
        prefixes.dedup_by(|a, b| a.prefix == b.prefix);
        pecs.push(Pec {
            id: PecId(idx as u32),
            range,
            prefixes,
        });
    }

    PecSet { pecs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plankton_config::scenarios::{
        fat_tree_ospf, isp_ibgp_over_ospf, ring_ospf, CoreStaticRoutes,
    };
    use plankton_config::{DeviceConfig, Network, OspfConfig};
    use plankton_net::generators::as_topo::AsTopologySpec;
    use plankton_net::ip::{IpRange, Ipv4Addr};
    use plankton_net::topology::TopologyBuilder;

    #[test]
    fn paper_figure4_example() {
        // Three routers, R0 advertises 128.0.0.0/1 and R2 advertises
        // 192.0.0.0/2 over OSPF: three PECs.
        let mut tb = TopologyBuilder::new();
        let r0 = tb.add_router("R0");
        let r1 = tb.add_router("R1");
        let r2 = tb.add_router("R2");
        tb.add_link(r0, r1);
        tb.add_link(r1, r2);
        tb.add_link(r2, r0);
        let mut net = Network::unconfigured(tb.build());
        *net.device_mut(r0) =
            DeviceConfig::empty().with_ospf(OspfConfig::originating(vec!["128.0.0.0/1"
                .parse()
                .unwrap()]));
        *net.device_mut(r1) = DeviceConfig::empty().with_ospf(OspfConfig::enabled());
        *net.device_mut(r2) =
            DeviceConfig::empty().with_ospf(OspfConfig::originating(vec!["192.0.0.0/2"
                .parse()
                .unwrap()]));

        let pecs = compute_pecs(&net);
        assert_eq!(pecs.len(), 3);
        assert_eq!(
            pecs.pecs[0].range,
            IpRange::new(Ipv4Addr::ZERO, Ipv4Addr::new(127, 255, 255, 255))
        );
        assert!(pecs.pecs[0].is_inert());
        // Middle PEC: only R0's /1.
        assert_eq!(pecs.pecs[1].prefixes.len(), 1);
        assert_eq!(pecs.pecs[1].prefixes[0].origin_nodes(), vec![r0]);
        // Top PEC: both prefixes, most specific (the /2) first.
        assert_eq!(pecs.pecs[2].prefixes.len(), 2);
        assert_eq!(pecs.pecs[2].prefixes[0].prefix.len(), 2);
        assert_eq!(pecs.pecs[2].prefixes[0].origin_nodes(), vec![r2]);
        assert_eq!(pecs.pecs[2].prefixes[1].origin_nodes(), vec![r0]);
    }

    #[test]
    fn pecs_partition_the_space() {
        let s = fat_tree_ospf(4, CoreStaticRoutes::MatchingOspf);
        let pecs = compute_pecs(&s.network);
        assert_eq!(pecs.pecs.first().unwrap().range.lo, Ipv4Addr::ZERO);
        assert_eq!(pecs.pecs.last().unwrap().range.hi, Ipv4Addr::MAX);
        for w in pecs.pecs.windows(2) {
            assert_eq!(w[0].range.hi.saturating_next(), w[1].range.lo);
        }
    }

    #[test]
    fn ring_has_one_active_destination_pec() {
        let s = ring_ospf(8);
        let pecs = compute_pecs(&s.network);
        let active: Vec<_> = pecs
            .active_pecs()
            .into_iter()
            .filter(|p| {
                p.range.contains_prefix(&s.destination) || s.destination.range().overlaps(&p.range)
            })
            .collect();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].prefixes[0].origin_nodes(), vec![s.origin]);
    }

    #[test]
    fn fat_tree_destination_pecs_match_edge_count() {
        let s = fat_tree_ospf(4, CoreStaticRoutes::None);
        let pecs = compute_pecs(&s.network);
        for prefix in &s.destinations {
            let overlapping = pecs.pecs_overlapping(prefix);
            // Each /24 rack prefix maps onto exactly one PEC whose range is
            // that /24 (no other config touches it).
            assert_eq!(overlapping.len(), 1, "{prefix}");
            assert_eq!(overlapping[0].range, prefix.range());
            assert!(!overlapping[0].is_inert());
        }
    }

    #[test]
    fn static_routes_attach_to_their_prefix_pec() {
        let s = fat_tree_ospf(4, CoreStaticRoutes::MatchingOspf);
        let pecs = compute_pecs(&s.network);
        let p0 = s.destinations[0];
        let pec = pecs.pecs_overlapping(&p0)[0];
        let cfg = pec
            .prefixes
            .iter()
            .find(|c| c.prefix == p0)
            .expect("prefix config present");
        assert_eq!(cfg.static_routes.len(), s.fat_tree.core.len());
    }

    #[test]
    fn ibgp_scenario_has_loopback_and_bgp_pecs() {
        let s = isp_ibgp_over_ospf(&AsTopologySpec::paper_as(3967));
        let pecs = compute_pecs(&s.network);
        // Every BGP destination lives in a PEC that involves BGP.
        for p in &s.bgp_destinations {
            let pec = pecs.pecs_overlapping(p)[0];
            assert!(pec.involves_bgp());
        }
        // Every backbone loopback has its own (connected) PEC.
        for p in &s.loopback_prefixes {
            let pec = pecs.pecs_overlapping(p)[0];
            assert!(!pec.is_inert());
            assert!(!pec.involves_bgp());
        }
    }
}
