//! Delta-aware PEC invalidation: which equivalence classes does a
//! configuration change dirty, and what content key identifies a
//! (PEC × failure-scenario) verification task?
//!
//! Two mechanisms cooperate:
//!
//! * **Content keys** (authoritative): [`TaskKeys`] hashes, per PEC,
//!   everything its verification run reads — the PEC's own range and prefix
//!   configuration, the network slices consumed by the protocol models it
//!   instantiates, the verifying policy/options fingerprints, the failure
//!   set, and (composed recursively, in dependency order) the keys of every
//!   PEC it transitively depends on. Two tasks with equal keys have
//!   bit-identical inputs, so a result cache keyed this way can never serve
//!   a stale outcome: any delta that could change a task's result changes
//!   some input in its key, directly or through a dependency's key.
//! * **Touch mapping** (advisory, for reporting/statistics): a
//!   [`DeltaTouch`](plankton_config::DeltaTouch) from the config diff layer
//!   is mapped through the PEC set — prefix touches via range overlap (the
//!   trie's partition), device/link touches via the protocol slices — and
//!   closed under reverse dependencies, yielding the set of PECs the delta
//!   *may* have dirtied.

use crate::dependency::PecDependencies;
use crate::pec::{OriginProtocol, Pec, PecId, PecSet};
use plankton_config::static_routes::StaticNextHop;
use plankton_config::{DeltaTouch, Fingerprinter, Network, OspfScopedSlices};
use plankton_net::failure::FailureSet;
use plankton_net::topology::NodeId;
use std::collections::BTreeSet;

/// The content fingerprint of a PEC itself: its address range plus every
/// contributing prefix's configuration (origins, static routes), which is
/// exactly what [`compute_pecs`](crate::compute_pecs) derived from the
/// network for this slice of the header space.
pub fn pec_content_fingerprint(pec: &Pec) -> u64 {
    let mut fp = Fingerprinter::new();
    fp.write_u8(b'P');
    fp.write(&pec.range);
    fp.write(&pec.prefixes);
    fp.finish()
}

/// How [`TaskKeys`] composes the OSPF network slice into task keys.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OspfSliceMode {
    /// Per-(PEC × failure-set) scoped slices
    /// ([`Network::ospf_scoped_slices`]), falling back to the global slice
    /// for any PEC whose scoping cannot be proven sound. Only valid when the
    /// exploration runs with deterministic-node detection enabled — the
    /// scoped-slice soundness argument is the `OspfPor` Dijkstra trajectory;
    /// with `BranchAll` exploration every cost in a component is readable.
    Scoped,
    /// The global [`Network::ospf_slice_fingerprint`] for every OSPF PEC:
    /// the conservative mode (and the differential oracle the soak tests
    /// cross-check scoped keys against).
    Global,
}

/// The network-level slice fingerprints shared by every PEC of one request,
/// computed once (each is an O(network) traversal — per-PEC recomputation
/// would dominate small-delta re-verification latency). The scoped OSPF
/// slicer memoizes its per-component closures across PECs the same way.
struct NetworkSlices<'a> {
    ospf_global: u64,
    bgp: u64,
    ownership: u64,
    scoped: Option<OspfScopedSlices<'a>>,
}

impl<'a> NetworkSlices<'a> {
    fn of(network: &'a Network, mode: OspfSliceMode) -> Self {
        NetworkSlices {
            ospf_global: network.ospf_slice_fingerprint(),
            bgp: network.bgp_slice_fingerprint(),
            ownership: network.address_ownership_fingerprint(),
            scoped: match mode {
                OspfSliceMode::Scoped => Some(network.ospf_scoped_slices()),
                OspfSliceMode::Global => None,
            },
        }
    }
}

/// The failure-agnostic network-slice fingerprint of a PEC: everything its
/// `PecSession` reads from the network *besides* the PEC content, the
/// failure set, the OSPF slice (composed per failure set by [`TaskKeys`] —
/// scoped or global) and the converged records of dependency PECs (keyed
/// separately).
fn pec_slice_with(
    network: &Network,
    slices: &NetworkSlices<'_>,
    pec: &Pec,
    has_dependencies: bool,
) -> u64 {
    let mut fp = Fingerprinter::new();
    fp.write_u8(b'S');
    // Data planes, control-route vectors and policy views are all sized to
    // the node count.
    fp.write_u64(network.node_count() as u64);
    let mut runs_bgp = false;
    for cfg in &pec.prefixes {
        runs_bgp |= cfg.originated_into(OriginProtocol::Bgp);
        for (device, sr) in &cfg.static_routes {
            if let StaticNextHop::Interface(nbr) = sr.next_hop {
                fp.write_u64(network.interface_liveness_fingerprint(*device, nbr));
            }
        }
    }
    if runs_bgp {
        fp.write_u64(slices.bgp);
    }
    if has_dependencies || !pec.recursive_next_hops().is_empty() {
        // Dependency underlays are assembled from loopback/interface
        // ownership; recursive next hops resolve through the same table.
        fp.write_u64(slices.ownership);
    }
    fp.finish()
}

/// The per-prefix OSPF origin device sets of a PEC — one entry per
/// contributing prefix that is originated into OSPF (each prefix gets its
/// own `OspfModel` with exactly these origins).
fn ospf_origin_sets(pec: &Pec) -> Vec<Vec<NodeId>> {
    pec.prefixes
        .iter()
        .filter(|cfg| cfg.originated_into(OriginProtocol::Ospf))
        .map(|cfg| {
            cfg.origins
                .iter()
                .filter(|(_, p)| *p == OriginProtocol::Ospf)
                .map(|(n, _)| *n)
                .collect()
        })
        .collect()
}

/// Is a PEC's verification outcome independent of the failure environment?
///
/// A PEC whose prefixes carry only `Connected` origins and no static routes
/// runs no protocol and installs only local-delivery FIB entries: its data
/// plane, statistics and policy verdicts are identical under every failure
/// set — only the failure *annotations* on trails/violations differ, and
/// the merge layer rewrites those. Such PECs (loopback host prefixes are
/// the common case) are keyed with a constant failure slot, so one cached
/// outcome serves every explored failure combination.
pub fn pec_failure_invariant(pec: &Pec) -> bool {
    pec.prefixes.iter().all(|cfg| {
        cfg.static_routes.is_empty()
            && cfg
                .origins
                .iter()
                .all(|(_, proto)| *proto == OriginProtocol::Connected)
    })
}

/// The per-(PEC × failure-set) task keys of one verification request.
#[derive(Clone, Debug)]
pub struct TaskKeys {
    /// `keys[pec.index()][failure_idx]` — `0` for PECs outside the needed
    /// set (never looked up).
    keys: Vec<Vec<u64>>,
}

impl TaskKeys {
    /// Compute the keys for `pecs` under every failure set, for a request
    /// identified by `(policy_fp, options_fp)`.
    ///
    /// `run_flags(p)` must encode the request-level per-PEC execution mode
    /// bits — whether any other needed PEC depends on `p`'s component
    /// (flips the session's pruning configuration and whether converged
    /// records are produced) and whether the policy verdict is evaluated
    /// for `p` at all. Both change a task's observable outcome without
    /// changing the network, so they are part of the key.
    #[allow(clippy::too_many_arguments)] // a keyed compute: every input is a key input
    pub fn compute(
        network: &Network,
        pecs: &PecSet,
        deps: &PecDependencies,
        failure_sets: &[FailureSet],
        policy_fp: u64,
        options_fp: u64,
        mode: OspfSliceMode,
        run_flags: impl Fn(PecId) -> u8,
    ) -> TaskKeys {
        let nf = failure_sets.len();
        let failure_fps: Vec<u64> = failure_sets
            .iter()
            .map(|f| {
                let mut fp = Fingerprinter::new();
                fp.write_u8(b'F');
                fp.write(f);
                fp.finish()
            })
            .collect();
        let slices = NetworkSlices::of(network, mode);
        let mut keys = vec![vec![0u64; nf]; pecs.len()];
        // Components are listed dependencies-first, so every dependency's
        // keys exist by the time a dependent composes them.
        for component in &deps.components {
            for &pec_id in component {
                let pec = pecs.pec(pec_id);
                let comp = deps.component_of(pec_id);
                let dependency_pecs = deps.transitive_dependencies(comp);
                let mut base = Fingerprinter::new();
                base.write_u8(b'T');
                base.write_u64(pec_content_fingerprint(pec));
                base.write_u64(pec_slice_with(
                    network,
                    &slices,
                    pec,
                    !dependency_pecs.is_empty(),
                ));
                base.write_u64(policy_fp);
                base.write_u64(options_fp);
                base.write_u8(run_flags(pec_id));
                // PECs verified together in one SCC share the run.
                base.write_u64(component.len() as u64);
                let base = base.finish();
                // Failure-invariant PECs (no protocols, no static routes, no
                // dependencies, nothing depending on them — bit 0 of the run
                // flags) share one outcome across every failure set; the
                // merge layer rewrites the failure annotations.
                let invariant = pec_failure_invariant(pec)
                    && dependency_pecs.is_empty()
                    && run_flags(pec_id) & 1 == 0;
                let origin_sets = ospf_origin_sets(pec);
                for f in 0..nf {
                    let mut fp = Fingerprinter::new();
                    fp.write_u64(base);
                    fp.write_u64(if invariant { 0 } else { failure_fps[f] });
                    // The OSPF slice, composed per (PEC × failure-set): each
                    // contributing OSPF prefix contributes its scoped slice
                    // under this failure set, or — when any prefix's scoping
                    // cannot be proven sound — the whole PEC conservatively
                    // takes the global slice.
                    if !origin_sets.is_empty() {
                        let scoped_fps: Option<Vec<u64>> =
                            slices.scoped.as_ref().and_then(|scoped| {
                                origin_sets
                                    .iter()
                                    .map(|origins| scoped.fingerprint(origins, &failure_sets[f]))
                                    .collect()
                            });
                        match scoped_fps {
                            Some(fps) => {
                                fp.write_u8(1);
                                fp.write_u64(fps.len() as u64);
                                for v in fps {
                                    fp.write_u64(v);
                                }
                            }
                            None => {
                                fp.write_u8(2);
                                fp.write_u64(slices.ospf_global);
                            }
                        }
                    }
                    for &dep in &dependency_pecs {
                        fp.write_u64(keys[dep.index()][f]);
                    }
                    keys[pec_id.index()][f] = fp.finish();
                }
            }
        }
        TaskKeys { keys }
    }

    /// The key of `(pec, failure_idx)`.
    pub fn key(&self, pec: PecId, failure_idx: usize) -> u64 {
        self.keys[pec.index()][failure_idx]
    }
}

/// Map a config-diff touch set onto the PEC set: the PECs the delta may have
/// dirtied, closed under reverse dependencies. A superset of the truly
/// dirty PECs (content keys decide re-execution); used for reporting and
/// cache-eviction accounting.
pub fn pecs_touched_by(
    network: &Network,
    pecs: &PecSet,
    deps: &PecDependencies,
    touch: &DeltaTouch,
) -> BTreeSet<PecId> {
    let mut dirty: BTreeSet<PecId> = BTreeSet::new();

    // Prefix touches: every PEC whose range the prefix overlaps (the trie
    // partition property: a prefix's addresses land in exactly these PECs).
    for prefix in &touch.prefixes {
        for pec in pecs.pecs_overlapping(prefix) {
            dirty.insert(pec.id);
        }
    }

    // Device touches: PECs carrying configuration from those devices.
    for pec in pecs.iter() {
        if dirty.contains(&pec.id) {
            continue;
        }
        let touches_device = pec.prefixes.iter().any(|cfg| {
            cfg.origins.iter().any(|(n, _)| touch.devices.contains(n))
                || cfg
                    .static_routes
                    .iter()
                    .any(|(n, _)| touch.devices.contains(n))
        });
        if touches_device {
            dirty.insert(pec.id);
        }
    }

    // Topology touches: a changed link dirties every PEC whose protocol can
    // see it — OSPF PECs when both endpoints speak OSPF, BGP PECs when the
    // link can carry one of their eBGP sessions, and PECs with interface
    // static routes across the link.
    if touch.topology {
        for pec in pecs.iter() {
            if dirty.contains(&pec.id) {
                continue;
            }
            let mut affected = false;
            for &link in &touch.links {
                if link.index() >= network.topology.link_count() {
                    continue;
                }
                let l = network.topology.link(link);
                let (a, b) = l.endpoints();
                for cfg in &pec.prefixes {
                    if cfg.originated_into(OriginProtocol::Ospf)
                        && network.device(a).runs_ospf()
                        && network.device(b).runs_ospf()
                        // When the delta reports the OSPF region it can
                        // influence (the touched device's speaker component),
                        // only PECs with an origin inside that region are
                        // advisory-dirty — a cost change cannot leak across
                        // component boundaries.
                        && touch.ospf_region.as_ref().is_none_or(|region| {
                            cfg.origins.iter().any(|(n, p)| {
                                *p == OriginProtocol::Ospf && region.contains(n)
                            })
                        })
                    {
                        affected = true;
                    }
                    if cfg.originated_into(OriginProtocol::Bgp)
                        && network.device(a).runs_bgp()
                        && network.device(b).runs_bgp()
                    {
                        affected = true;
                    }
                    if cfg.static_routes.iter().any(|(device, sr)| {
                        matches!(sr.next_hop, StaticNextHop::Interface(nbr)
                                 if (*device == a && nbr == b) || (*device == b && nbr == a))
                    }) {
                        affected = true;
                    }
                }
            }
            if affected {
                dirty.insert(pec.id);
            }
        }
    }

    // Close under reverse dependencies: a dirty dependency dirties every
    // transitive dependent.
    let mut grown = true;
    while grown {
        grown = false;
        for pec in pecs.iter() {
            if dirty.contains(&pec.id) {
                continue;
            }
            let comp = deps.component_of(pec.id);
            if deps
                .transitive_dependencies(comp)
                .iter()
                .any(|d| dirty.contains(d))
            {
                dirty.insert(pec.id);
                grown = true;
            }
        }
    }
    dirty
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::compute_pecs;
    use plankton_config::scenarios::{fat_tree_ospf, isp_ibgp_over_ospf, CoreStaticRoutes};
    use plankton_config::static_routes::StaticRoute;
    use plankton_config::ConfigDelta;
    use plankton_net::generators::as_topo::AsTopologySpec;

    fn keys_for_mode(
        network: &Network,
        failure_sets: &[FailureSet],
        mode: OspfSliceMode,
    ) -> (PecSet, TaskKeys) {
        let pecs = compute_pecs(network);
        let deps = PecDependencies::compute(network, &pecs);
        let keys = TaskKeys::compute(network, &pecs, &deps, failure_sets, 1, 2, mode, |_| 0);
        (pecs, keys)
    }

    fn keys_for(network: &Network, failure_sets: &[FailureSet]) -> (PecSet, TaskKeys) {
        keys_for_mode(network, failure_sets, OspfSliceMode::Scoped)
    }

    #[test]
    fn identical_networks_produce_identical_keys() {
        let net = fat_tree_ospf(4, CoreStaticRoutes::None).network;
        let sets = vec![FailureSet::none()];
        let (pecs, a) = keys_for(&net, &sets);
        let (_, b) = keys_for(&net.clone(), &sets);
        for pec in pecs.iter() {
            assert_eq!(a.key(pec.id, 0), b.key(pec.id, 0));
        }
    }

    #[test]
    fn static_route_delta_changes_only_overlapping_pec_keys() {
        let s = fat_tree_ospf(4, CoreStaticRoutes::None);
        let sets = vec![FailureSet::none()];
        let (pecs, before) = keys_for(&s.network, &sets);
        let mut net = s.network.clone();
        let device = s.fat_tree.core[0];
        let prefix = s.destinations[0];
        ConfigDelta::StaticRouteAdd {
            device,
            route: StaticRoute::null(prefix),
        }
        .apply(&mut net)
        .unwrap();
        let (pecs_after, after) = keys_for(&net, &sets);
        assert_eq!(
            pecs.len(),
            pecs_after.len(),
            "no repartition for an existing prefix"
        );
        let mut changed = 0;
        for pec in pecs_after.iter() {
            if after.key(pec.id, 0) != before.key(pec.id, 0) {
                changed += 1;
                assert!(pec.range.overlaps(&prefix.range()));
            }
        }
        assert_eq!(changed, 1, "exactly the touched PEC re-keys");
    }

    #[test]
    fn link_touch_dirties_protocol_pecs_but_not_connected_only_pecs() {
        let s = fat_tree_ospf(4, CoreStaticRoutes::None);
        let pecs = compute_pecs(&s.network);
        let deps = PecDependencies::compute(&s.network, &pecs);
        let link = s.network.topology.links()[0].id;
        let mut net = s.network.clone();
        let touch = ConfigDelta::LinkDown { link }.apply(&mut net).unwrap();
        let dirty = pecs_touched_by(&net, &pecs, &deps, &touch);
        assert!(!dirty.is_empty());
        // Loopback host PECs carry only Connected origins: a link change
        // cannot dirty them (their data plane is local delivery only)...
        for pec in pecs.iter() {
            let connected_only = !pec.is_inert()
                && pec.prefixes.iter().all(|c| {
                    c.static_routes.is_empty()
                        && c.origins
                            .iter()
                            .all(|(_, p)| *p == OriginProtocol::Connected)
                });
            if connected_only {
                assert!(!dirty.contains(&pec.id), "{} wrongly dirtied", pec.id);
            }
        }
        // ...so the dirty set is a strict subset of the active PECs.
        assert!(dirty.len() < pecs.active_pecs().len());
    }

    #[test]
    fn dependency_dirt_propagates_to_dependents() {
        let s = isp_ibgp_over_ospf(&AsTopologySpec::paper_as(3967));
        let pecs = compute_pecs(&s.network);
        let deps = PecDependencies::compute(&s.network, &pecs);
        // Touch a loopback PEC (an IGP dependency of the BGP PECs).
        let lb = s
            .network
            .topology
            .nodes()
            .iter()
            .find_map(|n| n.loopback)
            .unwrap();
        let lb_pec = pecs.pec_containing(lb).unwrap();
        let touch = DeltaTouch {
            prefixes: vec![plankton_net::ip::Prefix::host(lb)],
            ..Default::default()
        };
        let dirty = pecs_touched_by(&s.network, &pecs, &deps, &touch);
        assert!(dirty.contains(&lb_pec.id));
        // Every BGP destination PEC depends on the loopback PECs.
        for p in &s.bgp_destinations {
            let pec = pecs.pecs_overlapping(p)[0];
            if deps
                .transitive_dependencies(deps.component_of(pec.id))
                .contains(&lb_pec.id)
            {
                assert!(dirty.contains(&pec.id), "{} must be dirtied", pec.id);
            }
        }
    }

    #[test]
    fn edge_local_ospf_cost_change_re_keys_few_pecs() {
        // A cost change on the aggregation side of an edge link is
        // competitive only for the prefix originated at that edge switch:
        // every other OSPF PEC's scoped key must survive, while the global
        // oracle dirties them all.
        let s = fat_tree_ospf(4, CoreStaticRoutes::MatchingOspf);
        let sets = vec![FailureSet::none()];
        let (pecs, scoped_before) = keys_for(&s.network, &sets);
        let (_, global_before) = keys_for_mode(&s.network, &sets, OspfSliceMode::Global);
        let device = s.fat_tree.aggregation[0][0];
        let edge = s.fat_tree.edge[0][0];
        let link = s.network.topology.link_between(device, edge).unwrap();
        let mut net = s.network.clone();
        ConfigDelta::OspfCostChange {
            device,
            link,
            cost: 42,
        }
        .apply(&mut net)
        .unwrap();
        let (_, scoped_after) = keys_for(&net, &sets);
        let (_, global_after) = keys_for_mode(&net, &sets, OspfSliceMode::Global);

        let mut scoped_dirty = 0;
        let mut global_dirty = 0;
        let mut ospf_pecs = 0;
        for pec in pecs.iter() {
            let is_ospf = pec
                .prefixes
                .iter()
                .any(|c| c.originated_into(OriginProtocol::Ospf));
            ospf_pecs += is_ospf as usize;
            if scoped_before.key(pec.id, 0) != scoped_after.key(pec.id, 0) {
                scoped_dirty += 1;
                assert!(is_ospf, "{} is not an OSPF PEC", pec.id);
            }
            if global_before.key(pec.id, 0) != global_after.key(pec.id, 0) {
                global_dirty += 1;
            }
        }
        assert_eq!(global_dirty, ospf_pecs, "the oracle dirties every OSPF PEC");
        assert!(scoped_dirty >= 1, "the local PEC must re-key");
        assert!(
            scoped_dirty * 3 <= ospf_pecs,
            "scoped keys must dirty ≤ 1/3 of the {ospf_pecs} OSPF PECs, got {scoped_dirty}"
        );
    }

    #[test]
    fn scoped_keys_never_miss_where_global_keys_hit() {
        // Precision may only grow: any key the global oracle leaves clean
        // must stay clean under scoping (the soak test asserts the converse
        // direction — scoped-clean implies unchanged outcome — end to end).
        let s = fat_tree_ospf(4, CoreStaticRoutes::MatchingOspf);
        let sets = vec![
            FailureSet::none(),
            FailureSet::single(s.network.topology.links()[0].id),
        ];
        let (pecs, scoped_before) = keys_for(&s.network, &sets);
        let (_, global_before) = keys_for_mode(&s.network, &sets, OspfSliceMode::Global);
        let mut net = s.network.clone();
        ConfigDelta::OspfCostChange {
            device: s.fat_tree.core[0],
            link: s.network.topology.neighbors(s.fat_tree.core[0])[0].1,
            cost: 77,
        }
        .apply(&mut net)
        .unwrap();
        let (_, scoped_after) = keys_for(&net, &sets);
        let (_, global_after) = keys_for_mode(&net, &sets, OspfSliceMode::Global);
        for pec in pecs.iter() {
            for f in 0..sets.len() {
                if global_before.key(pec.id, f) == global_after.key(pec.id, f) {
                    assert_eq!(
                        scoped_before.key(pec.id, f),
                        scoped_after.key(pec.id, f),
                        "{} f={f}: scoped key dirtied where the oracle is clean",
                        pec.id
                    );
                }
            }
        }
    }

    #[test]
    fn node_add_re_keys_every_task_conservatively() {
        // Growing the topology re-keys every task through the node count the
        // slices carry (per-node state vectors resize) — the conservative
        // "fallback to re-verify everything" behavior for shape changes,
        // scoped OSPF slices or not.
        use plankton_config::DeviceConfig;
        let s = fat_tree_ospf(4, CoreStaticRoutes::None);
        let sets = vec![FailureSet::none()];
        let (pecs, before) = keys_for(&s.network, &sets);
        let mut net = s.network.clone();
        // No loopback and no referenced prefixes: the PEC partition is
        // unchanged, so keys are comparable one-to-one.
        ConfigDelta::NodeAdd {
            name: "grown".into(),
            loopback: None,
            links: vec![s.fat_tree.core[0], s.fat_tree.core[1]],
            config: DeviceConfig::empty().with_ospf(plankton_config::OspfConfig::enabled()),
        }
        .apply(&mut net)
        .unwrap();
        let (pecs_after, after) = keys_for(&net, &sets);
        assert_eq!(pecs.len(), pecs_after.len(), "no repartition");
        for pec in pecs.iter() {
            assert_ne!(
                before.key(pec.id, 0),
                after.key(pec.id, 0),
                "{} must re-key after a topology grow",
                pec.id
            );
        }
    }

    #[test]
    fn ospf_region_refines_advisory_touch() {
        // A cost change reports its speaker component as the region, and the
        // region-refined advisory dirty set is a subset of the unrefined one
        // (on this one-component fat tree they coincide; the cross-component
        // case — an out-of-region edit leaving the slice untouched — is
        // covered by tests/properties.rs).
        let s = fat_tree_ospf(4, CoreStaticRoutes::None);
        let pecs = compute_pecs(&s.network);
        let deps = PecDependencies::compute(&s.network, &pecs);
        let device = s.fat_tree.aggregation[0][0];
        let link = s.network.topology.neighbors(device)[0].1;
        let mut net = s.network.clone();
        let touch = ConfigDelta::OspfCostChange {
            device,
            link,
            cost: 5,
        }
        .apply(&mut net)
        .unwrap();
        let region = touch
            .ospf_region
            .clone()
            .expect("cost change reports its region");
        assert!(region.contains(&device));
        // The fat tree is one speaker component: the advisory set matches the
        // unrefined one. Dropping the region must never shrink the dirty set.
        let with_region = pecs_touched_by(&net, &pecs, &deps, &touch);
        let mut without = touch.clone();
        without.ospf_region = None;
        let unrefined = pecs_touched_by(&net, &pecs, &deps, &without);
        assert!(with_region.is_subset(&unrefined));
    }

    #[test]
    fn dependency_key_change_re_keys_dependents() {
        let s = isp_ibgp_over_ospf(&AsTopologySpec::paper_as(3967));
        let sets = vec![FailureSet::none()];
        let (pecs, before) = keys_for(&s.network, &sets);
        // Change the OSPF slice (cost change on a backbone link): loopback
        // PECs (OSPF) re-key, and so must the BGP PECs that depend on them.
        let mut net = s.network.clone();
        let device = s.as_topology.backbone[0];
        let link = net.topology.neighbors(device)[0].1;
        ConfigDelta::OspfCostChange {
            device,
            link,
            cost: 777,
        }
        .apply(&mut net)
        .unwrap();
        let (_, after) = keys_for(&net, &sets);
        for p in &s.bgp_destinations {
            let pec = pecs.pecs_overlapping(p)[0];
            assert_ne!(before.key(pec.id, 0), after.key(pec.id, 0));
        }
    }
}
