//! Configuration deltas: the small, operator-shaped edits the incremental
//! verification service accepts between verifications.
//!
//! A [`ConfigDelta`] is applied to a [`Network`] in place and reports a
//! [`DeltaTouch`]: the prefixes, devices and links whose configuration
//! surface the edit touched. The touch set is the *diff layer* the service
//! uses for reporting and coarse invalidation accounting; the authoritative
//! cache-invalidation decision is made per PEC from content fingerprints
//! (see `plankton-pec`'s invalidation module), so a delta can never
//! under-invalidate even if its touch set were imprecise.
//!
//! Topology shape is append-only: `NodeAdd` appends node/link ids (existing
//! ids are never renumbered) and `NodeRemove` *drains* a device — its
//! configuration is cleared and its incident links administratively downed —
//! rather than deleting it, which is how long-running routing daemons treat
//! decommissioned peers anyway (compare ubgpd's session teardown: state is
//! torn down, the neighbor table slot survives).

use crate::device::DeviceConfig;
use crate::route_map::RouteMap;
use crate::static_routes::StaticRoute;
use crate::Network;
use plankton_net::ip::{Ipv4Addr, Prefix};
use plankton_net::topology::{LinkId, NodeId, NodeKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One configuration edit.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ConfigDelta {
    /// Administratively take a link down.
    LinkDown {
        /// The link.
        link: LinkId,
    },
    /// Bring an administratively-down link back up.
    LinkUp {
        /// The link.
        link: LinkId,
    },
    /// Change a device's OSPF interface cost on one link.
    OspfCostChange {
        /// The device whose interface cost changes.
        device: NodeId,
        /// The link the cost applies to.
        link: LinkId,
        /// The new cost.
        cost: u32,
    },
    /// Add a static route on a device.
    StaticRouteAdd {
        /// The device.
        device: NodeId,
        /// The route to add.
        route: StaticRoute,
    },
    /// Remove every static route for a prefix on a device.
    StaticRouteRemove {
        /// The device.
        device: NodeId,
        /// The destination prefix whose routes are removed.
        prefix: Prefix,
    },
    /// Replace the import and/or export route map of one BGP session.
    BgpPolicyEdit {
        /// The device whose session policy changes.
        device: NodeId,
        /// The session peer.
        peer: NodeId,
        /// New import policy (`None` keeps the current one).
        import: Option<RouteMap>,
        /// New export policy (`None` keeps the current one).
        export: Option<RouteMap>,
    },
    /// Append a new router with links to existing devices.
    NodeAdd {
        /// Unique device name.
        name: String,
        /// Optional loopback address.
        loopback: Option<Ipv4Addr>,
        /// Existing devices to link the new router to.
        links: Vec<NodeId>,
        /// The new router's configuration.
        config: DeviceConfig,
    },
    /// Drain a device: clear its configuration and down its incident links.
    NodeRemove {
        /// The device to drain.
        device: NodeId,
    },
}

/// What a delta touched, for reporting and coarse invalidation accounting.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DeltaTouch {
    /// Prefixes whose configuration surface changed (static route targets,
    /// route-map matches, originated networks, loopback host prefixes).
    pub prefixes: Vec<Prefix>,
    /// Devices whose configuration changed.
    pub devices: Vec<NodeId>,
    /// Links whose state or cost changed.
    pub links: Vec<LinkId>,
    /// Did the delta change the protocol-visible topology (link state,
    /// costs, node set)? Such deltas can dirty every PEC that runs a
    /// protocol over the changed element.
    pub topology: bool,
    /// For OSPF edits: the speaker-component members the edit can influence
    /// (an OSPF change cannot leak across component boundaries). `None`
    /// means unscoped — the edit may affect any OSPF PEC.
    #[serde(default)]
    pub ospf_region: Option<Vec<NodeId>>,
}

/// Why a delta could not be applied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// The named device does not exist.
    UnknownDevice(NodeId),
    /// The named link does not exist.
    UnknownLink(LinkId),
    /// The device has no OSPF process to edit.
    NoOspfProcess(NodeId),
    /// The device has no BGP session with the named peer.
    NoBgpSession(NodeId, NodeId),
    /// A node with this name already exists.
    DuplicateNodeName(String),
    /// The delta is a no-op (e.g. removing a static route that is not
    /// configured); rejected so the operator learns their mental model of
    /// the running config is stale.
    NoOp(String),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::UnknownDevice(n) => write!(f, "unknown device {n}"),
            DeltaError::UnknownLink(l) => write!(f, "unknown link {l}"),
            DeltaError::NoOspfProcess(n) => write!(f, "{n} runs no OSPF process"),
            DeltaError::NoBgpSession(n, p) => write!(f, "{n} has no BGP session with {p}"),
            DeltaError::DuplicateNodeName(name) => {
                write!(f, "a device named {name:?} already exists")
            }
            DeltaError::NoOp(what) => write!(f, "delta is a no-op: {what}"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl ConfigDelta {
    /// A short kind tag for logs and service statistics.
    pub fn kind(&self) -> &'static str {
        match self {
            ConfigDelta::LinkDown { .. } => "link_down",
            ConfigDelta::LinkUp { .. } => "link_up",
            ConfigDelta::OspfCostChange { .. } => "ospf_cost_change",
            ConfigDelta::StaticRouteAdd { .. } => "static_route_add",
            ConfigDelta::StaticRouteRemove { .. } => "static_route_remove",
            ConfigDelta::BgpPolicyEdit { .. } => "bgp_policy_edit",
            ConfigDelta::NodeAdd { .. } => "node_add",
            ConfigDelta::NodeRemove { .. } => "node_remove",
        }
    }

    /// Apply the delta to `network` in place. On error the network is
    /// unchanged.
    pub fn apply(&self, network: &mut Network) -> Result<DeltaTouch, DeltaError> {
        let check_device = |n: NodeId| {
            if n.index() < network.node_count() {
                Ok(())
            } else {
                Err(DeltaError::UnknownDevice(n))
            }
        };
        let check_link = |l: LinkId| {
            if l.index() < network.topology.link_count() {
                Ok(())
            } else {
                Err(DeltaError::UnknownLink(l))
            }
        };
        match self {
            ConfigDelta::LinkDown { link } => {
                check_link(*link)?;
                if network.is_link_down(*link) {
                    return Err(DeltaError::NoOp(format!("{link} is already down")));
                }
                network.set_link_down(*link);
                // Only the link's state changed — the endpoint devices keep
                // their configuration, so they are not config-touched.
                Ok(DeltaTouch {
                    links: vec![*link],
                    topology: true,
                    ..Default::default()
                })
            }
            ConfigDelta::LinkUp { link } => {
                check_link(*link)?;
                if !network.is_link_down(*link) {
                    return Err(DeltaError::NoOp(format!("{link} is already up")));
                }
                network.set_link_up(*link);
                Ok(DeltaTouch {
                    links: vec![*link],
                    topology: true,
                    ..Default::default()
                })
            }
            ConfigDelta::OspfCostChange { device, link, cost } => {
                check_device(*device)?;
                check_link(*link)?;
                if !network.topology.link(*link).touches(*device) {
                    return Err(DeltaError::UnknownLink(*link));
                }
                // The region the edit can influence: the device's speaker
                // component *before and after* the edit (a cost change never
                // alters adjacency, so the two coincide). `region_of` is
                // `Some` exactly when the device runs OSPF.
                let Some(region) = network.ospf_scoped_slices().region_of(*device) else {
                    return Err(DeltaError::NoOspfProcess(*device));
                };
                let ospf = network
                    .device_mut(*device)
                    .ospf
                    .as_mut()
                    .expect("region_of implies an OSPF process");
                ospf.interface_costs.insert(*link, *cost);
                Ok(DeltaTouch {
                    devices: vec![*device],
                    links: vec![*link],
                    topology: true,
                    ospf_region: Some(region),
                    ..Default::default()
                })
            }
            ConfigDelta::StaticRouteAdd { device, route } => {
                check_device(*device)?;
                network.device_mut(*device).static_routes.push(*route);
                Ok(DeltaTouch {
                    prefixes: vec![route.prefix],
                    devices: vec![*device],
                    ..Default::default()
                })
            }
            ConfigDelta::StaticRouteRemove { device, prefix } => {
                check_device(*device)?;
                let routes = &mut network.device_mut(*device).static_routes;
                let before = routes.len();
                routes.retain(|sr| sr.prefix != *prefix);
                if routes.len() == before {
                    return Err(DeltaError::NoOp(format!(
                        "{device} has no static route for {prefix}"
                    )));
                }
                Ok(DeltaTouch {
                    prefixes: vec![*prefix],
                    devices: vec![*device],
                    ..Default::default()
                })
            }
            ConfigDelta::BgpPolicyEdit {
                device,
                peer,
                import,
                export,
            } => {
                check_device(*device)?;
                let Some(bgp) = &mut network.devices[device.index()].bgp else {
                    return Err(DeltaError::NoBgpSession(*device, *peer));
                };
                let Some(nbr) = bgp.neighbors.iter_mut().find(|n| n.peer == *peer) else {
                    return Err(DeltaError::NoBgpSession(*device, *peer));
                };
                if import.is_none() && export.is_none() {
                    return Err(DeltaError::NoOp(format!(
                        "neither import nor export given for {device}→{peer}"
                    )));
                }
                let mut prefixes = Vec::new();
                if let Some(map) = import {
                    prefixes.extend(map.referenced_prefixes());
                    nbr.import = map.clone();
                }
                if let Some(map) = export {
                    prefixes.extend(map.referenced_prefixes());
                    nbr.export = map.clone();
                }
                prefixes.sort();
                prefixes.dedup();
                Ok(DeltaTouch {
                    prefixes,
                    devices: vec![*device, *peer],
                    ..Default::default()
                })
            }
            ConfigDelta::NodeAdd {
                name,
                loopback,
                links,
                config,
            } => {
                if network.topology.node_by_name(name).is_some() {
                    return Err(DeltaError::DuplicateNodeName(name.clone()));
                }
                for &peer in links {
                    check_device(peer)?;
                }
                let id = network.topology.grow_node(name, NodeKind::Router);
                if let Some(lb) = loopback {
                    network.topology.assign_loopback(id, *lb);
                }
                let mut new_links = Vec::new();
                for &peer in links {
                    new_links.push(network.topology.grow_link(id, peer));
                }
                network.devices.push(config.clone());
                let mut prefixes = config.referenced_prefixes();
                if let Some(lb) = loopback {
                    prefixes.push(Prefix::host(*lb));
                }
                prefixes.sort();
                prefixes.dedup();
                Ok(DeltaTouch {
                    prefixes,
                    devices: vec![id],
                    links: new_links,
                    topology: true,
                    ospf_region: None,
                })
            }
            ConfigDelta::NodeRemove { device } => {
                check_device(*device)?;
                let incident_up = network
                    .topology
                    .neighbors(*device)
                    .iter()
                    .any(|&(_, l)| !network.is_link_down(l));
                if !network.devices[device.index()].is_configured() && !incident_up {
                    return Err(DeltaError::NoOp(format!("{device} is already drained")));
                }
                let old = std::mem::take(&mut network.devices[device.index()]);
                let mut prefixes = old.referenced_prefixes();
                if let Some(lb) = network.topology.node(*device).loopback {
                    prefixes.push(Prefix::host(lb));
                }
                prefixes.sort();
                prefixes.dedup();
                let incident: Vec<LinkId> = network
                    .topology
                    .neighbors(*device)
                    .iter()
                    .map(|&(_, l)| l)
                    .collect();
                for &l in &incident {
                    network.set_link_down(l);
                }
                Ok(DeltaTouch {
                    prefixes,
                    devices: vec![*device],
                    links: incident,
                    topology: true,
                    ospf_region: None,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{fat_tree_ospf, ring_ospf, CoreStaticRoutes};

    #[test]
    fn link_down_up_roundtrip() {
        let s = ring_ospf(4);
        let mut net = s.network.clone();
        let link = s.ring.links[0];
        let touch = ConfigDelta::LinkDown { link }.apply(&mut net).unwrap();
        assert!(touch.topology);
        assert!(net.is_link_down(link));
        // Downing again is a no-op error.
        assert!(matches!(
            ConfigDelta::LinkDown { link }.apply(&mut net),
            Err(DeltaError::NoOp(_))
        ));
        ConfigDelta::LinkUp { link }.apply(&mut net).unwrap();
        assert!(!net.is_link_down(link));
        assert_eq!(net.fingerprint(), s.network.fingerprint());
    }

    #[test]
    fn static_route_add_remove_roundtrip() {
        let s = fat_tree_ospf(4, CoreStaticRoutes::None);
        let mut net = s.network.clone();
        let device = s.fat_tree.core[0];
        let prefix = s.destinations[0];
        let route = StaticRoute::null(prefix);
        let touch = ConfigDelta::StaticRouteAdd { device, route }
            .apply(&mut net)
            .unwrap();
        assert_eq!(touch.prefixes, vec![prefix]);
        assert!(!touch.topology);
        ConfigDelta::StaticRouteRemove { device, prefix }
            .apply(&mut net)
            .unwrap();
        assert_eq!(net.fingerprint(), s.network.fingerprint());
        assert!(matches!(
            ConfigDelta::StaticRouteRemove { device, prefix }.apply(&mut net),
            Err(DeltaError::NoOp(_))
        ));
    }

    #[test]
    fn ospf_cost_change_validates_adjacency() {
        let s = ring_ospf(4);
        let mut net = s.network.clone();
        let device = s.ring.routers[0];
        let link = s.ring.links[0];
        ConfigDelta::OspfCostChange {
            device,
            link,
            cost: 42,
        }
        .apply(&mut net)
        .unwrap();
        assert_eq!(
            net.device(device).ospf.as_ref().unwrap().cost(link),
            Some(42)
        );
        // A link not touching the device is rejected.
        let far_link = s.ring.links[2];
        assert!(ConfigDelta::OspfCostChange {
            device,
            link: far_link,
            cost: 1,
        }
        .apply(&mut net)
        .is_err());
    }

    #[test]
    fn node_add_appends_without_renumbering() {
        let s = ring_ospf(4);
        let mut net = s.network.clone();
        let n_before = net.node_count();
        let l_before = net.topology.link_count();
        let touch = ConfigDelta::NodeAdd {
            name: "new-r".into(),
            loopback: Some(Ipv4Addr::new(9, 9, 9, 9)),
            links: vec![s.ring.routers[0], s.ring.routers[2]],
            config: DeviceConfig::empty().with_ospf(crate::OspfConfig::enabled()),
        }
        .apply(&mut net)
        .unwrap();
        assert_eq!(net.node_count(), n_before + 1);
        assert_eq!(net.topology.link_count(), l_before + 2);
        assert_eq!(touch.devices, vec![NodeId(n_before as u32)]);
        assert!(touch
            .prefixes
            .contains(&Prefix::host(Ipv4Addr::new(9, 9, 9, 9))));
        // Old ids untouched.
        assert_eq!(
            net.topology.node(s.ring.routers[1]).name,
            s.network.topology.node(s.ring.routers[1]).name
        );
        assert!(matches!(
            ConfigDelta::NodeAdd {
                name: "new-r".into(),
                loopback: None,
                links: vec![],
                config: DeviceConfig::empty(),
            }
            .apply(&mut net),
            Err(DeltaError::DuplicateNodeName(_))
        ));
    }

    #[test]
    fn node_remove_drains_config_and_links() {
        let s = ring_ospf(4);
        let mut net = s.network.clone();
        let victim = s.ring.routers[2];
        let touch = ConfigDelta::NodeRemove { device: victim }
            .apply(&mut net)
            .unwrap();
        assert!(!net.device(victim).is_configured());
        assert_eq!(touch.links.len(), 2);
        for l in touch.links {
            assert!(net.is_link_down(l));
        }
    }

    #[test]
    fn deltas_roundtrip_through_json() {
        let delta = ConfigDelta::StaticRouteAdd {
            device: NodeId(3),
            route: StaticRoute::null("10.0.0.0/24".parse().unwrap()),
        };
        let json = serde_json::to_string(&delta).unwrap();
        let back: ConfigDelta = serde_json::from_str(&json).unwrap();
        assert_eq!(back, delta);
        let delta = ConfigDelta::LinkDown { link: LinkId(7) };
        let back: ConfigDelta =
            serde_json::from_str(&serde_json::to_string(&delta).unwrap()).unwrap();
        assert_eq!(back, delta);
    }
}
